// Columnar binary trace format (traffic/columnar.h): chunk encode/decode
// round trips, column-selective decode, the footer index ranges, merge by
// verbatim frame copy, and whole-file round trips through the mapped
// reader.
#include "traffic/columnar.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "traffic/trace_mmap.h"

namespace cellscope {
namespace {

class ColumnarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cs_columnar_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

std::vector<TrafficLog> varied_logs(std::size_t n, std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<TrafficLog> logs;
  logs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TrafficLog log;
    log.user_id = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    log.tower_id = static_cast<std::uint32_t>(rng.uniform_int(0, 9599));
    log.start_minute = static_cast<std::uint32_t>(rng.uniform_int(0, 40319));
    log.end_minute =
        log.start_minute + static_cast<std::uint32_t>(rng.uniform_int(0, 120));
    log.bytes = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    log.address = i % 3 == 0 ? "" : "District-" + std::to_string(i % 17);
    logs.push_back(std::move(log));
  }
  return logs;
}

TEST_F(ColumnarTest, ChunkRoundTripsRecords) {
  const auto logs = varied_logs(500);
  std::string frame;
  columnar::ChunkIndexEntry entry;
  columnar::encode_chunk(logs, frame, entry);
  EXPECT_EQ(entry.n_records, 500u);
  EXPECT_EQ(frame.size(), entry.frame_len());

  std::vector<TrafficLog> decoded;
  ASSERT_TRUE(columnar::decode_chunk_records(
      reinterpret_cast<const unsigned char*>(frame.data()), frame.size(),
      decoded));
  EXPECT_EQ(decoded, logs);
}

TEST_F(ColumnarTest, ChunkRoundTripsUnorderedTimes) {
  // Zigzag deltas must survive arbitrary (non-monotone) start times.
  std::vector<TrafficLog> logs = varied_logs(64);
  std::reverse(logs.begin(), logs.end());
  std::string frame;
  columnar::ChunkIndexEntry entry;
  columnar::encode_chunk(logs, frame, entry);
  std::vector<TrafficLog> decoded;
  ASSERT_TRUE(columnar::decode_chunk_records(
      reinterpret_cast<const unsigned char*>(frame.data()), frame.size(),
      decoded));
  EXPECT_EQ(decoded, logs);
}

TEST_F(ColumnarTest, ColumnDecodeMatchesRecordFields) {
  const auto logs = varied_logs(300);
  std::string frame;
  columnar::ChunkIndexEntry entry;
  columnar::encode_chunk(logs, frame, entry);
  DecodedColumns cols;
  ASSERT_TRUE(columnar::decode_chunk_columns(
      reinterpret_cast<const unsigned char*>(frame.data()), frame.size(),
      cols));
  ASSERT_EQ(cols.size(), logs.size());
  for (std::size_t i = 0; i < logs.size(); ++i) {
    EXPECT_EQ(cols.tower[i], logs[i].tower_id);
    EXPECT_EQ(cols.start[i], logs[i].start_minute);
    EXPECT_EQ(cols.end[i], logs[i].end_minute);
    EXPECT_EQ(cols.bytes[i], logs[i].bytes);
  }
}

TEST_F(ColumnarTest, IndexEntryTracksMinMaxRanges) {
  const auto logs = varied_logs(200);
  std::string frame;
  columnar::ChunkIndexEntry entry;
  columnar::encode_chunk(logs, frame, entry);
  std::uint32_t min_tower = 0xffffffffu, max_tower = 0;
  std::uint32_t min_minute = 0xffffffffu, max_minute = 0;
  for (const auto& log : logs) {
    min_tower = std::min(min_tower, log.tower_id);
    max_tower = std::max(max_tower, log.tower_id);
    min_minute = std::min(min_minute, log.start_minute);
    max_minute = std::max(max_minute, log.end_minute);
  }
  EXPECT_EQ(entry.min_tower, min_tower);
  EXPECT_EQ(entry.max_tower, max_tower);
  EXPECT_EQ(entry.min_minute, min_minute);
  EXPECT_EQ(entry.max_minute, max_minute);
}

TEST_F(ColumnarTest, FileRoundTripsThroughMappedReader) {
  const auto logs = varied_logs(10000);
  write_trace_bin(path("t.ctb"), logs, 1024);  // several chunks
  EXPECT_EQ(read_trace_bin(path("t.ctb")), logs);

  MmapTraceReader reader(path("t.ctb"));
  EXPECT_EQ(reader.record_count(), logs.size());
  EXPECT_EQ(reader.chunk_count(), 10u);
}

TEST_F(ColumnarTest, EmptyTraceRoundTrips) {
  write_trace_bin(path("empty.ctb"), {});
  const auto logs = read_trace_bin(path("empty.ctb"));
  EXPECT_TRUE(logs.empty());
  MmapTraceReader reader(path("empty.ctb"));
  EXPECT_EQ(reader.chunk_count(), 0u);
}

TEST_F(ColumnarTest, WriterDestructorFinishesFile) {
  const auto logs = varied_logs(100);
  {
    ColumnarTraceWriter writer(path("t.ctb"), 32);
    writer.append(std::span<const TrafficLog>(logs));
    // no finish(): the destructor must flush the tail and the footer
  }
  EXPECT_EQ(read_trace_bin(path("t.ctb")), logs);
}

TEST_F(ColumnarTest, ChunkFilterPrunesByIndexRanges) {
  // Three chunks with disjoint tower ranges; a tower filter must visit
  // only the overlapping chunk.
  std::vector<TrafficLog> logs;
  for (std::uint32_t t = 0; t < 30; ++t)
    logs.push_back({1, t, 100 + t, 100 + t, 10, ""});
  write_trace_bin(path("t.ctb"), logs, 10);
  MmapTraceReader reader(path("t.ctb"));
  ASSERT_EQ(reader.chunk_count(), 3u);

  ChunkFilter filter;
  filter.min_tower = 10;
  filter.max_tower = 19;
  std::size_t visited = 0;
  std::vector<TrafficLog> chunk;
  for (std::size_t i = 0; i < reader.chunk_count(); ++i) {
    if (!reader.chunk_overlaps(i, filter)) continue;
    ++visited;
    ASSERT_TRUE(reader.read_chunk(i, chunk));
    for (const auto& log : chunk)
      EXPECT_TRUE(log.tower_id >= 10 && log.tower_id <= 19);
  }
  EXPECT_EQ(visited, 1u);

  ChunkFilter time_filter;
  time_filter.min_minute = 0;
  time_filter.max_minute = 104;  // overlaps only the first chunk
  visited = 0;
  for (std::size_t i = 0; i < reader.chunk_count(); ++i)
    if (reader.chunk_overlaps(i, time_filter)) ++visited;
  EXPECT_EQ(visited, 1u);
}

TEST_F(ColumnarTest, MergeConcatenatesVerbatim) {
  const auto a = varied_logs(2000, 1);
  const auto b = varied_logs(1500, 2);
  write_trace_bin(path("a.ctb"), a, 512);
  write_trace_bin(path("b.ctb"), b, 512);
  const std::uint64_t merged =
      merge_trace_bin({path("a.ctb"), path("b.ctb")}, path("m.ctb"));
  EXPECT_EQ(merged, a.size() + b.size());

  std::vector<TrafficLog> expected = a;
  expected.insert(expected.end(), b.begin(), b.end());
  EXPECT_EQ(read_trace_bin(path("m.ctb")), expected);

  // Chunk count is the sum — frames were copied, not re-chunked.
  MmapTraceReader ra(path("a.ctb")), rb(path("b.ctb")), rm(path("m.ctb"));
  EXPECT_EQ(rm.chunk_count(), ra.chunk_count() + rb.chunk_count());
}

TEST_F(ColumnarTest, MissingFileThrowsIoError) {
  EXPECT_THROW(MmapTraceReader reader(path("nope.ctb")), IoError);
  EXPECT_THROW(read_trace_bin(path("nope.ctb")), IoError);
}

}  // namespace
}  // namespace cellscope
