// The pluggable codec layer (traffic/trace_codec.h): extension routing,
// cross-backend read identity, csv -> bin -> csv byte identity, and a
// systematic corruption sweep over the binary format — every bit flip
// and truncation must end in IoError or skip-and-count, never a crash.
#include "traffic/trace_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "traffic/columnar.h"
#include "traffic/trace_io.h"
#include "traffic/trace_mmap.h"

namespace cellscope {
namespace {

class TraceCodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cs_codec_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

std::vector<TrafficLog> sample_logs(std::size_t n) {
  Rng rng(11);
  std::vector<TrafficLog> logs;
  logs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TrafficLog log;
    log.user_id = static_cast<std::uint64_t>(rng.uniform_int(0, 99999));
    log.tower_id = static_cast<std::uint32_t>(rng.uniform_int(0, 199));
    log.start_minute = static_cast<std::uint32_t>(rng.uniform_int(0, 40000));
    log.end_minute =
        log.start_minute + static_cast<std::uint32_t>(rng.uniform_int(0, 60));
    log.bytes = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
    log.address = i % 4 == 0 ? "Plaza Mayor, 4" : "";
    logs.push_back(std::move(log));
  }
  return logs;
}

std::string slurp(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spit(const std::string& file, const std::string& bytes) {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(TraceCodecTest, RoutesByExtension) {
  EXPECT_EQ(trace_codec_for_path("trace.csv"), TraceCodec::kCsv);
  EXPECT_EQ(trace_codec_for_path("/data/day01.ctb"), TraceCodec::kMmap);
  EXPECT_EQ(trace_codec_for_path("day01.bin"), TraceCodec::kMmap);
  EXPECT_EQ(trace_codec_for_path("noext"), TraceCodec::kCsv);
  EXPECT_EQ(trace_codec_for_path("weird.tsv"), TraceCodec::kCsv);
}

TEST_F(TraceCodecTest, AllThreeBackendsReadIdenticalRecords) {
  const auto logs = sample_logs(4000);
  write_trace(path("t.csv"), logs);
  write_trace(path("t.ctb"), logs, TraceCodec::kBinary);

  const auto via_csv = read_trace(path("t.csv"), TraceCodec::kCsv);
  const auto via_seq = read_trace(path("t.ctb"), TraceCodec::kBinary);
  const auto via_map = read_trace(path("t.ctb"), TraceCodec::kMmap);
  EXPECT_EQ(via_csv, logs);
  EXPECT_EQ(via_seq, logs);
  EXPECT_EQ(via_map, logs);
}

TEST_F(TraceCodecTest, StreamingReadersBatchAndReportCounts) {
  const auto logs = sample_logs(1000);
  write_trace(path("t.ctb"), logs, TraceCodec::kBinary);

  auto reader = open_trace_reader(path("t.ctb"), TraceCodec::kMmap);
  ASSERT_TRUE(reader->record_count().has_value());
  EXPECT_EQ(*reader->record_count(), logs.size());

  std::vector<TrafficLog> all, batch;
  while (reader->next_batch(batch))
    all.insert(all.end(), batch.begin(), batch.end());
  EXPECT_EQ(all, logs);
  EXPECT_FALSE(reader->next_batch(batch));  // stays exhausted

  write_trace(path("t.csv"), logs);
  auto csv_reader = open_trace_reader(path("t.csv"), TraceCodec::kCsv, 128);
  EXPECT_FALSE(csv_reader->record_count().has_value());
  all.clear();
  std::size_t batches = 0;
  while (csv_reader->next_batch(batch)) {
    EXPECT_LE(batch.size(), 128u);
    ++batches;
    all.insert(all.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(all, logs);
  EXPECT_GE(batches, logs.size() / 128);
}

TEST_F(TraceCodecTest, CsvToBinToCsvIsByteIdentical) {
  const auto logs = sample_logs(2500);
  write_trace_csv(path("a.csv"), logs);
  write_trace(path("a.ctb"), read_trace(path("a.csv")), TraceCodec::kBinary);
  write_trace_csv(path("b.csv"), read_trace(path("a.ctb")));
  EXPECT_EQ(slurp(path("a.csv")), slurp(path("b.csv")));
}

TEST_F(TraceCodecTest, LegacyEntryPointsStillWork) {
  const auto logs = sample_logs(100);
  write_trace_csv(path("t.csv"), logs);
  EXPECT_EQ(read_trace_csv(path("t.csv")), logs);
}

TEST_F(TraceCodecTest, BitFlipSweepNeverCrashes) {
  const auto logs = sample_logs(200);
  write_trace_bin(path("good.ctb"), logs, 64);
  const std::string good = slurp(path("good.ctb"));
  ASSERT_GT(good.size(), columnar::kHeaderBytes + columnar::kTrailerBytes);

  std::size_t io_errors = 0, skipped_reads = 0, clean_reads = 0;
  for (std::size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ (1 << (pos % 8)));
    spit(path("bad.ctb"), bad);
    try {
      // Sequential and mapped backends share the corruption contract.
      const auto via_map = read_trace(path("bad.ctb"), TraceCodec::kMmap);
      const auto via_seq = read_trace(path("bad.ctb"), TraceCodec::kBinary);
      EXPECT_EQ(via_map, via_seq) << "flip at byte " << pos;
      EXPECT_LE(via_map.size(), logs.size()) << "flip at byte " << pos;
      if (via_map.size() == logs.size()) {
        // A flip that left every record intact can only have hit
        // redundant structure bytes; the records must be unchanged.
        EXPECT_EQ(via_map, logs) << "flip at byte " << pos;
        ++clean_reads;
      } else {
        ++skipped_reads;
      }
    } catch (const IoError&) {
      ++io_errors;  // structural damage: header / footer / trailer
    }
  }
  // The sweep must exercise both failure modes: chunk-level skips (CRC)
  // and file-level rejection (header/footer damage).
  EXPECT_GT(io_errors, 0u);
  EXPECT_GT(skipped_reads, 0u);
  SUCCEED() << clean_reads << " clean, " << skipped_reads << " skipped, "
            << io_errors << " rejected";
}

TEST_F(TraceCodecTest, TruncationSweepNeverCrashes) {
  const auto logs = sample_logs(200);
  write_trace_bin(path("good.ctb"), logs, 64);
  const std::string good = slurp(path("good.ctb"));

  for (std::size_t len = 0; len < good.size(); ++len) {
    spit(path("cut.ctb"), good.substr(0, len));
    // Any truncation removes the trailer, so the file must be rejected
    // as structurally damaged by both binary backends.
    EXPECT_THROW(read_trace(path("cut.ctb"), TraceCodec::kMmap), IoError)
        << "truncated to " << len;
    EXPECT_THROW(read_trace(path("cut.ctb"), TraceCodec::kBinary), IoError)
        << "truncated to " << len;
  }
}

TEST_F(TraceCodecTest, CorruptChunkIsSkippedAndCounted) {
  const auto logs = sample_logs(256);
  write_trace_bin(path("t.ctb"), logs, 64);  // 4 chunks
  std::string bytes = slurp(path("t.ctb"));

  // Flip one payload byte of the second chunk: CRC must catch it, the
  // other three chunks must still decode.
  MmapTraceReader index_only(path("t.ctb"));
  ASSERT_EQ(index_only.chunk_count(), 4u);
  const auto& entry = index_only.chunk(1);
  const std::size_t victim = entry.offset + columnar::kChunkHeaderBytes + 3;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
  spit(path("t.ctb"), bytes);

  const auto corrupt_before = columnar::io_metrics().chunks_corrupt->value();
  const auto decoded = read_trace(path("t.ctb"), TraceCodec::kMmap);
  EXPECT_EQ(decoded.size(), logs.size() - entry.n_records);
  EXPECT_EQ(columnar::io_metrics().chunks_corrupt->value(),
            corrupt_before + 1);

  std::vector<TrafficLog> expected = logs;
  expected.erase(expected.begin() + 64, expected.begin() + 128);
  EXPECT_EQ(decoded, expected);
}

}  // namespace
}  // namespace cellscope
