// Ingest-path identity (DESIGN.md §10): the same trace file replayed
// through the CSV offer path, the columnar offer path, and the fused
// bulk ingest_columns path must leave the ingestor in bit-identical
// state — same per-tower grids, same lifetime counters (late/stale
// included) — across shard counts. This is what licenses the fast path:
// it is an optimization, not a different semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time_grid.h"
#include "obs/metrics.h"
#include "mapred/thread_pool.h"
#include "stream/ingestor.h"
#include "stream/replay.h"
#include "traffic/columnar.h"
#include "traffic/trace_codec.h"
#include "traffic/trace_mmap.h"

namespace cellscope {
namespace {

class IngestIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cs_ingest_identity_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    // Roughly time-ordered feed with local skew and a late tail, so the
    // watermark/late/stale accounting the paths must agree on is
    // actually exercised. The perturbed order is baked into the files:
    // every path reads the identical record sequence.
    Rng rng(2024);
    constexpr std::uint64_t kGridMinutes =
        TimeGrid::kSlots * TimeGrid::kSlotMinutes;
    const std::size_t n = 30000;
    logs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      TrafficLog log;
      log.user_id = static_cast<std::uint64_t>(rng.uniform_int(0, 9999));
      log.tower_id = static_cast<std::uint32_t>(rng.uniform_int(0, 63));
      const auto base = i * kGridMinutes / n;
      log.start_minute = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          kGridMinutes - 1,
          base + static_cast<std::uint64_t>(rng.uniform_int(0, 30))));
      log.end_minute = log.start_minute +
                       static_cast<std::uint32_t>(rng.uniform_int(0, 15));
      log.bytes = static_cast<std::uint64_t>(rng.uniform_int(100, 100000));
      logs_.push_back(log);
    }
    ReplayOptions perturb;
    perturb.seed = 7;
    perturb.skew_window = 512;
    perturb.late_fraction = 0.03;
    logs_ = perturb_arrival_order(std::move(logs_), perturb);

    csv_path_ = path("trace.csv");
    bin_path_ = path("trace.ctb");
    write_trace(csv_path_, logs_);
    write_trace_bin(bin_path_, logs_, 4096);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::vector<TrafficLog> logs_;
  std::string csv_path_;
  std::string bin_path_;

 private:
  std::filesystem::path dir_;
};

using TowerGrids = std::vector<std::pair<std::uint32_t, std::vector<double>>>;

TowerGrids grids_of(const StreamIngestor& ingestor) {
  TowerGrids grids;
  auto ids = ingestor.tower_ids();
  std::sort(ids.begin(), ids.end());
  for (const auto id : ids)
    grids.emplace_back(id, ingestor.window_copy(id).raw_vector());
  return grids;
}

void expect_same_ingest(const IngestStats& a, const IngestStats& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.late, b.late);
  EXPECT_EQ(a.stale, b.stale);
  EXPECT_EQ(a.watermark_minute, b.watermark_minute);
  EXPECT_EQ(a.low_watermark_minute, b.low_watermark_minute);
}

TEST_F(IngestIdentityTest, CsvOfferAndBulkPathsAgreeAcrossShardCounts) {
  ThreadPool pool(2);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                   std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const StreamConfig config{.n_shards = shards, .queue_capacity = 0};

    StreamIngestor via_csv(config);
    StreamIngestor via_offer(config);
    StreamIngestor via_bulk(config);

    FileReplayOptions csv_options;    // CSV always offers
    FileReplayOptions offer_options;  // columnar through the queue
    offer_options.bulk = false;
    FileReplayOptions bulk_options;   // fused ingest_columns

    const auto csv_stats =
        replay_trace_file(csv_path_, via_csv, pool, csv_options);
    const auto offer_stats =
        replay_trace_file(bin_path_, via_offer, pool, offer_options);
    const auto bulk_stats =
        replay_trace_file(bin_path_, via_bulk, pool, bulk_options);

    EXPECT_EQ(csv_stats.records, logs_.size());
    EXPECT_EQ(offer_stats.records, logs_.size());
    EXPECT_EQ(bulk_stats.records, logs_.size());
    EXPECT_GT(csv_stats.ingest.late, 0u);  // the contract has teeth

    expect_same_ingest(csv_stats.ingest, offer_stats.ingest);
    expect_same_ingest(csv_stats.ingest, bulk_stats.ingest);

    const auto reference = grids_of(via_csv);
    EXPECT_EQ(reference.size(), 64u);
    EXPECT_EQ(grids_of(via_offer), reference);
    EXPECT_EQ(grids_of(via_bulk), reference);
  }
}

TEST_F(IngestIdentityTest, ShardCountDoesNotChangeBulkIngestState) {
  ThreadPool pool(2);
  StreamIngestor one(StreamConfig{.n_shards = 1, .queue_capacity = 0});
  StreamIngestor four(StreamConfig{.n_shards = 4, .queue_capacity = 0});
  const auto stats_one = replay_trace_file(bin_path_, one, pool);
  const auto stats_four = replay_trace_file(bin_path_, four, pool);
  expect_same_ingest(stats_one.ingest, stats_four.ingest);
  EXPECT_EQ(grids_of(one), grids_of(four));
}

TEST_F(IngestIdentityTest, ChunkFilterSkipsAndAppliesOnlyOverlaps) {
  ThreadPool pool(2);
  MmapTraceReader reader(bin_path_);
  ASSERT_GT(reader.chunk_count(), 4u);

  // A time slice covering only the middle of the feed: the index must
  // prune the leading/trailing chunks wholesale.
  FileReplayOptions options;
  options.filter.min_minute = 15000;
  options.filter.max_minute = 20000;

  std::uint64_t expected_records = 0;
  std::size_t expected_skipped = 0;
  for (std::size_t i = 0; i < reader.chunk_count(); ++i) {
    if (reader.chunk_overlaps(i, options.filter))
      expected_records += reader.chunk(i).n_records;
    else
      ++expected_skipped;
  }
  ASSERT_GT(expected_skipped, 0u);
  ASSERT_LT(expected_records, logs_.size());

  const auto skipped_before = columnar::io_metrics().chunks_skipped->value();
  StreamIngestor ingestor(StreamConfig{.n_shards = 2, .queue_capacity = 0});
  const auto stats = replay_trace_file(bin_path_, ingestor, pool, options);
  EXPECT_EQ(stats.records, expected_records);
  EXPECT_EQ(stats.ingest.accepted, expected_records);
  EXPECT_EQ(columnar::io_metrics().chunks_skipped->value(),
            skipped_before + expected_skipped);

  // Pruning is chunk-granular: the surviving state equals replaying
  // exactly the records of the overlapping chunks.
  StreamIngestor reference(StreamConfig{.n_shards = 2, .queue_capacity = 0});
  std::vector<TrafficLog> kept, chunk;
  for (std::size_t i = 0; i < reader.chunk_count(); ++i) {
    if (!reader.chunk_overlaps(i, options.filter)) continue;
    ASSERT_TRUE(reader.read_chunk(i, chunk));
    kept.insert(kept.end(), chunk.begin(), chunk.end());
  }
  replay_trace(kept, reference, pool);
  EXPECT_EQ(grids_of(ingestor), grids_of(reference));
}

}  // namespace
}  // namespace cellscope
