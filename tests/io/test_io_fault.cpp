// Failpoint-driven fault injection for the trace I/O layer: read/write
// failures surface as IoError through every codec, and an injected CRC
// mismatch (trace.chunk.corrupt) follows the skip-and-count contract —
// the remaining chunks still decode, nothing crashes. Compiled into the
// io suite only when CELLSCOPE_FAILPOINTS is ON.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/failpoint.h"
#include "mapred/thread_pool.h"
#include "obs/metrics.h"
#include "stream/ingestor.h"
#include "stream/replay.h"
#include "traffic/columnar.h"
#include "traffic/trace_codec.h"
#include "traffic/trace_mmap.h"

namespace cellscope {
namespace {

class IoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::disarm_all();
    dir_ = std::filesystem::temp_directory_path() /
           ("cs_io_fault_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fp::disarm_all();
    std::filesystem::remove_all(dir_);
  }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::vector<TrafficLog> sample_logs(std::size_t n) {
    std::vector<TrafficLog> logs;
    logs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      logs.push_back({i, static_cast<std::uint32_t>(i % 16),
                      static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(i + 5), 1000 + i, ""});
    return logs;
  }

 private:
  std::filesystem::path dir_;
};

TEST_F(IoFaultTest, ReadFailpointSurfacesAsIoErrorOnEveryBackend) {
  const auto logs = sample_logs(100);
  write_trace(path("t.csv"), logs);
  write_trace_bin(path("t.ctb"), logs);

  for (const auto codec :
       {TraceCodec::kCsv, TraceCodec::kBinary, TraceCodec::kMmap}) {
    const std::string& file =
        codec == TraceCodec::kCsv ? path("t.csv") : path("t.ctb");
    fp::arm("trace.read.fail", 1);
    EXPECT_THROW(open_trace_reader(file, codec), IoError);
    // One charge: the retry goes clean.
    EXPECT_EQ(read_trace(file, codec), logs);
  }
  EXPECT_EQ(fp::fire_count("trace.read.fail"), 3u);
}

TEST_F(IoFaultTest, WriteFailpointSurfacesAsIoError) {
  const auto logs = sample_logs(50);
  fp::arm("trace.write.fail", 1);
  EXPECT_THROW(open_trace_writer(path("w.ctb")), IoError);
  fp::arm("trace.write.fail", 1);
  EXPECT_THROW(open_trace_writer(path("w.csv")), IoError);

  // Merge shares the write site.
  write_trace_bin(path("a.ctb"), logs);
  fp::arm("trace.write.fail", 1);
  EXPECT_THROW(merge_trace_bin({path("a.ctb")}, path("m.ctb")), IoError);

  // Disarmed, everything works again.
  write_trace(path("w.ctb"), logs);
  EXPECT_EQ(read_trace(path("w.ctb")), logs);
}

TEST_F(IoFaultTest, InjectedCrcMismatchIsSkippedAndCounted) {
  const auto logs = sample_logs(256);
  write_trace_bin(path("t.ctb"), logs, 64);  // 4 chunks

  const auto corrupt_before = columnar::io_metrics().chunks_corrupt->value();
  fp::arm("trace.chunk.corrupt", 2);  // first two chunks fail their CRC
  const auto decoded = read_trace(path("t.ctb"), TraceCodec::kMmap);
  EXPECT_EQ(fp::fire_count("trace.chunk.corrupt"), 2u);
  EXPECT_EQ(decoded.size(), logs.size() - 128);
  EXPECT_EQ(columnar::io_metrics().chunks_corrupt->value(),
            corrupt_before + 2);

  const std::vector<TrafficLog> tail(logs.begin() + 128, logs.end());
  EXPECT_EQ(decoded, tail);
}

TEST_F(IoFaultTest, ReplayRidesThroughCorruptChunks) {
  const auto logs = sample_logs(4096);
  write_trace_bin(path("t.ctb"), logs, 256);  // 16 chunks

  ThreadPool pool(2);
  StreamIngestor ingestor(StreamConfig{.n_shards = 2, .queue_capacity = 0});
  fp::arm("trace.chunk.corrupt", 3);
  const auto stats = replay_trace_file(path("t.ctb"), ingestor, pool);
  EXPECT_EQ(fp::fire_count("trace.chunk.corrupt"), 3u);
  EXPECT_EQ(stats.records, logs.size() - 3 * 256);
  EXPECT_EQ(stats.ingest.accepted, logs.size() - 3 * 256);

  // The surviving state equals replaying the 13 intact chunks directly.
  StreamIngestor reference(StreamConfig{.n_shards = 2, .queue_capacity = 0});
  const std::vector<TrafficLog> tail(logs.begin() + 3 * 256, logs.end());
  replay_trace(tail, reference, pool);
  auto ids = ingestor.tower_ids();
  auto ref_ids = reference.tower_ids();
  std::sort(ids.begin(), ids.end());
  std::sort(ref_ids.begin(), ref_ids.end());
  ASSERT_EQ(ids, ref_ids);
  for (const auto id : ids)
    EXPECT_EQ(ingestor.window_copy(id).raw_vector(),
              reference.window_copy(id).raw_vector());
}

}  // namespace
}  // namespace cellscope
