#include "viz/figure_export.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "common/csv.h"
#include "common/error.h"

namespace cellscope {
namespace {

class FigureExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cs_export_test_" + std::to_string(::getpid()));
    ::setenv("CELLSCOPE_OUT", dir_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("CELLSCOPE_OUT");
    std::filesystem::remove_all(dir_);
  }
  std::filesystem::path dir_;
};

TEST_F(FigureExportTest, CreatesTheOutputDirectory) {
  const auto dir = figure_output_dir();
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  EXPECT_EQ(dir, dir_.string());
}

TEST_F(FigureExportTest, ExportColumnsWritesCsv) {
  export_columns("test_fig", {"x", "y"}, {{1.0, 2.0}, {3.0, 4.0}});
  const auto rows = CsvReader::read_file(dir_.string() + "/test_fig.csv");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(rows[1][0].substr(0, 3), "1.0");
  EXPECT_EQ(rows[2][1].substr(0, 3), "4.0");
}

TEST_F(FigureExportTest, ExportSeriesAddsIndexColumn) {
  export_series("series_fig", std::vector<double>{5.0, 6.0}, "traffic");
  const auto rows = CsvReader::read_file(dir_.string() + "/series_fig.csv");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"index", "traffic"}));
  EXPECT_EQ(rows[1][0].substr(0, 1), "0");
  EXPECT_EQ(rows[2][0].substr(0, 1), "1");
}

TEST_F(FigureExportTest, ValidatesColumnShapes) {
  EXPECT_THROW(export_columns("bad", {"x"}, {{1.0}, {2.0}}), Error);
  EXPECT_THROW(export_columns("bad", {"x", "y"}, {{1.0}, {2.0, 3.0}}),
               Error);
  EXPECT_THROW(export_columns("bad", {}, {}), Error);
}

}  // namespace
}  // namespace cellscope
