#include "viz/ascii_plot.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cellscope {
namespace {

TEST(LineChart, RendersTitleLegendAndFrame) {
  LineChartOptions options;
  options.title = "Traffic over time";
  options.series_names = {"resident", "office"};
  options.width = 40;
  options.height = 8;
  const std::vector<std::vector<double>> series = {
      {1, 2, 3, 4, 5}, {5, 4, 3, 2, 1}};
  const auto chart = line_chart(series, options);
  EXPECT_NE(chart.find("Traffic over time"), std::string::npos);
  EXPECT_NE(chart.find("resident"), std::string::npos);
  EXPECT_NE(chart.find("office"), std::string::npos);
  EXPECT_NE(chart.find("max"), std::string::npos);
  EXPECT_NE(chart.find("min"), std::string::npos);
}

TEST(LineChart, HasRequestedDimensions) {
  LineChartOptions options;
  options.width = 30;
  options.height = 6;
  const auto chart =
      line_chart(std::vector<double>{1.0, 2.0, 3.0}, options);
  // 6 canvas rows, each starting with "  |".
  int rows = 0;
  std::size_t pos = 0;
  while ((pos = chart.find("  |", pos)) != std::string::npos) {
    ++rows;
    pos += 3;
  }
  EXPECT_EQ(rows, 6);
}

TEST(LineChart, ConstantSeriesDoesNotDivideByZero) {
  LineChartOptions options;
  options.width = 20;
  options.height = 5;
  EXPECT_NO_THROW(line_chart(std::vector<double>(50, 3.0), options));
}

TEST(LineChart, ValidatesInput) {
  LineChartOptions options;
  EXPECT_THROW(line_chart(std::vector<std::vector<double>>{}, options),
               Error);
  EXPECT_THROW(line_chart(std::vector<std::vector<double>>{{}}, options),
               Error);
  options.width = 2;
  EXPECT_THROW(line_chart(std::vector<double>{1.0}, options), Error);
}

TEST(Heatmap, UsesDarkerShadesForLargerValues) {
  const std::vector<double> values = {0.0, 0.5, 1.0, 10.0};
  const auto map = heatmap(values, 2, 2, "density");
  EXPECT_NE(map.find("density"), std::string::npos);
  EXPECT_NE(map.find('@'), std::string::npos);  // the 10.0 cell
}

TEST(Heatmap, AllZeroRendersBlank) {
  const std::vector<double> values(9, 0.0);
  const auto map = heatmap(values, 3, 3, "");
  EXPECT_EQ(map.find('@'), std::string::npos);
  EXPECT_EQ(map.find('#'), std::string::npos);
}

TEST(Heatmap, ShapeMismatchThrows) {
  EXPECT_THROW(heatmap(std::vector<double>(5), 2, 3, ""), Error);
}

TEST(BarChart, ScalesBarsToValues) {
  const auto chart =
      bar_chart({"a", "b"}, {1.0, 2.0}, "title", 20);
  // b's bar should be about twice a's.
  const auto a_pos = chart.find("a ");
  const auto b_pos = chart.find("b ");
  ASSERT_NE(a_pos, std::string::npos);
  ASSERT_NE(b_pos, std::string::npos);
  const auto count_hashes = [&](std::size_t from) {
    std::size_t n = 0;
    for (std::size_t i = from; i < chart.size() && chart[i] != '\n'; ++i)
      if (chart[i] == '#') ++n;
    return n;
  };
  EXPECT_EQ(count_hashes(b_pos), 20u);
  EXPECT_EQ(count_hashes(a_pos), 10u);
}

TEST(BarChart, ValidatesInput) {
  EXPECT_THROW(bar_chart({"a"}, {1.0, 2.0}, ""), Error);
  EXPECT_THROW(bar_chart({}, {}, ""), Error);
}

TEST(Scatter, PlacesClassDigits) {
  const std::vector<double> x = {0.0, 1.0};
  const std::vector<double> y = {0.0, 1.0};
  const std::vector<int> cls = {0, 3};
  const auto plot = scatter_plot(x, y, cls, "phases", 20, 10);
  EXPECT_NE(plot.find('0'), std::string::npos);
  EXPECT_NE(plot.find('3'), std::string::npos);
  EXPECT_NE(plot.find("phases"), std::string::npos);
}

TEST(Scatter, ValidatesInput) {
  EXPECT_THROW(scatter_plot({1.0}, {1.0, 2.0}, {0, 0}, ""), Error);
  EXPECT_THROW(scatter_plot({}, {}, {}, ""), Error);
}

}  // namespace
}  // namespace cellscope
