#include <gtest/gtest.h>

#include <cmath>

#include "city/deployment.h"
#include "common/error.h"
#include "common/stats.h"
#include "forecast/metrics.h"
#include "forecast/pattern_forecaster.h"
#include "forecast/seasonal_naive.h"
#include "forecast/spectral_forecaster.h"
#include "traffic/intensity_model.h"

namespace cellscope {
namespace {

/// A noisy weekly-periodic series: three weeks train + one week test.
struct Series {
  std::vector<double> train;  // 3 weeks
  std::vector<double> test;   // 1 week
};

Series tower_series(double noise_cv, std::uint64_t seed = 3) {
  const auto city = CityModel::create_default();
  DeploymentOptions deployment;
  deployment.n_towers = 20;
  auto towers = deploy_towers(city, deployment);
  IntensityOptions options;
  options.noise_cv = noise_cv;
  const auto intensity = IntensityModel::create(towers, options);
  Rng rng(seed);
  const auto full = intensity.sample_series(0, rng);
  Series s;
  s.train.assign(full.begin(), full.begin() + 3 * TimeGrid::kSlotsPerWeek);
  s.test.assign(full.begin() + 3 * TimeGrid::kSlotsPerWeek, full.end());
  return s;
}

TEST(SeasonalNaive, ExactOnPerfectlyPeriodicSeries) {
  const auto s = tower_series(0.0);
  const auto forecast = seasonal_naive_forecast(s.train, s.test.size());
  ASSERT_EQ(forecast.size(), s.test.size());
  for (std::size_t i = 0; i < s.test.size(); i += 37)
    EXPECT_NEAR(forecast[i], s.test[i], 1e-9);
}

TEST(SeasonalNaive, FallsBackToDailySeasonWithShortHistory) {
  std::vector<double> two_days;
  for (int s = 0; s < 2 * TimeGrid::kSlotsPerDay; ++s)
    two_days.push_back(std::sin(2.0 * M_PI * s / TimeGrid::kSlotsPerDay));
  const auto forecast = seasonal_naive_forecast(two_days, 144);
  for (int s = 0; s < 144; s += 11)
    EXPECT_NEAR(forecast[static_cast<std::size_t>(s)],
                two_days[static_cast<std::size_t>(s)], 1e-9);
}

TEST(SeasonalNaive, HorizonBeyondOneSeasonWraps) {
  const auto s = tower_series(0.0);
  const auto forecast =
      seasonal_naive_forecast(s.train, 2 * TimeGrid::kSlotsPerWeek);
  for (int i = 0; i < TimeGrid::kSlotsPerWeek; i += 101)
    EXPECT_NEAR(forecast[static_cast<std::size_t>(i)],
                forecast[static_cast<std::size_t>(i) + TimeGrid::kSlotsPerWeek],
                1e-9);
}

TEST(SeasonalNaive, RequiresOneDay) {
  EXPECT_THROW(seasonal_naive_forecast(std::vector<double>(100), 10), Error);
}

TEST(SpectralForecast, MeanWeekIsNonNegativeAndWeekLong) {
  const auto s = tower_series(0.2);
  const auto week = spectral_mean_week(s.train);
  ASSERT_EQ(week.size(), static_cast<std::size_t>(TimeGrid::kSlotsPerWeek));
  for (const double v : week) EXPECT_GE(v, 0.0);
}

TEST(SpectralForecast, BeatsSeasonalNaiveOnNoisySeries) {
  // The headline property: harmonic truncation averages noise out, so the
  // spectral forecaster outperforms replaying last week verbatim.
  double spectral_total = 0.0;
  double naive_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto s = tower_series(0.3, seed);
    const auto spectral = spectral_forecast(s.train, s.test.size());
    const auto naive = seasonal_naive_forecast(s.train, s.test.size());
    spectral_total += mean_absolute_error(s.test, spectral);
    naive_total += mean_absolute_error(s.test, naive);
  }
  EXPECT_LT(spectral_total, naive_total);
}

TEST(SpectralForecast, SkillBeatsMeanPredictor) {
  const auto s = tower_series(0.2);
  const auto forecast = spectral_forecast(s.train, s.test.size());
  EXPECT_LT(mae_skill_vs_mean(s.test, forecast), 0.5);
}

TEST(SpectralForecast, MoreHarmonicsFitPeriodicStructureBetter) {
  const auto s = tower_series(0.0);
  SpectralForecastOptions few;
  few.keep_harmonics = 2;
  SpectralForecastOptions many;
  many.keep_harmonics = 50;
  const auto coarse = spectral_forecast(s.train, s.test.size(), few);
  const auto fine = spectral_forecast(s.train, s.test.size(), many);
  EXPECT_LT(mean_absolute_error(s.test, fine),
            mean_absolute_error(s.test, coarse));
}

TEST(SpectralForecast, RequiresOneWeek) {
  EXPECT_THROW(spectral_forecast(std::vector<double>(500), 10), Error);
}

TEST(PatternForecaster, MatchesTheGeneratingTemplate) {
  // Templates: two distinct shapes; history generated from one of them.
  std::vector<std::vector<double>> templates(2);
  for (int s = 0; s < TimeGrid::kSlotsPerWeek; ++s) {
    const double day_phase =
        2.0 * M_PI * (s % TimeGrid::kSlotsPerDay) / TimeGrid::kSlotsPerDay;
    templates[0].push_back(std::cos(day_phase));         // midnight peak
    templates[1].push_back(std::cos(day_phase - M_PI));  // midday peak
  }
  const PatternForecaster forecaster(templates);
  // History: 1 day of the midday-peak shape, scaled and shifted.
  std::vector<double> history;
  for (int s = 0; s < TimeGrid::kSlotsPerDay; ++s)
    history.push_back(100.0 + 40.0 * templates[1][static_cast<std::size_t>(s)]);
  EXPECT_EQ(forecaster.match(history), 1u);
}

TEST(PatternForecaster, ForecastRecoversScaleAndShape) {
  std::vector<std::vector<double>> templates(1);
  for (int s = 0; s < TimeGrid::kSlotsPerWeek; ++s)
    templates[0].push_back(std::sin(2.0 * M_PI * s / TimeGrid::kSlotsPerDay));
  const PatternForecaster forecaster(templates);
  std::vector<double> history;
  for (int s = 0; s < TimeGrid::kSlotsPerDay; ++s)
    history.push_back(50.0 + 10.0 * templates[0][static_cast<std::size_t>(s)]);
  const auto forecast = forecaster.forecast(history, TimeGrid::kSlotsPerDay);
  // Next day continues the same scaled sinusoid.
  for (int s = 0; s < TimeGrid::kSlotsPerDay; s += 13) {
    const double want =
        50.0 + 10.0 * templates[0][static_cast<std::size_t>(
                          (TimeGrid::kSlotsPerDay + s) %
                          TimeGrid::kSlotsPerWeek)];
    EXPECT_NEAR(forecast[static_cast<std::size_t>(s)], want, 1.0);
  }
}

TEST(PatternForecaster, ColdStartBeatsMeanPredictorOnRealTowers) {
  // Templates learned from canonical profiles; forecast a tower from one
  // day of observations.
  std::vector<std::vector<double>> templates;
  for (const auto r : all_regions()) {
    const auto z = zscore(TrafficProfile::canonical(r).series());
    templates.push_back(std::vector<double>(
        z.begin(), z.begin() + TimeGrid::kSlotsPerWeek));
  }
  const PatternForecaster forecaster(std::move(templates));

  const auto s = tower_series(0.15);
  // Only the first day of the training data is "observed".
  std::vector<double> one_day(s.train.begin(),
                              s.train.begin() + TimeGrid::kSlotsPerDay);
  const auto forecast =
      forecaster.forecast(one_day, TimeGrid::kSlotsPerWeek);
  std::vector<double> actual(
      s.train.begin() + TimeGrid::kSlotsPerDay,
      s.train.begin() + TimeGrid::kSlotsPerDay + TimeGrid::kSlotsPerWeek);
  EXPECT_LT(mae_skill_vs_mean(actual, forecast), 0.9);
}

TEST(PatternForecaster, MatchOrPriorSharesTheMatchPathWithEnoughHistory) {
  std::vector<std::vector<double>> templates(2);
  for (int s = 0; s < TimeGrid::kSlotsPerWeek; ++s) {
    const double day_phase =
        2.0 * M_PI * (s % TimeGrid::kSlotsPerDay) / TimeGrid::kSlotsPerDay;
    templates[0].push_back(std::cos(day_phase));
    templates[1].push_back(std::cos(day_phase - M_PI));
  }
  const PatternForecaster forecaster(templates);

  // 100 slots (between half a day and a day): shape matching applies and
  // agrees with match().
  std::vector<double> history;
  for (int s = 0; s < 100; ++s)
    history.push_back(10.0 + 4.0 * templates[1][static_cast<std::size_t>(s)]);
  EXPECT_EQ(forecaster.match_or_prior(history, 0), forecaster.match(history));
  EXPECT_EQ(forecaster.match_or_prior(history, 0), 1u);
}

TEST(PatternForecaster, MatchOrPriorFallsBackBelowHalfADay) {
  std::vector<std::vector<double>> templates = {
      std::vector<double>(TimeGrid::kSlotsPerWeek, 1.0),
      std::vector<double>(TimeGrid::kSlotsPerWeek, -1.0)};
  const PatternForecaster forecaster(templates);

  const std::vector<double> short_history(PatternForecaster::kMinMatchSlots - 1,
                                          5.0);
  EXPECT_EQ(forecaster.match_or_prior(short_history, 1), 1u);
  EXPECT_EQ(forecaster.match_or_prior({}, 0), 0u);
  // The prior must name a real template.
  EXPECT_THROW(forecaster.match_or_prior({}, 2), Error);
}

TEST(PatternForecaster, ConstantHistoryMatchesWithoutNaN) {
  // A constant (zero-variance) history z-scores to the zero vector; the
  // match must stay finite and pick some valid template.
  std::vector<std::vector<double>> templates(2);
  for (int s = 0; s < TimeGrid::kSlotsPerWeek; ++s) {
    templates[0].push_back(std::sin(2.0 * M_PI * s / TimeGrid::kSlotsPerDay));
    templates[1].push_back(static_cast<double>(s % 7));
  }
  const PatternForecaster forecaster(templates);
  const std::vector<double> flat(2 * TimeGrid::kSlotsPerDay, 42.0);
  const auto matched = forecaster.match_or_prior(flat, 0);
  EXPECT_LT(matched, forecaster.template_count());

  const auto forecast = forecaster.forecast(flat, TimeGrid::kSlotsPerDay);
  for (const double v : forecast) EXPECT_TRUE(std::isfinite(v));
}

TEST(PatternForecaster, ValidatesInput) {
  EXPECT_THROW(PatternForecaster({}), Error);
  EXPECT_THROW(PatternForecaster({{1.0, 2.0}}), Error);
  std::vector<std::vector<double>> templates = {
      std::vector<double>(TimeGrid::kSlotsPerWeek, 1.0)};
  const PatternForecaster forecaster(templates);
  EXPECT_THROW(forecaster.match(std::vector<double>(10)), Error);
}

}  // namespace
}  // namespace cellscope
