#include "forecast/anomaly.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/time_grid.h"

namespace cellscope {
namespace {

/// Weekly-periodic series with mild noise.
std::vector<double> periodic_series(std::size_t weeks, double noise,
                                    std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(weeks * TimeGrid::kSlotsPerWeek);
  for (std::size_t s = 0; s < weeks * TimeGrid::kSlotsPerWeek; ++s) {
    const double base =
        100.0 +
        50.0 * std::sin(2.0 * M_PI *
                        static_cast<double>(s % TimeGrid::kSlotsPerDay) /
                        TimeGrid::kSlotsPerDay);
    out.push_back(base * (1.0 + noise * rng.normal()));
  }
  return out;
}

TEST(AnomalyDetector, QuietSeriesHasNoAnomalies) {
  const auto history = periodic_series(3, 0.05);
  const TrafficAnomalyDetector detector(history);
  const auto week = periodic_series(1, 0.05, 99);
  EXPECT_TRUE(detector.detect(week).empty());
}

TEST(AnomalyDetector, DetectsAnInjectedSurge) {
  const auto history = periodic_series(3, 0.05);
  const TrafficAnomalyDetector detector(history);
  auto week = periodic_series(1, 0.05, 7);
  // A flash crowd: 3x traffic for two hours starting Wednesday 20:00.
  const std::size_t begin = TimeGrid::slot_at(2, 20, 0);
  for (std::size_t s = begin; s < begin + 12; ++s) week[s] *= 3.0;

  const auto anomalies = detector.detect(week);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_TRUE(anomalies[0].is_surge);
  EXPECT_GE(anomalies[0].begin_slot + 1, begin);  // within one slot
  EXPECT_LE(anomalies[0].begin_slot, begin + 1);
  EXPECT_NEAR(static_cast<double>(anomalies[0].end_slot),
              static_cast<double>(begin + 12), 3.0);
  EXPECT_GT(anomalies[0].peak_score, 4.0);
}

TEST(AnomalyDetector, DetectsAnOutage) {
  const auto history = periodic_series(3, 0.05);
  const TrafficAnomalyDetector detector(history);
  auto week = periodic_series(1, 0.05, 8);
  const std::size_t begin = TimeGrid::slot_at(1, 10, 0);
  for (std::size_t s = begin; s < begin + 18; ++s) week[s] = 0.0;

  const auto anomalies = detector.detect(week);
  ASSERT_GE(anomalies.size(), 1u);
  EXPECT_FALSE(anomalies[0].is_surge);
  EXPECT_LT(anomalies[0].peak_score, -4.0);
}

TEST(AnomalyDetector, GapToleranceMergesOneEvent) {
  const auto history = periodic_series(3, 0.02);
  AnomalyOptions options;
  options.gap_tolerance = 3;
  const TrafficAnomalyDetector detector(history, options);
  auto week = periodic_series(1, 0.02, 9);
  const std::size_t begin = 300;
  for (std::size_t s = begin; s < begin + 20; ++s) {
    if (s == begin + 9 || s == begin + 10) continue;  // brief dip inside
    week[s] *= 3.0;
  }
  const auto anomalies = detector.detect(week);
  EXPECT_EQ(anomalies.size(), 1u);
}

TEST(AnomalyDetector, ZeroGapToleranceSplitsEvents) {
  const auto history = periodic_series(3, 0.02);
  AnomalyOptions options;
  options.gap_tolerance = 0;
  const TrafficAnomalyDetector detector(history, options);
  auto week = periodic_series(1, 0.02, 9);
  const std::size_t begin = 300;
  for (std::size_t s = begin; s < begin + 20; ++s) {
    if (s >= begin + 8 && s < begin + 12) continue;  // 4-slot gap
    week[s] *= 3.0;
  }
  EXPECT_EQ(detector.detect(week).size(), 2u);
}

TEST(AnomalyDetector, ScoresContinueThePhase) {
  // History of 2.5 weeks: scoring must pick up at the right slot-of-week.
  auto history = periodic_series(3, 0.0);
  history.resize(2 * TimeGrid::kSlotsPerWeek + TimeGrid::kSlotsPerDay);
  const TrafficAnomalyDetector detector(history);
  // A continuation with the correct phase scores ~0 everywhere.
  std::vector<double> next;
  const auto full = periodic_series(4, 0.0);
  next.assign(full.begin() + static_cast<long>(history.size()),
              full.begin() + static_cast<long>(history.size()) + 500);
  for (const double z : detector.score(next)) EXPECT_LT(std::fabs(z), 0.5);
}

TEST(AnomalyDetector, SigmaFloorPreventsFalseAlarmsOnQuietSlots) {
  // Noise-free history -> raw sigma 0; the relative floor must keep a
  // small fluctuation from exploding the score.
  const auto history = periodic_series(2, 0.0);
  const TrafficAnomalyDetector detector(history);
  auto week = periodic_series(1, 0.0, 5);
  week[100] *= 1.02;  // +2%
  EXPECT_TRUE(detector.detect(week).empty());
}

TEST(AnomalyDetector, ValidatesInput) {
  EXPECT_THROW(TrafficAnomalyDetector(periodic_series(1, 0.1)), Error);
  AnomalyOptions bad;
  bad.threshold = 0.0;
  EXPECT_THROW(TrafficAnomalyDetector(periodic_series(2, 0.1), bad), Error);
}

// Property sweep: detection across surge magnitudes.
class SurgeMagnitude : public ::testing::TestWithParam<double> {};

TEST_P(SurgeMagnitude, BigSurgesDetectedSmallOnesIgnored) {
  const double factor = GetParam();
  const auto history = periodic_series(3, 0.05);
  const TrafficAnomalyDetector detector(history);
  auto week = periodic_series(1, 0.05, 11);
  for (std::size_t s = 400; s < 415; ++s) week[s] *= factor;
  const auto anomalies = detector.detect(week);
  if (factor >= 2.0) {
    EXPECT_FALSE(anomalies.empty()) << "factor " << factor;
  } else if (factor <= 1.1) {
    EXPECT_TRUE(anomalies.empty()) << "factor " << factor;
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, SurgeMagnitude,
                         ::testing::Values(1.0, 1.05, 1.1, 2.0, 3.0, 5.0));

}  // namespace
}  // namespace cellscope
