#include "forecast/metrics.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cellscope {
namespace {

TEST(Metrics, MaeOfPerfectForecastIsZero) {
  const std::vector<double> a = {1, 2, 3};
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, a), 0.0);
  EXPECT_DOUBLE_EQ(root_mean_squared_error(a, a), 0.0);
  EXPECT_DOUBLE_EQ(smape(a, a), 0.0);
}

TEST(Metrics, MaeMatchesHandComputation) {
  const std::vector<double> a = {0, 0, 0, 0};
  const std::vector<double> p = {1, -1, 2, 0};
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, p), 1.0);
}

TEST(Metrics, RmsePenalizesOutliersMoreThanMae) {
  const std::vector<double> a = {0, 0, 0, 0};
  const std::vector<double> spread = {1, 1, 1, 1};
  const std::vector<double> spike = {0, 0, 0, 4};
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, spread),
                   mean_absolute_error(a, spike));
  EXPECT_LT(root_mean_squared_error(a, spread),
            root_mean_squared_error(a, spike));
}

TEST(Metrics, SmapeIsBoundedByTwo) {
  const std::vector<double> a = {1, 1};
  const std::vector<double> p = {0, 1000};
  const double s = smape(a, p);
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 2.0);
}

TEST(Metrics, SmapeIgnoresDoubleZeros) {
  const std::vector<double> a = {0, 1};
  const std::vector<double> p = {0, 1};
  EXPECT_DOUBLE_EQ(smape(a, p), 0.0);
}

TEST(Metrics, SkillBelowOneBeatsMeanPredictor) {
  const std::vector<double> a = {0, 10, 0, 10};
  const std::vector<double> good = {1, 9, 1, 9};
  const std::vector<double> constant(4, 5.0);
  EXPECT_LT(mae_skill_vs_mean(a, good), 1.0);
  EXPECT_DOUBLE_EQ(mae_skill_vs_mean(a, constant), 1.0);
}

TEST(Metrics, ValidateInput) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> bad = {1};
  EXPECT_THROW(mean_absolute_error(a, bad), Error);
  EXPECT_THROW(smape({}, {}), Error);
  const std::vector<double> constant = {3, 3};
  EXPECT_THROW(mae_skill_vs_mean(constant, a), Error);
}

}  // namespace
}  // namespace cellscope
