// snapshot_fuzz — deterministic seeded corruption driver for the stream
// snapshot frame (ctest label `fault`; no external deps).
//
// Builds a known ingestor state, writes a snapshot, then runs N seeded
// rounds; each round applies a random corruption (truncation, bit flips,
// zeroed span, appended garbage — or none, as a control) and attempts a
// restore into a pre-seeded target. The invariant checked every round:
// restore either succeeds on an intact frame with state bit-identical to
// the donor, or throws IoError and leaves the target bit-identical to
// its pre-call state. Anything else — wrong exception type, partial
// mutation, a crash — fails the run.
//
// Usage: snapshot_fuzz [iterations] [seed]   (defaults: 400, 20150817)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/error.h"
#include "mapred/thread_pool.h"
#include "stream/ingestor.h"
#include "stream/snapshot.h"

namespace {

using namespace cellscope;

std::vector<TrafficLog> make_logs(std::uint32_t towers,
                                  std::uint32_t per_tower,
                                  std::uint64_t salt) {
  std::vector<TrafficLog> logs;
  for (std::uint32_t t = 0; t < towers; ++t) {
    for (std::uint32_t k = 0; k < per_tower; ++k) {
      TrafficLog log;
      log.user_id = salt * 1000 + k;
      log.tower_id = t;
      log.start_minute = t * 131 + k * 10;
      log.end_minute = log.start_minute + 3;
      log.bytes = 64 + t * 13 + k * 31 + salt;
      log.address = "fuzz";
      logs.push_back(std::move(log));
    }
  }
  return logs;
}

struct Fingerprint {
  std::vector<std::pair<std::uint32_t, TowerWindow::State>> windows;
  IngestStats stats;
};

Fingerprint fingerprint(const StreamIngestor& ingestor) {
  return {ingestor.export_windows(), ingestor.stats()};
}

bool same(const Fingerprint& a, const Fingerprint& b) {
  if (a.windows.size() != b.windows.size()) return false;
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    const auto& [aid, as] = a.windows[i];
    const auto& [bid, bs] = b.windows[i];
    if (aid != bid || as.sumsq != bs.sumsq ||
        as.bins.size() != bs.bins.size())
      return false;
    for (std::size_t k = 0; k < as.bins.size(); ++k)
      if (as.bins[k].slot != bs.bins[k].slot ||
          as.bins[k].cycle != bs.bins[k].cycle ||
          as.bins[k].bytes != bs.bins[k].bytes)
        return false;
  }
  return a.stats.offered == b.stats.offered &&
         a.stats.accepted == b.stats.accepted &&
         a.stats.dropped == b.stats.dropped && a.stats.late == b.stats.late &&
         a.stats.stale == b.stats.stale &&
         a.stats.watermark_minute == b.stats.watermark_minute;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 400;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 20150817ull;
  std::mt19937_64 rng(seed);

  const auto dir = std::filesystem::temp_directory_path();
  const std::string tag = std::to_string(::getpid());
  const std::string donor_path = (dir / ("cs_fuzz_" + tag + ".bin")).string();
  const std::string seed_path =
      (dir / ("cs_fuzz_" + tag + "_seed.bin")).string();
  const std::string victim_path =
      (dir / ("cs_fuzz_" + tag + "_victim.bin")).string();

  ThreadPool pool(2);

  StreamIngestor donor(StreamConfig{.n_shards = 3, .queue_capacity = 0});
  donor.offer_batch(make_logs(6, 14, 1));
  donor.drain(pool);
  write_snapshot(donor_path, donor);
  const std::string frame = read_file(donor_path);
  const Fingerprint donor_print = fingerprint(donor);

  StreamIngestor seeded(StreamConfig{.n_shards = 2, .queue_capacity = 0});
  seeded.offer_batch(make_logs(6, 8, 2));
  seeded.drain(pool);
  write_snapshot(seed_path, seeded);
  const Fingerprint seed_print = fingerprint(seeded);

  int accepted = 0;
  int rejected = 0;
  int failures = 0;
  for (int i = 0; i < iterations; ++i) {
    std::string corrupt = frame;
    bool intact = false;
    switch (rng() % 5) {
      case 0:  // control round: pristine frame must restore
        intact = true;
        break;
      case 1:  // truncate anywhere (including to empty)
        corrupt.resize(rng() % frame.size());
        break;
      case 2: {  // flip 1..8 bits
        const int flips = 1 + static_cast<int>(rng() % 8);
        for (int f = 0; f < flips; ++f) {
          const std::size_t p = rng() % corrupt.size();
          corrupt[p] = static_cast<char>(corrupt[p] ^
                                         (1u << (rng() % 8)));
        }
        break;
      }
      case 3: {  // zero a random span
        const std::size_t begin = rng() % corrupt.size();
        const std::size_t len =
            1 + rng() % std::min<std::size_t>(64, corrupt.size() - begin);
        for (std::size_t p = begin; p < begin + len; ++p) corrupt[p] = 0;
        break;
      }
      case 4: {  // append garbage past the frame
        const std::size_t extra = 1 + rng() % 32;
        for (std::size_t p = 0; p < extra; ++p)
          corrupt.push_back(static_cast<char>(rng() & 0xFF));
        break;
      }
    }
    // Bit flips / zeroed spans can land as a no-op (already-zero span);
    // detect actual no-ops so the expectation matches.
    if (corrupt == frame) intact = true;
    write_file(victim_path, corrupt);

    StreamIngestor target(StreamConfig{.n_shards = 2, .queue_capacity = 0});
    read_snapshot(seed_path, target);
    try {
      read_snapshot(victim_path, target);
      if (!intact) {
        // A corrupted frame slipped through (CRC collision odds are
        // ~2^-32 per round — in a deterministic seeded run this means a
        // validation gap, not bad luck).
        std::fprintf(stderr,
                     "FAIL round %d: corrupt frame accepted (%zu bytes)\n",
                     i, corrupt.size());
        ++failures;
        continue;
      }
      if (!same(fingerprint(target), donor_print)) {
        std::fprintf(stderr,
                     "FAIL round %d: intact restore not bit-identical\n", i);
        ++failures;
        continue;
      }
      ++accepted;
    } catch (const IoError&) {
      if (intact) {
        std::fprintf(stderr, "FAIL round %d: pristine frame rejected\n", i);
        ++failures;
        continue;
      }
      if (!same(fingerprint(target), seed_print)) {
        std::fprintf(stderr,
                     "FAIL round %d: rejected restore mutated the target\n",
                     i);
        ++failures;
        continue;
      }
      ++rejected;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL round %d: wrong exception type: %s\n", i,
                   e.what());
      ++failures;
    }
  }

  for (const auto& p : {donor_path, seed_path, victim_path})
    std::filesystem::remove(p);

  std::printf(
      "snapshot_fuzz: %d rounds (seed %llu): %d intact restores, %d clean "
      "rejections, %d failures\n",
      iterations, static_cast<unsigned long long>(seed), accepted, rejected,
      failures);
  return failures == 0 ? 0 : 1;
}
