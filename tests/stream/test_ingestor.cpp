#include "stream/ingestor.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/time_grid.h"
#include "mapred/thread_pool.h"

namespace cellscope {
namespace {

TrafficLog make_log(std::uint32_t tower, std::uint64_t start,
                    std::uint64_t bytes) {
  TrafficLog log;
  log.user_id = 1;
  log.tower_id = tower;
  log.start_minute = static_cast<std::uint32_t>(start);
  log.end_minute = static_cast<std::uint32_t>(start + 5);
  log.bytes = bytes;
  return log;
}

TEST(StreamIngestor, RoutesRecordsToWindowsOnDrain) {
  StreamIngestor ingestor(StreamConfig{.n_shards = 3, .queue_capacity = 0});
  ThreadPool pool(2);
  EXPECT_EQ(ingestor.offer(make_log(7, 25, 100)), OfferResult::kAccepted);
  EXPECT_EQ(ingestor.offer(make_log(7, 27, 50)), OfferResult::kAccepted);
  EXPECT_EQ(ingestor.offer(make_log(12, 0, 9)), OfferResult::kAccepted);
  EXPECT_EQ(ingestor.pending(), 3u);

  ingestor.drain(pool);
  EXPECT_EQ(ingestor.pending(), 0u);
  EXPECT_EQ(ingestor.window_copy(7).raw_vector()[2], 150.0);
  EXPECT_EQ(ingestor.window_copy(12).raw_vector()[0], 9.0);

  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(ingestor.tower_ids(), (std::vector<std::uint32_t>{7, 12}));
}

TEST(StreamIngestor, OfferBatchMatchesRecordByRecordOffers) {
  std::vector<TrafficLog> logs;
  for (std::uint32_t i = 0; i < 500; ++i)
    logs.push_back(make_log(i % 11, (i * 37) % 4000, 10 + i));

  StreamIngestor one(StreamConfig{.n_shards = 4, .queue_capacity = 0});
  StreamIngestor other(StreamConfig{.n_shards = 4, .queue_capacity = 0});
  ThreadPool pool(2);
  for (const auto& log : logs) one.offer(log);
  EXPECT_EQ(other.offer_batch(logs), logs.size());
  one.drain(pool);
  other.drain(pool);

  ASSERT_EQ(one.tower_ids(), other.tower_ids());
  for (const auto id : one.tower_ids())
    EXPECT_EQ(one.window_copy(id).raw_vector(),
              other.window_copy(id).raw_vector());
}

TEST(StreamIngestor, FullShardQueueDropsAndCounts) {
  StreamIngestor ingestor(StreamConfig{.n_shards = 1, .queue_capacity = 2});
  EXPECT_EQ(ingestor.offer(make_log(0, 0, 1)), OfferResult::kAccepted);
  EXPECT_EQ(ingestor.offer(make_log(0, 10, 1)), OfferResult::kAccepted);
  EXPECT_EQ(ingestor.offer(make_log(0, 20, 1)), OfferResult::kDropped);
  EXPECT_EQ(ingestor.offer(make_log(0, 30, 1)), OfferResult::kDropped);

  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.offered, 4u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.dropped, 2u);

  // Draining frees capacity again.
  ThreadPool pool(1);
  ingestor.drain(pool);
  EXPECT_EQ(ingestor.offer(make_log(0, 40, 1)), OfferResult::kAccepted);
}

TEST(StreamIngestor, WatermarkAndLatenessAccounting) {
  StreamConfig config;
  config.n_shards = 2;
  config.queue_capacity = 0;
  config.max_lateness_minutes = 120;
  StreamIngestor ingestor(config);

  TrafficLog head = make_log(1, 995, 10);
  head.end_minute = 1000;
  ingestor.offer(head);
  EXPECT_EQ(ingestor.stats().watermark_minute, 1000u);
  EXPECT_EQ(ingestor.stats().late, 0u);

  // Within the lateness bound: fine.
  ingestor.offer(make_log(2, 900, 5));
  EXPECT_EQ(ingestor.stats().late, 0u);
  // Beyond it: counted late but still accepted (and applied on drain).
  ingestor.offer(make_log(2, 500, 7));
  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.late, 1u);
  EXPECT_EQ(stats.accepted, 3u);

  ThreadPool pool(1);
  ingestor.drain(pool);
  EXPECT_EQ(ingestor.window_copy(2).raw_vector()[50], 7.0);
}

TEST(StreamIngestor, RegisteredTowersAppearAsColdWindows) {
  StreamIngestor ingestor(StreamConfig{.n_shards = 2, .queue_capacity = 0});
  std::vector<Tower> towers(3);
  towers[0].id = 4;
  towers[1].id = 9;
  towers[2].id = 2;
  ingestor.register_towers(towers);

  EXPECT_EQ(ingestor.tower_ids(), (std::vector<std::uint32_t>{2, 4, 9}));
  const auto folded = ingestor.folded_vectors();
  ASSERT_EQ(folded.size(), 3u);
  for (const auto& [id, vec] : folded) {
    ASSERT_EQ(vec.size(), TimeGrid::kSlotsPerWeek);
    for (const double v : vec) EXPECT_EQ(v, 0.0);  // silent tower, z=0
  }
}

TEST(StreamIngestor, WindowCopyOfUnknownTowerThrows) {
  StreamIngestor ingestor;
  EXPECT_THROW(ingestor.window_copy(42), InvalidArgument);
}

TEST(StreamIngestor, FromEnvReadsShardAndQueueKnobs) {
  ::setenv("CELLSCOPE_STREAM_SHARDS", "7", 1);
  ::setenv("CELLSCOPE_STREAM_QUEUE", "123", 1);
  const auto config = StreamConfig::from_env();
  EXPECT_EQ(config.n_shards, 7u);
  EXPECT_EQ(config.queue_capacity, 123u);
  ::unsetenv("CELLSCOPE_STREAM_SHARDS");
  ::unsetenv("CELLSCOPE_STREAM_QUEUE");
  const auto defaults = StreamConfig::from_env();
  EXPECT_EQ(defaults.n_shards, StreamConfig{}.n_shards);
  EXPECT_EQ(defaults.queue_capacity, StreamConfig{}.queue_capacity);
}

TEST(StreamIngestor, ConcurrentProducersConserveBytes) {
  StreamIngestor ingestor(StreamConfig{.n_shards = 4, .queue_capacity = 0});
  ThreadPool pool(2);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&ingestor, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto tower = static_cast<std::uint32_t>((t * 31 + i) % 16);
        const auto minute = static_cast<std::uint64_t>(
            (i * 13) % (TimeGrid::kSlots * TimeGrid::kSlotMinutes));
        TrafficLog log;
        log.user_id = static_cast<std::uint64_t>(t);
        log.tower_id = tower;
        log.start_minute = static_cast<std::uint32_t>(minute);
        log.end_minute = static_cast<std::uint32_t>(minute);
        log.bytes = 3;
        ingestor.offer(log);
      }
    });
  }
  for (auto& thread : producers) thread.join();
  ingestor.drain(pool);

  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.offered, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.accepted, stats.offered);
  std::uint64_t total = 0;
  for (const auto id : ingestor.tower_ids())
    total += ingestor.window_copy(id).total_bytes();
  EXPECT_EQ(total, 3u * kThreads * kPerThread);
}

TEST(StreamIngestor, DrainOnSaturatedBoundedPoolFallsBackInline) {
  // A bounded pool with a tiny queue forces the caller-runs path; the
  // drain must still complete and apply everything.
  StreamIngestor ingestor(StreamConfig{.n_shards = 8, .queue_capacity = 0});
  ThreadPool pool(1, /*max_queue=*/1);
  std::vector<TrafficLog> logs;
  for (std::uint32_t i = 0; i < 2000; ++i)
    logs.push_back(make_log(i % 64, (i * 7) % 40000, 1));
  ingestor.offer_batch(logs);
  ingestor.drain(pool);
  EXPECT_EQ(ingestor.pending(), 0u);
  std::uint64_t total = 0;
  for (const auto id : ingestor.tower_ids())
    total += ingestor.window_copy(id).total_bytes();
  EXPECT_EQ(total, logs.size());
}

}  // namespace
}  // namespace cellscope
