#include "stream/tower_window.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "common/time_grid.h"
#include "pipeline/traffic_matrix.h"

namespace cellscope {
namespace {

TEST(TowerWindow, StartsEmpty) {
  TowerWindow window;
  EXPECT_EQ(window.observed_slots(), 0u);
  EXPECT_EQ(window.total_bytes(), 0u);
  EXPECT_EQ(window.mean(), 0.0);
  EXPECT_EQ(window.variance(), 0.0);
  EXPECT_TRUE(window.observed_history().empty());
  const auto raw = window.raw_vector();
  ASSERT_EQ(raw.size(), TimeGrid::kSlots);
  for (const double v : raw) EXPECT_EQ(v, 0.0);
}

TEST(TowerWindow, BinsBytesByStartMinute) {
  TowerWindow window;
  // Minute 25 -> slot 2; minute 29 -> slot 2; minute 30 -> slot 3.
  EXPECT_EQ(window.add(25, 100), TowerWindow::Apply::kApplied);
  EXPECT_EQ(window.add(29, 50), TowerWindow::Apply::kApplied);
  EXPECT_EQ(window.add(30, 7), TowerWindow::Apply::kApplied);
  const auto raw = window.raw_vector();
  EXPECT_EQ(raw[2], 150.0);
  EXPECT_EQ(raw[3], 7.0);
  EXPECT_EQ(window.observed_slots(), 2u);
  EXPECT_EQ(window.total_bytes(), 157u);
}

TEST(TowerWindow, ZeroByteRecordMarksSlotObserved) {
  TowerWindow window;
  window.add(0, 0);
  EXPECT_EQ(window.observed_slots(), 1u);
  EXPECT_EQ(window.total_bytes(), 0u);
}

TEST(TowerWindow, IncrementalMomentsMatchBatchStatistics) {
  TowerWindow window;
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const auto minute = static_cast<std::uint64_t>(
        rng.uniform_int(0, TimeGrid::kSlots * TimeGrid::kSlotMinutes - 1));
    const auto bytes = static_cast<std::uint64_t>(rng.uniform_int(0, 100000));
    window.add(minute, bytes);
  }
  const auto raw = window.raw_vector();
  EXPECT_EQ(window.mean(), mean(raw));  // integer sum: exactly equal
  EXPECT_NEAR(window.variance(), variance(raw),
              1e-9 * std::max(1.0, variance(raw)));
}

TEST(TowerWindow, ZscoredAndFoldedMatchBatchHelpersExactly) {
  TowerWindow window;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto minute = static_cast<std::uint64_t>(
        rng.uniform_int(0, TimeGrid::kSlots * TimeGrid::kSlotMinutes - 1));
    window.add(minute, static_cast<std::uint64_t>(rng.uniform_int(1, 9999)));
  }
  const auto raw = window.raw_vector();
  EXPECT_EQ(window.zscored(), zscore(raw));
  EXPECT_EQ(window.folded_week(), fold_to_week({zscore(raw)}).front());
}

TEST(TowerWindow, RingAdvanceEvictsOldCycleAndRejectsStale) {
  TowerWindow window;
  constexpr std::uint64_t kGridMinutes =
      TimeGrid::kSlots * TimeGrid::kSlotMinutes;  // 40320
  window.add(15, 100);  // slot 1, cycle 0
  EXPECT_EQ(window.latest_cycle(), 0u);

  // Same ring slot, next cycle: evicts the 100 bytes, keeps the new 30.
  EXPECT_EQ(window.add(kGridMinutes + 15, 30), TowerWindow::Apply::kApplied);
  EXPECT_EQ(window.latest_cycle(), 1u);
  EXPECT_EQ(window.raw_vector()[1], 30.0);
  EXPECT_EQ(window.total_bytes(), 30u);
  EXPECT_EQ(window.observed_slots(), 1u);

  // A record from the evicted cycle is stale for that slot.
  EXPECT_EQ(window.add(15, 5), TowerWindow::Apply::kStale);
  EXPECT_EQ(window.raw_vector()[1], 30.0);

  // Other slots still accept cycle-0 data (the rolling 4-week window
  // spans the previous cycle's tail).
  EXPECT_EQ(window.add(25, 8), TowerWindow::Apply::kApplied);
  EXPECT_EQ(window.raw_vector()[2], 8.0);
}

TEST(TowerWindow, ObservedHistorySpansFirstToLastObservedSlot) {
  TowerWindow window;
  window.add(5 * TimeGrid::kSlotMinutes, 11);   // slot 5
  window.add(9 * TimeGrid::kSlotMinutes, 22);   // slot 9
  const auto history = window.observed_history();
  ASSERT_EQ(history.size(), 5u);  // slots 5..9 inclusive
  EXPECT_EQ(history.front(), 11.0);
  EXPECT_EQ(history.back(), 22.0);
  EXPECT_EQ(history[1], 0.0);  // unobserved interior slot reads 0
}

TEST(TowerWindow, StateRoundTripIsExact) {
  TowerWindow window;
  Rng rng(123);
  for (int i = 0; i < 300; ++i) {
    const auto minute = static_cast<std::uint64_t>(rng.uniform_int(
        0, 2 * TimeGrid::kSlots * TimeGrid::kSlotMinutes - 1));
    window.add(minute, static_cast<std::uint64_t>(rng.uniform_int(0, 5000)));
  }
  const auto restored = TowerWindow::from_state(window.state());
  EXPECT_EQ(restored.raw_vector(), window.raw_vector());
  EXPECT_EQ(restored.observed_slots(), window.observed_slots());
  EXPECT_EQ(restored.total_bytes(), window.total_bytes());
  EXPECT_EQ(restored.latest_cycle(), window.latest_cycle());
  // sumsq is carried verbatim, so the moments are bit-identical.
  EXPECT_EQ(restored.mean(), window.mean());
  EXPECT_EQ(restored.variance(), window.variance());
}

}  // namespace
}  // namespace cellscope
