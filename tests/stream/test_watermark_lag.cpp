// Event-time progress semantics: watermarks must only advance — under
// in-order feeds, bounded reorder, and a deliberately late tail — and the
// lag/latency histograms must count exactly the records the watermark
// definition says they should. These are the live signals /stream and the
// lateness sentinels report, so their semantics are pinned here.
#include "stream/ingestor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mapred/thread_pool.h"
#include "obs/metrics.h"
#include "stream/replay.h"
#include "stream/tower_window.h"

namespace cellscope {
namespace {

TrafficLog make_log(std::uint32_t tower, std::uint32_t start,
                    std::uint32_t duration = 5, std::uint64_t bytes = 100) {
  TrafficLog log;
  log.user_id = tower * 1000 + start;
  log.tower_id = tower;
  log.start_minute = start;
  log.end_minute = start + duration;
  log.bytes = bytes;
  return log;
}

TEST(Watermark, LowWatermarkTrailsWatermarkByLatenessBound) {
  StreamIngestor ingestor(
      StreamConfig{.n_shards = 2, .queue_capacity = 0,
                   .max_lateness_minutes = 120});
  // Before the lateness bound is cleared, the low watermark clamps to 0.
  ingestor.offer(make_log(0, 50, 10));
  EXPECT_EQ(ingestor.stats().watermark_minute, 60u);
  EXPECT_EQ(ingestor.stats().low_watermark_minute, 0u);

  ingestor.offer(make_log(0, 500, 10));
  const auto stats = ingestor.stats();
  EXPECT_EQ(stats.watermark_minute, 510u);
  EXPECT_EQ(stats.low_watermark_minute, 510u - 120u);
}

TEST(Watermark, LateRecordNeverRegressesTheWatermark) {
  StreamIngestor ingestor(StreamConfig{.n_shards = 1, .queue_capacity = 0});
  ingestor.offer(make_log(0, 1000, 10));
  const auto before = ingestor.stats();
  EXPECT_EQ(before.watermark_minute, 1010u);
  EXPECT_EQ(before.late, 0u);

  // A record far behind the frontier: counted late, watermark unmoved.
  ingestor.offer(make_log(0, 10, 5));
  const auto after = ingestor.stats();
  EXPECT_EQ(after.watermark_minute, 1010u);
  EXPECT_EQ(after.low_watermark_minute, before.low_watermark_minute);
  EXPECT_EQ(after.late, 1u);
}

TEST(Watermark, PerShardWatermarksTrackOnlyRoutedRecords) {
  // Two shards; tower 0 routes to shard 0, tower 1 to shard 1.
  StreamIngestor ingestor(StreamConfig{.n_shards = 2, .queue_capacity = 0,
                                       .max_lateness_minutes = 100});
  ingestor.offer(make_log(0, 990, 10));  // shard 0: end 1000
  ingestor.offer(make_log(1, 295, 5));   // shard 1: end 300

  const auto shards = ingestor.shard_stats();
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].shard, 0u);
  EXPECT_EQ(shards[0].watermark_minute, 1000u);
  EXPECT_EQ(shards[0].low_watermark_minute, 900u);
  EXPECT_EQ(shards[1].watermark_minute, 300u);
  EXPECT_EQ(shards[1].low_watermark_minute, 200u);
  // The global watermark is the max over shards; the global low watermark
  // derives from it (the lateness frontier), not from the slowest shard.
  EXPECT_EQ(ingestor.stats().watermark_minute, 1000u);
  EXPECT_EQ(ingestor.stats().low_watermark_minute, 900u);
}

TEST(Watermark, MonotoneUnderOutOfOrderAndLateReplay) {
  // A perturbed replay (bounded reorder + 10% late tail) must never move
  // any watermark backwards between observations.
  constexpr std::uint32_t kTowers = 16;
  std::vector<TrafficLog> logs;
  Rng rng(7);
  for (std::uint32_t i = 0; i < 4000; ++i) {
    logs.push_back(make_log(
        static_cast<std::uint32_t>(rng.uniform_int(0, kTowers - 1)),
        i * 2, static_cast<std::uint32_t>(rng.uniform_int(0, 20))));
  }
  ReplayOptions options;
  options.skew_window = 50;
  options.late_fraction = 0.1;
  const auto perturbed = perturb_arrival_order(logs, options);

  StreamIngestor ingestor(StreamConfig{.n_shards = 4, .queue_capacity = 0});
  ThreadPool pool(2);
  std::uint64_t last_watermark = 0;
  std::uint64_t last_low = 0;
  std::vector<std::uint64_t> last_shard(4, 0);
  constexpr std::size_t kChunk = 256;
  for (std::size_t begin = 0; begin < perturbed.size(); begin += kChunk) {
    const std::size_t end = std::min(perturbed.size(), begin + kChunk);
    ingestor.offer_batch(std::span<const TrafficLog>(
        perturbed.data() + begin, end - begin));
    ingestor.drain(pool);
    const auto stats = ingestor.stats();
    EXPECT_GE(stats.watermark_minute, last_watermark);
    EXPECT_GE(stats.low_watermark_minute, last_low);
    last_watermark = stats.watermark_minute;
    last_low = stats.low_watermark_minute;
    const auto shards = ingestor.shard_stats();
    for (std::size_t s = 0; s < shards.size(); ++s) {
      EXPECT_GE(shards[s].watermark_minute, last_shard[s]);
      last_shard[s] = shards[s].watermark_minute;
    }
  }
  EXPECT_GT(ingestor.stats().late, 0u) << "late tail should trip the bound";
}

TEST(EventLag, HistogramCountsMatchKnownLags) {
  auto& hist = obs::MetricsRegistry::instance().histogram(
      "cellscope.stream.event_lag_minutes", obs::pow2_minute_buckets());
  hist.reset();
  StreamIngestor ingestor(StreamConfig{.n_shards = 1, .queue_capacity = 0});

  // Frontier record: lag measured against the pre-update watermark (0),
  // so it observes lag 0 (bucket le=1).
  ingestor.offer(make_log(0, 2000, 10));  // watermark -> 2010
  // 10 minutes behind the watermark: bucket le=16 (index 4).
  ingestor.offer(make_log(0, 2000, 0));
  // 1000 minutes behind: bucket le=1024 (index 10).
  ingestor.offer(make_log(0, 1010, 0));

  EXPECT_EQ(hist.count(), 3u);
  const auto counts = hist.bucket_counts();
  EXPECT_EQ(counts[obs::pow2_minute_bucket(0)], 1u);
  EXPECT_EQ(counts[obs::pow2_minute_bucket(10)], 1u);
  EXPECT_EQ(counts[obs::pow2_minute_bucket(1000)], 1u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0 + 10.0 + 1000.0);
}

TEST(EventLag, BatchedOfferObservesOnePerRecord) {
  auto& hist = obs::MetricsRegistry::instance().histogram(
      "cellscope.stream.event_lag_minutes", obs::pow2_minute_buckets());
  hist.reset();
  StreamIngestor ingestor(StreamConfig{.n_shards = 3, .queue_capacity = 0});
  std::vector<TrafficLog> logs;
  for (std::uint32_t i = 0; i < 100; ++i) logs.push_back(make_log(i, i * 3));
  ingestor.offer_batch(logs);
  EXPECT_EQ(hist.count(), 100u);  // aggregated locally, flushed once
}

TEST(RecordLatency, ApplyAndEndToEndHistogramsFill) {
  auto& registry = obs::MetricsRegistry::instance();
  auto& apply = registry.histogram("cellscope.stream.record_apply_ms");
  auto& e2e = registry.histogram("cellscope.stream.record_e2e_ms");
  apply.reset();
  e2e.reset();

  StreamIngestor ingestor(StreamConfig{.n_shards = 2, .queue_capacity = 0});
  ThreadPool pool(2);
  std::vector<TrafficLog> logs;
  for (std::uint32_t i = 0; i < 50; ++i) logs.push_back(make_log(i, i));
  ingestor.offer_batch(logs);
  ingestor.drain(pool);

  // Every applied record gets an offer->apply observation.
  EXPECT_EQ(apply.count(), 50u);

  // A classify pass resolves one end-to-end observation per shard that
  // had applied-but-unclassified records, and clears the frontier.
  ingestor.note_classify_pass();
  EXPECT_EQ(e2e.count(), 2u);
  for (const auto& shard : ingestor.shard_stats())
    EXPECT_DOUBLE_EQ(shard.unclassified_age_ms, 0.0);

  // A second pass with nothing new applied observes nothing.
  ingestor.note_classify_pass();
  EXPECT_EQ(e2e.count(), 2u);
}

TEST(StreamStatus, JsonCarriesGlobalsAndPerShardFields) {
  StreamIngestor ingestor(StreamConfig{.n_shards = 2, .queue_capacity = 0,
                                       .max_lateness_minutes = 100});
  ingestor.offer(make_log(0, 400, 10));
  const std::string json = ingestor.status_json();
  EXPECT_NE(json.find("\"watermark_minute\":410"), std::string::npos);
  EXPECT_NE(json.find("\"low_watermark_minute\":310"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":[{\"shard\":0"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":1"), std::string::npos);
  EXPECT_NE(json.find("\"unclassified_age_ms\":"), std::string::npos);
}

TEST(TowerWindowWatermark, LatestMinuteTracksMaxAppliedStart) {
  TowerWindow window;
  EXPECT_EQ(window.latest_minute(), 0u);
  window.add(500, 10);
  window.add(100, 10);  // older record: watermark holds
  EXPECT_EQ(window.latest_minute(), 500u);
  window.add(777, 10);
  EXPECT_EQ(window.latest_minute(), 777u);
}

TEST(TowerWindowWatermark, RestoreReconstructsBinGranularWatermark) {
  TowerWindow window;
  window.add(505, 10);  // slot 50 of cycle 0 (10-minute slots)
  const auto restored = TowerWindow::from_state(window.state());
  // The exact start minute is not checkpointed; the restored watermark
  // rounds down to the newest bin's slot start.
  EXPECT_EQ(restored.latest_minute(), 500u);
}

}  // namespace
}  // namespace cellscope
