// Crash-safety suite (ctest -L fault): proves the snapshot durability
// contract of stream/snapshot.h — a snapshot truncated at any field
// boundary, or with any single flipped bit, is rejected with an IoError
// and leaves the target ingestor bit-identical to its pre-call state;
// failpoint-injected partial writes and rename failures never disturb
// the last complete snapshot on disk.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/failpoint.h"
#include "mapred/thread_pool.h"
#include "obs/metrics.h"
#include "stream/ingestor.h"
#include "stream/snapshot.h"
#include "traffic/trace_io.h"

namespace cellscope {
namespace {

namespace fs = std::filesystem;

/// Deterministic synthetic records: `salt` varies every byte count so
/// two ingestors seeded with different salts hold visibly different
/// state.
std::vector<TrafficLog> make_logs(std::uint32_t towers,
                                  std::uint32_t per_tower,
                                  std::uint64_t salt) {
  std::vector<TrafficLog> logs;
  logs.reserve(static_cast<std::size_t>(towers) * per_tower);
  for (std::uint32_t t = 0; t < towers; ++t) {
    for (std::uint32_t k = 0; k < per_tower; ++k) {
      TrafficLog log;
      log.user_id = salt * 1000 + k;
      log.tower_id = t;
      log.start_minute = t * 97 + k * 10;
      log.end_minute = log.start_minute + 5;
      log.bytes = 100 + t * 17 + k * 29 + salt * 7;
      log.address = "addr";
      logs.push_back(std::move(log));
    }
  }
  return logs;
}

/// Full externally observable ingestor state, for exact before/after
/// comparison.
struct Fingerprint {
  std::vector<std::pair<std::uint32_t, TowerWindow::State>> windows;
  IngestStats stats;
};

Fingerprint fingerprint(const StreamIngestor& ingestor) {
  return {ingestor.export_windows(), ingestor.stats()};
}

void expect_fingerprint_eq(const Fingerprint& got, const Fingerprint& want) {
  ASSERT_EQ(got.windows.size(), want.windows.size());
  for (std::size_t i = 0; i < want.windows.size(); ++i) {
    EXPECT_EQ(got.windows[i].first, want.windows[i].first);
    const auto& gs = got.windows[i].second;
    const auto& ws = want.windows[i].second;
    EXPECT_EQ(gs.sumsq, ws.sumsq);
    ASSERT_EQ(gs.bins.size(), ws.bins.size());
    for (std::size_t b = 0; b < ws.bins.size(); ++b) {
      EXPECT_EQ(gs.bins[b].slot, ws.bins[b].slot);
      EXPECT_EQ(gs.bins[b].cycle, ws.bins[b].cycle);
      EXPECT_EQ(gs.bins[b].bytes, ws.bins[b].bytes);
    }
  }
  EXPECT_EQ(got.stats.offered, want.stats.offered);
  EXPECT_EQ(got.stats.accepted, want.stats.accepted);
  EXPECT_EQ(got.stats.dropped, want.stats.dropped);
  EXPECT_EQ(got.stats.late, want.stats.late);
  EXPECT_EQ(got.stats.stale, want.stats.stale);
  EXPECT_EQ(got.stats.watermark_minute, want.stats.watermark_minute);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class CrashSafetyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto base = fs::temp_directory_path() /
                      ("cs_fault_" + std::to_string(::getpid()));
    path_ = base.string() + ".bin";
    seed_path_ = base.string() + "_seed.bin";
    corrupt_path_ = base.string() + "_corrupt.bin";

    donor_ = std::make_unique<StreamIngestor>(
        StreamConfig{.n_shards = 3, .queue_capacity = 0});
    donor_->offer_batch(make_logs(5, 12, /*salt=*/1));
    donor_->drain(pool_);
    write_snapshot(path_, *donor_);

    // A second, different state: pre-seeds restore targets so "left
    // untouched" is distinguishable from "left empty".
    StreamIngestor seed(StreamConfig{.n_shards = 2, .queue_capacity = 0});
    seed.offer_batch(make_logs(4, 9, /*salt=*/2));
    seed.drain(pool_);
    write_snapshot(seed_path_, seed);
    seed_print_ = fingerprint(seed);
  }

  void TearDown() override {
    fp::disarm_all();
    for (const auto& p : {path_, path_ + ".tmp", seed_path_, corrupt_path_})
      fs::remove(p);
  }

  /// A fresh ingestor holding the seed state (known-good fingerprint in
  /// seed_print_).
  std::unique_ptr<StreamIngestor> seeded_target() {
    auto target = std::make_unique<StreamIngestor>(
        StreamConfig{.n_shards = 2, .queue_capacity = 0});
    read_snapshot(seed_path_, *target);
    return target;
  }

  /// Asserts the corrupted frame `bytes` is rejected with IoError and
  /// leaves a seeded target bit-identical.
  void expect_rejected_atomically(const std::string& bytes) {
    write_file(corrupt_path_, bytes);
    auto target = seeded_target();
    EXPECT_THROW(read_snapshot(corrupt_path_, *target), IoError);
    expect_fingerprint_eq(fingerprint(*target), seed_print_);
  }

  ThreadPool pool_{2};
  std::unique_ptr<StreamIngestor> donor_;
  Fingerprint seed_print_;
  std::string path_;
  std::string seed_path_;
  std::string corrupt_path_;
};

TEST_F(CrashSafetyTest, RoundTripRestoresBitIdenticalState) {
  auto target = seeded_target();
  read_snapshot(path_, *target);
  // The snapshot replaces every window it carries and the stats
  // wholesale; donor towers are a superset of seed towers here, so the
  // restored state equals the donor's exactly.
  expect_fingerprint_eq(fingerprint(*target), fingerprint(*donor_));

  // The trailer really is the payload CRC write_snapshot reported.
  const auto frame = read_file(path_);
  const auto info = write_snapshot(path_, *donor_);
  std::uint32_t trailer = 0;
  std::memcpy(&trailer, frame.data() + frame.size() - 4, sizeof(trailer));
  EXPECT_EQ(trailer, info.crc32);
  EXPECT_EQ(info.bytes, fs::file_size(path_));
}

TEST_F(CrashSafetyTest, TruncationAtEveryFieldBoundaryIsAtomic) {
  const auto frame = read_file(path_);

  // Enumerate every field boundary of the frame from the known layout:
  // header fields, the seven stats words, then each window's header and
  // bins (ascending tower id — the order export_windows feeds the
  // writer).
  std::vector<std::size_t> boundaries = {0, 4, 8, 16};
  std::size_t pos = 16;
  for (int i = 0; i < 7; ++i) boundaries.push_back(pos += 8);
  for (const auto& [id, state] : donor_->export_windows()) {
    (void)id;
    boundaries.push_back(pos += 4);   // tower id
    boundaries.push_back(pos += 8);   // bin count
    boundaries.push_back(pos += 8);   // sumsq
    for (std::size_t b = 0; b < state.bins.size(); ++b) {
      boundaries.push_back(pos += 4);  // slot
      boundaries.push_back(pos += 4);  // cycle
      boundaries.push_back(pos += 8);  // bytes
    }
  }
  ASSERT_EQ(pos + 4, frame.size());  // layout walk must land on the CRC
  boundaries.push_back(frame.size() - 2);  // mid-trailer for good measure

  std::size_t injected = 0;
  for (const auto cut : boundaries) {
    ASSERT_LT(cut, frame.size());
    expect_rejected_atomically(frame.substr(0, cut));
    ++injected;
  }
  EXPECT_GE(injected, 50u);
}

TEST_F(CrashSafetyTest, SingleBitFlipsAnywhereAreRejected) {
  const auto frame = read_file(path_);
  ASSERT_GT(frame.size(), 80u);

  std::vector<std::size_t> positions;
  for (std::size_t p = 0; p < 20; ++p) positions.push_back(p);  // header
  const std::size_t stride = std::max<std::size_t>(1, frame.size() / 48);
  for (std::size_t p = 20; p < frame.size(); p += stride)
    positions.push_back(p);  // payload sample
  for (std::size_t p = frame.size() - 4; p < frame.size(); ++p)
    positions.push_back(p);  // CRC trailer

  std::size_t injected = 0;
  for (const auto p : positions) {
    std::string corrupt = frame;
    corrupt[p] = static_cast<char>(corrupt[p] ^ (1 << (p % 8)));
    expect_rejected_atomically(corrupt);
    ++injected;
  }
  EXPECT_GE(injected, 50u);
}

TEST_F(CrashSafetyTest, FailedRestoreLeavesStatsAndWindowsUntouched) {
  // Regression for the pre-transactional bug: import_window /
  // restore_stats used to apply incrementally, so an IoError mid-file
  // half-restored the target. Seed a target through the real offer/drain
  // path, then feed it a frame cut inside the third window.
  StreamIngestor target(StreamConfig{.n_shards = 3, .queue_capacity = 0});
  target.offer_batch(make_logs(6, 7, /*salt=*/9));
  target.drain(pool_);
  const auto before = fingerprint(target);

  const auto frame = read_file(path_);
  write_file(corrupt_path_, frame.substr(0, frame.size() * 2 / 3));
  EXPECT_THROW(read_snapshot(corrupt_path_, target), IoError);

  expect_fingerprint_eq(fingerprint(target), before);
  const auto stats = target.stats();
  EXPECT_EQ(stats.offered, before.stats.offered);
  EXPECT_EQ(stats.accepted, before.stats.accepted);
}

TEST_F(CrashSafetyTest, UnsupportedVersionIsTypedIoErrorNamingBoth) {
  auto frame = read_file(path_);
  const std::uint32_t newer = kSnapshotVersion + 1;
  std::memcpy(frame.data() + 4, &newer, sizeof(newer));
  write_file(corrupt_path_, frame);

  const auto& failures = obs::MetricsRegistry::instance().counter(
      "cellscope.stream.snapshot_restore_failures");
  const auto failures_before = failures.value();

  auto target = seeded_target();
  try {
    read_snapshot(corrupt_path_, *target);
    FAIL() << "version " << newer << " should have been rejected";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(newer)), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(kSnapshotVersion)), std::string::npos)
        << what;
  }
  expect_fingerprint_eq(fingerprint(*target), seed_print_);
  EXPECT_EQ(failures.value(), failures_before + 1);

  // Older (pre-framing) version number: same typed rejection.
  const std::uint32_t older = 1;
  std::memcpy(frame.data() + 4, &older, sizeof(older));
  expect_rejected_atomically(frame);
}

TEST_F(CrashSafetyTest, PartialWriteFailpointPreservesLastSnapshot) {
  const auto good = read_file(path_);
  const auto& failures = obs::MetricsRegistry::instance().counter(
      "cellscope.stream.snapshot_write_failures");
  const auto failures_before = failures.value();

  StreamIngestor other(StreamConfig{.n_shards = 1, .queue_capacity = 0});
  other.offer_batch(make_logs(3, 5, /*salt=*/4));
  other.drain(pool_);

  fp::arm("snapshot.write.partial", 1);
  EXPECT_THROW(write_snapshot(path_, other), IoError);
  EXPECT_EQ(fp::fire_count("snapshot.write.partial"), 1u);
  EXPECT_EQ(failures.value(), failures_before + 1);

  // The torn attempt only ever touched <path>.tmp; the last complete
  // snapshot is byte-identical and still restores.
  EXPECT_EQ(read_file(path_), good);
  auto target = seeded_target();
  EXPECT_NO_THROW(read_snapshot(path_, *target));
  expect_fingerprint_eq(fingerprint(*target), fingerprint(*donor_));

  // Charge consumed: the retry goes through.
  EXPECT_NO_THROW(write_snapshot(path_, other));
}

TEST_F(CrashSafetyTest, RenameFailpointPreservesLastSnapshotViaSpec) {
  const auto good = read_file(path_);
  StreamIngestor other(StreamConfig{.n_shards = 1, .queue_capacity = 0});
  other.offer_batch(make_logs(2, 4, /*salt=*/6));
  other.drain(pool_);

  // Armed through the CELLSCOPE_FAILPOINTS grammar.
  fp::arm_from_spec("snapshot.rename.fail=1");
  EXPECT_THROW(write_snapshot(path_, other), IoError);
  EXPECT_EQ(read_file(path_), good);

  // The fully written, fsynced .tmp is sitting next to it — rename was
  // the only step that "failed" — and the retry succeeds. Restore into a
  // fresh ingestor so the comparison is exactly `other`'s state.
  EXPECT_NO_THROW(write_snapshot(path_, other));
  StreamIngestor target(StreamConfig{.n_shards = 2, .queue_capacity = 0});
  read_snapshot(path_, target);
  expect_fingerprint_eq(fingerprint(target), fingerprint(other));
}

TEST_F(CrashSafetyTest, SubmitRejectFailpointFallsBackToInlineDrain) {
  const auto logs = make_logs(5, 10, /*salt=*/3);

  StreamIngestor reference(StreamConfig{.n_shards = 4, .queue_capacity = 0});
  reference.offer_batch(logs);
  reference.drain(pool_);

  fp::arm("mapred.submit.reject", -1);  // every admission rejected
  StreamIngestor inline_drained(
      StreamConfig{.n_shards = 4, .queue_capacity = 0});
  inline_drained.offer_batch(logs);
  inline_drained.drain(pool_);  // caller-runs path for every shard
  fp::disarm("mapred.submit.reject");
  EXPECT_GT(fp::fire_count("mapred.submit.reject"), 0u);

  expect_fingerprint_eq(fingerprint(inline_drained), fingerprint(reference));
}

TEST_F(CrashSafetyTest, TraceIoFailpointsInjectTypedIoErrors) {
  fp::arm("trace.write.fail", 1);
  EXPECT_THROW(write_trace_csv(corrupt_path_, make_logs(1, 2, 5)), IoError);

  write_trace_csv(corrupt_path_, make_logs(1, 2, 5));  // charge consumed
  fp::arm("trace.read.fail", 1);
  EXPECT_THROW(read_trace_csv(corrupt_path_), IoError);
  EXPECT_EQ(read_trace_csv(corrupt_path_).size(), 2u);
}

}  // namespace
}  // namespace cellscope
