#include "stream/online_classifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "common/stats.h"
#include "common/time_grid.h"
#include "core/experiment.h"
#include "mapred/thread_pool.h"
#include "stream/ingestor.h"
#include "stream/tower_window.h"

namespace cellscope {
namespace {

constexpr std::size_t kWeek = TimeGrid::kSlotsPerWeek;
constexpr std::size_t kDay = TimeGrid::kSlotsPerDay;

/// Daytime-peaked daily byte profile (office-like shape).
std::uint64_t office_bytes(std::size_t slot) {
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>(slot % kDay) / kDay;
  return static_cast<std::uint64_t>(2000.0 + 1500.0 * std::sin(phase));
}

/// Inverted profile (night-peaked, resident-like shape).
std::uint64_t resident_bytes(std::size_t slot) {
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>(slot % kDay) / kDay;
  return static_cast<std::uint64_t>(2000.0 - 1500.0 * std::sin(phase));
}

/// Two well-separated synthetic centroids: z-scored weekly folds of the
/// profiles above, built through a TowerWindow so the representation
/// matches what classify() computes.
ModelSnapshot synthetic_model() {
  ModelSnapshot model;
  for (const auto profile : {office_bytes, resident_bytes}) {
    TowerWindow window;
    for (std::size_t slot = 0; slot < TimeGrid::kSlots; ++slot)
      window.add(slot * TimeGrid::kSlotMinutes, profile(slot));
    model.centroids.push_back(window.folded_week());
  }
  model.regions = {FunctionalRegion::kOffice, FunctionalRegion::kResident};
  model.populations = {3, 10};  // resident is the prior
  model.has_primaries = false;
  return model;
}

TowerWindow window_with(std::uint64_t (*profile)(std::size_t),
                        std::size_t n_slots) {
  TowerWindow window;
  for (std::size_t slot = 0; slot < n_slots; ++slot)
    window.add(slot * TimeGrid::kSlotMinutes, profile(slot));
  return window;
}

TEST(OnlineClassifier, NearestCentroidOnWarmWindow) {
  const OnlineClassifier classifier(synthetic_model());
  EXPECT_EQ(classifier.prior_cluster(), 1u);

  const auto office = classifier.classify(
      window_with(office_bytes, TimeGrid::kSlots));
  EXPECT_EQ(office.cluster, 0u);
  EXPECT_EQ(office.region, FunctionalRegion::kOffice);
  EXPECT_FALSE(office.cold_start);
  EXPECT_GT(office.confidence, 0.0);
  EXPECT_LE(office.confidence, 1.0);
  EXPECT_LT(office.distance, 1e-6);  // exact profile: zero distance

  const auto resident = classifier.classify(
      window_with(resident_bytes, TimeGrid::kSlots));
  EXPECT_EQ(resident.cluster, 1u);
  EXPECT_EQ(resident.region, FunctionalRegion::kResident);
}

TEST(OnlineClassifier, PartialWeekStillClassifiesCorrectly) {
  const OnlineClassifier classifier(synthetic_model());
  // Two days of data — past cold start, well short of a full fold.
  const auto result = classifier.classify(window_with(office_bytes, 2 * kDay));
  EXPECT_FALSE(result.cold_start);
  EXPECT_EQ(result.cluster, 0u);
  EXPECT_TRUE(std::isfinite(result.confidence));
  EXPECT_TRUE(std::isfinite(result.distance));
}

TEST(OnlineClassifier, UnderHalfDayFallsBackToPrior) {
  const OnlineClassifier classifier(synthetic_model());
  // 40 observed slots < kMinMatchSlots: shape matching is off the table.
  const auto result = classifier.classify(window_with(office_bytes, 40));
  EXPECT_TRUE(result.cold_start);
  EXPECT_EQ(result.cluster, classifier.prior_cluster());
  EXPECT_EQ(result.confidence, 0.0);
  EXPECT_TRUE(std::isfinite(result.distance));
}

TEST(OnlineClassifier, BetweenHalfDayAndOneDayMatchesByShape) {
  const OnlineClassifier classifier(synthetic_model());
  // 100 slots: cold start (< kColdStartSlots) but enough history for
  // PatternForecaster::match — the shared batch cold-start path.
  const auto result = classifier.classify(window_with(office_bytes, 100));
  EXPECT_TRUE(result.cold_start);
  EXPECT_EQ(result.cluster, 0u);
  EXPECT_EQ(result.confidence, 0.0);
}

TEST(OnlineClassifier, EmptyAndConstantWindowsNeverProduceNaN) {
  const OnlineClassifier classifier(synthetic_model());

  const auto empty = classifier.classify(TowerWindow{});
  EXPECT_TRUE(empty.cold_start);
  EXPECT_EQ(empty.cluster, classifier.prior_cluster());
  EXPECT_TRUE(std::isfinite(empty.confidence));
  EXPECT_TRUE(std::isfinite(empty.distance));

  // Constant traffic z-scores to the zero vector; everything stays finite.
  TowerWindow constant;
  for (std::size_t slot = 0; slot < TimeGrid::kSlots; ++slot)
    constant.add(slot * TimeGrid::kSlotMinutes, 500);
  const auto result = classifier.classify(constant);
  EXPECT_FALSE(result.cold_start);
  EXPECT_TRUE(std::isfinite(result.confidence));
  EXPECT_TRUE(std::isfinite(result.distance));
  EXPECT_LT(result.cluster, 2u);
}

TEST(OnlineClassifier, ClassifyAllCoversEveryRegisteredTower) {
  const OnlineClassifier classifier(synthetic_model());
  StreamIngestor ingestor(StreamConfig{.n_shards = 3, .queue_capacity = 0});
  std::vector<Tower> towers(5);
  for (std::uint32_t i = 0; i < towers.size(); ++i) towers[i].id = i * 3;
  ingestor.register_towers(towers);

  // Warm up tower 0 with an office profile; leave the rest silent.
  ThreadPool pool(2);
  for (std::size_t slot = 0; slot < TimeGrid::kSlots; ++slot) {
    TrafficLog log;
    log.tower_id = 0;
    log.start_minute =
        static_cast<std::uint32_t>(slot * TimeGrid::kSlotMinutes);
    log.end_minute = log.start_minute;
    log.bytes = office_bytes(slot);
    ingestor.offer(log);
  }
  ingestor.drain(pool);

  const auto labels = classifier.classify_all(ingestor, &pool);
  ASSERT_EQ(labels.size(), towers.size());
  EXPECT_EQ(labels.front().first, 0u);
  EXPECT_EQ(labels.front().second.cluster, 0u);
  EXPECT_FALSE(labels.front().second.cold_start);
  for (std::size_t i = 1; i < labels.size(); ++i) {
    EXPECT_TRUE(labels[i].second.cold_start);
    EXPECT_EQ(labels[i].second.cluster, classifier.prior_cluster());
  }
  // Serial and pooled passes agree.
  const auto serial = classifier.classify_all(ingestor, nullptr);
  ASSERT_EQ(serial.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(serial[i].first, labels[i].first);
    EXPECT_EQ(serial[i].second.cluster, labels[i].second.cluster);
    EXPECT_EQ(serial[i].second.confidence, labels[i].second.confidence);
  }
}

TEST(OnlineClassifier, SnapshotOfTrainedExperimentIsSelfConsistent) {
  ExperimentConfig config;
  config.n_towers = 300;
  const auto experiment = Experiment::run(config);
  const auto model = snapshot_model(experiment);

  ASSERT_EQ(model.centroids.size(), experiment.n_clusters());
  ASSERT_EQ(model.regions.size(), model.centroids.size());
  ASSERT_EQ(model.populations.size(), model.centroids.size());
  std::size_t population = 0;
  for (std::size_t c = 0; c < model.centroids.size(); ++c) {
    EXPECT_EQ(model.centroids[c].size(), kWeek);
    EXPECT_EQ(model.regions[c], experiment.labeling().region_of_cluster[c]);
    population += model.populations[c];
  }
  EXPECT_EQ(population, experiment.towers().size());

  // The classifier built from it assigns training-like profiles sanely:
  // replay each training tower's raw row through a window and check the
  // bulk of them land on their training cluster.
  const OnlineClassifier classifier(model);
  const auto& matrix = experiment.matrix();
  std::size_t agree = 0;
  for (std::size_t r = 0; r < matrix.n(); ++r) {
    TowerWindow window;
    for (std::size_t s = 0; s < TimeGrid::kSlots; ++s)
      window.add(s * TimeGrid::kSlotMinutes,
                 static_cast<std::uint64_t>(
                     std::llround(std::max(0.0, matrix.rows[r][s]))));
    const auto result = classifier.classify(window);
    EXPECT_FALSE(result.cold_start);
    if (result.cluster == static_cast<std::size_t>(experiment.labels()[r]))
      ++agree;
  }
  EXPECT_GT(agree, matrix.n() * 7 / 10);
}

TEST(OnlineClassifier, NearestCentroidMatchesExplicitScanOnSmallModels) {
  // Small models (like the paper's five patterns) stay on the index's
  // brute-force path — nearest_centroid must be the old classify loop
  // exactly: same argmin, same strict-< first-index tie-break, same
  // distance value bit for bit.
  const auto model = synthetic_model();
  const OnlineClassifier classifier(model);
  for (const auto profile : {office_bytes, resident_bytes}) {
    const auto folded = window_with(profile, TimeGrid::kSlots).folded_week();
    double want_best = squared_distance(folded, model.centroids[0]);
    std::size_t want = 0;
    for (std::size_t c = 1; c < model.centroids.size(); ++c) {
      const double d = squared_distance(folded, model.centroids[c]);
      if (d < want_best) {
        want_best = d;
        want = c;
      }
    }
    double got_best = 0.0;
    EXPECT_EQ(classifier.nearest_centroid(folded, &got_best), want);
    EXPECT_EQ(got_best, want_best);
  }
}

TEST(OnlineClassifier, AnnIndexAgreesWithExactScanOnLargeModels) {
  // A model wide enough to cross brute_force_below builds the ANN graph;
  // on separated centroids its answers still match the exact scan, and
  // classify() keeps reporting exact distances.
  Rng rng(99);
  ModelSnapshot model;
  const std::size_t k = 150;
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> centroid(kWeek);
    for (auto& v : centroid) v = static_cast<double>(c) * 6.0 + rng.normal();
    model.centroids.push_back(std::move(centroid));
    model.regions.push_back(
        static_cast<FunctionalRegion>(c % 5));
    model.populations.push_back(1 + c % 7);
  }
  const OnlineClassifier classifier(model);
  for (std::size_t trial = 0; trial < 100; ++trial) {
    std::vector<double> query(kWeek);
    const double center = static_cast<double>(trial % k) * 6.0;
    for (auto& v : query) v = center + 0.5 * rng.normal();
    double want_best = squared_distance(query, model.centroids[0]);
    std::size_t want = 0;
    for (std::size_t c = 1; c < k; ++c) {
      const double d = squared_distance(query, model.centroids[c]);
      if (d < want_best) {
        want_best = d;
        want = c;
      }
    }
    double got_best = 0.0;
    EXPECT_EQ(classifier.nearest_centroid(query, &got_best), want)
        << "trial " << trial;
    EXPECT_EQ(got_best, want_best) << "trial " << trial;
  }
}

}  // namespace
}  // namespace cellscope
