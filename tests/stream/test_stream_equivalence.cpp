// The stream-vs-batch equivalence contract (DESIGN.md §9): for the same
// record set, any shard count and any arrival-order perturbation must
// yield per-tower grids and folded-week vectors BIT-IDENTICAL to the
// batch vectorize -> zscore -> fold chain. Bin updates are exact integer
// sums and the stream folds through the very same batch helpers, so the
// assertions below are EXPECT_EQ on doubles — no tolerance.
#include <gtest/gtest.h>

#include <vector>

#include "city/deployment.h"
#include "common/time_grid.h"
#include "mapred/thread_pool.h"
#include "pipeline/vectorizer.h"
#include "stream/ingestor.h"
#include "stream/replay.h"
#include "traffic/trace_generator.h"

namespace cellscope {
namespace {

class StreamEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto city = CityModel::create_default();
    DeploymentOptions deployment;
    deployment.n_towers = 8;
    towers_ = deploy_towers(city, deployment);
    const auto intensity = IntensityModel::create(towers_, IntensityOptions{});

    // Full 28-day trace, sessions coarsened 10x so all four weeks stay
    // affordable. No injected defects: the contract is about aggregation
    // order, and the cleaner runs upstream of both paths in production.
    TraceOptions options;
    options.mean_session_bytes = 2.0e6;
    options.duplicate_prob = 0.0;
    options.conflict_prob = 0.0;
    logs_ = generate_trace(towers_, intensity, options).logs;
    ASSERT_GT(logs_.size(), 10000u);
  }

  std::vector<Tower> towers_;
  std::vector<TrafficLog> logs_;
};

TEST_F(StreamEquivalenceTest, AnyShardingAndArrivalOrderMatchesBatchExactly) {
  ThreadPool pool(2);

  // Batch reference: the §3.2 chain.
  const auto matrix = vectorize_logs(logs_, towers_, pool);
  const auto folded = fold_to_week(zscore_rows(matrix, &pool), &pool);

  struct Case {
    std::size_t shards;
    std::uint64_t seed;
    std::size_t skew;
    double late;
  };
  const Case cases[] = {
      {1, 11, 0, 0.0},      // single shard, in order
      {3, 22, 1024, 0.02},  // skewed + late tail
      {8, 33, 4096, 0.10},  // heavy reorder, more shards than cores
  };

  for (const auto& test_case : cases) {
    SCOPED_TRACE("shards=" + std::to_string(test_case.shards));
    StreamIngestor ingestor(StreamConfig{.n_shards = test_case.shards,
                                         .queue_capacity = 0});
    ingestor.register_towers(towers_);

    ReplayOptions options;
    options.seed = test_case.seed;
    options.skew_window = test_case.skew;
    options.late_fraction = test_case.late;
    const auto arrival = perturb_arrival_order(logs_, options);
    const auto stats = replay_trace(arrival, ingestor, pool, options);
    EXPECT_EQ(stats.ingest.accepted, logs_.size());
    EXPECT_EQ(stats.ingest.dropped, 0u);

    // Raw grids: exact integer sums, identical to the batch rows.
    for (const auto id : ingestor.tower_ids()) {
      const auto window = ingestor.window_copy(id);
      EXPECT_EQ(window.raw_vector(), matrix.rows[matrix.row_of(id)]);
    }

    // Folded z-scored weeks: bit-identical to the batch fold.
    const auto stream_folded = ingestor.folded_vectors(&pool);
    ASSERT_EQ(stream_folded.size(), matrix.n());
    for (const auto& [id, vec] : stream_folded) {
      ASSERT_EQ(vec.size(), TimeGrid::kSlotsPerWeek);
      EXPECT_EQ(vec, folded[matrix.row_of(id)]);
    }
  }
}

TEST_F(StreamEquivalenceTest, PerturbationIsDeterministicInTheSeed) {
  ReplayOptions options;
  options.seed = 5;
  options.skew_window = 100;
  options.late_fraction = 0.05;
  const auto a = perturb_arrival_order(logs_, options);
  const auto b = perturb_arrival_order(logs_, options);
  EXPECT_EQ(a, b);

  options.seed = 6;
  const auto c = perturb_arrival_order(logs_, options);
  EXPECT_NE(a, c);  // different seed, different order…
  EXPECT_EQ(a.size(), c.size());  // …same multiset of records
}

}  // namespace
}  // namespace cellscope
