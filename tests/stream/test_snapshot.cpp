#include "stream/snapshot.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "city/deployment.h"
#include "common/error.h"
#include "mapred/thread_pool.h"
#include "stream/ingestor.h"
#include "stream/replay.h"
#include "traffic/trace_generator.h"

namespace cellscope {
namespace {

class StreamSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto city = CityModel::create_default();
    DeploymentOptions deployment;
    deployment.n_towers = 8;
    towers_ = deploy_towers(city, deployment);
    const auto intensity = IntensityModel::create(towers_, IntensityOptions{});
    TraceOptions options;
    options.day_begin = 0;
    options.day_end = 2;
    options.duplicate_prob = 0.0;
    options.conflict_prob = 0.0;
    logs_ = generate_trace(towers_, intensity, options).logs;
    path_ = (std::filesystem::temp_directory_path() /
             ("cs_snapshot_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::vector<Tower> towers_;
  std::vector<TrafficLog> logs_;
  std::string path_;
};

TEST_F(StreamSnapshotTest, ResumeFromCheckpointIsBitIdentical) {
  ThreadPool pool(2);
  const std::size_t half = logs_.size() / 2;
  const std::span<const TrafficLog> first(logs_.data(), half);
  const std::span<const TrafficLog> second(logs_.data() + half,
                                           logs_.size() - half);

  // Uninterrupted reference run.
  StreamIngestor reference(StreamConfig{.n_shards = 3, .queue_capacity = 0});
  reference.register_towers(towers_);
  reference.offer_batch(first);
  reference.offer_batch(second);
  reference.drain(pool);

  // Checkpointed run: first half, snapshot, restore into an ingestor
  // with a DIFFERENT shard count, then the second half.
  StreamIngestor before(StreamConfig{.n_shards = 3, .queue_capacity = 0});
  before.register_towers(towers_);
  before.offer_batch(first);
  before.drain(pool);
  const auto info = write_snapshot(path_, before);
  EXPECT_EQ(info.towers, towers_.size());
  EXPECT_GT(info.bins, 0u);
  EXPECT_EQ(info.bytes, std::filesystem::file_size(path_));

  StreamIngestor after(StreamConfig{.n_shards = 5, .queue_capacity = 0});
  read_snapshot(path_, after);
  after.offer_batch(second);
  after.drain(pool);

  ASSERT_EQ(after.tower_ids(), reference.tower_ids());
  for (const auto id : reference.tower_ids()) {
    const auto want = reference.window_copy(id);
    const auto got = after.window_copy(id);
    EXPECT_EQ(got.raw_vector(), want.raw_vector());
    EXPECT_EQ(got.mean(), want.mean());
    EXPECT_EQ(got.variance(), want.variance());
    EXPECT_EQ(got.folded_week(), want.folded_week());
  }
  const auto want_stats = reference.stats();
  const auto got_stats = after.stats();
  EXPECT_EQ(got_stats.offered, want_stats.offered);
  EXPECT_EQ(got_stats.accepted, want_stats.accepted);
  EXPECT_EQ(got_stats.watermark_minute, want_stats.watermark_minute);
}

TEST_F(StreamSnapshotTest, RefusesToSnapshotWithPendingRecords) {
  StreamIngestor ingestor(StreamConfig{.n_shards = 2, .queue_capacity = 0});
  ingestor.offer(logs_.front());
  EXPECT_THROW(write_snapshot(path_, ingestor), Error);
  // After draining it succeeds.
  ThreadPool pool(1);
  ingestor.drain(pool);
  EXPECT_NO_THROW(write_snapshot(path_, ingestor));
}

TEST_F(StreamSnapshotTest, RejectsBadMagicAndTruncation) {
  ThreadPool pool(1);
  StreamIngestor ingestor(StreamConfig{.n_shards = 2, .queue_capacity = 0});
  ingestor.offer_batch(logs_);
  ingestor.drain(pool);
  write_snapshot(path_, ingestor);

  // Flip the magic.
  {
    std::fstream file(path_, std::ios::in | std::ios::out | std::ios::binary);
    file.put('X');
  }
  StreamIngestor restore_a(StreamConfig{});
  EXPECT_THROW(read_snapshot(path_, restore_a), Error);

  // Rewrite, then truncate the tail.
  write_snapshot(path_, ingestor);
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full / 2);
  StreamIngestor restore_b(StreamConfig{});
  EXPECT_THROW(read_snapshot(path_, restore_b), IoError);

  StreamIngestor restore_c(StreamConfig{});
  EXPECT_THROW(read_snapshot("/nonexistent/cs.bin", restore_c), IoError);
}

TEST_F(StreamSnapshotTest, ReplayHarnessResumeMatchesUninterruptedReplay) {
  ThreadPool pool(2);
  ReplayOptions options;
  options.seed = 4242;
  options.skew_window = 257;
  options.late_fraction = 0.03;
  options.batch_size = 4096;
  const auto arrival = perturb_arrival_order(logs_, options);

  StreamIngestor straight(StreamConfig{.n_shards = 4, .queue_capacity = 0});
  straight.register_towers(towers_);
  replay_trace(arrival, straight, pool, options);

  const std::size_t half = arrival.size() / 2;
  StreamIngestor part_one(StreamConfig{.n_shards = 4, .queue_capacity = 0});
  part_one.register_towers(towers_);
  replay_trace({arrival.begin(), arrival.begin() + half}, part_one, pool,
               options);
  write_snapshot(path_, part_one);

  StreamIngestor part_two(StreamConfig{.n_shards = 2, .queue_capacity = 0});
  read_snapshot(path_, part_two);
  replay_trace({arrival.begin() + half, arrival.end()}, part_two, pool,
               options);

  const auto want = straight.folded_vectors(&pool);
  const auto got = part_two.folded_vectors(&pool);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first);
    EXPECT_EQ(got[i].second, want[i].second);
  }
}

}  // namespace
}  // namespace cellscope
