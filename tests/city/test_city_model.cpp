#include "city/city_model.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cellscope {
namespace {

TEST(CityModel, DefaultModelIsDeterministic) {
  const auto a = CityModel::create_default(7);
  const auto b = CityModel::create_default(7);
  for (const auto r : all_regions()) {
    ASSERT_EQ(a.hotspots(r).size(), b.hotspots(r).size());
    for (std::size_t i = 0; i < a.hotspots(r).size(); ++i) {
      EXPECT_DOUBLE_EQ(a.hotspots(r)[i].center.lat,
                       b.hotspots(r)[i].center.lat);
      EXPECT_DOUBLE_EQ(a.hotspots(r)[i].weight, b.hotspots(r)[i].weight);
    }
  }
}

TEST(CityModel, IntensityPeaksAtHotspotCenters) {
  const auto city = CityModel::create_default();
  for (const auto r :
       {FunctionalRegion::kOffice, FunctionalRegion::kResident}) {
    const auto& spot = city.hotspots(r).front();
    const double at_center = city.intensity(r, spot.center);
    LatLon far = spot.center;
    far.lat += 0.2;
    EXPECT_GT(at_center, city.intensity(r, far));
  }
}

TEST(CityModel, IntensityIsNonNegativeEverywhere) {
  const auto city = CityModel::create_default();
  Rng rng(3);
  const auto box = city.box();
  for (int i = 0; i < 200; ++i) {
    const LatLon p{rng.uniform(box.lat_min, box.lat_max),
                   rng.uniform(box.lon_min, box.lon_max)};
    for (const auto r : all_regions()) EXPECT_GE(city.intensity(r, p), 0.0);
  }
}

TEST(CityModel, SampledLocationsStayInTheBox) {
  const auto city = CityModel::create_default();
  Rng rng(5);
  for (const auto r : all_regions()) {
    for (int i = 0; i < 100; ++i)
      EXPECT_TRUE(city.box().contains(city.sample_location(r, rng)));
  }
}

TEST(CityModel, SampledLocationsConcentrateNearHotspots) {
  const auto city = CityModel::create_default();
  Rng rng(11);
  // Office towers should be much closer to office hotspots than random
  // points are.
  double total_km = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const auto p = city.sample_location(FunctionalRegion::kOffice, rng);
    double best = 1e18;
    for (const auto& h : city.hotspots(FunctionalRegion::kOffice))
      best = std::min(best, haversine_km(h.center, p));
    total_km += best;
  }
  EXPECT_LT(total_km / n, 5.0);  // hotspot sigma is ~2 km
}

TEST(CityModel, RegionAtHotspotCenterIsItsFunction) {
  const auto city = CityModel::create_default();
  const auto& office = city.hotspots(FunctionalRegion::kOffice).front();
  EXPECT_EQ(city.region_at(office.center), FunctionalRegion::kOffice);
}

TEST(CityModel, RegionAtBalancedMidpointIsComprehensive) {
  // Construct a city with two equal-strength hotspots of different
  // functions; their midpoint has no dominant function.
  const auto box = shanghai_bbox();
  const LatLon c = box.center();
  std::vector<std::vector<Hotspot>> spots(kNumRegions);
  spots[static_cast<int>(FunctionalRegion::kResident)] = {
      {{c.lat, c.lon - 0.05}, 3.0, 1.0}};
  spots[static_cast<int>(FunctionalRegion::kOffice)] = {
      {{c.lat, c.lon + 0.05}, 3.0, 1.0}};
  spots[static_cast<int>(FunctionalRegion::kTransport)] = {
      {{box.lat_min, box.lon_min}, 0.1, 1e-6}};
  spots[static_cast<int>(FunctionalRegion::kEntertainment)] = {
      {{box.lat_min, box.lon_max}, 0.1, 1e-6}};
  spots[static_cast<int>(FunctionalRegion::kComprehensive)] = {{c, 10.0, 1.0}};
  const CityModel city(box, spots);
  EXPECT_EQ(city.region_at(c), FunctionalRegion::kComprehensive);
  // Near the resident hotspot the resident function dominates.
  EXPECT_EQ(city.region_at({c.lat, c.lon - 0.05}),
            FunctionalRegion::kResident);
}

TEST(CityModel, ConstructionValidatesShape) {
  EXPECT_THROW(CityModel(shanghai_bbox(), {}), Error);
  std::vector<std::vector<Hotspot>> empty_sets(kNumRegions);
  EXPECT_THROW(CityModel(shanghai_bbox(), empty_sets), Error);
}

TEST(CityModel, RegionAtRejectsBadDominance) {
  const auto city = CityModel::create_default();
  EXPECT_THROW(city.region_at({31.2, 121.5}, 0.5), Error);
}

}  // namespace
}  // namespace cellscope
