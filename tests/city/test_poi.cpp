#include "city/poi.h"

#include <gtest/gtest.h>

#include "city/deployment.h"
#include "common/error.h"

namespace cellscope {
namespace {

std::vector<Tower> towers_of_region(FunctionalRegion region, std::size_t n) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = n;
  options.region_mix = {};
  options.region_mix[static_cast<int>(region)] = 1.0;
  return deploy_towers(city, options);
}

TEST(PoiDatabase, CountsNearFindsGeneratedPois) {
  const auto city = CityModel::create_default();
  const auto towers = towers_of_region(FunctionalRegion::kResident, 30);
  const auto db =
      PoiDatabase::generate(city, towers, PoiGenerationOptions{});
  // Resident towers must see many resident POIs within 200 m.
  double total = 0.0;
  for (const auto& t : towers) {
    const auto counts = db.counts_near(t.position, 200.0);
    total += static_cast<double>(counts[static_cast<int>(PoiType::kResident)]);
  }
  EXPECT_GT(total / static_cast<double>(towers.size()), 20.0);
}

TEST(PoiDatabase, DominantTypeMatchesRegion) {
  const auto city = CityModel::create_default();
  for (const auto region :
       {FunctionalRegion::kOffice, FunctionalRegion::kEntertainment}) {
    const auto towers = towers_of_region(region, 40);
    const auto db =
        PoiDatabase::generate(city, towers, PoiGenerationOptions{});
    // Averaged over towers, the region's own POI type (vs the other
    // non-resident types) dominates; resident POIs are everywhere by
    // construction, as in the real city.
    std::array<double, kNumPoiTypes> avg{};
    for (const auto& t : towers) {
      const auto counts = db.counts_near(t.position, 200.0);
      for (int i = 0; i < kNumPoiTypes; ++i)
        avg[i] += static_cast<double>(counts[i]);
    }
    const int own = static_cast<int>(poi_type_of_region(region));
    for (int i = 0; i < kNumPoiTypes; ++i) {
      if (i == own || i == static_cast<int>(PoiType::kResident)) continue;
      EXPECT_GT(avg[own], avg[i]) << region_name(region);
    }
  }
}

TEST(PoiDatabase, ScaleMultipliesCounts) {
  const auto city = CityModel::create_default();
  const auto towers = towers_of_region(FunctionalRegion::kOffice, 30);
  PoiGenerationOptions small;
  small.scale = 0.2;
  PoiGenerationOptions large;
  large.scale = 2.0;
  const auto db_small = PoiDatabase::generate(city, towers, small);
  const auto db_large = PoiDatabase::generate(city, towers, large);
  EXPECT_GT(db_large.total(PoiType::kOffice),
            3 * db_small.total(PoiType::kOffice));
}

TEST(PoiDatabase, GenerationIsDeterministic) {
  const auto city = CityModel::create_default();
  const auto towers = towers_of_region(FunctionalRegion::kResident, 20);
  const auto a = PoiDatabase::generate(city, towers, PoiGenerationOptions{});
  const auto b = PoiDatabase::generate(city, towers, PoiGenerationOptions{});
  ASSERT_EQ(a.pois().size(), b.pois().size());
  for (std::size_t i = 0; i < a.pois().size(); ++i) {
    EXPECT_EQ(a.pois()[i].type, b.pois()[i].type);
    EXPECT_DOUBLE_EQ(a.pois()[i].position.lat, b.pois()[i].position.lat);
  }
}

TEST(PoiDatabase, MixtureAwareGenerationFollowsWeights) {
  const auto city = CityModel::create_default();
  const auto towers = towers_of_region(FunctionalRegion::kComprehensive, 40);
  // All towers fully entertainment-weighted: entertainment POIs dominate.
  std::vector<std::array<double, 4>> mixtures(
      towers.size(), std::array<double, 4>{0.0, 0.0, 0.0, 1.0});
  const auto db =
      PoiDatabase::generate(city, towers, mixtures, PoiGenerationOptions{});
  EXPECT_GT(db.total(PoiType::kEntertain), db.total(PoiType::kOffice));
  EXPECT_GT(db.total(PoiType::kEntertain), db.total(PoiType::kResident));
}

TEST(PoiDatabase, ExpectedCountMatchesTable2Structure) {
  // Dominance structure of the generation matrix (cf. Table 2): each pure
  // region's own type (other than the ubiquitous resident type) is its
  // largest non-resident mean.
  EXPECT_GT(PoiDatabase::expected_count(FunctionalRegion::kOffice,
                                        PoiType::kOffice),
            PoiDatabase::expected_count(FunctionalRegion::kOffice,
                                        PoiType::kEntertain));
  EXPECT_GT(PoiDatabase::expected_count(FunctionalRegion::kEntertainment,
                                        PoiType::kEntertain),
            PoiDatabase::expected_count(FunctionalRegion::kEntertainment,
                                        PoiType::kOffice));
  EXPECT_GT(PoiDatabase::expected_count(FunctionalRegion::kTransport,
                                        PoiType::kTransport),
            PoiDatabase::expected_count(FunctionalRegion::kResident,
                                        PoiType::kTransport));
}

TEST(PoiDatabase, CountsAreMonotoneInRadius) {
  const auto city = CityModel::create_default();
  const auto towers = towers_of_region(FunctionalRegion::kOffice, 10);
  const auto db = PoiDatabase::generate(city, towers, PoiGenerationOptions{});
  for (const auto& t : towers) {
    const auto near = db.counts_near(t.position, 100.0);
    const auto far = db.counts_near(t.position, 400.0);
    for (int i = 0; i < kNumPoiTypes; ++i) EXPECT_LE(near[i], far[i]);
  }
}

TEST(PoiDatabase, ExplicitConstructionAndTotals) {
  const auto box = shanghai_bbox();
  std::vector<Poi> pois = {{PoiType::kOffice, {31.2, 121.5}},
                           {PoiType::kOffice, {31.2, 121.5}},
                           {PoiType::kResident, {31.21, 121.51}}};
  const PoiDatabase db(box, pois);
  EXPECT_EQ(db.total(PoiType::kOffice), 2u);
  EXPECT_EQ(db.total(PoiType::kResident), 1u);
  EXPECT_EQ(db.total(PoiType::kTransport), 0u);
  const auto counts = db.counts_near({31.2, 121.5}, 50.0);
  EXPECT_EQ(counts[static_cast<int>(PoiType::kOffice)], 2u);
}

TEST(PoiDatabase, MixtureSizeMismatchThrows) {
  const auto city = CityModel::create_default();
  const auto towers = towers_of_region(FunctionalRegion::kOffice, 5);
  std::vector<std::array<double, 4>> mixtures(3);
  EXPECT_THROW(
      PoiDatabase::generate(city, towers, mixtures, PoiGenerationOptions{}),
      Error);
}

TEST(PoiDatabase, RejectsNonPositiveScale) {
  const auto city = CityModel::create_default();
  const auto towers = towers_of_region(FunctionalRegion::kOffice, 5);
  PoiGenerationOptions bad;
  bad.scale = 0.0;
  EXPECT_THROW(PoiDatabase::generate(city, towers, bad), Error);
}

}  // namespace
}  // namespace cellscope
