#include "city/deployment.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "geo/geocoder.h"

namespace cellscope {
namespace {

TEST(Deployment, ProducesRequestedTowerCount) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = 137;
  const auto towers = deploy_towers(city, options);
  EXPECT_EQ(towers.size(), 137u);
}

TEST(Deployment, IdsAreDenseAndUnique) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = 100;
  const auto towers = deploy_towers(city, options);
  std::set<std::uint32_t> ids;
  for (const auto& t : towers) ids.insert(t.id);
  EXPECT_EQ(ids.size(), 100u);
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), 99u);
}

TEST(Deployment, IdsMatchVectorOrder) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = 50;
  const auto towers = deploy_towers(city, options);
  for (std::size_t i = 0; i < towers.size(); ++i)
    EXPECT_EQ(towers[i].id, static_cast<std::uint32_t>(i));
}

TEST(Deployment, RegionSharesMatchTable1Exactly) {
  // Largest-remainder quota allocation: shares must match the mixture to
  // within one tower.
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = 2000;
  const auto towers = deploy_towers(city, options);
  const auto histogram = region_histogram(towers);
  const auto mix = table1_region_mix();
  for (int r = 0; r < kNumRegions; ++r) {
    const double expected = 2000.0 * mix[r];
    EXPECT_NEAR(static_cast<double>(histogram[r]), expected, 1.0)
        << region_name(static_cast<FunctionalRegion>(r));
  }
}

TEST(Deployment, IsDeterministicInSeed) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = 60;
  const auto a = deploy_towers(city, options);
  const auto b = deploy_towers(city, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].position.lat, b[i].position.lat);
    EXPECT_EQ(a[i].true_region, b[i].true_region);
    EXPECT_EQ(a[i].address, b[i].address);
  }
}

TEST(Deployment, DifferentSeedsGiveDifferentLayouts) {
  const auto city = CityModel::create_default();
  DeploymentOptions a_options;
  a_options.n_towers = 60;
  DeploymentOptions b_options;
  b_options.n_towers = 60;
  b_options.seed = a_options.seed + 1;
  const auto a = deploy_towers(city, a_options);
  const auto b = deploy_towers(city, b_options);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].position.lat == b[i].position.lat) ++same;
  EXPECT_LT(same, 5);
}

TEST(Deployment, AddressesGeocodeBackToPositions) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = 40;
  const auto towers = deploy_towers(city, options);
  Geocoder geocoder(city.box());
  for (const auto& t : towers) {
    const auto resolved = geocoder.geocode(t.address);
    ASSERT_TRUE(resolved.has_value());
    EXPECT_LT(haversine_m(t.position, *resolved), 15.0);
  }
}

TEST(Deployment, PositionsAreInsideTheCity) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = 200;
  for (const auto& t : deploy_towers(city, options))
    EXPECT_TRUE(city.box().contains(t.position));
}

TEST(Deployment, IdCarriesNoRegionInformation) {
  // After shuffling, the first towers should not all share a region.
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = 500;
  const auto towers = deploy_towers(city, options);
  std::set<FunctionalRegion> first_regions;
  for (std::size_t i = 0; i < 30; ++i)
    first_regions.insert(towers[i].true_region);
  EXPECT_GE(first_regions.size(), 3u);
}

TEST(Deployment, RejectsInvalidOptions) {
  const auto city = CityModel::create_default();
  DeploymentOptions zero;
  zero.n_towers = 0;
  EXPECT_THROW(deploy_towers(city, zero), Error);
  DeploymentOptions bad_mix;
  bad_mix.region_mix = {0, 0, 0, 0, 0};
  EXPECT_THROW(deploy_towers(city, bad_mix), Error);
}

TEST(Deployment, CustomMixIsRespected) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = 100;
  options.region_mix = {1.0, 0.0, 0.0, 0.0, 0.0};  // all resident
  const auto towers = deploy_towers(city, options);
  for (const auto& t : towers)
    EXPECT_EQ(t.true_region, FunctionalRegion::kResident);
}

}  // namespace
}  // namespace cellscope
