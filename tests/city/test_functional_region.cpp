#include "city/functional_region.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"

namespace cellscope {
namespace {

TEST(FunctionalRegion, NamesAreDistinct) {
  std::set<std::string> names;
  for (const auto r : all_regions()) names.insert(region_name(r));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumRegions));
}

TEST(FunctionalRegion, PoiTypeNamesAreDistinct) {
  std::set<std::string> names;
  for (const auto t : all_poi_types()) names.insert(poi_type_name(t));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumPoiTypes));
}

TEST(FunctionalRegion, Table1MixSumsToOne) {
  const auto mix = table1_region_mix();
  const double total = std::accumulate(mix.begin(), mix.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(FunctionalRegion, Table1MixMatchesThePaper) {
  // Table 1: resident 17.55%, transport 2.58%, office 45.72%,
  // entertainment 9.35%, comprehensive 24.81% (up to renormalization).
  const auto mix = table1_region_mix();
  EXPECT_NEAR(mix[static_cast<int>(FunctionalRegion::kResident)], 0.1755,
              1e-3);
  EXPECT_NEAR(mix[static_cast<int>(FunctionalRegion::kTransport)], 0.0258,
              1e-3);
  EXPECT_NEAR(mix[static_cast<int>(FunctionalRegion::kOffice)], 0.4572, 1e-3);
  EXPECT_NEAR(mix[static_cast<int>(FunctionalRegion::kEntertainment)], 0.0935,
              1e-3);
  EXPECT_NEAR(mix[static_cast<int>(FunctionalRegion::kComprehensive)], 0.2481,
              1e-3);
}

TEST(FunctionalRegion, OfficeIsLargestTransportSmallest) {
  // The paper: cluster #3 (office) has the most towers, #2 (transport) the
  // fewest.
  const auto mix = table1_region_mix();
  const auto office = mix[static_cast<int>(FunctionalRegion::kOffice)];
  const auto transport = mix[static_cast<int>(FunctionalRegion::kTransport)];
  for (const auto r : all_regions()) {
    EXPECT_LE(mix[static_cast<int>(r)], office);
    EXPECT_GE(mix[static_cast<int>(r)], transport);
  }
}

TEST(FunctionalRegion, PoiRegionMappingRoundTrips) {
  for (const auto t : all_poi_types())
    EXPECT_EQ(poi_type_of_region(region_of_poi_type(t)), t);
}

TEST(FunctionalRegion, ComprehensiveHasNoPoiType) {
  EXPECT_THROW(poi_type_of_region(FunctionalRegion::kComprehensive),
               InvalidArgument);
}

}  // namespace
}  // namespace cellscope
