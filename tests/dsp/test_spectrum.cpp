#include "dsp/spectrum.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/time_grid.h"
#include "traffic/profiles.h"

namespace cellscope {
namespace {

std::vector<double> sinusoid(std::size_t n, std::size_t k, double amplitude,
                             double phase) {
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t)
    x[t] = amplitude * std::cos(2.0 * M_PI * static_cast<double>(k) *
                                    static_cast<double>(t) /
                                    static_cast<double>(n) +
                                phase);
  return x;
}

TEST(Spectrum, PrincipalComponentConstantsMatchThePaper) {
  // §5.1: k=4 (week), k=28 (day), k=56 (half day) on the 4-week grid.
  EXPECT_EQ(kWeeklyComponent, 4u);
  EXPECT_EQ(kDailyComponent, 28u);
  EXPECT_EQ(kHalfDailyComponent, 56u);
  // Sanity: k cycles over 4032 slots -> period in days.
  EXPECT_EQ(TimeGrid::kDays / kWeeklyComponent, 7u);
  EXPECT_EQ(TimeGrid::kDays / kDailyComponent, 1u);
}

TEST(Spectrum, NormalizedAmplitudeRecoversSinusoidAmplitude) {
  const auto x = sinusoid(4032, 28, 3.5, 0.7);
  const Spectrum s(x);
  EXPECT_NEAR(s.normalized_amplitude(28), 3.5, 1e-9);
}

TEST(Spectrum, PhaseRecoversSinusoidPhase) {
  const auto x = sinusoid(4032, 28, 1.0, 0.7);
  const Spectrum s(x);
  EXPECT_NEAR(s.phase(28), 0.7, 1e-9);
}

TEST(Spectrum, PhaseShiftIsMeasurable) {
  // Shifting a daily pattern later in time lowers its phase angle
  // (e^{-i...} convention) — the mechanism behind the Fig. 15(b) ordering.
  const auto early = sinusoid(4032, 28, 1.0, 0.0);
  const auto late = sinusoid(4032, 28, 1.0, -0.5);  // peak 0.5 rad later
  EXPECT_NEAR(Spectrum(early).phase(28) - Spectrum(late).phase(28), 0.5,
              1e-9);
}

TEST(Spectrum, ReconstructionKeepsOnlySelectedComponents) {
  auto x = sinusoid(4032, 28, 2.0, 0.0);
  const auto other = sinusoid(4032, 100, 1.0, 0.3);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += other[i] + 5.0;  // +DC
  const Spectrum s(x);
  const std::size_t keep[] = {28};
  const auto reconstructed = s.reconstruct(keep);
  // Expect DC + the k=28 sinusoid, with k=100 removed.
  const auto want = sinusoid(4032, 28, 2.0, 0.0);
  for (std::size_t i = 0; i < x.size(); i += 97)
    EXPECT_NEAR(reconstructed[i], want[i] + 5.0, 1e-9);
}

TEST(Spectrum, FullReconstructionIsIdentity) {
  Rng rng(3);
  std::vector<double> x(512);
  for (auto& v : x) v = rng.normal();
  const Spectrum s(x);
  std::vector<std::size_t> all;
  for (std::size_t k = 1; k <= 256; ++k) all.push_back(k);
  const auto reconstructed = s.reconstruct(all);
  for (std::size_t i = 0; i < x.size(); i += 13)
    EXPECT_NEAR(reconstructed[i], x[i], 1e-9);
}

TEST(Spectrum, PrincipalReconstructionOfTrafficLosesLittleEnergy) {
  // §5.1: the three principal components retain > 94 % of the energy of
  // the *aggregate* traffic. The comprehensive profile (the Table-1
  // mixture) is the canonical stand-in for the city aggregate.
  const auto aggregate =
      TrafficProfile::canonical(FunctionalRegion::kComprehensive).series();
  EXPECT_LT(energy_loss(aggregate, Spectrum(aggregate).reconstruct_principal()),
            0.06);
}

TEST(Spectrum, PerPatternReconstructionLossIsBounded) {
  // Pure patterns are spikier than the aggregate (transport's sharp rush-
  // hour humps spread energy into higher daily harmonics), but the three
  // components still dominate.
  for (const auto r : all_regions()) {
    const auto series = TrafficProfile::canonical(r).series();
    const auto loss =
        energy_loss(series, Spectrum(series).reconstruct_principal());
    const double bound = r == FunctionalRegion::kTransport ? 0.30 : 0.10;
    EXPECT_LT(loss, bound) << region_name(r);
  }
}

TEST(Spectrum, TrafficSpectrumPeaksAtThePrincipalComponents) {
  // The aggregate-traffic DFT must have local peaks at k = 4, 28, 56
  // (Fig. 12a).
  const auto series =
      TrafficProfile::canonical(FunctionalRegion::kComprehensive).series();
  const Spectrum s(series);
  const auto amplitude = s.amplitudes();
  for (const std::size_t k :
       {kWeeklyComponent, kDailyComponent, kHalfDailyComponent}) {
    EXPECT_GT(amplitude[k], amplitude[k - 1]) << "k = " << k;
    EXPECT_GT(amplitude[k], amplitude[k + 1]) << "k = " << k;
  }
}

TEST(Spectrum, EnergyLossOfPerfectReconstructionIsZero) {
  const auto x = sinusoid(256, 5, 1.0, 0.0);
  EXPECT_NEAR(energy_loss(x, x), 0.0, 1e-12);
}

TEST(Spectrum, SignalEnergyIsSumOfSquares) {
  const std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(signal_energy(x), 25.0);
}

TEST(Spectrum, EnergyLossValidatesInput) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW(energy_loss(x, y), Error);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(energy_loss(zero, zero), Error);
}

TEST(Spectrum, OutOfRangeFrequencyThrows) {
  const auto x = sinusoid(64, 3, 1.0, 0.0);
  const Spectrum s(x);
  EXPECT_THROW(s.amplitude(64), Error);
  const std::size_t keep[] = {64};
  EXPECT_THROW(s.reconstruct(keep), Error);
}

// Parameterized: amplitude/phase extraction across frequencies and phases.
class SpectrumRecovery
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(SpectrumRecovery, RecoversParametersOfPureTone) {
  const auto [k, phase] = GetParam();
  const auto x = sinusoid(4032, k, 2.2, phase);
  const Spectrum s(x);
  EXPECT_NEAR(s.normalized_amplitude(k), 2.2, 1e-8);
  EXPECT_NEAR(s.phase(k), phase, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    TonesAndPhases, SpectrumRecovery,
    ::testing::Combine(::testing::Values<std::size_t>(4, 28, 56, 84),
                       ::testing::Values(-2.0, -0.5, 0.0, 1.0, 3.0)));

}  // namespace
}  // namespace cellscope
