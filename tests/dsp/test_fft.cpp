#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace cellscope {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  return x;
}

double max_error(const std::vector<Complex>& a,
                 const std::vector<Complex>& b) {
  double err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    err = std::max(err, std::abs(a[i] - b[i]));
  return err;
}

TEST(Fft, IsPowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(4032));
}

TEST(Fft, MatchesNaiveDftOnPowerOfTwo) {
  const auto x = random_signal(64, 1);
  const auto fast = fft(x);
  const auto slow = naive_dft(x);
  EXPECT_LT(max_error(fast, slow), 1e-9);
}

TEST(Fft, BluesteinMatchesNaiveDftOnArbitraryLengths) {
  for (const std::size_t n : {3u, 5u, 12u, 63u, 100u, 441u}) {
    const auto x = random_signal(n, n);
    const auto fast = fft(x);
    const auto slow = naive_dft(x);
    EXPECT_LT(max_error(fast, slow), 1e-8) << "n = " << n;
  }
}

TEST(Fft, BluesteinMatchesNaiveOnPaperLength) {
  // N = 4032, the paper's grid length.
  const auto x = random_signal(4032, 9);
  const auto fast = fft(x);
  const auto slow = naive_dft(x);
  EXPECT_LT(max_error(fast, slow), 1e-6);
}

TEST(Fft, InverseRecoversInput) {
  for (const std::size_t n : {8u, 63u, 4032u}) {
    const auto x = random_signal(n, n + 1);
    const auto back = fft(fft(x), /*inverse=*/true);
    EXPECT_LT(max_error(x, back), 1e-9) << "n = " << n;
  }
}

TEST(Fft, LinearityHolds) {
  const std::size_t n = 96;  // non-power-of-two
  const auto x = random_signal(n, 2);
  const auto y = random_signal(n, 3);
  std::vector<Complex> combined(n);
  for (std::size_t i = 0; i < n; ++i) combined[i] = 2.0 * x[i] + 3.0 * y[i];
  const auto fx = fft(x);
  const auto fy = fft(y);
  const auto fc = fft(combined);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(fc[i] - (2.0 * fx[i] + 3.0 * fy[i])));
  EXPECT_LT(err, 1e-9);
}

TEST(Fft, ParsevalIdentityHolds) {
  const std::size_t n = 4032;
  const auto x = random_signal(n, 5);
  const auto fx = fft(x);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  double freq_energy = 0.0;
  for (const auto& v : fx) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              time_energy * 1e-9);
}

TEST(Fft, DcComponentIsTheSum) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto fx = fft_real(x);
  EXPECT_NEAR(fx[0].real(), 15.0, 1e-12);
  EXPECT_NEAR(fx[0].imag(), 0.0, 1e-12);
}

TEST(Fft, PureSinusoidConcentratesAtItsFrequency) {
  const std::size_t n = 4032;
  const std::size_t k0 = 28;
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t)
    x[t] = std::cos(2.0 * M_PI * static_cast<double>(k0) *
                    static_cast<double>(t) / static_cast<double>(n));
  const auto fx = fft_real(x);
  // Energy splits between k0 and n-k0, each of magnitude n/2.
  EXPECT_NEAR(std::abs(fx[k0]), static_cast<double>(n) / 2.0, 1e-6);
  EXPECT_NEAR(std::abs(fx[n - k0]), static_cast<double>(n) / 2.0, 1e-6);
  for (std::size_t k = 1; k < 100; ++k) {
    if (k == k0) continue;
    EXPECT_LT(std::abs(fx[k]), 1e-6);
  }
}

TEST(Fft, RealSignalSpectrumIsConjugateSymmetric) {
  Rng rng(11);
  std::vector<double> x(63);
  for (auto& v : x) v = rng.normal();
  const auto fx = fft_real(x);
  for (std::size_t k = 1; k < x.size(); ++k) {
    EXPECT_NEAR(fx[k].real(), fx[x.size() - k].real(), 1e-9);
    EXPECT_NEAR(fx[k].imag(), -fx[x.size() - k].imag(), 1e-9);
  }
}

TEST(Fft, InverseRealRoundTrip) {
  Rng rng(13);
  std::vector<double> x(4032);
  for (auto& v : x) v = rng.normal();
  const auto back = inverse_fft_real(fft_real(x));
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    err = std::max(err, std::fabs(x[i] - back[i]));
  EXPECT_LT(err, 1e-9);
}

TEST(Fft, SizeOneIsIdentity) {
  const std::vector<Complex> x = {Complex(3.0, -2.0)};
  const auto fx = fft(x);
  EXPECT_NEAR(std::abs(fx[0] - x[0]), 0.0, 1e-12);
}

TEST(Fft, EmptyInputThrows) {
  EXPECT_THROW(fft(std::vector<Complex>{}), Error);
  EXPECT_THROW(naive_dft(std::vector<Complex>{}), Error);
}

TEST(Fft, Radix2RejectsNonPowerOfTwo) {
  std::vector<Complex> x(6);
  EXPECT_THROW(fft_radix2_inplace(x, false), Error);
}

// Property sweep: round trip across many lengths, including primes.
class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, ForwardInverseIsIdentity) {
  const auto n = GetParam();
  const auto x = random_signal(n, 1000 + n);
  const auto back = fft(fft(x), true);
  EXPECT_LT(max_error(x, back), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTrip,
                         ::testing::Values(2, 3, 7, 16, 17, 31, 97, 128, 257,
                                           1008, 2016, 4032));

}  // namespace
}  // namespace cellscope
