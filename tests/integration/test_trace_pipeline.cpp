// Integration of the session-level path: generate raw logs (with injected
// defects), persist to CSV, re-read, clean with geocoder validation,
// vectorize on the MapReduce engine, and verify the result against the
// generator's ground truth — the paper's §2.2 + §3.2 preprocessing chain.
#include <gtest/gtest.h>

#include <filesystem>

#include "city/deployment.h"
#include "common/stats.h"
#include "geo/geocoder.h"
#include "pipeline/cleaner.h"
#include "pipeline/vectorizer.h"
#include "traffic/trace_generator.h"
#include "traffic/trace_io.h"

namespace cellscope {
namespace {

class TracePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto city = CityModel::create_default();
    DeploymentOptions deployment;
    deployment.n_towers = 8;
    towers_ = deploy_towers(city, deployment);
    intensity_ = std::make_unique<IntensityModel>(
        IntensityModel::create(towers_, IntensityOptions{}));
    trace_path_ = std::filesystem::temp_directory_path() /
                  ("cs_pipeline_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(trace_path_); }

  std::vector<Tower> towers_;
  std::unique_ptr<IntensityModel> intensity_;
  std::filesystem::path trace_path_;
};

TEST_F(TracePipelineTest, FullChainRecoversGroundTruth) {
  TraceOptions options;
  options.day_begin = 0;
  options.day_end = 3;
  options.duplicate_prob = 0.04;
  options.conflict_prob = 0.02;
  const auto trace = generate_trace(towers_, *intensity_, options);

  // Persist and re-read (the unstructured-input path).
  write_trace_csv(trace_path_.string(), trace.logs);
  const auto reloaded = read_trace_csv(trace_path_.string());
  ASSERT_EQ(reloaded.size(), trace.logs.size());

  // Clean with geocoder-backed address validation.
  Geocoder geocoder(CityModel::create_default().box());
  CleanerOptions cleaner_options;
  cleaner_options.validator = [&geocoder](const TrafficLog& log) {
    return geocoder.geocode(log.address).has_value();
  };
  CleanStats stats;
  const auto cleaned = clean_logs(reloaded, cleaner_options, &stats);
  EXPECT_EQ(stats.duplicates_removed, trace.duplicates_injected);
  EXPECT_EQ(stats.conflicts_resolved, trace.conflicts_injected);
  EXPECT_EQ(stats.malformed_dropped, 0u);  // all addresses are genuine

  // Vectorize and compare against ground truth, slot by slot.
  ThreadPool pool(default_thread_count());
  const auto matrix = vectorize_logs(cleaned, towers_, pool);
  for (std::size_t r = 0; r < matrix.n(); ++r) {
    const auto id = matrix.tower_ids[r];
    for (std::size_t s = 0; s < TimeGrid::kSlots; ++s)
      ASSERT_NEAR(matrix.rows[r][s], trace.clean_bytes[id][s], 1e-6);
  }
}

TEST_F(TracePipelineTest, CorruptedAddressesAreDroppedByTheValidator) {
  TraceOptions options;
  options.day_begin = 0;
  options.day_end = 1;
  options.duplicate_prob = 0.0;
  options.conflict_prob = 0.0;
  auto trace = generate_trace(towers_, *intensity_, options);

  // Corrupt a fixed fraction of addresses (failed address ingestion).
  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < trace.logs.size(); i += 10) {
    trace.logs[i].address = "corrupted-row";
    ++corrupted;
  }

  Geocoder geocoder(CityModel::create_default().box());
  CleanerOptions cleaner_options;
  cleaner_options.validator = [&geocoder](const TrafficLog& log) {
    return geocoder.geocode(log.address).has_value();
  };
  CleanStats stats;
  const auto cleaned = clean_logs(trace.logs, cleaner_options, &stats);
  EXPECT_EQ(stats.malformed_dropped, corrupted);
  EXPECT_EQ(cleaned.size(), trace.logs.size() - corrupted);
}

TEST_F(TracePipelineTest, DirtyPipelineOvercountsCleanUndercountsNothing) {
  TraceOptions options;
  options.day_begin = 0;
  options.day_end = 1;
  options.duplicate_prob = 0.10;
  options.conflict_prob = 0.05;
  const auto trace = generate_trace(towers_, *intensity_, options);

  ThreadPool pool(2);
  const auto dirty = vectorize_logs(trace.logs, towers_, pool);
  const auto clean = vectorize_logs(clean_logs(trace.logs), towers_, pool);
  // Dirty >= clean everywhere (duplicates and conflicts only add bytes).
  for (std::size_t r = 0; r < dirty.n(); ++r)
    for (std::size_t s = 0; s < TimeGrid::kSlots; ++s)
      ASSERT_GE(dirty.rows[r][s] + 1e-9, clean.rows[r][s]);
  EXPECT_GT(sum(aggregate_series(dirty)), sum(aggregate_series(clean)));
}

TEST_F(TracePipelineTest, GeocoderCacheMakesValidationCheap) {
  TraceOptions options;
  options.day_begin = 0;
  options.day_end = 1;
  const auto trace = generate_trace(towers_, *intensity_, options);

  Geocoder geocoder(CityModel::create_default().box());
  CleanerOptions cleaner_options;
  cleaner_options.validator = [&geocoder](const TrafficLog& log) {
    return geocoder.geocode(log.address).has_value();
  };
  clean_logs(trace.logs, cleaner_options);
  // Only one uncached API call per distinct tower address.
  EXPECT_EQ(geocoder.api_calls(), towers_.size());
  EXPECT_GT(geocoder.cache_hits(), 0u);
}

}  // namespace
}  // namespace cellscope
