// End-to-end integration: the full Experiment pipeline must reproduce the
// paper's headline findings on the synthetic city.
#include "core/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/poi_features.h"
#include "common/error.h"
#include "analysis/time_features.h"
#include "common/stats.h"
#include "dsp/spectrum.h"

namespace cellscope {
namespace {

/// One shared experiment for the whole suite (running it per-test would
/// dominate CI time).
const Experiment& shared_experiment() {
  static const Experiment experiment = [] {
    ExperimentConfig config;
    config.n_towers = 500;
    config.seed = 2015;
    return Experiment::run(config);
  }();
  return experiment;
}

TEST(Experiment, FindsExactlyFivePatterns) {
  // The paper's headline: five basic time-domain patterns.
  EXPECT_EQ(shared_experiment().n_clusters(), 5u);
}

TEST(Experiment, DbiSweepHasItsMinimumAtTheChosenCut) {
  const auto& sweep = shared_experiment().dbi_sweep_result();
  const auto& chosen = shared_experiment().chosen_cut();
  for (const auto& point : sweep) {
    if (point.valid) EXPECT_GE(point.dbi, chosen.dbi);
  }
}

TEST(Experiment, EveryRegionGetsExactlyOneCluster) {
  std::set<FunctionalRegion> seen;
  for (const auto r : shared_experiment().labeling().region_of_cluster)
    EXPECT_TRUE(seen.insert(r).second) << region_name(r);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Experiment, LabelAccuracyIsHigh) {
  EXPECT_GT(shared_experiment().validation().accuracy, 0.95);
}

TEST(Experiment, ClusterSharesMatchTable1) {
  // Table 1 shares within a few percentage points.
  const auto& e = shared_experiment();
  const auto mix = table1_region_mix();
  for (std::size_t c = 0; c < e.n_clusters(); ++c) {
    const auto region = e.labeling().region_of_cluster[c];
    const double share =
        static_cast<double>(e.rows_of_cluster(c).size()) /
        static_cast<double>(e.config().n_towers);
    EXPECT_NEAR(share, mix[static_cast<int>(region)], 0.05)
        << region_name(region);
  }
}

TEST(Experiment, TimeDomainSignaturesMatchThePaper) {
  const auto& e = shared_experiment();
  // Transport and office have strong weekday/weekend asymmetry; resident
  // does not (Fig. 10a).
  const auto transport = compute_time_features(
      e.region_aggregate(FunctionalRegion::kTransport));
  const auto office =
      compute_time_features(e.region_aggregate(FunctionalRegion::kOffice));
  const auto resident = compute_time_features(
      e.region_aggregate(FunctionalRegion::kResident));
  EXPECT_GT(transport.weekday_weekend_ratio, 1.25);
  EXPECT_GT(office.weekday_weekend_ratio, 1.5);
  EXPECT_NEAR(resident.weekday_weekend_ratio, 1.0, 0.15);
  // Resident peaks in the evening; office around midday (Table 5).
  EXPECT_NEAR(resident.weekday.peak_hour, 21.5, 1.0);
  EXPECT_GT(office.weekday.peak_hour, 9.0);
  EXPECT_LT(office.weekday.peak_hour, 14.5);
  // Valleys in the early morning for every pattern (the paper: between
  // 4:00 and 5:00; transport's valley is deep and flat, so sampling noise
  // moves its argmin by an hour or so).
  for (const auto r : all_regions()) {
    const auto f = compute_time_features(e.region_aggregate(r));
    EXPECT_GT(f.weekday.valley_hour, 2.0) << region_name(r);
    EXPECT_LT(f.weekday.valley_hour, 6.5) << region_name(r);
  }
}

TEST(Experiment, AggregateSpectrumReconstructsWithLowLoss) {
  // Fig. 12: three components retain > 94 % of aggregate energy.
  const auto aggregate = shared_experiment().total_aggregate();
  const Spectrum spectrum(aggregate);
  EXPECT_LT(energy_loss(aggregate, spectrum.reconstruct_principal()), 0.06);
}

TEST(Experiment, WeeklyPhasesSeparateOfficeFromResidentByPi) {
  // Fig. 15a: office weekly phase vs resident/entertainment ≈ π apart.
  const auto& e = shared_experiment();
  const auto& features = e.freq_features();
  auto mean_phase = [&](FunctionalRegion r) {
    std::vector<double> phases;
    for (const auto row : e.rows_of_cluster(*e.cluster_of_region(r)))
      phases.push_back(features[row].phase_week);
    return circular_mean(phases);
  };
  double gap = std::fabs(mean_phase(FunctionalRegion::kOffice) -
                         mean_phase(FunctionalRegion::kResident));
  gap = std::min(gap, 2.0 * M_PI - gap);
  EXPECT_NEAR(gap, M_PI, 0.5);
}

TEST(Experiment, DailyPhaseOrderingEncodesCommuting) {
  // Fig. 15b / 16b: mean daily phase increases along
  // resident -> comprehensive -> transport -> office.
  const auto& e = shared_experiment();
  const auto& features = e.freq_features();
  auto mean_phase = [&](FunctionalRegion r) {
    std::vector<double> phases;
    for (const auto row : e.rows_of_cluster(*e.cluster_of_region(r)))
      phases.push_back(features[row].phase_day);
    return circular_mean(phases);
  };
  const double resident = mean_phase(FunctionalRegion::kResident);
  const double comprehensive = mean_phase(FunctionalRegion::kComprehensive);
  const double transport = mean_phase(FunctionalRegion::kTransport);
  const double office = mean_phase(FunctionalRegion::kOffice);
  EXPECT_LT(resident, comprehensive);
  EXPECT_LT(comprehensive, transport);
  EXPECT_LT(transport, office);
}

TEST(Experiment, TransportHasTheStrongestHalfDayComponent) {
  // Fig. 16c: transport's double hump dominates the half-day amplitude.
  const auto& e = shared_experiment();
  const auto& features = e.freq_features();
  auto mean_amp = [&](FunctionalRegion r) {
    std::vector<double> amps;
    for (const auto row : e.rows_of_cluster(*e.cluster_of_region(r)))
      amps.push_back(features[row].amp_half_day);
    return mean(amps);
  };
  const double transport = mean_amp(FunctionalRegion::kTransport);
  for (const auto r :
       {FunctionalRegion::kOffice, FunctionalRegion::kEntertainment,
        FunctionalRegion::kComprehensive}) {
    EXPECT_GT(transport, mean_amp(r)) << region_name(r);
  }
}

TEST(Experiment, OfficeHasTheStrongestWeeklyComponent) {
  // Fig. 16a.
  const auto& e = shared_experiment();
  const auto& features = e.freq_features();
  auto mean_amp = [&](FunctionalRegion r) {
    std::vector<double> amps;
    for (const auto row : e.rows_of_cluster(*e.cluster_of_region(r)))
      amps.push_back(features[row].amp_week);
    return mean(amps);
  };
  const double office = mean_amp(FunctionalRegion::kOffice);
  for (const auto r :
       {FunctionalRegion::kResident, FunctionalRegion::kEntertainment,
        FunctionalRegion::kComprehensive}) {
    EXPECT_GT(office, mean_amp(r)) << region_name(r);
  }
}

TEST(Experiment, ComprehensiveTracksTheCityAverage) {
  // Fig. 11 bottom row: comprehensive ≈ average of all towers.
  const auto& e = shared_experiment();
  const auto comprehensive =
      e.region_aggregate(FunctionalRegion::kComprehensive);
  const auto total = e.total_aggregate();
  EXPECT_GT(pearson(comprehensive, total), 0.9);
}

TEST(Experiment, RepresentativesBelongToTheirClusters) {
  const auto& e = shared_experiment();
  const auto& reps = e.representatives();
  for (int r = 0; r < 4; ++r) {
    const auto cluster = e.cluster_of_region(static_cast<FunctionalRegion>(r));
    ASSERT_TRUE(cluster.has_value());
    EXPECT_EQ(static_cast<std::size_t>(e.labels()[reps[r]]), *cluster);
  }
}

TEST(Experiment, ComprehensiveTowersDecomposeWithSmallResidual) {
  // §5.3: comprehensive towers ≈ convex combinations of the four primary
  // components in the (A28, P28, A56) space.
  const auto& e = shared_experiment();
  const auto& features = e.freq_features();
  const auto& reps = e.representatives();
  std::array<std::array<double, 3>, 4> primaries;
  for (int i = 0; i < 4; ++i) primaries[i] = features[reps[i]].qp_feature();

  const auto rows =
      e.rows_of_cluster(*e.cluster_of_region(FunctionalRegion::kComprehensive));
  double total_residual = 0.0;
  for (const auto row : rows) {
    const auto d = decompose_feature(features[row].qp_feature(), primaries);
    total_residual += d.residual;
  }
  EXPECT_LT(total_residual / static_cast<double>(rows.size()), 0.25);
}

TEST(Experiment, PoiValidationShowsDominanceDiagonal) {
  // Table 3: each pure cluster is dominated by its own POI type when the
  // columns are compared across clusters.
  const auto& e = shared_experiment();
  const auto normalized = normalized_poi_by_cluster(e.poi_counts(),
                                                    e.labels());
  for (const PoiType type : all_poi_types()) {
    const auto own_cluster = e.cluster_of_region(region_of_poi_type(type));
    ASSERT_TRUE(own_cluster.has_value());
    for (std::size_t c = 0; c < normalized.size(); ++c) {
      if (c == *own_cluster) continue;
      EXPECT_GE(normalized[*own_cluster][static_cast<int>(type)],
                normalized[c][static_cast<int>(type)])
          << poi_type_name(type) << " vs cluster " << c;
    }
  }
}

TEST(Experiment, IsDeterministic) {
  ExperimentConfig config;
  config.n_towers = 120;
  config.seed = 77;
  const auto a = Experiment::run(config);
  const auto b = Experiment::run(config);
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.chosen_cut().k, b.chosen_cut().k);
  EXPECT_DOUBLE_EQ(a.chosen_cut().dbi, b.chosen_cut().dbi);
}

TEST(Experiment, FullLengthClusteringAlsoFindsFivePatterns) {
  // The weekly fold is an optimization, not a crutch: clustering the full
  // 4032-dim vectors gives the same answer. The fold averages per-slot
  // noise over 4 weeks (a 2x SNR gain); match that gain here so the two
  // representations are compared at equal signal-to-noise.
  ExperimentConfig config;
  config.n_towers = 250;
  config.fold_weekly = false;
  config.intensity.noise_cv = 0.06;
  const auto e = Experiment::run(config);
  EXPECT_EQ(e.n_clusters(), 5u);
  EXPECT_GT(e.validation().accuracy, 0.95);
}

TEST(Experiment, ValidatesConfig) {
  ExperimentConfig tiny;
  tiny.n_towers = 5;
  EXPECT_THROW(Experiment::run(tiny), Error);
  ExperimentConfig bad_sweep;
  bad_sweep.k_min = 8;
  bad_sweep.k_max = 3;
  EXPECT_THROW(Experiment::run(bad_sweep), Error);
}

}  // namespace
}  // namespace cellscope
