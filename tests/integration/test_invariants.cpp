// Cross-module property tests: invariants that must hold across the whole
// pipeline regardless of configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "city/deployment.h"
#include "common/error.h"
#include "common/stats.h"
#include "dsp/spectrum.h"
#include "ml/distance.h"
#include "ml/hierarchical.h"
#include "pipeline/traffic_matrix.h"
#include "pipeline/vectorizer.h"
#include "traffic/intensity_model.h"

namespace cellscope {
namespace {

struct Fixture {
  std::vector<Tower> towers;
  TrafficMatrix matrix;
};

Fixture make_fixture(std::size_t n, std::uint64_t seed = 5) {
  Fixture f;
  const auto city = CityModel::create_default();
  DeploymentOptions deployment;
  deployment.n_towers = n;
  deployment.seed = seed;
  f.towers = deploy_towers(city, deployment);
  const auto intensity = IntensityModel::create(f.towers, IntensityOptions{});
  f.matrix = vectorize_intensity(f.towers, intensity, seed);
  return f;
}

bool same_partition(const std::vector<int>& a, const std::vector<int>& b) {
  std::map<int, int> fwd;
  std::map<int, int> rev;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (fwd.contains(a[i]) && fwd[a[i]] != b[i]) return false;
    if (rev.contains(b[i]) && rev[b[i]] != a[i]) return false;
    fwd[a[i]] = b[i];
    rev[b[i]] = a[i];
  }
  return true;
}

TEST(Invariants, ClusteringIsPermutationInvariant) {
  // Shuffling the input rows must not change the induced partition.
  const auto f = make_fixture(120);
  const auto folded = fold_to_week(zscore_rows(f.matrix));

  std::vector<std::size_t> perm(folded.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  Rng rng(9);
  rng.shuffle(perm);
  std::vector<std::vector<double>> shuffled(folded.size());
  for (std::size_t i = 0; i < perm.size(); ++i) shuffled[i] = folded[perm[i]];

  const auto labels = Dendrogram::run(DistanceMatrix::compute(folded),
                                      Linkage::kAverage)
                          .cut_k(5);
  const auto labels_shuffled =
      Dendrogram::run(DistanceMatrix::compute(shuffled), Linkage::kAverage)
          .cut_k(5);
  // Undo the permutation and compare partitions.
  std::vector<int> unshuffled(labels.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    unshuffled[perm[i]] = labels_shuffled[i];
  EXPECT_TRUE(same_partition(labels, unshuffled));
}

TEST(Invariants, ClusteringIsScaleInvariant) {
  // The vectorizer z-scores every tower, so multiplying any tower's raw
  // traffic by a constant must not change the partition (the paper's
  // point: amplitude only reflects user counts, not pattern).
  const auto f = make_fixture(100);
  auto scaled = f.matrix;
  Rng rng(11);
  for (auto& row : scaled.rows) {
    const double factor = rng.uniform(0.1, 50.0);
    for (auto& v : row) v *= factor;
  }
  const auto a = fold_to_week(zscore_rows(f.matrix));
  const auto b = fold_to_week(zscore_rows(scaled));
  const auto labels_a =
      Dendrogram::run(DistanceMatrix::compute(a), Linkage::kAverage).cut_k(5);
  const auto labels_b =
      Dendrogram::run(DistanceMatrix::compute(b), Linkage::kAverage).cut_k(5);
  EXPECT_TRUE(same_partition(labels_a, labels_b));
}

TEST(Invariants, AggregateSpectrumIsSumOfSpectra) {
  // DFT linearity across the pipeline: the spectrum of the aggregate
  // equals the complex sum of per-tower spectra.
  const auto f = make_fixture(30);
  const auto total = aggregate_series(f.matrix);
  const Spectrum aggregate_spectrum(total);
  for (const std::size_t k : {kWeeklyComponent, kDailyComponent, 77ul}) {
    Complex summed(0.0, 0.0);
    for (const auto& row : f.matrix.rows)
      summed += Spectrum(row).coefficient(k);
    EXPECT_NEAR(std::abs(aggregate_spectrum.coefficient(k) - summed), 0.0,
                1e-3 * std::abs(summed) + 1e-6);
  }
}

TEST(Invariants, DendrogramClusterCountIsMonotoneInThreshold) {
  const auto f = make_fixture(80);
  const auto folded = fold_to_week(zscore_rows(f.matrix));
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(folded), Linkage::kAverage);
  std::size_t previous = dendrogram.cluster_count_at(0.0);
  for (double threshold = 1.0; threshold < 60.0; threshold += 1.7) {
    const std::size_t count = dendrogram.cluster_count_at(threshold);
    EXPECT_LE(count, previous);
    previous = count;
  }
  EXPECT_EQ(dendrogram.cluster_count_at(1e18), 1u);
}

TEST(Invariants, CutsAreNestedRefinements) {
  // cut_k(k+1) must refine cut_k(k): every (k+1)-cluster lies inside one
  // k-cluster.
  const auto f = make_fixture(60);
  const auto folded = fold_to_week(zscore_rows(f.matrix));
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(folded), Linkage::kAverage);
  for (std::size_t k = 2; k <= 8; ++k) {
    const auto coarse = dendrogram.cut_k(k);
    const auto fine = dendrogram.cut_k(k + 1);
    std::map<int, int> parent;  // fine label -> coarse label
    for (std::size_t i = 0; i < coarse.size(); ++i) {
      const auto [it, inserted] = parent.emplace(fine[i], coarse[i]);
      EXPECT_EQ(it->second, coarse[i])
          << "fine cluster split across coarse clusters at k=" << k;
    }
  }
}

TEST(Invariants, ZscoreThenFoldEqualsFoldOfZscoreForWeeklySignals) {
  // For exactly weekly-periodic signals the fold is lossless, so the two
  // orders agree up to the variance renormalization.
  std::vector<double> weekly(TimeGrid::kSlots);
  for (std::size_t s = 0; s < weekly.size(); ++s)
    weekly[s] = std::sin(2.0 * M_PI *
                         static_cast<double>(s % TimeGrid::kSlotsPerWeek) /
                         TimeGrid::kSlotsPerWeek) +
                2.0;
  TrafficMatrix m;
  m.tower_ids = {0};
  m.rows = {weekly};
  const auto folded_z = fold_to_week(zscore_rows(m))[0];
  const auto z_direct = zscore(std::vector<double>(
      weekly.begin(), weekly.begin() + TimeGrid::kSlotsPerWeek));
  for (std::size_t s = 0; s < folded_z.size(); s += 31)
    EXPECT_NEAR(folded_z[s], z_direct[s], 1e-9);
}

TEST(Invariants, DeploymentHistogramIsSeedIndependent) {
  // The largest-remainder quota allocation fixes cluster sizes for any
  // seed; only positions/order vary.
  const auto city = CityModel::create_default();
  DeploymentOptions a;
  a.n_towers = 777;
  DeploymentOptions b = a;
  b.seed = a.seed + 123;
  EXPECT_EQ(region_histogram(deploy_towers(city, a)),
            region_histogram(deploy_towers(city, b)));
}

}  // namespace
}  // namespace cellscope
