#include "opt/simplex_ls.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace cellscope {
namespace {

std::vector<std::vector<double>> random_components(std::size_t m,
                                                   std::size_t dim,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> components(m, std::vector<double>(dim));
  for (auto& c : components)
    for (auto& v : c) v = rng.normal();
  return components;
}

void expect_on_simplex(const std::vector<double>& x) {
  double total = 0.0;
  for (const double v : x) {
    EXPECT_GE(v, -1e-12);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ProjectToSimplex, AlreadyOnSimplexIsUnchanged) {
  const auto p = project_to_simplex({0.2, 0.3, 0.5});
  EXPECT_NEAR(p[0], 0.2, 1e-12);
  EXPECT_NEAR(p[1], 0.3, 1e-12);
  EXPECT_NEAR(p[2], 0.5, 1e-12);
}

TEST(ProjectToSimplex, ResultIsOnSimplex) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> v(4);
    for (auto& x : v) x = rng.normal(0.0, 3.0);
    expect_on_simplex(project_to_simplex(v));
  }
}

TEST(ProjectToSimplex, IsTheNearestSimplexPoint) {
  // Verify optimality against dense sampling of the 2-simplex.
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> v = {rng.normal(0.0, 2.0), rng.normal(0.0, 2.0),
                             rng.normal(0.0, 2.0)};
    const auto p = project_to_simplex(v);
    double p_dist = 0.0;
    for (int i = 0; i < 3; ++i) p_dist += (p[i] - v[i]) * (p[i] - v[i]);
    for (double a = 0.0; a <= 1.0; a += 0.05) {
      for (double b = 0.0; a + b <= 1.0; b += 0.05) {
        const double c = 1.0 - a - b;
        const double d = (a - v[0]) * (a - v[0]) + (b - v[1]) * (b - v[1]) +
                         (c - v[2]) * (c - v[2]);
        EXPECT_GE(d, p_dist - 1e-9);
      }
    }
  }
}

TEST(ProjectToSimplex, SingleElementIsOne) {
  const auto p = project_to_simplex({-5.0});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
}

TEST(SimplexLs, RecoversExactConvexCombination) {
  // Target constructed as a known combination of affinely independent
  // components: the solver must recover the weights exactly.
  const std::vector<std::vector<double>> components = {
      {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, {1.0, 1.0, 1.0}};
  const std::vector<double> weights = {0.1, 0.2, 0.3, 0.4};
  std::vector<double> target(3, 0.0);
  for (std::size_t i = 0; i < 4; ++i)
    for (int d = 0; d < 3; ++d) target[d] += weights[i] * components[i][d];

  const auto result = solve_simplex_ls(components, target);
  expect_on_simplex(result.coefficients);
  EXPECT_NEAR(result.objective, 0.0, 1e-12);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(result.coefficients[i], weights[i], 1e-6);
}

TEST(SimplexLs, VertexTargetsPickTheVertex) {
  const auto components = random_components(4, 3, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto result = solve_simplex_ls(components, components[i]);
    EXPECT_NEAR(result.coefficients[i], 1.0, 1e-6);
    EXPECT_NEAR(result.objective, 0.0, 1e-9);
  }
}

TEST(SimplexLs, OutsideTargetSatisfiesKkt) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const auto components = random_components(4, 3, 100 + trial);
    std::vector<double> target(3);
    for (auto& v : target) v = rng.normal(0.0, 3.0);
    const auto result = solve_simplex_ls(components, target);
    expect_on_simplex(result.coefficients);
    EXPECT_TRUE(check_simplex_kkt(components, target, result.coefficients,
                                  1e-5))
        << "trial " << trial;
  }
}

TEST(SimplexLs, AgreesWithProjectedGradient) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto components = random_components(4, 3, 200 + trial);
    std::vector<double> target(3);
    for (auto& v : target) v = rng.normal(0.0, 2.0);
    const auto exact = solve_simplex_ls(components, target);
    const auto pg =
        solve_simplex_ls_pg(components, target, 200000, 1e-13);
    EXPECT_NEAR(exact.objective, pg.objective,
                1e-5 * (1.0 + exact.objective))
        << "trial " << trial;
  }
}

TEST(SimplexLs, FittedEqualsCombination) {
  const auto components = random_components(3, 4, 6);
  const std::vector<double> target = {1.0, -1.0, 0.5, 0.0};
  const auto result = solve_simplex_ls(components, target);
  for (std::size_t d = 0; d < 4; ++d) {
    double expect = 0.0;
    for (std::size_t i = 0; i < 3; ++i)
      expect += result.coefficients[i] * components[i][d];
    EXPECT_NEAR(result.fitted[d], expect, 1e-9);
  }
}

TEST(SimplexLs, SingleComponentAlwaysGetsWeightOne) {
  const std::vector<std::vector<double>> components = {{2.0, 3.0}};
  const auto result = solve_simplex_ls(components, {0.0, 0.0});
  EXPECT_NEAR(result.coefficients[0], 1.0, 1e-12);
  EXPECT_NEAR(result.objective, 13.0, 1e-9);
}

TEST(SimplexLs, DuplicateComponentsAreHandled) {
  // Degenerate KKT systems from identical columns must not break the
  // solver; any split between duplicates is optimal.
  const std::vector<std::vector<double>> components = {
      {1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  const auto result = solve_simplex_ls(components, {0.5, 0.5});
  expect_on_simplex(result.coefficients);
  EXPECT_NEAR(result.coefficients[0] + result.coefficients[1], 0.5, 1e-6);
  EXPECT_NEAR(result.coefficients[2], 0.5, 1e-6);
}

TEST(SimplexLs, ObjectiveIsNeverWorseThanAnyVertex) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto components = random_components(4, 3, 300 + trial);
    std::vector<double> target(3);
    for (auto& v : target) v = rng.normal();
    const auto result = solve_simplex_ls(components, target);
    for (const auto& c : components) {
      double vertex_obj = 0.0;
      for (std::size_t d = 0; d < 3; ++d)
        vertex_obj += (c[d] - target[d]) * (c[d] - target[d]);
      EXPECT_LE(result.objective, vertex_obj + 1e-9);
    }
  }
}

TEST(SimplexLs, ValidatesArguments) {
  EXPECT_THROW(solve_simplex_ls({}, {1.0}), Error);
  EXPECT_THROW(solve_simplex_ls({{1.0, 2.0}}, {}), Error);
  EXPECT_THROW(solve_simplex_ls({{1.0, 2.0}, {1.0}}, {0.0, 0.0}), Error);
  EXPECT_THROW(project_to_simplex({}), Error);
}

TEST(CheckKkt, RejectsInfeasibleAndSuboptimalPoints) {
  const auto components = random_components(3, 2, 8);
  const std::vector<double> target = {10.0, 10.0};
  // Not on the simplex.
  EXPECT_FALSE(
      check_simplex_kkt(components, target, {0.5, 0.2, 0.2}, 1e-6));
  EXPECT_FALSE(
      check_simplex_kkt(components, target, {1.5, -0.5, 0.0}, 1e-6));
  // Feasible but (almost surely) not optimal: uniform weights.
  const auto optimal = solve_simplex_ls(components, target);
  if ((std::fabs(optimal.coefficients[0] - 1.0 / 3.0) > 0.05)) {
    EXPECT_FALSE(check_simplex_kkt(components, target,
                                   {1.0 / 3, 1.0 / 3, 1.0 / 3}, 1e-6));
  }
}

// Parameterized sweep: exact recovery across dimensions and sizes.
class SimplexLsRecovery
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SimplexLsRecovery, InteriorTargetsAreRecovered) {
  const auto [m, dim] = GetParam();
  if (m > dim + 1) GTEST_SKIP() << "weights not identifiable";
  Rng rng(static_cast<std::uint64_t>(m * 100 + dim));
  const auto components =
      random_components(static_cast<std::size_t>(m),
                        static_cast<std::size_t>(dim),
                        static_cast<std::uint64_t>(m * 7 + dim));
  const auto weights =
      rng.dirichlet(std::vector<double>(static_cast<std::size_t>(m), 2.0));
  std::vector<double> target(static_cast<std::size_t>(dim), 0.0);
  for (int i = 0; i < m; ++i)
    for (int d = 0; d < dim; ++d)
      target[static_cast<std::size_t>(d)] +=
          weights[static_cast<std::size_t>(i)]
          * components[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)];
  const auto result = solve_simplex_ls(components, target);
  EXPECT_NEAR(result.objective, 0.0, 1e-9);
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(result.coefficients[static_cast<std::size_t>(i)],
                weights[static_cast<std::size_t>(i)], 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SimplexLsRecovery,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(3, 5, 8)));

}  // namespace
}  // namespace cellscope
