#include "opt/linalg.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace cellscope {
namespace {

TEST(Matrix, StoresAndRetrieves) {
  Matrix m(2, 3, 0.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.5);
  m.at(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), 7.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(Matrix, OutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 2), Error);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6]
  int v = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) m.at(r, c) = v++;
  const auto y = m.multiply({1.0, 0.0, -1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Matrix, MultiplyTransposed) {
  Matrix m(2, 3);
  int v = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) m.at(r, c) = v++;
  const auto x = m.multiply_transposed({1.0, 1.0});
  ASSERT_EQ(x.size(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 5.0);
  EXPECT_DOUBLE_EQ(x[1], 7.0);
  EXPECT_DOUBLE_EQ(x[2], 9.0);
}

TEST(Matrix, GramIsSymmetricPositiveSemidefiniteDiagonal) {
  Rng rng(1);
  Matrix m(5, 3);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 3; ++c) m.at(r, c) = rng.normal();
  const auto g = m.gram();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(g.at(i, i), 0.0);
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(g.at(i, j), g.at(j, i), 1e-12);
  }
}

TEST(SolveLinear, SolvesKnownSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, RandomSystemsRoundTrip) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.normal();
      a.at(r, r) += 3.0;  // keep well-conditioned
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.normal();
    const auto b = a.multiply(x_true);
    const auto x = solve_linear(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(SolveLinear, RequiresPivoting) {
  // Zero pivot in the (0, 0) position — fails without partial pivoting.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, SingularSystemThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;  // rank 1
  EXPECT_THROW(solve_linear(a, {1.0, 2.0}), Error);
}

TEST(SolveLinear, ValidatesShape) {
  Matrix a(2, 3);
  EXPECT_THROW(solve_linear(a, {1.0, 2.0}), Error);
  Matrix square(2, 2, 1.0);
  EXPECT_THROW(solve_linear(square, {1.0}), Error);
}

TEST(Matrix, MultiplyValidatesDimensions) {
  Matrix m(2, 3);
  EXPECT_THROW(m.multiply({1.0}), Error);
  EXPECT_THROW(m.multiply_transposed({1.0, 2.0, 3.0}), Error);
}

}  // namespace
}  // namespace cellscope
