// Socket-free endpoint layer of the query daemon: routing, the RCU model
// swap, and response bodies pinned against the underlying stream/model
// APIs — including bit-identical doubles (the server serializes with
// %.17g, so a parsed response must equal the in-process computation
// exactly).
#include "server/query_service.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/time_grid.h"
#include "mapred/thread_pool.h"
#include "stream/ingestor.h"
#include "stream/online_classifier.h"
#include "stream/tower_window.h"

namespace cellscope::server {
namespace {

constexpr std::size_t kDay = TimeGrid::kSlotsPerDay;

std::uint64_t office_bytes(std::size_t slot) {
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>(slot % kDay) / kDay;
  return static_cast<std::uint64_t>(2000.0 + 1500.0 * std::sin(phase));
}

std::uint64_t resident_bytes(std::size_t slot) {
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>(slot % kDay) / kDay;
  return static_cast<std::uint64_t>(2000.0 - 1500.0 * std::sin(phase));
}

ModelSnapshot synthetic_model() {
  ModelSnapshot model;
  for (const auto profile : {office_bytes, resident_bytes}) {
    TowerWindow window;
    for (std::size_t slot = 0; slot < TimeGrid::kSlots; ++slot)
      window.add(slot * TimeGrid::kSlotMinutes, profile(slot));
    model.centroids.push_back(window.folded_week());
  }
  model.regions = {FunctionalRegion::kOffice, FunctionalRegion::kResident};
  model.populations = {3, 10};
  model.has_primaries = false;
  return model;
}

HttpRequest get_request(std::string path, std::string query = "") {
  HttpRequest request;
  request.method = "GET";
  request.path = std::move(path);
  request.query = std::move(query);
  return request;
}

HttpRequest post_request(std::string path, std::string body) {
  HttpRequest request;
  request.method = "POST";
  request.path = std::move(path);
  request.body = std::move(body);
  return request;
}

class QueryServiceTest : public ::testing::Test {
 protected:
  // Tower 1: full office grid. Tower 2: full resident grid. Tower 3:
  // 10 slots (cold start, too short to forecast). Tower 4: 200 slots
  // (warm enough for both class and forecast).
  void SetUp() override {
    feed_tower(1, office_bytes, TimeGrid::kSlots);
    feed_tower(2, resident_bytes, TimeGrid::kSlots);
    feed_tower(3, office_bytes, 10);
    feed_tower(4, office_bytes, 200);
    ingestor.drain(pool);
  }

  void feed_tower(std::uint32_t tower_id,
                  std::uint64_t (*profile)(std::size_t),
                  std::size_t n_slots) {
    std::vector<TrafficLog> logs;
    logs.reserve(n_slots);
    for (std::size_t slot = 0; slot < n_slots; ++slot) {
      TrafficLog log;
      log.user_id = slot;
      log.tower_id = tower_id;
      log.start_minute =
          static_cast<std::uint32_t>(slot * TimeGrid::kSlotMinutes);
      log.end_minute = log.start_minute;
      log.bytes = profile(slot);
      logs.push_back(log);
    }
    ingestor.offer_batch(logs);
  }

  std::shared_ptr<const OnlineClassifier> make_classifier() {
    return std::make_shared<const OnlineClassifier>(synthetic_model());
  }

  ThreadPool pool{2};
  StreamIngestor ingestor;
  QueryService service{ingestor, &pool};
};

TEST_F(QueryServiceTest, ModelEndpointsAnswer503BeforeFirstPublish) {
  EXPECT_EQ(service.model(), nullptr);
  EXPECT_EQ(service.model_epoch(), 0u);
  EXPECT_EQ(service.dispatch(get_request("/towers/1/class")).status, 503);
  EXPECT_EQ(service.dispatch(get_request("/towers/1/forecast")).status, 503);
  EXPECT_EQ(service.dispatch(post_request("/classify", "[]")).status, 503);
  // Window and stats need no model.
  EXPECT_EQ(service.dispatch(get_request("/towers/1/window")).status, 200);
  EXPECT_EQ(service.dispatch(get_request("/stats")).status, 200);
}

TEST_F(QueryServiceTest, PublishSwapsModelAndBumpsEpoch) {
  const auto first = make_classifier();
  service.publish_model(first);
  EXPECT_EQ(service.model(), first);
  EXPECT_EQ(service.model_epoch(), 1u);
  const auto second = make_classifier();
  service.publish_model(second);
  EXPECT_EQ(service.model(), second);
  EXPECT_EQ(service.model_epoch(), 2u);
  EXPECT_THROW(service.publish_model(nullptr), Error);
}

TEST_F(QueryServiceTest, ClassEndpointIsBitIdenticalToClassifier) {
  const auto classifier = make_classifier();
  service.publish_model(classifier);
  for (const std::uint32_t tower : {1u, 2u, 3u, 4u}) {
    const auto response = service.dispatch(
        get_request("/towers/" + std::to_string(tower) + "/class"));
    ASSERT_EQ(response.status, 200) << response.body;
    const JsonValue doc = JsonValue::parse(response.body);
    EXPECT_EQ(doc.at("tower").as_number(), tower);
    const JsonValue& body = doc.at("classification");
    const Classification expected =
        classifier->classify(ingestor.window_copy(tower));
    EXPECT_EQ(static_cast<std::size_t>(body.at("cluster").as_number()),
              expected.cluster);
    EXPECT_EQ(body.at("region").as_string(), region_name(expected.region));
    // %.17g serialization: parsed doubles equal the computed ones bit
    // for bit.
    EXPECT_EQ(body.at("distance").as_number(), expected.distance);
    EXPECT_EQ(body.at("confidence").as_number(), expected.confidence);
    EXPECT_EQ(body.at("cold_start").as_bool(), expected.cold_start);
    EXPECT_EQ(body.at("model_epoch").as_number(), 1.0);
  }
}

TEST_F(QueryServiceTest, WindowEndpointMatchesWindowStats) {
  const auto response = service.dispatch(get_request("/towers/1/window"));
  ASSERT_EQ(response.status, 200) << response.body;
  const JsonValue doc = JsonValue::parse(response.body);
  const TowerWindowStats stats = ingestor.window_stats(1);
  EXPECT_EQ(doc.at("observed_slots").as_number(),
            static_cast<double>(stats.observed_slots));
  EXPECT_EQ(doc.at("total_bytes").as_number(),
            static_cast<double>(stats.total_bytes));
  EXPECT_EQ(doc.at("mean").as_number(), stats.mean);
  EXPECT_EQ(doc.at("variance").as_number(), stats.variance);
  EXPECT_EQ(doc.at("latest_minute").as_number(),
            static_cast<double>(stats.latest_minute));
}

TEST_F(QueryServiceTest, ForecastEndpointMatchesForecaster) {
  const auto classifier = make_classifier();
  service.publish_model(classifier);

  const auto response = service.dispatch(
      get_request("/towers/4/forecast", "horizon=288"));
  ASSERT_EQ(response.status, 200) << response.body;
  const JsonValue doc = JsonValue::parse(response.body);
  EXPECT_EQ(doc.at("horizon").as_number(), 288.0);

  const auto history = ingestor.window_copy(4).observed_history();
  const auto expected = classifier->forecaster().forecast(history, 288);
  const auto& values = doc.at("values").as_array();
  ASSERT_EQ(values.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(values[i].as_number(), expected[i]) << "slot " << i;
  EXPECT_EQ(static_cast<std::size_t>(doc.at("template").as_number()),
            classifier->forecaster().match(history));

  // Default horizon is one day of slots.
  const auto default_response =
      service.dispatch(get_request("/towers/4/forecast"));
  ASSERT_EQ(default_response.status, 200);
  EXPECT_EQ(JsonValue::parse(default_response.body)
                .at("values")
                .as_array()
                .size(),
            static_cast<std::size_t>(TimeGrid::kSlotsPerDay));
}

TEST_F(QueryServiceTest, ForecastGuardsHorizonAndHistory) {
  service.publish_model(make_classifier());
  EXPECT_EQ(service
                .dispatch(get_request("/towers/4/forecast", "horizon=0"))
                .status,
            400);
  EXPECT_EQ(service
                .dispatch(get_request("/towers/4/forecast", "horizon=9999"))
                .status,
            400);
  EXPECT_EQ(service
                .dispatch(get_request("/towers/4/forecast", "horizon=abc"))
                .status,
            400);
  // Tower 3 has 10 observed slots — under the forecaster's match floor.
  const auto starving =
      service.dispatch(get_request("/towers/3/forecast"));
  EXPECT_EQ(starving.status, 409);
  EXPECT_NE(starving.body.find("insufficient history"), std::string::npos);
}

TEST_F(QueryServiceTest, ClassifyPostScoresAFoldedWeek) {
  const auto classifier = make_classifier();
  service.publish_model(classifier);
  const auto& centroid = classifier->model().centroids[1];
  std::string body = "[";
  for (std::size_t i = 0; i < centroid.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", centroid[i]);
    if (i > 0) body += ',';
    body += buf;
  }
  body += "]";
  const auto response = service.dispatch(post_request("/classify", body));
  ASSERT_EQ(response.status, 200) << response.body;
  const JsonValue doc = JsonValue::parse(response.body);
  EXPECT_EQ(doc.at("cluster").as_number(), 1.0);
  EXPECT_EQ(doc.at("region").as_string(),
            region_name(FunctionalRegion::kResident));
  EXPECT_LT(doc.at("distance").as_number(), 1e-12);

  // The wrapped form routes identically.
  const auto wrapped = service.dispatch(
      post_request("/classify", "{\"folded_week\":" + body + "}"));
  EXPECT_EQ(wrapped.status, 200);
}

TEST_F(QueryServiceTest, ClassifyPostRejectsDamage) {
  service.publish_model(make_classifier());
  EXPECT_EQ(service.dispatch(post_request("/classify", "not json")).status,
            400);
  EXPECT_EQ(service.dispatch(post_request("/classify", "[1,2,3]")).status,
            400);  // wrong length
  EXPECT_EQ(service.dispatch(post_request("/classify", "{\"x\":1}")).status,
            400);
  std::string strings = "[";
  for (std::size_t i = 0; i < TimeGrid::kSlotsPerWeek; ++i)
    strings += i == 0 ? "\"a\"" : ",\"a\"";
  strings += "]";
  EXPECT_EQ(service.dispatch(post_request("/classify", strings)).status,
            400);
}

TEST_F(QueryServiceTest, RoutingEdges) {
  service.publish_model(make_classifier());
  EXPECT_EQ(service.dispatch(get_request("/towers/99/class")).status, 404);
  EXPECT_EQ(service.dispatch(get_request("/towers/abc/class")).status, 400);
  EXPECT_EQ(service.dispatch(get_request("/towers/1/nope")).status, 404);
  EXPECT_EQ(service.dispatch(get_request("/towers/1")).status, 404);
  EXPECT_EQ(service.dispatch(get_request("/classify")).status, 405);
  EXPECT_EQ(service.dispatch(post_request("/stats", "")).status, 405);
  EXPECT_EQ(service.dispatch(post_request("/nope", "")).status, 405);
}

TEST_F(QueryServiceTest, UnknownGetsFallBackToIntrospectionPlane) {
  const auto metrics = service.dispatch(get_request("/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE"), std::string::npos);
  const auto health = service.dispatch(get_request("/healthz"));
  EXPECT_NE(health.body.find("\"verdicts\""), std::string::npos);
  EXPECT_EQ(service.dispatch(get_request("/no/such/endpoint")).status, 404);
}

TEST_F(QueryServiceTest, StatsReportsServingPlane) {
  service.publish_model(make_classifier());
  // Drive one request through each family so the endpoint table is live.
  service.dispatch(get_request("/towers/1/class"));
  service.dispatch(get_request("/towers/1/window"));
  const auto response = service.dispatch(get_request("/stats"));
  ASSERT_EQ(response.status, 200);
  const JsonValue doc = JsonValue::parse(response.body);
  EXPECT_EQ(doc.at("model_epoch").as_number(), 1.0);
  EXPECT_EQ(doc.at("model_published").as_bool(), true);
  ASSERT_TRUE(doc.contains("endpoints"));
  ASSERT_TRUE(doc.at("endpoints").contains("class"));
  EXPECT_TRUE(doc.at("endpoints").at("class").contains("p99_ms"));
  ASSERT_TRUE(doc.contains("ingest"));
  EXPECT_TRUE(doc.at("ingest").contains("shards"));
}

}  // namespace
}  // namespace cellscope::server
