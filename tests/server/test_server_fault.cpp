// Failpoint-driven fault drill for the serving plane (compiled only when
// CELLSCOPE_FAILPOINTS is ON): artificial accept failures and truncated
// replies must surface as counted, typed degradation — never deadlock,
// use-after-free, or a torn frame followed by more traffic.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/time_grid.h"
#include "mapred/thread_pool.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/query_service.h"
#include "server/server.h"
#include "stream/ingestor.h"
#include "stream/online_classifier.h"
#include "stream/tower_window.h"

namespace cellscope::server {
namespace {

constexpr std::size_t kDay = TimeGrid::kSlotsPerDay;

std::uint64_t office_bytes(std::size_t slot) {
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>(slot % kDay) / kDay;
  return static_cast<std::uint64_t>(2000.0 + 1500.0 * std::sin(phase));
}

ModelSnapshot tiny_model() {
  ModelSnapshot model;
  TowerWindow window;
  for (std::size_t slot = 0; slot < TimeGrid::kSlots; ++slot)
    window.add(slot * TimeGrid::kSlotMinutes, office_bytes(slot));
  model.centroids.push_back(window.folded_week());
  model.regions = {FunctionalRegion::kOffice};
  model.populations = {1};
  return model;
}

class ServerFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::disarm_all();
    std::vector<TrafficLog> logs;
    for (std::size_t slot = 0; slot < kDay; ++slot) {
      TrafficLog log;
      log.tower_id = 1;
      log.start_minute =
          static_cast<std::uint32_t>(slot * TimeGrid::kSlotMinutes);
      log.end_minute = log.start_minute;
      log.bytes = office_bytes(slot);
      logs.push_back(log);
    }
    ingestor.offer_batch(logs);
    ingestor.drain(pool);
    service.publish_model(
        std::make_shared<const OnlineClassifier>(tiny_model()));
  }
  void TearDown() override { fp::disarm_all(); }

  ThreadPool pool{2};
  StreamIngestor ingestor;
  QueryService service{ingestor, &pool};
};

TEST_F(ServerFaultTest, AcceptFailuresAreCountedAndNonFatal) {
  QueryServer server(service);
  server.start();
  const auto& metrics = ServerMetrics::instance();
  const std::uint64_t errors_before = metrics.accept_errors->value();

  // Two charges: the client's initial attempt AND its automatic
  // reconnect both land on a failed accept, so the error surfaces.
  fp::arm("server.accept.fail", 2);
  BlockingHttpClient doomed(server.port(), /*timeout_ms=*/2000);
  EXPECT_THROW(doomed.get("/stats"), IoError);
  EXPECT_EQ(fp::fire_count("server.accept.fail"), 2u);
  EXPECT_EQ(metrics.accept_errors->value(), errors_before + 2);

  // The daemon shrugged it off: the next connection serves normally.
  BlockingHttpClient healthy(server.port());
  EXPECT_EQ(healthy.get("/towers/1/class").status, 200);
  server.stop();
}

TEST_F(ServerFaultTest, PartialReplyIsCountedAndClosesConnection) {
  QueryServer server(service);
  server.start();
  const auto& metrics = ServerMetrics::instance();
  const std::uint64_t partial_before = metrics.reply_partial->value();

  fp::arm("server.reply.partial", 1);
  BlockingHttpClient client(server.port(), /*timeout_ms=*/2000);
  // The truncated frame can't parse as a response; the retry-once path
  // reconnects and gets a full answer — exactly the client-visible
  // contract of a mid-reply crash.
  const auto response = client.get("/towers/1/class");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(fp::fire_count("server.reply.partial"), 1u);
  EXPECT_GE(metrics.reply_partial->value(), partial_before + 1);
  server.stop();
}

TEST_F(ServerFaultTest, FaultsDoNotPoisonSubsequentTraffic) {
  QueryServer server(service);
  server.start();
  fp::arm("server.accept.fail", 1);
  fp::arm("server.reply.partial", 1);

  // Burn through both faults, then demand a clean run of exchanges.
  BlockingHttpClient client(server.port(), /*timeout_ms=*/2000);
  for (int i = 0; i < 3; ++i) {
    try {
      (void)client.get("/stats");
    } catch (const IoError&) {
      client.disconnect();
    }
  }
  for (int i = 0; i < 5; ++i) {
    const auto response = client.get("/towers/1/window");
    ASSERT_EQ(response.status, 200);
  }
  EXPECT_EQ(fp::fire_count("server.accept.fail"), 1u);
  EXPECT_EQ(fp::fire_count("server.reply.partial"), 1u);
  server.stop();
}

}  // namespace
}  // namespace cellscope::server
