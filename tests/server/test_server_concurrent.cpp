// The query daemon under concurrent load — the `-L server` TSan targets:
// many client threads against a live-ingesting daemon (final responses
// pinned bit-identical to the batch classifier), the RCU model swap
// racing in-flight classify_all, TowerWindow reads racing the fused bulk
// ingest path, keep-alive pipelining, and the deterministic 503/429
// admission-control drill.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/time_grid.h"
#include "mapred/thread_pool.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/query_service.h"
#include "server/server.h"
#include "stream/ingestor.h"
#include "stream/online_classifier.h"
#include "stream/tower_window.h"
#include "traffic/columnar.h"

namespace cellscope::server {
namespace {

constexpr std::size_t kDay = TimeGrid::kSlotsPerDay;

std::uint64_t office_bytes(std::size_t slot) {
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>(slot % kDay) / kDay;
  return static_cast<std::uint64_t>(2000.0 + 1500.0 * std::sin(phase));
}

std::uint64_t resident_bytes(std::size_t slot) {
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>(slot % kDay) / kDay;
  return static_cast<std::uint64_t>(2000.0 - 1500.0 * std::sin(phase));
}

ModelSnapshot synthetic_model() {
  ModelSnapshot model;
  for (const auto profile : {office_bytes, resident_bytes}) {
    TowerWindow window;
    for (std::size_t slot = 0; slot < TimeGrid::kSlots; ++slot)
      window.add(slot * TimeGrid::kSlotMinutes, profile(slot));
    model.centroids.push_back(window.folded_week());
  }
  model.regions = {FunctionalRegion::kOffice, FunctionalRegion::kResident};
  model.populations = {3, 10};
  model.has_primaries = false;
  return model;
}

std::vector<TrafficLog> tower_logs(std::uint32_t tower_id,
                                   std::uint64_t (*profile)(std::size_t),
                                   std::size_t n_slots) {
  std::vector<TrafficLog> logs;
  logs.reserve(n_slots);
  for (std::size_t slot = 0; slot < n_slots; ++slot) {
    TrafficLog log;
    log.user_id = slot;
    log.tower_id = tower_id;
    log.start_minute =
        static_cast<std::uint32_t>(slot * TimeGrid::kSlotMinutes);
    log.end_minute = log.start_minute;
    log.bytes = profile(slot);
    logs.push_back(log);
  }
  return logs;
}

// The acceptance pin of ISSUE 9: ≥8 client threads hammer a daemon whose
// ingestor is being fed and whose model is being republished the whole
// time; every in-flight answer must be a well-formed success, and once
// ingest quiesces, the served classifications must equal the batch
// OnlineClassifier on the same windows bit for bit.
TEST(QueryServerConcurrent, EightClientsAgainstLiveIngestBitIdenticalAtRest) {
  constexpr std::uint32_t kTowers = 12;
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRequestsPerClient = 40;

  ThreadPool pool(2);
  StreamConfig stream_config;
  stream_config.queue_capacity = 0;  // unbounded: this test must not drop
  StreamIngestor ingestor(stream_config);
  QueryService service(ingestor, &pool);
  auto model = std::make_shared<const OnlineClassifier>(synthetic_model());
  service.publish_model(model);

  ServerConfig server_config;
  server_config.workers = 4;
  server_config.max_pending = 256;  // roomy: no shedding in this test
  QueryServer server(service, server_config);
  server.start();

  // Ingest plane: every tower gains slots batch by batch while clients
  // read; even towers office-shaped, odd towers resident-shaped.
  std::atomic<bool> ingest_done{false};
  std::thread ingest([&] {
    for (std::size_t round = 0; round < 6; ++round) {
      for (std::uint32_t tower = 0; tower < kTowers; ++tower) {
        const auto profile =
            tower % 2 == 0 ? office_bytes : resident_bytes;
        auto logs = tower_logs(tower, profile, kDay * (round + 1));
        ingestor.offer_batch(logs);
      }
      ingestor.drain(pool);
      // New epoch mid-flight: readers must never block or crash on it.
      service.publish_model(
          std::make_shared<const OnlineClassifier>(synthetic_model()));
    }
    ingest_done.store(true, std::memory_order_release);
  });

  std::atomic<std::size_t> well_formed{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      BlockingHttpClient client(server.port());
      const std::uint32_t tower = static_cast<std::uint32_t>(c % kTowers);
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        ClientResponse response;
        switch (i % 4) {
          case 0:
            response = client.get("/towers/" + std::to_string(tower) +
                                  "/class");
            break;
          case 1:
            response = client.get("/towers/" + std::to_string(tower) +
                                  "/window");
            break;
          case 2:
            response = client.get("/stats");
            break;
          default:
            response = client.get("/towers/" + std::to_string(tower) +
                                  "/forecast?horizon=36");
            break;
        }
        // Mid-ingest a tower may not exist yet (404) or be too short to
        // forecast (409); anything else must be a 200 with a JSON body.
        ASSERT_TRUE(response.status == 200 || response.status == 404 ||
                    response.status == 409)
            << response.status << " " << response.body;
        if (response.status == 200) {
          ASSERT_FALSE(response.body.empty());
          ASSERT_EQ(response.body.front(), '{');
          well_formed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  ingest.join();
  ASSERT_TRUE(ingest_done.load());
  EXPECT_GT(well_formed.load(), kClients * kRequestsPerClient / 2);

  // Quiesced: pin every served classification bit-identical to the batch
  // classifier on the same windows, under the final epoch's model.
  const auto final_model =
      std::make_shared<const OnlineClassifier>(synthetic_model());
  service.publish_model(final_model);
  BlockingHttpClient client(server.port());
  for (std::uint32_t tower = 0; tower < kTowers; ++tower) {
    const auto response =
        client.get("/towers/" + std::to_string(tower) + "/class");
    ASSERT_EQ(response.status, 200) << response.body;
    const JsonValue doc = JsonValue::parse(response.body);
    const JsonValue& body = doc.at("classification");
    const Classification expected =
        final_model->classify(ingestor.window_copy(tower));
    EXPECT_EQ(static_cast<std::size_t>(body.at("cluster").as_number()),
              expected.cluster)
        << "tower " << tower;
    EXPECT_EQ(body.at("region").as_string(), region_name(expected.region));
    EXPECT_EQ(body.at("distance").as_number(), expected.distance)
        << "tower " << tower;
    EXPECT_EQ(body.at("confidence").as_number(), expected.confidence)
        << "tower " << tower;
    EXPECT_EQ(body.at("cold_start").as_bool(), expected.cold_start);
  }
  server.stop();
}

// RCU publication protocol: swapping the model must never block — or be
// corrupted by — in-flight classify_all passes holding the old epoch.
TEST(QueryServerConcurrent, ModelSwapRacesInFlightClassifyAll) {
  ThreadPool pool(2);
  StreamIngestor ingestor;
  for (std::uint32_t tower = 0; tower < 8; ++tower)
    ingestor.offer_batch(tower_logs(tower, office_bytes, 3 * kDay));
  ingestor.drain(pool);

  QueryService service(ingestor, &pool);
  service.publish_model(
      std::make_shared<const OnlineClassifier>(synthetic_model()));

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (std::size_t i = 0; i < 50; ++i)
      service.publish_model(
          std::make_shared<const OnlineClassifier>(synthetic_model()));
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // Each pass pins one epoch for its whole duration.
        const auto model = service.model();
        const auto labels = model->classify_all(ingestor);
        ASSERT_EQ(labels.size(), 8u);
        for (const auto& [tower, result] : labels)
          ASSERT_LT(result.cluster, model->model().centroids.size());
      }
    });
  }
  publisher.join();
  for (auto& reader : readers) reader.join();
  EXPECT_GE(service.model_epoch(), 51u);
}

// Lock discipline of the serving plane's cheap reads: window_stats and
// window_copy racing the fused bulk ingest path must stay TSan-clean and
// internally consistent.
TEST(QueryServerConcurrent, WindowReadsRaceIngestColumns) {
  StreamIngestor ingestor;
  // Seed every tower so readers always find a window.
  DecodedColumns seed;
  for (std::uint32_t tower = 0; tower < 6; ++tower) {
    seed.tower.push_back(tower);
    seed.start.push_back(0);
    seed.end.push_back(0);
    seed.bytes.push_back(1000);
  }
  ingestor.ingest_columns(seed);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (std::uint32_t round = 1; round <= 200; ++round) {
      DecodedColumns cols;
      for (std::uint32_t tower = 0; tower < 6; ++tower) {
        cols.tower.push_back(tower);
        const std::uint32_t minute =
            (round % TimeGrid::kSlots) * TimeGrid::kSlotMinutes;
        cols.start.push_back(minute);
        cols.end.push_back(minute);
        cols.bytes.push_back(500 + round);
      }
      ingestor.ingest_columns(cols);
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (std::uint32_t tower = 0; tower < 6; ++tower) {
          const TowerWindowStats stats = ingestor.window_stats(tower);
          ASSERT_GE(stats.observed_slots, 1u);
          ASSERT_GT(stats.total_bytes, 0u);
          const TowerWindow window = ingestor.window_copy(tower);
          ASSERT_EQ(window.observed_slots() >= 1, true);
        }
      }
    });
  }
  writer.join();
  for (auto& reader : readers) reader.join();
}

// One connection, one write, many requests: HTTP/1.1 pipelining through
// get_burst answers all of them in order.
TEST(QueryServerConcurrent, KeepAlivePipelining) {
  ThreadPool pool(2);
  StreamIngestor ingestor;
  ingestor.offer_batch(tower_logs(1, office_bytes, kDay));
  ingestor.drain(pool);
  QueryService service(ingestor, &pool);
  QueryServer server(service);
  server.start();

  BlockingHttpClient client(server.port());
  const auto burst = client.get_burst("/towers/1/window", 64);
  ASSERT_EQ(burst.size(), 64u);
  for (const auto& response : burst) {
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"observed_slots\""), std::string::npos);
  }
  server.stop();
}

// Admission-control drill, deterministic without failpoints: one worker,
// a one-slot admission queue. Connection A occupies the worker, B fills
// the queue, C is shed at accept with 503; A's next request is answered
// 429 + close (the queue is still full); B then gets its 200.
TEST(QueryServerConcurrent, SaturationSheds503AtAcceptAnd429InBand) {
  ThreadPool pool(2);
  StreamIngestor ingestor;
  ingestor.offer_batch(tower_logs(1, office_bytes, kDay));
  ingestor.drain(pool);
  QueryService service(ingestor, &pool);

  ServerConfig config;
  config.workers = 1;
  config.max_pending = 1;
  QueryServer server(service, config);
  server.start();
  const auto& metrics = ServerMetrics::instance();
  const std::uint64_t shed_503_before = metrics.shed_503->value();
  const std::uint64_t shed_429_before = metrics.shed_429->value();

  // A connects and stays silent: the worker pops it and parks in recv.
  BlockingHttpClient a(server.port());
  a.get_burst("/stats", 0);  // zero-length burst = connect without sending
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // B connects and asks: admitted, but stuck in the queue (depth 1 = the
  // whole capacity) behind the parked worker.
  BlockingHttpClient b(server.port());
  ClientResponse b_response;
  std::thread b_request([&] { b_response = b.get("/towers/1/window"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // C: the queue already holds B -> connection-level shed, typed 503.
  // (The reply can race C's send; a torn connection counts as shed too.)
  BlockingHttpClient c(server.port());
  int c_status = 503;
  try {
    c_status = c.get("/whatever").status;
  } catch (const IoError&) {
  }
  EXPECT_EQ(c_status, 503);

  // A finally speaks: the queue is still full, so the in-band shed fires.
  const auto a_response = a.get("/towers/1/window");
  EXPECT_EQ(a_response.status, 429);

  // A's close frees the worker; B's queued connection now gets its 200.
  b_request.join();
  EXPECT_EQ(b_response.status, 200);

  EXPECT_GT(metrics.shed_503->value(), shed_503_before);
  EXPECT_GT(metrics.shed_429->value(), shed_429_before);
  server.stop();
}

}  // namespace
}  // namespace cellscope::server
