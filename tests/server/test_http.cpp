// Wire-format layer of the query daemon: request parsing over growing
// buffers (incremental reads, pipelining, limits), response framing, and
// query-string access.
#include "server/http.h"

#include <gtest/gtest.h>

#include <string>

namespace cellscope::server {
namespace {

HttpRequest parse_ok(const std::string& buffer,
                     const HttpLimits& limits = {}) {
  HttpRequest request;
  const ParseResult result = parse_http_request(buffer, request, limits);
  EXPECT_EQ(result.status, ParseStatus::kOk) << result.error;
  EXPECT_EQ(result.consumed, buffer.size());
  return request;
}

int parse_bad(const std::string& buffer, const HttpLimits& limits = {}) {
  HttpRequest request;
  const ParseResult result = parse_http_request(buffer, request, limits);
  EXPECT_EQ(result.status, ParseStatus::kBad);
  EXPECT_FALSE(result.error.empty());
  return result.error_status;
}

TEST(HttpParse, SimpleGet) {
  const auto request =
      parse_ok("GET /towers/7/class HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/towers/7/class");
  EXPECT_EQ(request.query, "");
  EXPECT_TRUE(request.keep_alive);
  EXPECT_EQ(request.headers.at("host"), "x");
  EXPECT_TRUE(request.body.empty());
}

TEST(HttpParse, QueryStringSplitsOffPath) {
  const auto request =
      parse_ok("GET /towers/7/forecast?horizon=288&x=1 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(request.path, "/towers/7/forecast");
  EXPECT_EQ(request.query, "horizon=288&x=1");
  EXPECT_EQ(query_param(request, "horizon").value_or(""), "288");
  EXPECT_EQ(query_param(request, "x").value_or(""), "1");
  EXPECT_FALSE(query_param(request, "missing").has_value());
}

TEST(HttpParse, HeaderNamesLowercasedValuesTrimmed) {
  const auto request = parse_ok(
      "GET / HTTP/1.1\r\nContent-TYPE:  application/json \r\n\r\n");
  EXPECT_EQ(request.headers.at("content-type"), "application/json");
}

TEST(HttpParse, PostBodyByContentLength) {
  const auto request = parse_ok(
      "POST /classify HTTP/1.1\r\nContent-Length: 5\r\n\r\n[1,2]");
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "[1,2]");
}

TEST(HttpParse, KeepAliveDefaults) {
  EXPECT_TRUE(parse_ok("GET / HTTP/1.1\r\n\r\n").keep_alive);
  EXPECT_FALSE(
      parse_ok("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
  EXPECT_FALSE(parse_ok("GET / HTTP/1.0\r\n\r\n").keep_alive);
  EXPECT_TRUE(parse_ok("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
                  .keep_alive);
}

TEST(HttpParse, IncompleteInputAsksForMore) {
  HttpRequest request;
  EXPECT_EQ(parse_http_request("GET / HT", request, {}).status,
            ParseStatus::kNeedMore);
  // Head complete, body short: still incomplete.
  EXPECT_EQ(parse_http_request(
                "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
                request, {})
                .status,
            ParseStatus::kNeedMore);
}

TEST(HttpParse, PipelinedRequestsConsumeExactly) {
  const std::string one = "GET /a HTTP/1.1\r\n\r\n";
  const std::string two = one + "GET /b HTTP/1.1\r\n\r\n";
  HttpRequest request;
  const ParseResult first = parse_http_request(two, request, {});
  ASSERT_EQ(first.status, ParseStatus::kOk);
  EXPECT_EQ(first.consumed, one.size());
  EXPECT_EQ(request.path, "/a");
  const ParseResult second = parse_http_request(
      std::string_view(two).substr(first.consumed), request, {});
  ASSERT_EQ(second.status, ParseStatus::kOk);
  EXPECT_EQ(request.path, "/b");
}

TEST(HttpParse, StructuralDamageIsTyped400) {
  EXPECT_EQ(parse_bad("garbage\r\n\r\n"), 400);
  EXPECT_EQ(parse_bad("GET /nope\r\n\r\n"), 400);          // no version
  EXPECT_EQ(parse_bad("GET / FTP/1.1\r\n\r\n"), 400);      // bad version
  EXPECT_EQ(parse_bad("GET nopath HTTP/1.1\r\n\r\n"), 400);
  EXPECT_EQ(parse_bad("GET / HTTP/1.1\r\nbroken header\r\n\r\n"), 400);
  EXPECT_EQ(parse_bad("POST / HTTP/1.1\r\nContent-Length: -2\r\n\r\n"),
            400);
  EXPECT_EQ(parse_bad("POST / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n"),
            400);
  EXPECT_EQ(
      parse_bad("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      400);
}

TEST(HttpParse, LimitsAreTypedRejections) {
  HttpLimits limits;
  limits.max_head_bytes = 64;
  limits.max_body_bytes = 8;
  // Oversized head — even before the terminator arrives.
  EXPECT_EQ(parse_bad("GET /" + std::string(100, 'a'), limits), 431);
  EXPECT_EQ(parse_bad("GET /" + std::string(100, 'a') + " HTTP/1.1\r\n\r\n",
                      limits),
            431);
  EXPECT_EQ(
      parse_bad("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n", limits),
      413);
  // All-digit but above ULLONG_MAX: must be a typed rejection, never an
  // exception escaping the documented never-throws contract.
  EXPECT_EQ(parse_bad("POST / HTTP/1.1\r\nContent-Length: "
                      "99999999999999999999999\r\n\r\n",
                      limits),
            413);
}

TEST(HttpSerialize, FramesStatusHeadersBody) {
  HttpResponse response;
  response.status = 429;
  response.content_type = "application/json";
  response.body = "{\"error\":\"x\"}";
  const std::string close_frame = serialize_response(response, false);
  EXPECT_NE(close_frame.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(close_frame.find("Content-Length: 13\r\n"), std::string::npos);
  EXPECT_NE(close_frame.find("Connection: close\r\n"), std::string::npos);
  EXPECT_TRUE(close_frame.ends_with("\r\n\r\n" + response.body));

  const std::string keep_frame = serialize_response(response, true);
  EXPECT_NE(keep_frame.find("Connection: keep-alive\r\n"),
            std::string::npos);
}

TEST(HttpSerialize, StatusTextCoversServerCodes) {
  for (const int status : {200, 400, 404, 405, 409, 413, 429, 431, 503})
    EXPECT_FALSE(http_status_text(status).empty());
  EXPECT_EQ(http_status_text(599), "Internal Server Error");
}

}  // namespace
}  // namespace cellscope::server
