#include "mapred/mapreduce.h"

#include <gtest/gtest.h>

#include <string>

namespace cellscope {
namespace {

TEST(MapReduce, WordCountStyleAggregation) {
  const std::vector<int> inputs = {1, 2, 3, 1, 2, 1};
  ThreadPool pool(3);
  const auto result = map_reduce<int, int, int>(
      std::span<const int>(inputs), pool,
      [](const int& x, const auto& emit) { emit(x, 1); },
      [](int& acc, int v) { acc += v; });
  EXPECT_EQ(result.at(1), 3);
  EXPECT_EQ(result.at(2), 2);
  EXPECT_EQ(result.at(3), 1);
}

TEST(MapReduce, EmptyInputYieldsEmptyResult) {
  const std::vector<int> inputs;
  ThreadPool pool(2);
  const auto result = map_reduce<int, int, int>(
      std::span<const int>(inputs), pool,
      [](const int& x, const auto& emit) { emit(x, 1); },
      [](int& acc, int v) { acc += v; });
  EXPECT_TRUE(result.empty());
}

TEST(MapReduce, MapperMayEmitMultipleKeys) {
  const std::vector<int> inputs = {5, 10};
  ThreadPool pool(2);
  const auto result = map_reduce<int, std::string, int>(
      std::span<const int>(inputs), pool,
      [](const int& x, const auto& emit) {
        emit("sum", x);
        emit("count", 1);
      },
      [](int& acc, int v) { acc += v; });
  EXPECT_EQ(result.at("sum"), 15);
  EXPECT_EQ(result.at("count"), 2);
}

TEST(MapReduce, MapperMayEmitNothing) {
  const std::vector<int> inputs = {1, 2, 3, 4};
  ThreadPool pool(2);
  const auto result = map_reduce<int, int, int>(
      std::span<const int>(inputs), pool,
      [](const int& x, const auto& emit) {
        if (x % 2 == 0) emit(x, x);
      },
      [](int& acc, int v) { acc += v; });
  EXPECT_EQ(result.size(), 2u);
  EXPECT_TRUE(result.contains(2));
  EXPECT_FALSE(result.contains(1));
}

TEST(MapReduce, ResultIsIndependentOfChunkSize) {
  std::vector<int> inputs(5000);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    inputs[i] = static_cast<int>(i % 97);
  ThreadPool pool(4);

  auto run = [&](std::size_t chunk) {
    MapReduceOptions options;
    options.chunk_size = chunk;
    return map_reduce<int, int, long>(
        std::span<const int>(inputs), pool,
        [](const int& x, const auto& emit) { emit(x % 10, static_cast<long>(x)); },
        [](long& acc, long v) { acc += v; }, options);
  };

  const auto a = run(1);
  const auto b = run(64);
  const auto c = run(100000);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(MapReduce, LargeInputSumsCorrectly) {
  std::vector<long> inputs(100000);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    inputs[i] = static_cast<long>(i);
  ThreadPool pool(4);
  const auto result = map_reduce<long, int, long>(
      std::span<const long>(inputs), pool,
      [](const long& x, const auto& emit) { emit(0, x); },
      [](long& acc, long v) { acc += v; });
  EXPECT_EQ(result.at(0), 100000L * 99999L / 2);
}

TEST(MapReduce, ChunkSizeZeroRejected) {
  const std::vector<int> inputs = {1};
  ThreadPool pool(1);
  MapReduceOptions options;
  options.chunk_size = 0;
  EXPECT_THROW((map_reduce<int, int, int>(
                   std::span<const int>(inputs), pool,
                   [](const int& x, const auto& emit) { emit(x, 1); },
                   [](int& acc, int v) { acc += v; }, options)),
               Error);
}

}  // namespace
}  // namespace cellscope
