#include "mapred/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <vector>

#include "common/error.h"

namespace cellscope {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, FuturePropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(future.get(), Error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ParallelForRethrowsWorkerFailure) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 7) throw Error("index 7 failed");
                                 }),
               Error);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<long> total{0};
  pool.parallel_for(100, [&total](std::size_t i) {
    total += static_cast<long>(i);
  });
  EXPECT_EQ(total.load(), 4950);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&counter] { ++counter; });
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, RequiresAtLeastOneWorker) {
  EXPECT_THROW(ThreadPool(0), Error);
}

TEST(ThreadPool, StatsCountSubmittedAndCompletedTasks) {
  ThreadPool pool(3);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 40; ++i)
    futures.push_back(pool.submit([] {
      volatile int sink = 0;
      for (int j = 0; j < 1000; ++j) sink = sink + j;
    }));
  for (auto& f : futures) f.get();

  const auto stats = pool.stats();
  EXPECT_EQ(stats.tasks_submitted, 40u);
  EXPECT_EQ(stats.tasks_completed, 40u);
  EXPECT_GE(stats.total_queue_wait_ms, 0.0);
  EXPECT_GE(stats.total_busy_ms, 0.0);
  ASSERT_EQ(stats.per_worker_busy_ms.size(), pool.thread_count());
  double summed = 0.0;
  for (const double busy : stats.per_worker_busy_ms) {
    EXPECT_GE(busy, 0.0);
    summed += busy;
  }
  EXPECT_DOUBLE_EQ(summed, stats.total_busy_ms);
}

TEST(ThreadPool, StatsCoverParallelForBlocks) {
  ThreadPool pool(2);
  pool.parallel_for(100, [](std::size_t) {});
  const auto stats = pool.stats();
  // parallel_for partitions into at most workers * 4 block tasks.
  EXPECT_GE(stats.tasks_submitted, 1u);
  EXPECT_LE(stats.tasks_submitted, 8u);
  EXPECT_EQ(stats.tasks_submitted, stats.tasks_completed);
}

TEST(ThreadPool, DefaultThreadCountIsAtLeastTwo) {
  EXPECT_GE(default_thread_count(), 2u);
}

TEST(ThreadPool, UnboundedTrySubmitAlwaysAccepts) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.max_queue(), 0u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    auto future = pool.try_submit([&counter] { ++counter; });
    ASSERT_TRUE(future.has_value());
    futures.push_back(std::move(*future));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, BoundedTrySubmitRejectsWhenFull) {
  ThreadPool pool(1, /*max_queue=*/2);
  EXPECT_EQ(pool.max_queue(), 2u);

  // Block the single worker so queued tasks cannot drain.
  std::promise<void> release;
  auto gate = release.get_future().share();
  auto blocker = pool.submit([gate] { gate.wait(); });

  // Fill the queue, then overflow it.
  std::vector<std::future<void>> queued;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int i = 0; i < 10; ++i) {
    if (auto future = pool.try_submit([] {})) {
      queued.push_back(std::move(*future));
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_LE(pool.queue_depth(), 2u);

  release.set_value();
  blocker.get();
  for (auto& f : queued) f.get();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.tasks_submitted, accepted + 1);
}

TEST(ThreadPool, BoundedSubmitBlocksUntilSpaceThenCompletes) {
  // submit() on a bounded pool applies backpressure rather than
  // rejecting: every task below runs exactly once.
  ThreadPool pool(2, /*max_queue=*/4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&counter] {
      volatile int sink = 0;
      for (int j = 0; j < 100; ++j) sink = sink + j;
      ++counter;
    }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace cellscope
