#include "analysis/freq_features.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "common/time_grid.h"
#include "traffic/profiles.h"

namespace cellscope {
namespace {

std::vector<double> tone(std::size_t k, double amplitude, double phase) {
  std::vector<double> x(TimeGrid::kSlots);
  for (std::size_t t = 0; t < x.size(); ++t)
    x[t] = amplitude * std::cos(2.0 * M_PI * static_cast<double>(k) *
                                    static_cast<double>(t) / x.size() +
                                phase);
  return x;
}

TEST(FreqFeatures, ExtractsAllSixNumbers) {
  auto x = tone(4, 0.5, 0.3);
  const auto day = tone(28, 1.5, -1.0);
  const auto half = tone(56, 0.8, 2.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += day[i] + half[i];
  const auto f = compute_freq_features(x);
  EXPECT_NEAR(f.amp_week, 0.5, 1e-9);
  EXPECT_NEAR(f.phase_week, 0.3, 1e-9);
  EXPECT_NEAR(f.amp_day, 1.5, 1e-9);
  EXPECT_NEAR(f.phase_day, -1.0, 1e-9);
  EXPECT_NEAR(f.amp_half_day, 0.8, 1e-9);
  EXPECT_NEAR(f.phase_half_day, 2.0, 1e-9);
}

TEST(FreqFeatures, QpFeatureIsTheDayDayHalfTriple) {
  FreqFeatures f;
  f.amp_day = 1.0;
  f.phase_day = 2.0;
  f.amp_half_day = 3.0;
  const auto qp = f.qp_feature();
  EXPECT_DOUBLE_EQ(qp[0], 1.0);
  EXPECT_DOUBLE_EQ(qp[1], 2.0);
  EXPECT_DOUBLE_EQ(qp[2], 3.0);
}

TEST(FreqFeatures, BatchMatchesSingle) {
  const std::vector<std::vector<double>> rows = {tone(28, 1.0, 0.0),
                                                 tone(56, 2.0, 1.0)};
  const auto batch = compute_freq_features(rows);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_NEAR(batch[0].amp_day, compute_freq_features(rows[0]).amp_day,
              1e-12);
  EXPECT_NEAR(batch[1].amp_half_day,
              compute_freq_features(rows[1]).amp_half_day, 1e-12);
}

TEST(FreqFeatures, RequiresFullGrid) {
  EXPECT_THROW(compute_freq_features(std::vector<double>(100)), Error);
}

TEST(FreqFeatures, VarianceSpectrumPeaksAtDiscriminatingFrequencies) {
  // Rows differing only in their k=28 amplitude: the variance spectrum
  // must be (near) zero everywhere except k=28.
  std::vector<std::vector<double>> rows;
  for (double a = 0.5; a <= 2.0; a += 0.5) rows.push_back(tone(28, a, 0.0));
  const auto var = amplitude_variance_spectrum(rows, 60);
  for (std::size_t k = 0; k <= 60; ++k) {
    if (k == 28) {
      EXPECT_GT(var[k], 0.1);
    } else {
      EXPECT_NEAR(var[k], 0.0, 1e-9) << "k = " << k;
    }
  }
}

TEST(FreqFeatures, VarianceSpectrumOfCanonicalProfilesPeaksAtPrincipal) {
  // Fig. 13: across the five patterns, DFT-amplitude variance is largest
  // at the principal components (among low frequencies).
  std::vector<std::vector<double>> rows;
  for (const auto r : all_regions())
    rows.push_back(zscore(TrafficProfile::canonical(r).series()));
  const auto var = amplitude_variance_spectrum(rows, 100);
  // k=28 and k=56 must dominate their neighborhoods.
  EXPECT_GT(var[28], var[20]);
  EXPECT_GT(var[28], var[35]);
  EXPECT_GT(var[56], var[50]);
  EXPECT_GT(var[56], var[62]);
  EXPECT_GT(var[4], var[10]);
}

TEST(CircularMean, HandlesWraparound) {
  // Phases near ±π average to ±π, not 0.
  const std::vector<double> phases = {3.1, -3.1};
  const double m = circular_mean(phases);
  EXPECT_GT(std::fabs(m), 3.0);
}

TEST(CircularMean, MatchesArithmeticMeanForNearbyPhases) {
  const std::vector<double> phases = {0.5, 0.7, 0.9};
  EXPECT_NEAR(circular_mean(phases), 0.7, 1e-6);
}

TEST(CircularStddev, ZeroForIdenticalPhases) {
  const std::vector<double> phases = {1.2, 1.2, 1.2};
  EXPECT_NEAR(circular_stddev(phases), 0.0, 1e-6);
}

TEST(CircularStddev, GrowsWithDispersion) {
  const std::vector<double> tight = {1.0, 1.1, 0.9};
  const std::vector<double> wide = {0.0, 1.5, -1.5};
  EXPECT_LT(circular_stddev(tight), circular_stddev(wide));
}

TEST(CircularStats, EmptyInputThrows) {
  EXPECT_THROW(circular_mean(std::vector<double>{}), Error);
  EXPECT_THROW(circular_stddev(std::vector<double>{}), Error);
}

}  // namespace
}  // namespace cellscope
