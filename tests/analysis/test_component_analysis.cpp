#include "analysis/component_analysis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace cellscope {
namespace {

using Feature = std::array<double, 3>;

/// Two clusters in feature space: one around the origin, one around
/// (10, 0, 0), with an extra extreme-but-dense point and a lone outlier.
struct Setup {
  std::vector<Feature> features;
  std::vector<int> labels;
};

Setup make_setup() {
  Setup s;
  Rng rng(1);
  // Cluster 0 around origin.
  for (int i = 0; i < 20; ++i) {
    s.features.push_back({rng.normal(0.0, 0.05), rng.normal(0.0, 0.05),
                          rng.normal(0.0, 0.05)});
    s.labels.push_back(0);
  }
  // Cluster 1 around (10, 0, 0).
  for (int i = 0; i < 20; ++i) {
    s.features.push_back({10.0 + rng.normal(0.0, 0.05),
                          rng.normal(0.0, 0.05), rng.normal(0.0, 0.05)});
    s.labels.push_back(1);
  }
  return s;
}

TEST(Representative, PicksTheFarthestDensePoint) {
  auto s = make_setup();
  // A small dense knot of cluster-0 points farther from cluster 1 than
  // the origin knot.
  for (int i = 0; i < 5; ++i) {
    s.features.push_back({-5.0 + 0.01 * i, 0.0, 0.0});
    s.labels.push_back(0);
  }
  RepresentativeOptions options;
  options.density_radius = 0.5;
  options.min_neighbors = 3;
  const auto rep = find_representative(s.features, s.labels, 0, options);
  // Must be one of the knot points at x = -5.
  EXPECT_LT(s.features[rep][0], -4.0);
}

TEST(Representative, RejectsIsolatedOutliers) {
  auto s = make_setup();
  // A lone cluster-0 outlier even farther from cluster 1 — but with no
  // neighbors, it is a noise point and must not be chosen.
  s.features.push_back({-50.0, 0.0, 0.0});
  s.labels.push_back(0);
  RepresentativeOptions options;
  options.density_radius = 0.5;
  options.min_neighbors = 3;
  const auto rep = find_representative(s.features, s.labels, 0, options);
  EXPECT_GT(s.features[rep][0], -1.0);  // stayed with the dense knot
}

TEST(Representative, FallsBackWhenEverythingIsSparse) {
  // Three isolated points per cluster; nothing passes the density test,
  // so the fallback picks the farthest point regardless.
  std::vector<Feature> features = {
      {0.0, 0.0, 0.0}, {100.0, 0.0, 0.0}, {-100.0, 0.0, 0.0}};
  std::vector<int> labels = {0, 1, 0};
  RepresentativeOptions options;
  options.density_radius = 0.1;
  options.min_neighbors = 5;
  const auto rep = find_representative(features, labels, 0, options);
  EXPECT_EQ(rep, 2u);  // (-100,0,0) is farthest from cluster 1
}

TEST(Representative, ValidatesInput) {
  std::vector<Feature> features = {{0.0, 0.0, 0.0}};
  EXPECT_THROW(find_representative(features, {0}, 0), Error);  // no others
  EXPECT_THROW(find_representative(features, {0, 1}, 0), Error);
  EXPECT_THROW(find_representative({}, {}, 0), Error);
}

TEST(Decompose, RecoversKnownMixture) {
  const std::array<Feature, 4> primaries = {
      Feature{1.0, 0.0, 0.0}, Feature{0.0, 1.0, 0.0},
      Feature{0.0, 0.0, 1.0}, Feature{1.0, 1.0, 1.0}};
  const std::array<double, 4> weights = {0.4, 0.3, 0.2, 0.1};
  Feature target{};
  for (int i = 0; i < 4; ++i)
    for (int d = 0; d < 3; ++d) target[d] += weights[i] * primaries[i][d];
  const auto decomposition = decompose_feature(target, primaries);
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(decomposition.coefficients[i], weights[i], 1e-6);
  EXPECT_NEAR(decomposition.residual, 0.0, 1e-9);
}

TEST(Decompose, CoefficientsAreConvex) {
  Rng rng(2);
  const std::array<Feature, 4> primaries = {
      Feature{1.0, 2.0, 0.5}, Feature{0.2, 1.0, 1.5},
      Feature{2.0, 0.3, 0.3}, Feature{0.5, 0.5, 2.0}};
  for (int trial = 0; trial < 30; ++trial) {
    const Feature target{rng.normal(1.0, 2.0), rng.normal(1.0, 2.0),
                         rng.normal(1.0, 2.0)};
    const auto d = decompose_feature(target, primaries);
    double total = 0.0;
    for (const double c : d.coefficients) {
      EXPECT_GE(c, -1e-9);
      total += c;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Decompose, OutsidePolygonReportsResidual) {
  const std::array<Feature, 4> primaries = {
      Feature{0.0, 0.0, 0.0}, Feature{1.0, 0.0, 0.0},
      Feature{0.0, 1.0, 0.0}, Feature{0.0, 0.0, 1.0}};
  const Feature target{5.0, 5.0, 5.0};  // far outside
  const auto d = decompose_feature(target, primaries);
  EXPECT_GT(d.residual, 1.0);
}

TEST(CombineSeries, WeightedSum) {
  std::array<std::vector<double>, 4> series;
  for (int i = 0; i < 4; ++i) series[i].assign(10, static_cast<double>(i));
  const std::array<double, 4> coefficients = {0.1, 0.2, 0.3, 0.4};
  const auto combined = combine_series(coefficients, series);
  // 0.1*0 + 0.2*1 + 0.3*2 + 0.4*3 = 2.0
  for (const double v : combined) EXPECT_NEAR(v, 2.0, 1e-12);
}

TEST(CombineSeries, ZeroWeightSkipsComponent) {
  std::array<std::vector<double>, 4> series;
  for (int i = 0; i < 4; ++i) series[i].assign(5, 1.0);
  const std::array<double, 4> coefficients = {1.0, 0.0, 0.0, 0.0};
  const auto combined = combine_series(coefficients, series);
  for (const double v : combined) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(CombineSeries, LengthMismatchThrows) {
  std::array<std::vector<double>, 4> series;
  for (int i = 0; i < 4; ++i) series[i].assign(5, 1.0);
  series[2].pop_back();
  EXPECT_THROW(combine_series({0.25, 0.25, 0.25, 0.25}, series), Error);
}

}  // namespace
}  // namespace cellscope
