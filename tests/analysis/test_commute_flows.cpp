#include "analysis/commute_flows.h"

#include <gtest/gtest.h>

#include "city/deployment.h"
#include "common/error.h"
#include "traffic/mobility_trace.h"

namespace cellscope {
namespace {

TrafficLog log_at(std::uint64_t user, std::uint32_t tower,
                  std::uint32_t minute) {
  TrafficLog log;
  log.user_id = user;
  log.tower_id = tower;
  log.start_minute = minute;
  log.end_minute = minute + 5;
  log.bytes = 100;
  return log;
}

TEST(CommuteFlows, CountsSimpleTransition) {
  // Tower 0 resident, tower 1 office; user moves 0 -> 1 at 8:30 Monday.
  const std::vector<FunctionalRegion> regions = {
      FunctionalRegion::kResident, FunctionalRegion::kOffice};
  const std::vector<TrafficLog> logs = {log_at(7, 0, 8 * 60),
                                        log_at(7, 1, 8 * 60 + 30)};
  FlowOptions options;
  const auto flows = commute_flows(logs, regions, options);
  EXPECT_EQ(
      flows.counts[static_cast<int>(FunctionalRegion::kResident)]
                  [static_cast<int>(FunctionalRegion::kOffice)],
      1u);
  EXPECT_EQ(flows.total_cross(), 1u);
  EXPECT_DOUBLE_EQ(
      flows.share(FunctionalRegion::kResident, FunctionalRegion::kOffice),
      1.0);
}

TEST(CommuteFlows, IgnoresSameTowerAndDifferentUsers) {
  const std::vector<FunctionalRegion> regions = {
      FunctionalRegion::kResident, FunctionalRegion::kOffice};
  const std::vector<TrafficLog> logs = {
      log_at(1, 0, 480), log_at(1, 0, 500),   // same tower
      log_at(2, 1, 510),                      // different user
  };
  EXPECT_EQ(commute_flows(logs, regions, FlowOptions{}).total_cross(), 0u);
}

TEST(CommuteFlows, GapLimitSplitsStalePairs) {
  const std::vector<FunctionalRegion> regions = {
      FunctionalRegion::kResident, FunctionalRegion::kOffice};
  const std::vector<TrafficLog> logs = {log_at(1, 0, 480),
                                        log_at(1, 1, 480 + 300)};
  FlowOptions tight;
  tight.max_gap_minutes = 120;
  EXPECT_EQ(commute_flows(logs, regions, tight).total_cross(), 0u);
  FlowOptions loose;
  loose.max_gap_minutes = 400;
  EXPECT_EQ(commute_flows(logs, regions, loose).total_cross(), 1u);
}

TEST(CommuteFlows, HourWindowFilters) {
  const std::vector<FunctionalRegion> regions = {
      FunctionalRegion::kResident, FunctionalRegion::kOffice};
  const std::vector<TrafficLog> logs = {log_at(1, 0, 17 * 60),
                                        log_at(1, 1, 18 * 60)};
  FlowOptions morning;
  morning.hour_begin = 6.0;
  morning.hour_end = 11.0;
  EXPECT_EQ(commute_flows(logs, regions, morning).total_cross(), 0u);
  FlowOptions evening;
  evening.hour_begin = 16.0;
  evening.hour_end = 21.0;
  EXPECT_EQ(commute_flows(logs, regions, evening).total_cross(), 1u);
}

TEST(CommuteFlows, WeekendFilterWorks) {
  const std::vector<FunctionalRegion> regions = {
      FunctionalRegion::kResident, FunctionalRegion::kEntertainment};
  // Saturday (day 5) 13:00.
  const std::uint32_t saturday = 5 * 24 * 60;
  const std::vector<TrafficLog> logs = {log_at(1, 0, saturday + 12 * 60),
                                        log_at(1, 1, saturday + 13 * 60)};
  FlowOptions weekday;
  EXPECT_EQ(commute_flows(logs, regions, weekday).total_cross(), 0u);
  FlowOptions weekend;
  weekend.weekdays_only = false;
  EXPECT_EQ(commute_flows(logs, regions, weekend).total_cross(), 1u);
}

TEST(CommuteFlows, UnsortedInputIsHandled) {
  const std::vector<FunctionalRegion> regions = {
      FunctionalRegion::kResident, FunctionalRegion::kOffice};
  const std::vector<TrafficLog> logs = {log_at(1, 1, 540),
                                        log_at(1, 0, 480)};
  const auto flows = commute_flows(logs, regions, FlowOptions{});
  EXPECT_EQ(
      flows.counts[static_cast<int>(FunctionalRegion::kResident)]
                  [static_cast<int>(FunctionalRegion::kOffice)],
      1u);
}

TEST(CommuteFlows, ValidatesInput) {
  FlowOptions bad;
  bad.hour_begin = 10.0;
  bad.hour_end = 5.0;
  EXPECT_THROW(commute_flows({}, {}, bad), Error);
  const std::vector<TrafficLog> logs = {log_at(1, 5, 480),
                                        log_at(1, 6, 500)};
  EXPECT_THROW(commute_flows(logs, {FunctionalRegion::kResident},
                             FlowOptions{}),
               Error);
}

TEST(CommuteFlows, MorningFlowsRunHomeToWorkOnMobilityTraces) {
  // The end-to-end claim: mobility-generated logs show the paper's
  // migration sequence in the morning and its reverse in the evening.
  const auto city = CityModel::create_default();
  DeploymentOptions deployment;
  deployment.n_towers = 300;
  const auto towers = deploy_towers(city, deployment);
  MobilityOptions mobility_options;
  mobility_options.n_users = 400;
  const auto model = MobilityModel::create(towers, mobility_options);
  MobilityTraceOptions trace_options;
  trace_options.day_begin = 0;
  trace_options.day_end = 5;  // one work week
  const auto logs = generate_mobility_trace(towers, model, trace_options);

  std::vector<FunctionalRegion> regions;
  for (const auto& t : towers) regions.push_back(t.true_region);

  FlowOptions morning;
  morning.hour_begin = 6.0;
  morning.hour_end = 11.0;
  const auto am = commute_flows(logs, regions, morning);
  FlowOptions evening;
  evening.hour_begin = 16.0;
  evening.hour_end = 21.0;
  const auto pm = commute_flows(logs, regions, evening);

  // Morning: flows *into* office exceed flows *out of* office.
  std::size_t into_office_am = 0;
  std::size_t out_of_office_am = 0;
  for (int r = 0; r < kNumRegions; ++r) {
    if (r == static_cast<int>(FunctionalRegion::kOffice)) continue;
    into_office_am += am.counts[r][static_cast<int>(FunctionalRegion::kOffice)];
    out_of_office_am +=
        am.counts[static_cast<int>(FunctionalRegion::kOffice)][r];
  }
  EXPECT_GT(into_office_am, 2 * out_of_office_am);

  // Evening: reversed.
  std::size_t into_office_pm = 0;
  std::size_t out_of_office_pm = 0;
  for (int r = 0; r < kNumRegions; ++r) {
    if (r == static_cast<int>(FunctionalRegion::kOffice)) continue;
    into_office_pm += pm.counts[r][static_cast<int>(FunctionalRegion::kOffice)];
    out_of_office_pm +=
        pm.counts[static_cast<int>(FunctionalRegion::kOffice)][r];
  }
  EXPECT_GT(out_of_office_pm, 2 * into_office_pm);

  // The commute routes through transport towers in both windows.
  EXPECT_GT(am.share(FunctionalRegion::kTransport, FunctionalRegion::kOffice),
            0.05);
  EXPECT_GT(pm.share(FunctionalRegion::kOffice, FunctionalRegion::kTransport),
            0.05);
}

}  // namespace
}  // namespace cellscope
