#include "analysis/labeling.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cellscope {
namespace {

using PoiRow = std::array<double, kNumPoiTypes>;

TEST(Labeling, ClearDominanceAssignsAllFourTypes) {
  // Five clusters: four with one dominant type each, one flat.
  const std::vector<PoiRow> normalized = {
      {0.9, 0.1, 0.1, 0.1},   // resident-dominant
      {0.1, 0.8, 0.1, 0.1},   // transport-dominant
      {0.1, 0.1, 0.9, 0.1},   // office-dominant
      {0.1, 0.1, 0.1, 0.85},  // entertainment-dominant
      {0.2, 0.2, 0.2, 0.2},   // flat
  };
  const auto labeling = label_clusters_by_poi(normalized);
  EXPECT_EQ(labeling.region_of_cluster[0], FunctionalRegion::kResident);
  EXPECT_EQ(labeling.region_of_cluster[1], FunctionalRegion::kTransport);
  EXPECT_EQ(labeling.region_of_cluster[2], FunctionalRegion::kOffice);
  EXPECT_EQ(labeling.region_of_cluster[3],
            FunctionalRegion::kEntertainment);
  EXPECT_EQ(labeling.region_of_cluster[4],
            FunctionalRegion::kComprehensive);
}

TEST(Labeling, ResidentEverywhereStillResolvedByRelativeShare) {
  // Resident counts are high in all clusters (as in the real city); the
  // labeler must use relative dominance, not absolute counts.
  const std::vector<PoiRow> normalized = {
      {0.50, 0.02, 0.10, 0.10},  // highest resident share
      {0.40, 0.30, 0.10, 0.10},  // transport stands out relatively
      {0.40, 0.02, 0.60, 0.10},
      {0.40, 0.02, 0.10, 0.70},
      {0.42, 0.03, 0.12, 0.12},
  };
  const auto labeling = label_clusters_by_poi(normalized);
  EXPECT_EQ(labeling.region_of_cluster[0], FunctionalRegion::kResident);
  EXPECT_EQ(labeling.region_of_cluster[1], FunctionalRegion::kTransport);
  EXPECT_EQ(labeling.region_of_cluster[2], FunctionalRegion::kOffice);
  EXPECT_EQ(labeling.region_of_cluster[3],
            FunctionalRegion::kEntertainment);
  EXPECT_EQ(labeling.region_of_cluster[4],
            FunctionalRegion::kComprehensive);
}

TEST(Labeling, EachPureRegionAssignedAtMostOnce) {
  const std::vector<PoiRow> normalized = {
      {0.9, 0.0, 0.0, 0.0},
      {0.8, 0.0, 0.0, 0.0},  // also resident-heavy
      {0.0, 0.0, 0.9, 0.0},
  };
  const auto labeling = label_clusters_by_poi(normalized);
  int resident_count = 0;
  for (const auto r : labeling.region_of_cluster)
    if (r == FunctionalRegion::kResident) ++resident_count;
  EXPECT_EQ(resident_count, 1);
}

TEST(Labeling, FewerClustersThanTypes) {
  const std::vector<PoiRow> normalized = {
      {0.9, 0.0, 0.1, 0.0},
      {0.0, 0.0, 0.9, 0.1},
  };
  const auto labeling = label_clusters_by_poi(normalized);
  EXPECT_EQ(labeling.region_of_cluster[0], FunctionalRegion::kResident);
  EXPECT_EQ(labeling.region_of_cluster[1], FunctionalRegion::kOffice);
}

TEST(Labeling, AllZeroSignalFallsBackToComprehensive) {
  const std::vector<PoiRow> normalized = {
      {0.0, 0.0, 0.0, 0.0}, {0.0, 0.0, 0.0, 0.0}};
  const auto labeling = label_clusters_by_poi(normalized);
  for (const auto r : labeling.region_of_cluster)
    EXPECT_EQ(r, FunctionalRegion::kComprehensive);
}

TEST(Validation, PerfectLabelsGiveFullAccuracy) {
  std::vector<Tower> towers(4);
  towers[0].true_region = FunctionalRegion::kResident;
  towers[1].true_region = FunctionalRegion::kResident;
  towers[2].true_region = FunctionalRegion::kOffice;
  towers[3].true_region = FunctionalRegion::kOffice;
  const std::vector<int> labels = {0, 0, 1, 1};
  ClusterLabeling labeling;
  labeling.region_of_cluster = {FunctionalRegion::kResident,
                                FunctionalRegion::kOffice};
  const auto v = validate_labels(labels, labeling, {0, 1, 2, 3}, towers);
  EXPECT_DOUBLE_EQ(v.accuracy, 1.0);
  EXPECT_EQ(v.confusion[static_cast<int>(FunctionalRegion::kResident)]
                       [static_cast<int>(FunctionalRegion::kResident)],
            2u);
}

TEST(Validation, ConfusionMatrixCountsMislabels) {
  std::vector<Tower> towers(3);
  towers[0].true_region = FunctionalRegion::kResident;
  towers[1].true_region = FunctionalRegion::kOffice;
  towers[2].true_region = FunctionalRegion::kOffice;
  const std::vector<int> labels = {0, 0, 1};
  ClusterLabeling labeling;
  labeling.region_of_cluster = {FunctionalRegion::kResident,
                                FunctionalRegion::kOffice};
  const auto v = validate_labels(labels, labeling, {0, 1, 2}, towers);
  EXPECT_NEAR(v.accuracy, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(v.confusion[static_cast<int>(FunctionalRegion::kOffice)]
                       [static_cast<int>(FunctionalRegion::kResident)],
            1u);
}

TEST(Validation, ValidatesInput) {
  std::vector<Tower> towers(1);
  ClusterLabeling labeling;
  labeling.region_of_cluster = {FunctionalRegion::kResident};
  EXPECT_THROW(validate_labels({0, 0}, labeling, {0}, towers), Error);
  EXPECT_THROW(validate_labels({1}, labeling, {0}, towers), Error);
  EXPECT_THROW(validate_labels({0}, labeling, {5}, towers), Error);
}

}  // namespace
}  // namespace cellscope
