#include "analysis/time_features.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "traffic/profiles.h"

namespace cellscope {
namespace {

/// A synthetic series with a daily Gaussian peak at `peak_hour`, weekend
/// traffic scaled by `weekend_scale`.
std::vector<double> synthetic_series(double peak_hour, double weekend_scale,
                                     double floor = 0.1) {
  std::vector<double> series(TimeGrid::kSlots);
  for (std::size_t s = 0; s < series.size(); ++s) {
    const double h = TimeGrid::hour_of_day(s);
    double d = std::fabs(h - peak_hour);
    d = std::min(d, 24.0 - d);
    const double value = floor + std::exp(-d * d / 8.0);
    series[s] = value * (TimeGrid::is_weekday(s) ? 1.0 : weekend_scale);
  }
  return series;
}

TEST(TimeFeatures, FindsThePeakHour) {
  const auto f = compute_time_features(synthetic_series(14.0, 1.0));
  EXPECT_NEAR(f.weekday.peak_hour, 14.0, 0.5);
  EXPECT_NEAR(f.weekend.peak_hour, 14.0, 0.5);
}

TEST(TimeFeatures, FindsTheValleyOppositeThePeak) {
  const auto f = compute_time_features(synthetic_series(12.0, 1.0));
  // Valley is on the far side of the clock (0:00 or 24:00 side).
  const double valley = f.weekday.valley_hour;
  EXPECT_TRUE(valley < 3.0 || valley > 21.0) << valley;
}

TEST(TimeFeatures, WeekdayWeekendRatioMatchesScale) {
  const auto f = compute_time_features(synthetic_series(12.0, 0.5));
  EXPECT_NEAR(f.weekday_weekend_ratio, 2.0, 0.05);
  const auto flat = compute_time_features(synthetic_series(12.0, 1.0));
  EXPECT_NEAR(flat.weekday_weekend_ratio, 1.0, 0.01);
}

TEST(TimeFeatures, PeakValleyRatio) {
  const auto f = compute_time_features(synthetic_series(12.0, 1.0, 0.1));
  // Max ≈ 1.1, min ≈ 0.1 -> ratio ≈ 11.
  EXPECT_NEAR(f.weekday.peak_valley_ratio, 11.0, 1.5);
}

TEST(TimeFeatures, TotalsSplitByDayType) {
  std::vector<double> series(TimeGrid::kSlots, 0.0);
  for (std::size_t s = 0; s < series.size(); ++s)
    series[s] = TimeGrid::is_weekday(s) ? 2.0 : 3.0;
  const auto f = compute_time_features(series);
  EXPECT_DOUBLE_EQ(f.weekday.total_bytes, 2.0 * 20 * 144);
  EXPECT_DOUBLE_EQ(f.weekend.total_bytes, 3.0 * 8 * 144);
  EXPECT_NEAR(f.weekday_weekend_ratio, 2.0 / 3.0, 1e-9);
}

TEST(TimeFeatures, DetectsDoubleHumps) {
  // Two daily peaks at 8:00 and 18:00 (the transport signature).
  std::vector<double> series(TimeGrid::kSlots);
  for (std::size_t s = 0; s < series.size(); ++s) {
    const double h = TimeGrid::hour_of_day(s);
    auto bump = [&](double center) {
      double d = std::fabs(h - center);
      d = std::min(d, 24.0 - d);
      return std::exp(-d * d / 2.0);
    };
    series[s] = 0.05 + bump(8.0) + 0.9 * bump(18.0);
  }
  const auto f = compute_time_features(series);
  ASSERT_EQ(f.weekday.peak_hours.size(), 2u);
  std::vector<double> hours = f.weekday.peak_hours;
  std::sort(hours.begin(), hours.end());
  EXPECT_NEAR(hours[0], 8.0, 0.5);
  EXPECT_NEAR(hours[1], 18.0, 0.5);
}

TEST(TimeFeatures, SecondaryFractionFiltersSmallBumps) {
  std::vector<double> series(TimeGrid::kSlots);
  for (std::size_t s = 0; s < series.size(); ++s) {
    const double h = TimeGrid::hour_of_day(s);
    auto bump = [&](double center) {
      double d = std::fabs(h - center);
      d = std::min(d, 24.0 - d);
      return std::exp(-d * d / 2.0);
    };
    series[s] = 0.05 + bump(12.0) + 0.3 * bump(20.0);  // minor bump
  }
  TimeFeatureOptions options;
  options.secondary_fraction = 0.55;
  const auto strict = compute_time_features(series, options);
  EXPECT_EQ(strict.weekday.peak_hours.size(), 1u);
  options.secondary_fraction = 0.2;
  const auto lenient = compute_time_features(series, options);
  EXPECT_EQ(lenient.weekday.peak_hours.size(), 2u);
}

TEST(TimeFeatures, MeanDayHas144Slots) {
  const auto f = compute_time_features(synthetic_series(10.0, 1.0));
  EXPECT_EQ(f.weekday.mean_day.size(),
            static_cast<std::size_t>(TimeGrid::kSlotsPerDay));
  EXPECT_EQ(f.weekend.mean_day.size(),
            static_cast<std::size_t>(TimeGrid::kSlotsPerDay));
}

TEST(TimeFeatures, RequiresFullGrid) {
  EXPECT_THROW(compute_time_features(std::vector<double>(100)), Error);
}

TEST(TimeFeatures, FormatPeakTime) {
  EXPECT_EQ(format_peak_time(21.5), "21:30");
  EXPECT_EQ(format_peak_time(8.0), "08:00");
}

TEST(TimeFeatures, ZeroMinTrafficGivesInfiniteRatio) {
  std::vector<double> series(TimeGrid::kSlots, 0.0);
  for (std::size_t s = 0; s < series.size(); ++s)
    if (TimeGrid::hour_of_day(s) > 6.0) series[s] = 1.0;
  const auto f = compute_time_features(series);
  EXPECT_TRUE(std::isinf(f.weekday.peak_valley_ratio));
}

// Parameterized sweep over peak positions.
class PeakPosition : public ::testing::TestWithParam<double> {};

TEST_P(PeakPosition, PeakIsLocatedAnywhereOnTheClock) {
  const double peak = GetParam();
  const auto f = compute_time_features(synthetic_series(peak, 1.0));
  double err = std::fabs(f.weekday.peak_hour - peak);
  err = std::min(err, 24.0 - err);
  EXPECT_LT(err, 0.5) << "peak at " << peak;
}

INSTANTIATE_TEST_SUITE_P(Hours, PeakPosition,
                         ::testing::Values(0.0, 4.5, 8.0, 12.0, 15.5, 18.0,
                                           21.5, 23.5));

}  // namespace
}  // namespace cellscope
