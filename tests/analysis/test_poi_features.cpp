#include "analysis/poi_features.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace cellscope {
namespace {

using Counts = std::array<std::size_t, kNumPoiTypes>;

TEST(NormalizedPoi, MinMaxThenAverage) {
  // Two clusters of two towers each; counts chosen so normalization is
  // easy to verify. Type 0 ranges 0..100.
  const std::vector<Counts> counts = {
      {100, 0, 0, 0}, {0, 0, 0, 0}, {50, 0, 0, 0}, {50, 0, 0, 0}};
  const std::vector<int> labels = {0, 0, 1, 1};
  const auto normalized = normalized_poi_by_cluster(counts, labels);
  ASSERT_EQ(normalized.size(), 2u);
  EXPECT_NEAR(normalized[0][0], 0.5, 1e-12);  // (1.0 + 0.0) / 2
  EXPECT_NEAR(normalized[1][0], 0.5, 1e-12);  // (0.5 + 0.5) / 2
  // Constant-zero columns normalize to zero.
  EXPECT_NEAR(normalized[0][1], 0.0, 1e-12);
}

TEST(NormalizedPoi, DominantClusterWins) {
  const std::vector<Counts> counts = {
      {10, 0, 200, 5}, {12, 0, 180, 6},   // office-ish towers
      {11, 0, 10, 80}, {9, 1, 12, 90}};   // entertainment-ish towers
  const std::vector<int> labels = {0, 0, 1, 1};
  const auto normalized = normalized_poi_by_cluster(counts, labels);
  EXPECT_GT(normalized[0][static_cast<int>(PoiType::kOffice)],
            normalized[1][static_cast<int>(PoiType::kOffice)]);
  EXPECT_GT(normalized[1][static_cast<int>(PoiType::kEntertain)],
            normalized[0][static_cast<int>(PoiType::kEntertain)]);
}

TEST(PoiShares, RowsSumToOne) {
  const std::vector<std::array<double, kNumPoiTypes>> normalized = {
      {0.2, 0.1, 0.4, 0.3}, {0.0, 0.0, 0.0, 0.0}, {1.0, 1.0, 1.0, 1.0}};
  const auto shares = poi_shares_by_cluster(normalized);
  double row0 = 0.0;
  for (const double v : shares[0]) row0 += v;
  EXPECT_NEAR(row0, 1.0, 1e-12);
  // All-zero rows stay zero rather than dividing by zero.
  for (const double v : shares[1]) EXPECT_DOUBLE_EQ(v, 0.0);
  for (const double v : shares[2]) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(NtfIdf, RowsSumToOneWhenAnyPoiPresent) {
  const std::vector<Counts> counts = {{5, 1, 0, 2}, {0, 0, 0, 0}};
  const auto result = ntf_idf(counts);
  double row0 = 0.0;
  for (const double v : result[0]) row0 += v;
  EXPECT_NEAR(row0, 1.0, 1e-12);
  for (const double v : result[1]) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NtfIdf, UbiquitousTypesGetZeroWeight) {
  // Type 0 appears at every tower -> IDF = log(1) = 0 -> NTF-IDF 0.
  const std::vector<Counts> counts = {{5, 1, 0, 0}, {3, 0, 2, 0},
                                      {7, 0, 0, 4}};
  const auto result = ntf_idf(counts);
  for (const auto& row : result)
    EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(NtfIdf, RareTypesGetBoosted) {
  // Type 1 appears at 1 of 4 towers, type 2 at 3 of 4 — same raw count at
  // tower 0, but type 1 carries higher IDF there.
  const std::vector<Counts> counts = {
      {0, 5, 5, 0}, {0, 0, 3, 0}, {0, 0, 4, 0}, {0, 0, 0, 1}};
  const auto result = ntf_idf(counts);
  EXPECT_GT(result[0][1], result[0][2]);
}

TEST(NtfIdf, MatchesTheFormula) {
  // Hand-check IDF_i = log(M/M_i), TF-IDF = IDF * log(1 + count).
  const std::vector<Counts> counts = {{0, 2, 0, 0}, {0, 0, 3, 0}};
  const auto result = ntf_idf(counts);
  const double idf = std::log(2.0 / 1.0);
  const double t1 = idf * std::log(3.0);  // tower 0, type 1
  // Tower 0 has only type 1 -> its share is 1.
  EXPECT_NEAR(result[0][1], t1 / t1, 1e-12);
  EXPECT_NEAR(result[1][2], 1.0, 1e-12);
}

TEST(NtfIdf, ZeroAbsenceConsistency) {
  // The paper's Table 6 consistency check: a type absent around a tower
  // must have NTF-IDF exactly zero.
  const std::vector<Counts> counts = {{5, 0, 3, 1}, {2, 4, 0, 0}};
  const auto result = ntf_idf(counts);
  EXPECT_DOUBLE_EQ(result[0][1], 0.0);
  EXPECT_DOUBLE_EQ(result[1][2], 0.0);
  EXPECT_DOUBLE_EQ(result[1][3], 0.0);
}

TEST(PoiFeatures, ValidatesInput) {
  EXPECT_THROW(ntf_idf({}), Error);
  const std::vector<Counts> counts = {{1, 0, 0, 0}};
  EXPECT_THROW(normalized_poi_by_cluster(counts, {0, 1}), Error);
  EXPECT_THROW(normalized_poi_by_cluster({}, {}), Error);
}

}  // namespace
}  // namespace cellscope
