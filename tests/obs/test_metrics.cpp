#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"

namespace cellscope::obs {
namespace {

TEST(Counter, ConcurrentIncrementsSumExactly) {
  auto& counter =
      MetricsRegistry::instance().counter("test.counter.concurrent");
  counter.reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Counter, AddWithDelta) {
  Counter c;
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksValueAndHighWatermark) {
  Gauge g;
  g.add(3);
  g.add(4);
  g.add(-5);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 7);
  g.set(1);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max_value(), 7);  // watermark survives set
}

TEST(Histogram, BucketBoundariesAreLessOrEqual) {
  Histogram h({1.0, 2.0, 4.0});
  // le-semantics: a value equal to a bound lands in that bound's bucket.
  h.observe(0.5);
  h.observe(1.0);
  h.observe(1.5);
  h.observe(2.0);
  h.observe(4.0);
  h.observe(5.0);  // above every bound -> overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(counts[2], 1u);  // 4.0
  EXPECT_EQ(counts[3], 1u);  // 5.0 overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.mean(), 14.0 / 6.0);
}

TEST(Histogram, ConcurrentObservationsSumExactly) {
  Histogram h({10.0, 100.0});
  constexpr int kThreads = 6;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObservations; ++i) h.observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kObservations);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kObservations);
}

TEST(Gauge, ConcurrentAddsKeepWatermarkAtLeastPeakSum) {
  // The watermark must be computed from the post-add value returned by
  // fetch_add, not from a separate load — with N adders and no removals
  // the final max must equal the exact total, regardless of interleaving.
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kAdds; ++i) g.add(1);
    });
  }
  for (auto& t : threads) t.join();
  constexpr std::int64_t kTotal =
      static_cast<std::int64_t>(kThreads) * kAdds;
  EXPECT_EQ(g.value(), kTotal);
  EXPECT_EQ(g.max_value(), kTotal);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);    // bucket (0, 10]
  for (int i = 0; i < 10; ++i) h.observe(15.0);   // bucket (10, 20]
  // p50 = rank 10 of 20 -> exactly the upper edge of the first bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 10.0);
  // p75 = rank 15 -> halfway through the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);
  // p100 -> the upper edge of the last occupied bucket.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);  // no observations

  Histogram overflow_only({1.0, 2.0});
  overflow_only.observe(100.0);
  // Everything past the last bound clamps to the last bound: the
  // histogram cannot resolve values beyond its range.
  EXPECT_DOUBLE_EQ(overflow_only.quantile(0.99), 2.0);

  Histogram h({1.0, 2.0});
  h.observe(1.5);
  EXPECT_THROW(h.quantile(-0.1), Error);
  EXPECT_THROW(h.quantile(1.1), Error);
}

// Pins current quantile behavior on the degenerate shapes the snapshot
// run reports feed from (empty, single-sample, q=0, q=1) before the
// fault suite leans on p99 numbers: any estimator change must show up
// here, not as silent drift in crash-recovery reports.
TEST(Histogram, QuantilePinnedOnEmptyHistogram) {
  Histogram empty({10.0, 20.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);
}

TEST(Histogram, QuantilePinnedOnSingleSample) {
  // One sample in an interior bucket: every q interpolates across that
  // bucket, so q=0 pins to its lower edge and q=1 to its upper edge.
  Histogram h({10.0, 20.0, 40.0});
  h.observe(15.0);  // lands in (10, 20]
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);

  // One sample in the first bucket interpolates from min(0, bound).
  Histogram first({10.0, 20.0});
  first.observe(5.0);
  EXPECT_DOUBLE_EQ(first.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(first.quantile(1.0), 10.0);

  // A negative first bound keeps the lower edge at the bound itself.
  Histogram negative({-5.0, 10.0});
  negative.observe(-7.0);
  EXPECT_DOUBLE_EQ(negative.quantile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(negative.quantile(1.0), -5.0);  // bucket has zero width

  // A single overflow sample clamps to the largest bound at every q.
  Histogram overflow({10.0, 20.0});
  overflow.observe(99.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(1.0), 20.0);
}

TEST(Histogram, QuantileExtremesPinnedOnPopulatedHistogram) {
  Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 4; ++i) h.observe(5.0);
  for (int i = 0; i < 4; ++i) h.observe(30.0);
  // q=0 pins to the lower edge of the first occupied bucket, q=1 to the
  // upper edge of the last occupied bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 40.0);
}

TEST(Histogram, QuantileMatchesUniformFill) {
  // 100 observations spread evenly across (0, 100] in one bucket per
  // decade: percentile estimates should land on the decade boundaries.
  Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.90), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
}

TEST(MetricsRegistry, SnapshotJsonIncludesPercentiles) {
  auto& registry = MetricsRegistry::instance();
  auto& h = registry.histogram("test.snapshot.pctl", {1.0, 10.0});
  h.observe(0.5);
  const auto json = registry.snapshot_json();
  const auto at = json.find("\"test.snapshot.pctl\"");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"p50\":", at), std::string::npos);
  EXPECT_NE(json.find("\"p90\":", at), std::string::npos);
  EXPECT_NE(json.find("\"p99\":", at), std::string::npos);
}

TEST(MetricsRegistry, NonFiniteValuesSerializeAsNullAndStayParseable) {
  auto& registry = MetricsRegistry::instance();
  auto& h = registry.histogram("test.snapshot.nonfinite", {1.0, 10.0});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  const auto json = registry.snapshot_json();
  // A bare `nan`/`inf` token would make this throw — the whole /metrics.json
  // endpoint used to become unparseable the moment any histogram saw a
  // non-finite sample.
  const JsonValue doc = JsonValue::parse(json);
  const auto& hist = doc.at("histograms").at("test.snapshot.nonfinite");
  EXPECT_TRUE(hist.at("sum").is_null());
  EXPECT_TRUE(hist.at("p50").is_null() || hist.at("p50").is_number());
  // Prometheus exposition spells non-finite out instead (NaN/+Inf/-Inf).
  const auto prom = registry.snapshot_prometheus();
  const auto sum_at = prom.find("test_snapshot_nonfinite_sum");
  ASSERT_NE(sum_at, std::string::npos);
  EXPECT_NE(prom.find("NaN", sum_at), std::string::npos);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(Histogram({}), Error);
}

TEST(MetricsRegistry, SameNameReturnsSameMetric) {
  auto& registry = MetricsRegistry::instance();
  EXPECT_EQ(&registry.counter("test.registry.same"),
            &registry.counter("test.registry.same"));
  EXPECT_EQ(&registry.gauge("test.registry.same_gauge"),
            &registry.gauge("test.registry.same_gauge"));
  EXPECT_EQ(&registry.histogram("test.registry.same_hist"),
            &registry.histogram("test.registry.same_hist"));
}

TEST(MetricsRegistry, SnapshotJsonContainsRegisteredMetrics) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test.snapshot.counter").add(42);
  registry.gauge("test.snapshot.gauge").set(7);
  registry.histogram("test.snapshot.hist", {1.0, 10.0}).observe(0.5);

  const auto json = registry.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.gauge\":{\"value\":7"),
            std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.hist\":{\"count\":"),
            std::string::npos);
  EXPECT_NE(json.find("{\"le\":1,\"count\":1}"), std::string::npos);
}

TEST(Histogram, ObserveNMatchesRepeatedObserve) {
  Histogram repeated({1.0, 2.0, 4.0});
  for (int i = 0; i < 7; ++i) repeated.observe(1.5);
  Histogram batched({1.0, 2.0, 4.0});
  batched.observe_n(1.5, 7);
  EXPECT_EQ(batched.count(), repeated.count());
  EXPECT_DOUBLE_EQ(batched.sum(), repeated.sum());
  EXPECT_EQ(batched.bucket_counts(), repeated.bucket_counts());
}

TEST(Histogram, BatchFlushMatchesDirectObserve) {
  Histogram direct({1.0, 2.0, 4.0});
  Histogram via_batch({1.0, 2.0, 4.0});
  const double values[] = {0.5, 1.0, 1.5, 3.0, 9.0, 9.0};
  for (const double v : values) direct.observe(v);
  {
    HistogramBatch batch(via_batch);
    for (const double v : values) batch.observe(v);
    EXPECT_EQ(batch.pending(), 6u);
    EXPECT_EQ(via_batch.count(), 0u);  // nothing shared until flush
  }  // destructor flushes
  EXPECT_EQ(via_batch.count(), direct.count());
  EXPECT_DOUBLE_EQ(via_batch.sum(), direct.sum());
  EXPECT_EQ(via_batch.bucket_counts(), direct.bucket_counts());
}

TEST(Histogram, Pow2MinuteBucketAgreesWithBucketOf) {
  Histogram h(pow2_minute_buckets());
  for (std::uint64_t m : {0ull, 1ull, 2ull, 3ull, 4ull, 5ull, 63ull, 64ull,
                          65ull, 1000ull, 65536ull, 65537ull, 1000000ull}) {
    EXPECT_EQ(pow2_minute_bucket(m), h.bucket_of(static_cast<double>(m)))
        << "disagreement at " << m << " minutes";
  }
}

TEST(MetricsRegistry, SnapshotJsonOrderingIsSortedByName) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test.order.zz").add(1);
  registry.counter("test.order.aa").add(1);
  registry.counter("test.order.mm").add(1);
  const auto json = registry.snapshot_json();
  const auto aa = json.find("\"test.order.aa\"");
  const auto mm = json.find("\"test.order.mm\"");
  const auto zz = json.find("\"test.order.zz\"");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(mm, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, mm);
  EXPECT_LT(mm, zz);
}

TEST(MetricsRegistry, PrometheusSnapshotRendersEveryKind) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test.prom.counter").add(3);
  auto& gauge = registry.gauge("test.prom.gauge");
  gauge.reset();
  gauge.set(9);
  auto& hist = registry.histogram("test.prom.hist", {1.0, 10.0});
  hist.reset();
  hist.observe(0.5);
  hist.observe(100.0);

  const auto text = registry.snapshot_prometheus();
  // Dots sanitize to underscores; the exposition is line-oriented.
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 3\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge 9\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge_max 9\n"), std::string::npos);
  // Cumulative buckets: le="10" holds everything <= 10, +Inf everything.
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 2\n"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusSnapshotIsGloballySorted) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test.promsort.later").add(1);
  registry.gauge("test.promsort.earlier").set(1);
  const auto text = registry.snapshot_prometheus();
  const auto earlier = text.find("test_promsort_earlier");
  const auto later = text.find("test_promsort_later");
  ASSERT_NE(earlier, std::string::npos);
  ASSERT_NE(later, std::string::npos);
  // Sorted by exposed name across kinds, not grouped counters-then-gauges.
  EXPECT_LT(earlier, later);
  // Deterministic: two snapshots of unchanged metrics are identical.
  EXPECT_EQ(text, registry.snapshot_prometheus());
}

TEST(MetricsRegistry, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace cellscope::obs
