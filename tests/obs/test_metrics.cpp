#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.h"

namespace cellscope::obs {
namespace {

TEST(Counter, ConcurrentIncrementsSumExactly) {
  auto& counter =
      MetricsRegistry::instance().counter("test.counter.concurrent");
  counter.reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Counter, AddWithDelta) {
  Counter c;
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksValueAndHighWatermark) {
  Gauge g;
  g.add(3);
  g.add(4);
  g.add(-5);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 7);
  g.set(1);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max_value(), 7);  // watermark survives set
}

TEST(Histogram, BucketBoundariesAreLessOrEqual) {
  Histogram h({1.0, 2.0, 4.0});
  // le-semantics: a value equal to a bound lands in that bound's bucket.
  h.observe(0.5);
  h.observe(1.0);
  h.observe(1.5);
  h.observe(2.0);
  h.observe(4.0);
  h.observe(5.0);  // above every bound -> overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(counts[2], 1u);  // 4.0
  EXPECT_EQ(counts[3], 1u);  // 5.0 overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.mean(), 14.0 / 6.0);
}

TEST(Histogram, ConcurrentObservationsSumExactly) {
  Histogram h({10.0, 100.0});
  constexpr int kThreads = 6;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObservations; ++i) h.observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kObservations);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kObservations);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(Histogram({}), Error);
}

TEST(MetricsRegistry, SameNameReturnsSameMetric) {
  auto& registry = MetricsRegistry::instance();
  EXPECT_EQ(&registry.counter("test.registry.same"),
            &registry.counter("test.registry.same"));
  EXPECT_EQ(&registry.gauge("test.registry.same_gauge"),
            &registry.gauge("test.registry.same_gauge"));
  EXPECT_EQ(&registry.histogram("test.registry.same_hist"),
            &registry.histogram("test.registry.same_hist"));
}

TEST(MetricsRegistry, SnapshotJsonContainsRegisteredMetrics) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test.snapshot.counter").add(42);
  registry.gauge("test.snapshot.gauge").set(7);
  registry.histogram("test.snapshot.hist", {1.0, 10.0}).observe(0.5);

  const auto json = registry.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.gauge\":{\"value\":7"),
            std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.hist\":{\"count\":"),
            std::string::npos);
  EXPECT_NE(json.find("{\"le\":1,\"count\":1}"), std::string::npos);
}

TEST(MetricsRegistry, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace cellscope::obs
