#include "obs/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace cellscope::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Saves and restores the global logger state around a test, with stderr
/// silenced so expected log lines don't pollute test output.
class LoggerGuard {
 public:
  LoggerGuard() : saved_level_(Logger::instance().level()) {
    Logger::instance().set_stderr(false);
  }
  ~LoggerGuard() {
    Logger::instance().close_file();
    Logger::instance().set_level(saved_level_);
    Logger::instance().set_stderr(true);
  }

 private:
  LogLevel saved_level_;
};

TEST(LogLevel, ParsesEveryName) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW(parse_log_level("verbose"), InvalidArgument);
}

TEST(LogLevel, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(LogLevel::kOff); ++i) {
    const auto level = static_cast<LogLevel>(i);
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

TEST(LogFormat, PlainValuesStayUnquoted) {
  EXPECT_EQ(escape_log_value("clustering"), "clustering");
  EXPECT_EQ(escape_log_value("123.5"), "123.5");
}

TEST(LogFormat, ValuesNeedingQuotesAreEscaped) {
  EXPECT_EQ(escape_log_value("a b"), "\"a b\"");
  EXPECT_EQ(escape_log_value(""), "\"\"");
  EXPECT_EQ(escape_log_value("k=v"), "\"k=v\"");
  EXPECT_EQ(escape_log_value("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(escape_log_value("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(escape_log_value("two\nlines"), "\"two\\nlines\"");
}

TEST(LogFormat, ControlCharactersAreEscapedNotEmittedRaw) {
  // Regression: control characters other than \n/\r/\t used to pass
  // through the quoted form raw, producing lines no logfmt parser (or
  // line-oriented tool) could consume.
  // (split literals: "\x01b" would otherwise parse as the single byte
  // 0x1b — hex escapes are maximal-munch)
  const auto escaped = escape_log_value(std::string("a\x01" "b\x1f" "z"));
  for (const char c : escaped)
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control byte leaked into: " << escaped;
  EXPECT_EQ(escaped, "\"a\\u0001b\\u001fz\"");
}

TEST(LogFormat, EscapedValuesRoundTrip) {
  const std::string nasty[] = {
      "plain",
      "two words",
      "k=v",
      "say \"hi\"",
      "back\\slash",
      "two\nlines",
      "tab\there",
      "cr\rlf\n",
      std::string("nul\0inside", 10),
      "ctrl\x01\x02\x1f",
      "",
      "=",
      "\"",
      "trailing\\",
  };
  for (const auto& value : nasty) {
    EXPECT_EQ(unescape_log_value(escape_log_value(value)), value)
        << "failed round-trip for escaped form: " << escape_log_value(value);
  }
}

TEST(LogFormat, FullLinesRoundTripThroughParse) {
  const auto line = format_log_line(
      LogLevel::kInfo, "stage.done",
      {{"stage", "a b"},
       {"detail", "x=1\ny=\"2\""},
       {"weird", std::string("nul\0ctrl\x02", 9)},
       {"plain", "ok"}});
  const auto fields = parse_log_line(line);
  ASSERT_GE(fields.size(), 7u);  // ts, level, event + the four above
  auto value_of = [&](std::string_view key) -> std::string {
    for (const auto& f : fields)
      if (f.key == key) return f.value;
    return "<missing>";
  };
  EXPECT_EQ(value_of("level"), "info");
  EXPECT_EQ(value_of("event"), "stage.done");
  EXPECT_EQ(value_of("stage"), "a b");
  EXPECT_EQ(value_of("detail"), "x=1\ny=\"2\"");
  EXPECT_EQ(value_of("weird"), std::string("nul\0ctrl\x02", 9));
  EXPECT_EQ(value_of("plain"), "ok");
}

TEST(LogFormat, ParseHandlesUnquotedAndQuotedMix) {
  const auto fields = parse_log_line("a=1 b=\"x y\" c=z");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0].key, "a");
  EXPECT_EQ(fields[0].value, "1");
  EXPECT_EQ(fields[1].value, "x y");
  EXPECT_EQ(fields[2].value, "z");
}

TEST(LogFormat, LineContainsLevelEventAndFields) {
  const auto line = format_log_line(
      LogLevel::kInfo, "stage.done",
      {{"stage", "pipeline.vectorize"}, {"towers", 800}, {"note", "a b"}});
  EXPECT_NE(line.find("ts="), std::string::npos);
  EXPECT_NE(line.find(" level=info"), std::string::npos);
  EXPECT_NE(line.find(" event=stage.done"), std::string::npos);
  EXPECT_NE(line.find(" stage=pipeline.vectorize"), std::string::npos);
  EXPECT_NE(line.find(" towers=800"), std::string::npos);
  EXPECT_NE(line.find(" note=\"a b\""), std::string::npos);
}

TEST(LogFormat, DoubleFieldsUseCompactFormatting) {
  const auto line = format_log_line(LogLevel::kWarn, "x", {{"v", 1.5}});
  EXPECT_NE(line.find("v=1.5"), std::string::npos);
}

TEST(Logger, LevelFiltersRecordsBelowThreshold) {
  LoggerGuard guard;
  auto& logger = Logger::instance();
  const std::string path =
      testing::TempDir() + "/cellscope_log_filter_test.log";
  std::remove(path.c_str());
  logger.set_file(path);

  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  logger.log(LogLevel::kInfo, "filtered.out", {{"k", 1}});
  logger.log(LogLevel::kWarn, "kept", {{"k", 2}});
  logger.close_file();

  const auto contents = read_file(path);
  EXPECT_EQ(contents.find("filtered.out"), std::string::npos);
  EXPECT_NE(contents.find("event=kept"), std::string::npos);
  EXPECT_NE(contents.find("k=2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Logger, OffDisablesEverything) {
  LoggerGuard guard;
  auto& logger = Logger::instance();
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  EXPECT_FALSE(logger.enabled(LogLevel::kOff));
}

TEST(Logger, FileSinkAppendsAcrossReopens) {
  LoggerGuard guard;
  auto& logger = Logger::instance();
  const std::string path =
      testing::TempDir() + "/cellscope_log_append_test.log";
  std::remove(path.c_str());
  logger.set_level(LogLevel::kInfo);

  logger.set_file(path);
  logger.log(LogLevel::kInfo, "first");
  logger.close_file();
  logger.set_file(path);
  logger.log(LogLevel::kInfo, "second");
  logger.close_file();

  const auto contents = read_file(path);
  EXPECT_NE(contents.find("event=first"), std::string::npos);
  EXPECT_NE(contents.find("event=second"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cellscope::obs
