// Integration: a full Experiment::run must emit exactly one pipeline span
// per stage (the six steps of experiment.h) and feed the layer metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope {
namespace {

constexpr const char* kStageNames[] = {
    "pipeline.city_deploy", "pipeline.intensity_poi", "pipeline.vectorize",
    "pipeline.zscore",      "pipeline.cluster_tune",  "pipeline.label_validate",
};

TEST(ObsIntegration, ExperimentEmitsOneSpanPerPipelineStage) {
  auto& trace = obs::StageTrace::instance();
  const bool was_enabled = trace.enabled();
  trace.clear();
  trace.set_enabled(true);

  ExperimentConfig config;
  config.n_towers = 60;
  config.seed = 7;
  const auto experiment = Experiment::run(config);
  EXPECT_GE(experiment.n_clusters(), 2u);

  const auto events = trace.events();
  trace.clear();
  trace.set_enabled(was_enabled);

  std::vector<std::string> pipeline_spans;
  for (const auto& e : events) {
    if (e.category == "pipeline") pipeline_spans.push_back(e.name);
    EXPECT_GE(e.dur_us, 0.0) << e.name;
  }
  ASSERT_EQ(pipeline_spans.size(), std::size(kStageNames));
  for (const auto* stage : kStageNames) {
    EXPECT_EQ(std::count(pipeline_spans.begin(), pipeline_spans.end(),
                         std::string(stage)),
              1)
        << "missing or duplicated span: " << stage;
  }
}

TEST(ObsIntegration, ExperimentFeedsLayerMetrics) {
  auto& registry = obs::MetricsRegistry::instance();
  auto& merges = registry.counter("cellscope.ml.merge_steps");
  auto& cuts = registry.counter("cellscope.ml.dbi_cuts_evaluated");
  auto& rows = registry.counter("cellscope.pipeline.vectorizer_rows");
  const auto merges_before = merges.value();
  const auto cuts_before = cuts.value();
  const auto rows_before = rows.value();

  ExperimentConfig config;
  config.n_towers = 60;
  config.seed = 11;
  const auto experiment = Experiment::run(config);

  // 60 leaves -> 59 agglomerative merges; the sweep spans k_min..k_max.
  EXPECT_EQ(merges.value() - merges_before, config.n_towers - 1);
  EXPECT_EQ(cuts.value() - cuts_before,
            experiment.dbi_sweep_result().size());
  EXPECT_EQ(rows.value() - rows_before, config.n_towers);

  // Stage wall times were observed into the pipeline histogram.
  EXPECT_GE(registry.histogram("cellscope.pipeline.stage_ms").count(), 6u);
}

TEST(ObsIntegration, MetricsSnapshotNamesFollowLayerScheme) {
  ExperimentConfig config;
  config.n_towers = 60;
  config.seed = 13;
  Experiment::run(config);
  const auto json = obs::MetricsRegistry::instance().snapshot_json();
  EXPECT_NE(json.find("cellscope.ml.merge_steps"), std::string::npos);
  EXPECT_NE(json.find("cellscope.ml.dbi_cuts_evaluated"), std::string::npos);
  EXPECT_NE(json.find("cellscope.pipeline.vectorizer_rows"),
            std::string::npos);
  EXPECT_NE(json.find("cellscope.pipeline.stage_ms"), std::string::npos);
}

}  // namespace
}  // namespace cellscope
