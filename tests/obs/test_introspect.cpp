// Introspection plane: the embedded HTTP stats server (handler routing,
// component-owned endpoints, real socket round-trips) and the
// deterministic trace sampler. Labeled `introspect` so
// scripts/check_stream.sh can race-check the server against live metric
// traffic under ThreadSanitizer.
#include "obs/introspect.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mapred/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace_sample.h"
#include "stream/ingestor.h"

namespace cellscope::obs {
namespace {

/// Minimal loopback HTTP client: sends one request verbatim, returns the
/// full response (head + body).
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  EXPECT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  // Half-close so a request with no head terminator still reaches EOF on
  // the server side (the malformed-line 400 tests depend on this).
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& path) {
  return http_request(port,
                      "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

TEST(IntrospectionServer, HandleRoutesBuiltInEndpoints) {
  auto& server = IntrospectionServer::instance();
  MetricsRegistry::instance().counter("test.introspect.counter").add(1);

  const auto metrics = server.handle("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(metrics.body.find("test_introspect_counter"), std::string::npos);

  const auto json = server.handle("/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"counters\""), std::string::npos);

  const auto health = server.handle("/healthz");
  EXPECT_NE(health.body.find("\"verdicts\""), std::string::npos);

  EXPECT_EQ(server.handle("/nope").status, 404);
  // Query strings are stripped before routing.
  EXPECT_EQ(server.handle("/metrics?x=1").status, 200);
}

TEST(IntrospectionServer, ThrowingHandlerBecomesInternalError) {
  auto& server = IntrospectionServer::instance();
  server.set_handler("/test/throws", []() -> HttpResponse {
    throw std::runtime_error("boom");
  });
  const auto response = server.handle("/test/throws");
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("boom"), std::string::npos);
  server.remove_handler("/test/throws");
  EXPECT_EQ(server.handle("/test/throws").status, 404);
}

TEST(IntrospectionServer, RemoveHandlerRespectsOwnership) {
  auto& server = IntrospectionServer::instance();
  const int owner_a = 0;
  const int owner_b = 0;
  server.set_handler("/test/owned", [] { return HttpResponse{}; }, &owner_a);
  // The wrong owner cannot tear down another component's endpoint.
  server.remove_handler("/test/owned", &owner_b);
  EXPECT_EQ(server.handle("/test/owned").status, 200);
  server.remove_handler("/test/owned", &owner_a);
  EXPECT_EQ(server.handle("/test/owned").status, 404);
}

TEST(IntrospectionServer, ServesRealSocketsOnEphemeralPort) {
  auto& server = IntrospectionServer::instance();
  MetricsRegistry::instance().counter("test.introspect.socket").add(1);
  server.start(0);  // ephemeral: no fixed-port collisions across tests
  ASSERT_TRUE(server.running());
  const std::uint16_t port = server.port();
  ASSERT_GT(port, 0);

  const auto response = get(port, "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: "), std::string::npos);
  EXPECT_NE(response.find("# TYPE"), std::string::npos);

  EXPECT_NE(get(port, "/nope").find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(http_request(port, "POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);

  // Malformed request lines are a typed 400, never a silent close: a
  // spaceless line and a newline-less blob both get an answer.
  EXPECT_NE(http_request(port, "garbage\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(http_request(port, "no newline at all").find("HTTP/1.1 400"),
            std::string::npos);

  // Every response says Connection: close (one request per connection).
  EXPECT_NE(get(port, "/metrics").find("Connection: close"),
            std::string::npos);
  EXPECT_NE(get(port, "/nope").find("Connection: close"),
            std::string::npos);

  // /healthz answers 200 or 503 depending on accumulated verdicts; either
  // way the body carries the tallies.
  const auto health = get(port, "/healthz");
  EXPECT_NE(health.find("\"passed\":"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());

  // Restartable after stop.
  server.start(0);
  EXPECT_TRUE(server.running());
  EXPECT_NE(get(server.port(), "/metrics.json").find("HTTP/1.1 200"),
            std::string::npos);
  server.stop();
}

TEST(IntrospectionServer, ConcurrentRequestsAgainstLiveMetricTraffic) {
  // The TSan target: readers scrape while writers hammer the registry.
  auto& server = IntrospectionServer::instance();
  server.start(0);
  const std::uint16_t port = server.port();
  auto& counter = MetricsRegistry::instance().counter("test.introspect.hot");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) counter.add(1);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([port] {
      for (int i = 0; i < 5; ++i) {
        const auto response = get(port, "/metrics");
        EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
  server.stop();
}

TEST(IntrospectionServer, StreamEndpointFollowsIngestorLifetime) {
  auto& server = IntrospectionServer::instance();
  {
    StreamIngestor ingestor(StreamConfig{.n_shards = 2, .queue_capacity = 0});
    TrafficLog log;
    log.tower_id = 1;
    log.start_minute = 100;
    log.end_minute = 110;
    log.bytes = 42;
    ingestor.offer(log);
    const auto response = server.handle("/stream");
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.content_type, "application/json");
    EXPECT_NE(response.body.find("\"watermark_minute\":110"),
              std::string::npos);
    EXPECT_NE(response.body.find("\"shards\":["), std::string::npos);
  }
  // The destructor deregisters (and drains in-flight requests), so a
  // scrape after teardown is a clean 404, not a use-after-free.
  EXPECT_EQ(server.handle("/stream").status, 404);
}

TEST(TraceSampler, DecisionIsDeterministicAndScalesWithN) {
  auto& sampler = TraceSampler::instance();
  const std::uint32_t saved = sampler.sample_every();
  sampler.set_sample_every(0);
  EXPECT_FALSE(sampler.active());
  EXPECT_FALSE(sampler.sampled(mix64(123)));  // off samples nothing

  sampler.set_sample_every(1);
  EXPECT_TRUE(sampler.sampled(mix64(123)));  // 1-in-1 samples everything

  sampler.set_sample_every(8);
  std::size_t hits = 0;
  constexpr std::size_t kRecords = 4096;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    const bool first = sampler.sampled(mix64(i));
    EXPECT_EQ(first, sampler.sampled(mix64(i)));  // same record, same call
    if (first) ++hits;
  }
  // A well-mixed hash lands near 1-in-8 (generous bounds, deterministic
  // inputs so this cannot flake).
  EXPECT_GT(hits, kRecords / 16);
  EXPECT_LT(hits, kRecords / 4);
  sampler.set_sample_every(saved);
}

}  // namespace
}  // namespace cellscope::obs
