#include "obs/quality.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope::obs {
namespace {

class QualityBoardTest : public ::testing::Test {
 protected:
  void SetUp() override { QualityBoard::instance().clear(); }
  void TearDown() override { QualityBoard::instance().clear(); }
};

// --- invariant helpers: one passing and one violated fixture each -----

TEST(QualityChecks, FiniteRowsPassAndFail) {
  const std::vector<std::vector<double>> clean = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(check_finite_rows(clean).passed);
  EXPECT_DOUBLE_EQ(check_finite_rows(clean).value, 0.0);

  auto dirty = clean;
  dirty[1][0] = std::numeric_limits<double>::quiet_NaN();
  dirty[1][1] = std::numeric_limits<double>::infinity();
  const auto r = check_finite_rows(dirty);
  EXPECT_FALSE(r.passed);
  EXPECT_DOUBLE_EQ(r.value, 2.0);  // counts every non-finite element
  EXPECT_NE(r.detail.find("row 1"), std::string::npos);
}

TEST(QualityChecks, ZscoreRowsPassAndFail) {
  // mean 0, population sd 1.
  const std::vector<std::vector<double>> normalized = {{-1.0, 1.0, -1.0, 1.0}};
  EXPECT_TRUE(check_zscore_rows(normalized).passed);

  const std::vector<std::vector<double>> shifted = {{9.0, 11.0, 9.0, 11.0}};
  const auto r = check_zscore_rows(shifted);
  EXPECT_FALSE(r.passed);
  EXPECT_GT(r.value, 1.0);  // worst deviation: |mean| = 10

  // Constant rows z-score to all zeros; sd bound must not flag them.
  const std::vector<std::vector<double>> constant = {{0.0, 0.0, 0.0}};
  EXPECT_TRUE(check_zscore_rows(constant).passed);
}

TEST(QualityChecks, MinPopulationPassAndFail) {
  const std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  EXPECT_TRUE(check_min_population(labels, 3).passed);
  const auto r = check_min_population(labels, 4);
  EXPECT_FALSE(r.passed);
  EXPECT_DOUBLE_EQ(r.value, 3.0);  // smallest cluster population
  EXPECT_FALSE(check_min_population({}, 1).passed);  // no clusters at all
}

TEST(QualityChecks, DbiPassAndFail) {
  EXPECT_TRUE(check_dbi(0.47).passed);
  EXPECT_FALSE(check_dbi(0.0).passed);
  EXPECT_FALSE(check_dbi(-1.0).passed);
  EXPECT_FALSE(check_dbi(std::numeric_limits<double>::quiet_NaN()).passed);
  EXPECT_FALSE(check_dbi(std::numeric_limits<double>::infinity()).passed);
}

TEST(QualityChecks, EnergyFractionPassAndFail) {
  // The paper's §5.1 claim: <6% loss -> >=94% retained.
  EXPECT_TRUE(check_energy_fraction(0.95).passed);
  EXPECT_TRUE(check_energy_fraction(0.94).passed);
  const auto r = check_energy_fraction(0.90);
  EXPECT_FALSE(r.passed);
  EXPECT_DOUBLE_EQ(r.value, 0.90);
}

TEST(QualityChecks, SimplexWeightsPassAndFail) {
  const std::vector<double> on_simplex = {0.2, 0.3, 0.5};
  EXPECT_TRUE(check_simplex_weights(on_simplex).passed);

  const std::vector<double> bad_sum = {0.2, 0.3, 0.4};
  EXPECT_FALSE(check_simplex_weights(bad_sum).passed);

  const std::vector<double> negative = {-0.1, 0.6, 0.5};
  const auto r = check_simplex_weights(negative);
  EXPECT_FALSE(r.passed);
  EXPECT_GT(r.value, 0.05);  // worst violation ~0.1
}

TEST(QualityChecks, RejectRatioPassAndFail) {
  EXPECT_TRUE(check_reject_ratio(0, 1000).passed);
  EXPECT_TRUE(check_reject_ratio(10, 1000).passed);  // exactly 1%
  const auto r = check_reject_ratio(11, 1000);
  EXPECT_FALSE(r.passed);
  EXPECT_DOUBLE_EQ(r.value, 0.011);

  // Custom bound and the trivial-pass case of an empty input.
  EXPECT_FALSE(check_reject_ratio(2, 10, 0.1).passed);
  EXPECT_TRUE(check_reject_ratio(0, 0).passed);
  EXPECT_DOUBLE_EQ(check_reject_ratio(0, 0).value, 0.0);
}

// --- board mechanics --------------------------------------------------

TEST_F(QualityBoardTest, EvaluatesAndConsumesChecksForOneStage) {
  auto& board = QualityBoard::instance();
  board.add_check("stage.a", "always_pass", Severity::kFail,
                  [] { return CheckResult{true, 1.0, "ok"}; });
  board.add_check("stage.a", "always_fail", Severity::kWarn,
                  [] { return CheckResult{false, 2.0, "bad"}; });
  board.add_check("stage.b", "other_stage", Severity::kFail,
                  [] { return CheckResult{true, 0.0, ""}; });

  EXPECT_EQ(board.pending_checks(), 3u);
  EXPECT_EQ(board.evaluate_stage("stage.a"), 2u);
  EXPECT_EQ(board.pending_checks(), 1u);  // stage.b untouched
  EXPECT_EQ(board.evaluate_stage("stage.a"), 0u);  // one-shot: consumed

  EXPECT_EQ(board.passed(), 1u);
  EXPECT_EQ(board.warned(), 1u);  // kWarn violation escalates to warned
  EXPECT_EQ(board.failed(), 0u);
  EXPECT_TRUE(board.ok());

  const auto verdicts = board.verdicts();
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].check, "always_pass");
  EXPECT_TRUE(verdicts[0].passed);
  EXPECT_EQ(verdicts[1].check, "always_fail");
  EXPECT_FALSE(verdicts[1].passed);
  EXPECT_EQ(verdicts[1].stage, "stage.a");
}

TEST_F(QualityBoardTest, FailSeverityViolationFlipsOk) {
  auto& board = QualityBoard::instance();
  board.add_check("stage.c", "hard_fail", Severity::kFail,
                  [] { return CheckResult{false, 0.0, "broken"}; });
  board.evaluate_stage("stage.c");
  EXPECT_EQ(board.failed(), 1u);
  EXPECT_FALSE(board.ok());
}

TEST_F(QualityBoardTest, ThrowingCheckBecomesFailedVerdict) {
  auto& board = QualityBoard::instance();
  board.add_check("stage.d", "throws", Severity::kFail,
                  []() -> CheckResult { throw std::runtime_error("boom"); });
  EXPECT_EQ(board.evaluate_stage("stage.d"), 1u);  // must not propagate
  const auto verdicts = board.verdicts();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].passed);
  EXPECT_NE(verdicts[0].detail.find("boom"), std::string::npos);
}

TEST_F(QualityBoardTest, StageSpanCloseEvaluatesRegisteredChecks) {
  auto& board = QualityBoard::instance();
  bool ran = false;
  {
    StageSpan span("stage.spanned", "test", LogLevel::kDebug);
    board.add_check("stage.spanned", "via_span", Severity::kFail,
                    [&ran] {
                      ran = true;
                      return CheckResult{true, 0.0, ""};
                    });
    EXPECT_FALSE(ran);  // evaluation happens at span close, not before
  }
  EXPECT_TRUE(ran);
  EXPECT_EQ(board.pending_checks(), 0u);
  EXPECT_EQ(board.passed(), 1u);
}

TEST_F(QualityBoardTest, CountersTrackVerdicts) {
  auto& registry = MetricsRegistry::instance();
  const auto passed_before =
      registry.counter("cellscope.quality.checks_passed").value();
  const auto failed_before =
      registry.counter("cellscope.quality.checks_failed").value();

  auto& board = QualityBoard::instance();
  board.add_check("stage.e", "p", Severity::kFail,
                  [] { return CheckResult{true, 0.0, ""}; });
  board.add_check("stage.e", "f", Severity::kFail,
                  [] { return CheckResult{false, 0.0, ""}; });
  board.evaluate_stage("stage.e");

  EXPECT_EQ(registry.counter("cellscope.quality.checks_passed").value(),
            passed_before + 1);
  EXPECT_EQ(registry.counter("cellscope.quality.checks_failed").value(),
            failed_before + 1);
}

TEST_F(QualityBoardTest, VerdictsJsonIsWellFormedArray) {
  auto& board = QualityBoard::instance();
  board.record({"check_a", "stage.f", Severity::kWarn, false, 1.5,
                "detail \"quoted\""});
  const auto json = board.verdicts_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"check\":\"check_a\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"warn\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // escaped
}

TEST(QualitySeverity, Names) {
  EXPECT_EQ(severity_name(Severity::kInfo), "info");
  EXPECT_EQ(severity_name(Severity::kWarn), "warn");
  EXPECT_EQ(severity_name(Severity::kFail), "fail");
}

}  // namespace
}  // namespace cellscope::obs
