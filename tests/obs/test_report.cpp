#include "obs/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.h"
#include "common/json.h"
#include "core/experiment.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/timer.h"

namespace cellscope::obs {
namespace {

TEST(BuildInfo, FieldsArePopulated) {
  const auto info = build_info();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.build_type.empty());
  EXPECT_FALSE(info.compiler.empty());
}

TEST(RunReport, JsonRoundTripsThroughParser) {
  RunReport report("unit_test");
  report.add_config("towers", std::uint64_t{42});
  report.add_config("ratio", 0.5);
  report.add_config("fold", true);
  report.add_config("label", "hello \"world\"");
  report.add_config_json("nested", "{\"k\":1}");
  report.add_config("towers", std::uint64_t{43});  // last write wins

  const auto v = JsonValue::parse(report.to_json());
  EXPECT_EQ(v.at("report").as_string(), "unit_test");
  EXPECT_DOUBLE_EQ(v.at("schema").as_number(), 1.0);
  EXPECT_GT(v.at("created_unix_s").as_number(), 0.0);

  const auto& build = v.at("build");
  EXPECT_FALSE(build.at("git_sha").as_string().empty());
  EXPECT_FALSE(build.at("compiler").as_string().empty());

  const auto& config = v.at("config");
  EXPECT_DOUBLE_EQ(config.at("towers").as_number(), 43.0);
  EXPECT_DOUBLE_EQ(config.at("ratio").as_number(), 0.5);
  EXPECT_TRUE(config.at("fold").as_bool());
  EXPECT_EQ(config.at("label").as_string(), "hello \"world\"");
  EXPECT_DOUBLE_EQ(config.at("nested").at("k").as_number(), 1.0);

  EXPECT_GT(v.at("wall_s").as_number(), 0.0);
  EXPECT_TRUE(v.at("stages").is_array());
  EXPECT_TRUE(v.at("metrics").is_object());
  const auto& quality = v.at("quality");
  EXPECT_TRUE(quality.at("verdicts").is_array());
  EXPECT_TRUE(quality.contains("ok"));
}

TEST(RunReport, CapturesSpansMetricsAndVerdicts) {
  StageTrace::instance().set_enabled(true);
  { StageSpan span("report.test_stage", "test", LogLevel::kDebug); }
  MetricsRegistry::instance()
      .histogram("report.test_hist", {1.0, 10.0})
      .observe(2.0);
  QualityBoard::instance().record(
      {"report_check", "report.test_stage", Severity::kInfo, true, 1.0, ""});

  const auto v = JsonValue::parse(RunReport("capture").to_json());

  bool saw_stage = false;
  for (const auto& s : v.at("stages").as_array())
    if (s.at("name").as_string() == "report.test_stage") saw_stage = true;
  EXPECT_TRUE(saw_stage);

  const auto& hist =
      v.at("metrics").at("histograms").at("report.test_hist");
  EXPECT_DOUBLE_EQ(hist.at("count").as_number(), 1.0);
  EXPECT_TRUE(hist.contains("p50"));
  EXPECT_TRUE(hist.contains("p90"));
  EXPECT_TRUE(hist.contains("p99"));

  bool saw_verdict = false;
  for (const auto& verdict : v.at("quality").at("verdicts").as_array())
    if (verdict.at("check").as_string() == "report_check") saw_verdict = true;
  EXPECT_TRUE(saw_verdict);
}

TEST(RunReport, WriteProducesParseableFile) {
  const std::string path = ::testing::TempDir() + "cellscope_report.json";
  RunReport report("write_test");
  report.write(path);

  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) text.append(buf, n);
  std::fclose(file);
  std::remove(path.c_str());

  const auto v = JsonValue::parse(text);
  EXPECT_EQ(v.at("report").as_string(), "write_test");
}

TEST(RunReport, WriteToBadPathThrowsIoError) {
  RunReport report("bad_path");
  EXPECT_THROW(report.write("/nonexistent_dir_zz/report.json"), IoError);
}

// The acceptance path: a full (small) pipeline run must register and
// evaluate every stage sentinel, and a healthy synthetic city passes all
// of them.
TEST(RunReport, ExperimentRunYieldsPassingSentinels) {
  auto& board = QualityBoard::instance();
  board.clear();
  StageTrace::instance().set_enabled(true);

  ExperimentConfig config;
  config.n_towers = 200;
  config.seed = 7;
  const auto e = Experiment::run(config);

  EXPECT_EQ(board.pending_checks(), 0u);  // every sentinel was consumed
  EXPECT_GE(board.passed() + board.warned() + board.failed(), 5u);
  EXPECT_EQ(board.failed(), 0u) << board.verdicts_json();
  EXPECT_TRUE(board.ok());
  EXPECT_GE(e.n_clusters(), 2u);

  const auto v = JsonValue::parse(RunReport("experiment").to_json());
  EXPECT_GE(v.at("quality").at("verdicts").as_array().size(), 5u);
  EXPECT_TRUE(v.at("quality").at("ok").as_bool());
  board.clear();
}

}  // namespace
}  // namespace cellscope::obs
