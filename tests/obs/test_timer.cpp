#include "obs/timer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"

namespace cellscope::obs {
namespace {

/// Restores trace state around a test.
class TraceGuard {
 public:
  TraceGuard() : was_enabled_(StageTrace::instance().enabled()) {
    StageTrace::instance().clear();
    StageTrace::instance().set_enabled(true);
  }
  ~TraceGuard() {
    StageTrace::instance().clear();
    StageTrace::instance().set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

TEST(ScopedTimer, ElapsedIsMonotonicallyNonDecreasing) {
  ScopedTimer timer;
  double previous = timer.elapsed_ms();
  EXPECT_GE(previous, 0.0);
  for (int i = 0; i < 100; ++i) {
    const double current = timer.elapsed_ms();
    EXPECT_GE(current, previous);
    previous = current;
  }
}

TEST(ScopedTimer, ObservesIntoHistogramOnDestruction) {
  Histogram h({1e9});  // one giant bucket, everything lands in it
  {
    ScopedTimer timer(h);
    EXPECT_EQ(h.count(), 0u);  // nothing observed while alive
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(NowUs, AdvancesMonotonically) {
  const double a = now_us();
  const double b = now_us();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(StageTrace, RecordsCompletedSpans) {
  TraceGuard guard;
  auto& trace = StageTrace::instance();
  const auto token = trace.begin("pipeline.test_stage", "pipeline");
  EXPECT_NE(token, 0u);
  trace.end(token);

  const auto events = trace.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "pipeline.test_stage");
  EXPECT_EQ(events[0].category, "pipeline");
  EXPECT_GE(events[0].ts_us, 0.0);
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(StageTrace, OpenSpansAreExcludedFromEvents) {
  TraceGuard guard;
  auto& trace = StageTrace::instance();
  const auto open = trace.begin("still.open", "test");
  const auto closed = trace.begin("closed", "test");
  trace.end(closed);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "closed");
  trace.end(open);
  EXPECT_EQ(trace.events().size(), 2u);
}

TEST(StageTrace, DisabledRecordingIsFree) {
  TraceGuard guard;
  auto& trace = StageTrace::instance();
  trace.set_enabled(false);
  EXPECT_EQ(trace.begin("ignored", "test"), 0u);
  trace.end(0);
  EXPECT_TRUE(trace.events().empty());
}

TEST(StageTrace, ChromeTraceJsonHasEventArray) {
  TraceGuard guard;
  auto& trace = StageTrace::instance();
  trace.end(trace.begin("pipeline.alpha", "pipeline"));
  const auto json = trace.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pipeline.alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(StageTrace, WritesTraceFile) {
  TraceGuard guard;
  auto& trace = StageTrace::instance();
  trace.end(trace.begin("pipeline.file_test", "pipeline"));
  const std::string path = testing::TempDir() + "/cellscope_trace_test.json";
  std::remove(path.c_str());
  trace.write_chrome_trace(path);
  std::ifstream in(path);
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("pipeline.file_test"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StageSpan, RecordsSpanAndHistogram) {
  TraceGuard guard;
  auto& histogram = MetricsRegistry::instance().histogram(
      "cellscope.spantest.stage_ms");
  const auto count_before = histogram.count();
  {
    StageSpan span("pipeline.span_test", "spantest", LogLevel::kDebug);
    span.annotate({"towers", 42});
  }
  const auto events = StageTrace::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "pipeline.span_test");
  EXPECT_EQ(events[0].category, "spantest");
  EXPECT_EQ(histogram.count(), count_before + 1);
}

}  // namespace
}  // namespace cellscope::obs
