#include "ml/hierarchical.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.h"
#include "common/rng.h"

namespace cellscope {
namespace {

/// Well-separated Gaussian blobs with known memberships.
struct Blobs {
  std::vector<std::vector<double>> points;
  std::vector<int> truth;
};

Blobs make_blobs(std::size_t k, std::size_t per_cluster, double separation,
                 std::uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      blobs.points.push_back({separation * static_cast<double>(c) +
                                  rng.normal(0.0, 0.3),
                              rng.normal(0.0, 0.3)});
      blobs.truth.push_back(static_cast<int>(c));
    }
  }
  return blobs;
}

/// True iff the two labelings induce identical partitions.
bool same_partition(const std::vector<int>& a, const std::vector<int>& b) {
  std::map<int, int> fwd;
  std::map<int, int> rev;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (fwd.contains(a[i]) && fwd[a[i]] != b[i]) return false;
    if (rev.contains(b[i]) && rev[b[i]] != a[i]) return false;
    fwd[a[i]] = b[i];
    rev[b[i]] = a[i];
  }
  return true;
}

TEST(Hierarchical, RecoversWellSeparatedBlobs) {
  const auto blobs = make_blobs(4, 25, 10.0, 1);
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(blobs.points),
                      Linkage::kAverage);
  EXPECT_TRUE(same_partition(dendrogram.cut_k(4), blobs.truth));
}

TEST(Hierarchical, AllLinkagesRecoverSeparatedBlobs) {
  const auto blobs = make_blobs(3, 20, 12.0, 2);
  for (const auto linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    const auto dendrogram =
        Dendrogram::run(DistanceMatrix::compute(blobs.points), linkage);
    EXPECT_TRUE(same_partition(dendrogram.cut_k(3), blobs.truth));
  }
}

TEST(Hierarchical, HasExactlyNMinusOneMerges) {
  const auto blobs = make_blobs(2, 10, 5.0, 3);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  EXPECT_EQ(dendrogram.merges().size(), 19u);
  EXPECT_EQ(dendrogram.n(), 20u);
}

TEST(Hierarchical, MergeDistancesAreSorted) {
  const auto blobs = make_blobs(3, 15, 6.0, 4);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  const auto& merges = dendrogram.merges();
  for (std::size_t i = 1; i < merges.size(); ++i)
    EXPECT_LE(merges[i - 1].distance, merges[i].distance);
}

TEST(Hierarchical, CutKOneIsOneCluster) {
  const auto blobs = make_blobs(2, 8, 5.0, 5);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  const auto labels = dendrogram.cut_k(1);
  for (const int l : labels) EXPECT_EQ(l, 0);
}

TEST(Hierarchical, CutKNIsAllSingletons) {
  const auto blobs = make_blobs(2, 8, 5.0, 6);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  const auto labels = dendrogram.cut_k(16);
  std::set<int> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 16u);
}

TEST(Hierarchical, LabelsAreDenseAndOrderedBySmallestMember) {
  const auto blobs = make_blobs(3, 10, 8.0, 7);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  const auto labels = dendrogram.cut_k(3);
  // Point 0 must be labeled 0; the first point with a different label
  // must be labeled 1; and so on.
  EXPECT_EQ(labels[0], 0);
  int next_expected = 1;
  for (const int l : labels) {
    EXPECT_LE(l, next_expected);
    if (l == next_expected) ++next_expected;
  }
  EXPECT_EQ(num_clusters(labels), 3u);
}

TEST(Hierarchical, ThresholdCutMatchesCountCut) {
  const auto blobs = make_blobs(4, 12, 9.0, 8);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  // A threshold below the first cross-blob merge yields exactly 4
  // clusters; within-blob merges are all far smaller.
  const auto& merges = dendrogram.merges();
  const double threshold =
      (merges[merges.size() - 4].distance + merges[merges.size() - 3].distance) / 2.0;
  EXPECT_EQ(dendrogram.cluster_count_at(threshold), 4u);
  EXPECT_TRUE(same_partition(dendrogram.cut_threshold(threshold),
                             dendrogram.cut_k(4)));
}

TEST(Hierarchical, ThresholdBelowAllMergesIsSingletons) {
  const auto blobs = make_blobs(2, 6, 5.0, 9);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  EXPECT_EQ(dendrogram.cluster_count_at(-1.0), 12u);
}

TEST(Hierarchical, ThresholdAboveAllMergesIsOneCluster) {
  const auto blobs = make_blobs(2, 6, 5.0, 10);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  EXPECT_EQ(dendrogram.cluster_count_at(1e18), 1u);
}

TEST(Hierarchical, SingleLinkageChainsCompleteLinkageDoesNot) {
  // A chain of points at distance 1 each, with a gap of 1.5 to a far
  // point. Single linkage absorbs the chain before the gap; complete
  // linkage's cluster diameter grows and can behave differently. Verify
  // the classic chaining property: single linkage merges the whole chain
  // at threshold 1.
  std::vector<std::vector<double>> chain;
  for (int i = 0; i < 8; ++i)
    chain.push_back({static_cast<double>(i), 0.0});
  const auto single =
      Dendrogram::run(DistanceMatrix::compute(chain), Linkage::kSingle);
  EXPECT_EQ(single.cluster_count_at(1.0), 1u);
  const auto complete =
      Dendrogram::run(DistanceMatrix::compute(chain), Linkage::kComplete);
  EXPECT_GT(complete.cluster_count_at(1.0), 1u);
}

TEST(Hierarchical, AverageLinkageMergeDistanceIsMeanPairwise) {
  // Two pairs: {0,1} at x=0,1 and {2,3} at x=10,11. The final average-
  // linkage merge distance must be the mean of all 4 cross distances:
  // (10 + 11 + 9 + 10) / 4 = 10.
  std::vector<std::vector<double>> points = {
      {0.0}, {1.0}, {10.0}, {11.0}};
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(points), Linkage::kAverage);
  EXPECT_NEAR(dendrogram.merges().back().distance, 10.0, 1e-5);
}

TEST(Hierarchical, CutKValidatesRange) {
  const auto blobs = make_blobs(2, 5, 5.0, 11);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  EXPECT_THROW(dendrogram.cut_k(0), Error);
  EXPECT_THROW(dendrogram.cut_k(11), Error);
}

TEST(ClusterHelpers, NumClustersAndMembers) {
  const std::vector<int> labels = {0, 1, 0, 2, 1};
  EXPECT_EQ(num_clusters(labels), 3u);
  const auto members = cluster_members(labels);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(members[1], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(members[2], (std::vector<std::size_t>{3}));
}

TEST(ClusterHelpers, NegativeLabelsRejected) {
  EXPECT_THROW(num_clusters({0, -1}), Error);
  EXPECT_THROW(num_clusters({}), Error);
}

// Parameterized robustness: blob recovery across cluster counts and seeds.
class HierarchicalRecovery
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HierarchicalRecovery, RecoversBlobsAcrossShapes) {
  const auto [k, seed] = GetParam();
  const auto blobs =
      make_blobs(static_cast<std::size_t>(k), 15, 10.0,
                 static_cast<std::uint64_t>(seed));
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  EXPECT_TRUE(same_partition(dendrogram.cut_k(static_cast<std::size_t>(k)),
                             blobs.truth));
}

INSTANTIATE_TEST_SUITE_P(Shapes, HierarchicalRecovery,
                         ::testing::Combine(::testing::Values(2, 3, 5, 7),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace cellscope
