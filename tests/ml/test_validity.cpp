#include "ml/validity.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "ml/distance.h"

namespace cellscope {
namespace {

struct Blobs {
  std::vector<std::vector<double>> points;
  std::vector<int> truth;
};

Blobs make_blobs(std::size_t k, std::size_t per_cluster, double spread,
                 double separation, std::uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      blobs.points.push_back(
          {separation * static_cast<double>(c) + rng.normal(0.0, spread),
           rng.normal(0.0, spread)});
      blobs.truth.push_back(static_cast<int>(c));
    }
  }
  return blobs;
}

TEST(Centroids, AreClusterMeans) {
  const std::vector<std::vector<double>> points = {
      {0.0, 0.0}, {2.0, 0.0}, {10.0, 10.0}};
  const std::vector<int> labels = {0, 0, 1};
  const auto centroids = cluster_centroids(points, labels);
  ASSERT_EQ(centroids.size(), 2u);
  EXPECT_DOUBLE_EQ(centroids[0][0], 1.0);
  EXPECT_DOUBLE_EQ(centroids[0][1], 0.0);
  EXPECT_DOUBLE_EQ(centroids[1][0], 10.0);
}

TEST(Centroids, EmptyClusterThrows) {
  const std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  // Label 2 implies clusters 0..2 but cluster 1 is empty.
  EXPECT_THROW(cluster_centroids(points, {0, 2}), Error);
}

TEST(DaviesBouldin, TightSeparatedClustersScoreLow) {
  const auto good = make_blobs(3, 30, 0.2, 20.0, 1);
  const auto bad = make_blobs(3, 30, 3.0, 4.0, 1);
  const double good_dbi = davies_bouldin(good.points, good.truth);
  const double bad_dbi = davies_bouldin(bad.points, bad.truth);
  EXPECT_LT(good_dbi, 0.2);
  EXPECT_GT(bad_dbi, 3.0 * good_dbi);
}

TEST(DaviesBouldin, KnownTwoClusterValue) {
  // Clusters {0, 2} and {10, 12} on a line: S0 = S1 = 1, M = 10,
  // DBI = (1+1)/10 = 0.2.
  const std::vector<std::vector<double>> points = {
      {0.0}, {2.0}, {10.0}, {12.0}};
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_NEAR(davies_bouldin(points, labels), 0.2, 1e-12);
}

TEST(DaviesBouldin, WrongClusteringScoresWorse) {
  const auto blobs = make_blobs(2, 20, 0.3, 10.0, 2);
  // Scramble half the labels.
  auto scrambled = blobs.truth;
  for (std::size_t i = 0; i < scrambled.size(); i += 2)
    scrambled[i] = 1 - scrambled[i];
  EXPECT_GT(davies_bouldin(blobs.points, scrambled),
            davies_bouldin(blobs.points, blobs.truth));
}

TEST(DaviesBouldin, RequiresTwoClusters) {
  const std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  EXPECT_THROW(davies_bouldin(points, {0, 0}), Error);
}

TEST(Silhouette, PerfectClustersScoreNearOne) {
  const auto blobs = make_blobs(3, 15, 0.1, 50.0, 3);
  EXPECT_GT(silhouette(blobs.points, blobs.truth), 0.95);
}

TEST(Silhouette, RandomLabelsScoreNearZeroOrBelow) {
  const auto blobs = make_blobs(1, 60, 1.0, 0.0, 4);
  Rng rng(5);
  std::vector<int> random_labels(blobs.points.size());
  for (auto& l : random_labels)
    l = static_cast<int>(rng.uniform_int(0, 2));
  // Ensure all 3 labels appear.
  random_labels[0] = 0;
  random_labels[1] = 1;
  random_labels[2] = 2;
  EXPECT_LT(silhouette(blobs.points, random_labels), 0.1);
}

TEST(Silhouette, BetterClusteringScoresHigher) {
  const auto blobs = make_blobs(2, 20, 0.3, 10.0, 6);
  auto scrambled = blobs.truth;
  for (std::size_t i = 0; i < scrambled.size(); i += 3)
    scrambled[i] = 1 - scrambled[i];
  EXPECT_GT(silhouette(blobs.points, blobs.truth),
            silhouette(blobs.points, scrambled));
}

TEST(CalinskiHarabasz, SeparatedClustersScoreHigh) {
  const auto good = make_blobs(3, 20, 0.2, 20.0, 7);
  const auto bad = make_blobs(3, 20, 3.0, 2.0, 7);
  EXPECT_GT(calinski_harabasz(good.points, good.truth),
            10.0 * calinski_harabasz(bad.points, bad.truth));
}

TEST(DbiSweep, MinimumAtTheTrueClusterCount) {
  const auto blobs = make_blobs(5, 25, 0.3, 15.0, 8);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  const auto sweep = dbi_sweep(dendrogram, blobs.points, 2, 10);
  ASSERT_EQ(sweep.size(), 9u);
  EXPECT_EQ(best_cut(sweep).k, 5u);
}

TEST(DbiSweep, ThresholdsDecreaseWithK) {
  const auto blobs = make_blobs(3, 20, 0.4, 10.0, 9);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  const auto sweep = dbi_sweep(dendrogram, blobs.points, 2, 8);
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_GE(sweep[i - 1].threshold, sweep[i].threshold);
}

TEST(DbiSweep, MinClusterSizeMarksTinyClustersInvalid) {
  // 2 big blobs plus one far outlier *pair*: with min_cluster_size=3 the
  // pair invalidates every cut that isolates it, while min_cluster_size=2
  // accepts the 3-cluster cut.
  auto blobs = make_blobs(2, 20, 0.3, 10.0, 10);
  blobs.points.push_back({100.0, 100.0});
  blobs.points.push_back({100.1, 100.0});
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);

  const auto strict = dbi_sweep(dendrogram, blobs.points, 2, 4,
                                /*min_cluster_size=*/3);
  for (const auto& point : strict)
    EXPECT_FALSE(point.valid) << "k = " << point.k;  // pair always isolated

  const auto lenient = dbi_sweep(dendrogram, blobs.points, 2, 4,
                                 /*min_cluster_size=*/2);
  for (const auto& point : lenient) {
    // k=2 (blobs merged vs pair) and k=3 (blob, blob, pair) are valid;
    // k=4 splits a blob or the pair into a singleton only if the next
    // merge is within a blob — check just the guaranteed cuts.
    if (point.k <= 3) EXPECT_TRUE(point.valid) << "k = " << point.k;
  }
  EXPECT_TRUE(best_cut(lenient).valid);
}

TEST(DbiSweep, FallsBackWhenNoCutIsValid) {
  const auto blobs = make_blobs(2, 3, 0.3, 10.0, 11);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  // min_cluster_size larger than any cluster: everything invalid.
  const auto sweep = dbi_sweep(dendrogram, blobs.points, 2, 3, 100);
  for (const auto& point : sweep) EXPECT_FALSE(point.valid);
  EXPECT_NO_THROW(best_cut(sweep));
}

TEST(DbiSweep, ValidatesBounds) {
  const auto blobs = make_blobs(2, 5, 0.3, 10.0, 12);
  const auto dendrogram = Dendrogram::run(
      DistanceMatrix::compute(blobs.points), Linkage::kAverage);
  EXPECT_THROW(dbi_sweep(dendrogram, blobs.points, 1, 5), Error);
  EXPECT_THROW(dbi_sweep(dendrogram, blobs.points, 5, 2), Error);
  EXPECT_THROW(best_cut({}), Error);
}

}  // namespace
}  // namespace cellscope
