// Serial/parallel equivalence of the analytics core (DESIGN.md §8).
//
// The determinism contract: every pooled stage — the blocked distance
// kernel, the incremental DBI sweep, the per-row z-score/fold loops, and
// the per-tower spectra — produces BIT-IDENTICAL output for any worker
// count, because tiles/rows partition the output and every reduction runs
// in a fixed order. These tests pin that contract with exact comparisons
// (no tolerances), and check the incremental DBI sweep against a
// brute-force per-k oracle. Built as its own binary (label: par) so the
// CELLSCOPE_SANITIZE=thread build can run it in isolation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/freq_features.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/time_grid.h"
#include "mapred/thread_pool.h"
#include "ml/distance.h"
#include "ml/hierarchical.h"
#include "ml/validity.h"
#include "pipeline/traffic_matrix.h"

namespace cellscope {
namespace {

std::vector<std::vector<double>> random_points(std::size_t n, std::size_t dim,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points(n, std::vector<double>(dim));
  for (auto& p : points)
    for (auto& v : p) v = rng.normal();
  return points;
}

/// Clustered points so dendrogram cuts and DBI sweeps are non-trivial.
std::vector<std::vector<double>> blob_points(std::size_t per_blob,
                                             std::size_t dim,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  for (int blob = 0; blob < 4; ++blob) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      std::vector<double> p(dim);
      for (auto& v : p) v = blob * 8.0 + rng.normal();
      points.push_back(std::move(p));
    }
  }
  return points;
}

TEST(ParallelEquivalence, DistanceMatrixBitIdenticalAcrossThreadCounts) {
  // Odd sizes so tiles and blocks straddle boundaries.
  const auto points = random_points(157, 33, 1);
  const auto serial = DistanceMatrix::compute(points);
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const auto par1 = DistanceMatrix::compute(points, &pool1);
  const auto par8 = DistanceMatrix::compute(points, &pool8);
  ASSERT_EQ(serial.condensed().size(), par8.condensed().size());
  EXPECT_EQ(serial.condensed(), par1.condensed());
  EXPECT_EQ(serial.condensed(), par8.condensed());
}

TEST(ParallelEquivalence, DistanceKernelMatchesDirectEuclidean) {
  // The |a|²+|b|²−2a·b kernel agrees with the direct definition to float
  // precision.
  const auto points = random_points(40, 17, 2);
  ThreadPool pool(4);
  const auto matrix = DistanceMatrix::compute(points, &pool);
  for (std::size_t i = 0; i < points.size(); ++i)
    for (std::size_t j = i + 1; j < points.size(); ++j)
      EXPECT_NEAR(matrix(i, j), euclidean_distance(points[i], points[j]),
                  1e-4);
}

TEST(ParallelEquivalence, DendrogramMergesIdenticalAcrossThreadCounts) {
  const auto points = blob_points(30, 24, 3);
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const auto serial =
      Dendrogram::run(DistanceMatrix::compute(points), Linkage::kAverage);
  const auto par1 = Dendrogram::run(DistanceMatrix::compute(points, &pool1),
                                    Linkage::kAverage);
  const auto par8 = Dendrogram::run(DistanceMatrix::compute(points, &pool8),
                                    Linkage::kAverage);
  ASSERT_EQ(serial.merges().size(), par8.merges().size());
  for (std::size_t m = 0; m < serial.merges().size(); ++m) {
    EXPECT_EQ(serial.merges()[m].a, par1.merges()[m].a);
    EXPECT_EQ(serial.merges()[m].b, par1.merges()[m].b);
    EXPECT_EQ(serial.merges()[m].distance, par1.merges()[m].distance);
    EXPECT_EQ(serial.merges()[m].a, par8.merges()[m].a);
    EXPECT_EQ(serial.merges()[m].b, par8.merges()[m].b);
    EXPECT_EQ(serial.merges()[m].distance, par8.merges()[m].distance);
  }
}

TEST(ParallelEquivalence, DbiSweepBitIdenticalAcrossThreadCounts) {
  const auto points = blob_points(25, 16, 4);
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(points), Linkage::kAverage);
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const auto serial = dbi_sweep(dendrogram, points, 2, 12, 2);
  const auto par1 = dbi_sweep(dendrogram, points, 2, 12, 2, &pool1);
  const auto par8 = dbi_sweep(dendrogram, points, 2, 12, 2, &pool8);
  ASSERT_EQ(serial.size(), par8.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].k, par8[i].k);
    EXPECT_EQ(serial[i].dbi, par1[i].dbi);
    EXPECT_EQ(serial[i].dbi, par8[i].dbi);
    EXPECT_EQ(serial[i].threshold, par8[i].threshold);
    EXPECT_EQ(serial[i].valid, par8[i].valid);
  }
}

TEST(ParallelEquivalence, DbiSweepMatchesBruteForcePerKOracle) {
  // The incremental sweep against the implementation it replaced: one
  // cut_k + davies_bouldin recomputation per k.
  const auto points = blob_points(25, 16, 5);
  const std::size_t k_min = 2;
  const std::size_t k_max = 14;
  const std::size_t min_cluster_size = 3;
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(points), Linkage::kAverage);
  const auto sweep =
      dbi_sweep(dendrogram, points, k_min, k_max, min_cluster_size);
  ASSERT_EQ(sweep.size(), k_max - k_min + 1);
  const auto& merges = dendrogram.merges();
  for (std::size_t k = k_min; k <= k_max; ++k) {
    const auto& point = sweep[k - k_min];
    EXPECT_EQ(point.k, k);
    const auto labels = dendrogram.cut_k(k);
    EXPECT_DOUBLE_EQ(point.dbi, davies_bouldin(points, labels));
    const std::size_t applied = dendrogram.n() - k;
    EXPECT_EQ(point.threshold, applied < merges.size()
                                   ? merges[applied].distance
                                   : merges.back().distance);
    bool valid = true;
    for (const auto& members : cluster_members(labels))
      if (members.size() < min_cluster_size) valid = false;
    EXPECT_EQ(point.valid, valid);
  }
}

TEST(ParallelEquivalence, ZscoreAndFoldBitIdenticalAcrossThreadCounts) {
  Rng rng(6);
  TrafficMatrix matrix;
  for (std::size_t i = 0; i < 37; ++i) {
    matrix.tower_ids.push_back(static_cast<std::uint32_t>(i));
    std::vector<double> row(TimeGrid::kSlots);
    for (auto& v : row) v = 100.0 + 50.0 * rng.normal();
    matrix.rows.push_back(std::move(row));
  }
  ThreadPool pool8(8);
  const auto serial_z = zscore_rows(matrix);
  const auto par_z = zscore_rows(matrix, &pool8);
  EXPECT_EQ(serial_z, par_z);
  const auto serial_fold = fold_to_week(serial_z);
  const auto par_fold = fold_to_week(serial_z, &pool8);
  EXPECT_EQ(serial_fold, par_fold);
}

TEST(ParallelEquivalence, FreqFeaturesBitIdenticalAcrossThreadCounts) {
  Rng rng(7);
  std::vector<std::vector<double>> rows(23,
                                        std::vector<double>(TimeGrid::kSlots));
  for (auto& row : rows)
    for (auto& v : row) v = rng.normal();
  ThreadPool pool8(8);
  const auto serial = compute_freq_features(rows);
  const auto par = compute_freq_features(rows, &pool8);
  ASSERT_EQ(serial.size(), par.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].amp_week, par[i].amp_week);
    EXPECT_EQ(serial[i].phase_week, par[i].phase_week);
    EXPECT_EQ(serial[i].amp_day, par[i].amp_day);
    EXPECT_EQ(serial[i].phase_day, par[i].phase_day);
    EXPECT_EQ(serial[i].amp_half_day, par[i].amp_half_day);
    EXPECT_EQ(serial[i].phase_half_day, par[i].phase_half_day);
  }
  const auto serial_var = amplitude_variance_spectrum(rows, 100);
  const auto par_var = amplitude_variance_spectrum(rows, 100, &pool8);
  EXPECT_EQ(serial_var, par_var);
}

TEST(ParallelEquivalence, SilhouetteOverloadReusesDistanceMatrix) {
  const auto points = blob_points(20, 12, 8);
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(points), Linkage::kAverage);
  const auto labels = dendrogram.cut_k(4);
  const auto distances = DistanceMatrix::compute(points);
  // Agreement limited only by the matrix's float storage.
  EXPECT_NEAR(silhouette(distances, labels), silhouette(points, labels),
              1e-4);
}

TEST(ParallelEquivalence, ThresholdCutsMatchLinearScan) {
  const auto points = blob_points(15, 8, 9);
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(points), Linkage::kAverage);
  const auto& merges = dendrogram.merges();
  // Probe below, at, between, and above every merge distance.
  std::vector<double> thresholds = {-1.0, 0.0, 1e18};
  for (const auto& m : merges) {
    thresholds.push_back(m.distance);
    thresholds.push_back(std::nextafter(m.distance, 0.0));
    thresholds.push_back(std::nextafter(m.distance, 1e300));
  }
  for (const double t : thresholds) {
    std::size_t m = 0;
    while (m < merges.size() && merges[m].distance <= t) ++m;
    EXPECT_EQ(dendrogram.cluster_count_at(t), dendrogram.n() - m);
    EXPECT_EQ(num_clusters(dendrogram.cut_threshold(t)), dendrogram.n() - m);
  }
}

}  // namespace
}  // namespace cellscope
