// Serial/parallel equivalence of the analytics core (DESIGN.md §8).
//
// The determinism contract: every pooled stage — the blocked distance
// kernel, the incremental DBI sweep, the per-row z-score/fold loops, and
// the per-tower spectra — produces BIT-IDENTICAL output for any worker
// count, because tiles/rows partition the output and every reduction runs
// in a fixed order. These tests pin that contract with exact comparisons
// (no tolerances), and check the incremental DBI sweep against a
// brute-force per-k oracle. Built as its own binary (label: par) so the
// CELLSCOPE_SANITIZE=thread build can run it in isolation.
// The same contract extends across SIMD dispatch: the vector kernels in
// src/simd/ accumulate every output in the scalar order (DESIGN.md §12),
// so forcing scalar vs the widest detected ISA must also be
// bit-identical — including remainder lanes, odd dimensions, and
// non-finite inputs (compared bitwise, since NaN != NaN).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "analysis/freq_features.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/time_grid.h"
#include "dsp/fft.h"
#include "mapred/thread_pool.h"
#include "ml/distance.h"
#include "ml/hierarchical.h"
#include "ml/validity.h"
#include "pipeline/traffic_matrix.h"
#include "simd/simd.h"

namespace cellscope {
namespace {

std::vector<std::vector<double>> random_points(std::size_t n, std::size_t dim,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points(n, std::vector<double>(dim));
  for (auto& p : points)
    for (auto& v : p) v = rng.normal();
  return points;
}

/// Clustered points so dendrogram cuts and DBI sweeps are non-trivial.
std::vector<std::vector<double>> blob_points(std::size_t per_blob,
                                             std::size_t dim,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  for (int blob = 0; blob < 4; ++blob) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      std::vector<double> p(dim);
      for (auto& v : p) v = blob * 8.0 + rng.normal();
      points.push_back(std::move(p));
    }
  }
  return points;
}

TEST(ParallelEquivalence, DistanceMatrixBitIdenticalAcrossThreadCounts) {
  // Odd sizes so tiles and blocks straddle boundaries.
  const auto points = random_points(157, 33, 1);
  const auto serial = DistanceMatrix::compute(points);
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const auto par1 = DistanceMatrix::compute(points, &pool1);
  const auto par8 = DistanceMatrix::compute(points, &pool8);
  ASSERT_EQ(serial.condensed().size(), par8.condensed().size());
  EXPECT_EQ(serial.condensed(), par1.condensed());
  EXPECT_EQ(serial.condensed(), par8.condensed());
}

TEST(ParallelEquivalence, DistanceKernelMatchesDirectEuclidean) {
  // The |a|²+|b|²−2a·b kernel agrees with the direct definition to float
  // precision.
  const auto points = random_points(40, 17, 2);
  ThreadPool pool(4);
  const auto matrix = DistanceMatrix::compute(points, &pool);
  for (std::size_t i = 0; i < points.size(); ++i)
    for (std::size_t j = i + 1; j < points.size(); ++j)
      EXPECT_NEAR(matrix(i, j), euclidean_distance(points[i], points[j]),
                  1e-4);
}

TEST(ParallelEquivalence, DendrogramMergesIdenticalAcrossThreadCounts) {
  const auto points = blob_points(30, 24, 3);
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const auto serial =
      Dendrogram::run(DistanceMatrix::compute(points), Linkage::kAverage);
  const auto par1 = Dendrogram::run(DistanceMatrix::compute(points, &pool1),
                                    Linkage::kAverage);
  const auto par8 = Dendrogram::run(DistanceMatrix::compute(points, &pool8),
                                    Linkage::kAverage);
  ASSERT_EQ(serial.merges().size(), par8.merges().size());
  for (std::size_t m = 0; m < serial.merges().size(); ++m) {
    EXPECT_EQ(serial.merges()[m].a, par1.merges()[m].a);
    EXPECT_EQ(serial.merges()[m].b, par1.merges()[m].b);
    EXPECT_EQ(serial.merges()[m].distance, par1.merges()[m].distance);
    EXPECT_EQ(serial.merges()[m].a, par8.merges()[m].a);
    EXPECT_EQ(serial.merges()[m].b, par8.merges()[m].b);
    EXPECT_EQ(serial.merges()[m].distance, par8.merges()[m].distance);
  }
}

TEST(ParallelEquivalence, DbiSweepBitIdenticalAcrossThreadCounts) {
  const auto points = blob_points(25, 16, 4);
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(points), Linkage::kAverage);
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const auto serial = dbi_sweep(dendrogram, points, 2, 12, 2);
  const auto par1 = dbi_sweep(dendrogram, points, 2, 12, 2, &pool1);
  const auto par8 = dbi_sweep(dendrogram, points, 2, 12, 2, &pool8);
  ASSERT_EQ(serial.size(), par8.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].k, par8[i].k);
    EXPECT_EQ(serial[i].dbi, par1[i].dbi);
    EXPECT_EQ(serial[i].dbi, par8[i].dbi);
    EXPECT_EQ(serial[i].threshold, par8[i].threshold);
    EXPECT_EQ(serial[i].valid, par8[i].valid);
  }
}

TEST(ParallelEquivalence, DbiSweepMatchesBruteForcePerKOracle) {
  // The incremental sweep against the implementation it replaced: one
  // cut_k + davies_bouldin recomputation per k.
  const auto points = blob_points(25, 16, 5);
  const std::size_t k_min = 2;
  const std::size_t k_max = 14;
  const std::size_t min_cluster_size = 3;
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(points), Linkage::kAverage);
  const auto sweep =
      dbi_sweep(dendrogram, points, k_min, k_max, min_cluster_size);
  ASSERT_EQ(sweep.size(), k_max - k_min + 1);
  const auto& merges = dendrogram.merges();
  for (std::size_t k = k_min; k <= k_max; ++k) {
    const auto& point = sweep[k - k_min];
    EXPECT_EQ(point.k, k);
    const auto labels = dendrogram.cut_k(k);
    EXPECT_DOUBLE_EQ(point.dbi, davies_bouldin(points, labels));
    const std::size_t applied = dendrogram.n() - k;
    EXPECT_EQ(point.threshold, applied < merges.size()
                                   ? merges[applied].distance
                                   : merges.back().distance);
    bool valid = true;
    for (const auto& members : cluster_members(labels))
      if (members.size() < min_cluster_size) valid = false;
    EXPECT_EQ(point.valid, valid);
  }
}

TEST(ParallelEquivalence, ZscoreAndFoldBitIdenticalAcrossThreadCounts) {
  Rng rng(6);
  TrafficMatrix matrix;
  for (std::size_t i = 0; i < 37; ++i) {
    matrix.tower_ids.push_back(static_cast<std::uint32_t>(i));
    std::vector<double> row(TimeGrid::kSlots);
    for (auto& v : row) v = 100.0 + 50.0 * rng.normal();
    matrix.rows.push_back(std::move(row));
  }
  ThreadPool pool8(8);
  const auto serial_z = zscore_rows(matrix);
  const auto par_z = zscore_rows(matrix, &pool8);
  EXPECT_EQ(serial_z, par_z);
  const auto serial_fold = fold_to_week(serial_z);
  const auto par_fold = fold_to_week(serial_z, &pool8);
  EXPECT_EQ(serial_fold, par_fold);
}

TEST(ParallelEquivalence, FreqFeaturesBitIdenticalAcrossThreadCounts) {
  Rng rng(7);
  std::vector<std::vector<double>> rows(23,
                                        std::vector<double>(TimeGrid::kSlots));
  for (auto& row : rows)
    for (auto& v : row) v = rng.normal();
  ThreadPool pool8(8);
  const auto serial = compute_freq_features(rows);
  const auto par = compute_freq_features(rows, &pool8);
  ASSERT_EQ(serial.size(), par.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].amp_week, par[i].amp_week);
    EXPECT_EQ(serial[i].phase_week, par[i].phase_week);
    EXPECT_EQ(serial[i].amp_day, par[i].amp_day);
    EXPECT_EQ(serial[i].phase_day, par[i].phase_day);
    EXPECT_EQ(serial[i].amp_half_day, par[i].amp_half_day);
    EXPECT_EQ(serial[i].phase_half_day, par[i].phase_half_day);
  }
  const auto serial_var = amplitude_variance_spectrum(rows, 100);
  const auto par_var = amplitude_variance_spectrum(rows, 100, &pool8);
  EXPECT_EQ(serial_var, par_var);
}

TEST(ParallelEquivalence, SilhouetteOverloadReusesDistanceMatrix) {
  const auto points = blob_points(20, 12, 8);
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(points), Linkage::kAverage);
  const auto labels = dendrogram.cut_k(4);
  const auto distances = DistanceMatrix::compute(points);
  // Agreement limited only by the matrix's float storage.
  EXPECT_NEAR(silhouette(distances, labels), silhouette(points, labels),
              1e-4);
}

TEST(ParallelEquivalence, ThresholdCutsMatchLinearScan) {
  const auto points = blob_points(15, 8, 9);
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(points), Linkage::kAverage);
  const auto& merges = dendrogram.merges();
  // Probe below, at, between, and above every merge distance.
  std::vector<double> thresholds = {-1.0, 0.0, 1e18};
  for (const auto& m : merges) {
    thresholds.push_back(m.distance);
    thresholds.push_back(std::nextafter(m.distance, 0.0));
    thresholds.push_back(std::nextafter(m.distance, 1e300));
  }
  for (const double t : thresholds) {
    std::size_t m = 0;
    while (m < merges.size() && merges[m].distance <= t) ++m;
    EXPECT_EQ(dendrogram.cluster_count_at(t), dendrogram.n() - m);
    EXPECT_EQ(num_clusters(dendrogram.cut_threshold(t)), dendrogram.n() - m);
  }
}

/// Restores automatic dispatch when a test scope ends, pass or fail.
struct ForcedIsa {
  explicit ForcedIsa(simd::Isa isa) { simd::force_isa(isa); }
  ~ForcedIsa() { simd::force_isa(std::nullopt); }
};

/// Scalar plus the widest ISA this CPU actually has (just scalar when
/// that is all there is — the sweep then degenerates to a self-check).
std::vector<simd::Isa> sweep_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::detected_isa() != simd::Isa::kScalar)
    isas.push_back(simd::detected_isa());
  return isas;
}

/// Bitwise equality — EXPECT_EQ on doubles/floats treats NaN as unequal
/// to itself, and the dispatch contract is about bit patterns anyway.
template <typename T>
bool bit_equal(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

TEST(SimdDispatchEquivalence, DistanceMatrixBitIdenticalAcrossIsas) {
  // Odd dimensions and point counts so the packed dot4 groups leave
  // scalar heads (js past a group boundary) and ragged tails, plus a
  // dimension below the vector width.
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {33, 7}, {157, 31}, {45, 3}, {9, 64}};
  for (const auto& [n, dim] : shapes) {
    const auto points = random_points(n, dim, 11);
    std::vector<std::vector<float>> results;
    for (const simd::Isa isa : sweep_isas()) {
      ForcedIsa forced(isa);
      results.push_back(DistanceMatrix::compute(points).condensed());
    }
    for (std::size_t r = 1; r < results.size(); ++r)
      EXPECT_TRUE(bit_equal(results[0], results[r]))
          << "n=" << n << " dim=" << dim;
  }
}

TEST(SimdDispatchEquivalence, DistanceMatrixNonFiniteBitIdentical) {
  auto points = random_points(37, 13, 12);
  points[3][5] = std::numeric_limits<double>::quiet_NaN();
  points[10][0] = std::numeric_limits<double>::infinity();
  points[20][12] = -std::numeric_limits<double>::infinity();
  std::vector<std::vector<float>> results;
  for (const simd::Isa isa : sweep_isas()) {
    ForcedIsa forced(isa);
    results.push_back(DistanceMatrix::compute(points).condensed());
  }
  for (std::size_t r = 1; r < results.size(); ++r)
    EXPECT_TRUE(bit_equal(results[0], results[r]));
}

TEST(SimdDispatchEquivalence, FftBitIdenticalAcrossIsas) {
  Rng rng(13);
  // Power-of-two radix-2 path and the Bluestein path (1008 is the folded
  // week; prime 251 exercises odd-length chirp products, whose tails run
  // the vector kernels' scalar remainder lanes).
  for (const std::size_t n : {std::size_t{1024}, std::size_t{1008},
                              std::size_t{251}}) {
    std::vector<Complex> input(n);
    for (auto& c : input) c = Complex(rng.normal(), rng.normal());
    std::vector<std::vector<Complex>> forward, inverse;
    for (const simd::Isa isa : sweep_isas()) {
      ForcedIsa forced(isa);
      forward.push_back(fft(input, false));
      inverse.push_back(fft(input, true));
    }
    for (std::size_t r = 1; r < forward.size(); ++r) {
      EXPECT_TRUE(bit_equal(forward[0], forward[r])) << "n=" << n;
      EXPECT_TRUE(bit_equal(inverse[0], inverse[r])) << "n=" << n;
    }
  }
}

TEST(SimdDispatchEquivalence, ZscoreAndFoldBitIdenticalAcrossIsas) {
  Rng rng(14);
  // Odd lengths force normalize's remainder lanes; the full-grid row
  // goes through the same fold_to_week the pipeline runs.
  for (const std::size_t n :
       {std::size_t{5}, std::size_t{37}, std::size_t{1009}}) {
    std::vector<double> series(n);
    for (auto& v : series) v = 100.0 + 50.0 * rng.normal();
    std::vector<std::vector<double>> results;
    for (const simd::Isa isa : sweep_isas()) {
      ForcedIsa forced(isa);
      results.push_back(zscore(series));
    }
    for (std::size_t r = 1; r < results.size(); ++r)
      EXPECT_TRUE(bit_equal(results[0], results[r])) << "n=" << n;
  }
  std::vector<double> row(TimeGrid::kSlots);
  for (auto& v : row) v = rng.normal();
  row[17] = std::numeric_limits<double>::quiet_NaN();  // non-finite too
  std::vector<std::vector<double>> folds;
  for (const simd::Isa isa : sweep_isas()) {
    ForcedIsa forced(isa);
    folds.push_back(fold_to_week({row}).front());
  }
  for (std::size_t r = 1; r < folds.size(); ++r)
    EXPECT_TRUE(bit_equal(folds[0], folds[r]));
}

}  // namespace
}  // namespace cellscope
