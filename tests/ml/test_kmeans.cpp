#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

namespace cellscope {
namespace {

struct Blobs {
  std::vector<std::vector<double>> points;
  std::vector<int> truth;
};

Blobs make_blobs(std::size_t k, std::size_t per_cluster,
                 std::uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      blobs.points.push_back(
          {10.0 * static_cast<double>(c) + rng.normal(0.0, 0.4),
           rng.normal(0.0, 0.4)});
      blobs.truth.push_back(static_cast<int>(c));
    }
  }
  return blobs;
}

bool same_partition(const std::vector<int>& a, const std::vector<int>& b) {
  std::map<int, int> fwd;
  std::map<int, int> rev;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (fwd.contains(a[i]) && fwd[a[i]] != b[i]) return false;
    if (rev.contains(b[i]) && rev[b[i]] != a[i]) return false;
    fwd[a[i]] = b[i];
    rev[b[i]] = a[i];
  }
  return true;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  const auto blobs = make_blobs(4, 30, 1);
  KMeansOptions options;
  options.k = 4;
  const auto result = kmeans(blobs.points, options);
  EXPECT_TRUE(same_partition(result.labels, blobs.truth));
}

TEST(KMeans, IsDeterministicInSeed) {
  const auto blobs = make_blobs(3, 20, 2);
  KMeansOptions options;
  options.k = 3;
  const auto a = kmeans(blobs.points, options);
  const auto b = kmeans(blobs.points, options);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, InertiaIsSumOfSquaredDistances) {
  const auto blobs = make_blobs(2, 15, 3);
  KMeansOptions options;
  options.k = 2;
  const auto result = kmeans(blobs.points, options);
  double expected = 0.0;
  for (std::size_t i = 0; i < blobs.points.size(); ++i)
    expected += squared_distance(
        blobs.points[i],
        result.centroids[static_cast<std::size_t>(result.labels[i])]);
  EXPECT_NEAR(result.inertia, expected, 1e-9);
}

TEST(KMeans, CentroidsAreClusterMeans) {
  const auto blobs = make_blobs(2, 20, 4);
  KMeansOptions options;
  options.k = 2;
  const auto result = kmeans(blobs.points, options);
  for (std::size_t c = 0; c < 2; ++c) {
    std::vector<double> mean_point(2, 0.0);
    std::size_t count = 0;
    for (std::size_t i = 0; i < blobs.points.size(); ++i) {
      if (static_cast<std::size_t>(result.labels[i]) != c) continue;
      ++count;
      for (int d = 0; d < 2; ++d) mean_point[d] += blobs.points[i][d];
    }
    for (auto& v : mean_point) v /= static_cast<double>(count);
    EXPECT_NEAR(result.centroids[c][0], mean_point[0], 1e-9);
    EXPECT_NEAR(result.centroids[c][1], mean_point[1], 1e-9);
  }
}

TEST(KMeans, MoreClustersNeverIncreaseInertia) {
  const auto blobs = make_blobs(3, 25, 5);
  double previous = 1e300;
  for (std::size_t k = 1; k <= 6; ++k) {
    KMeansOptions options;
    options.k = k;
    options.seed = 7;
    const auto result = kmeans(blobs.points, options);
    EXPECT_LE(result.inertia, previous * 1.001) << "k = " << k;
    previous = result.inertia;
  }
}

TEST(KMeans, KOneCentroidIsGlobalMean) {
  const auto blobs = make_blobs(2, 10, 6);
  KMeansOptions options;
  options.k = 1;
  const auto result = kmeans(blobs.points, options);
  std::vector<double> global(2, 0.0);
  for (const auto& p : blobs.points)
    for (int d = 0; d < 2; ++d) global[d] += p[d];
  for (auto& v : global) v /= static_cast<double>(blobs.points.size());
  EXPECT_NEAR(result.centroids[0][0], global[0], 1e-9);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  // Distinct points, one cluster each.
  std::vector<std::vector<double>> points = {{0.0}, {5.0}, {9.0}};
  KMeansOptions options;
  options.k = 3;
  const auto result = kmeans(points, options);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
  std::set<int> distinct(result.labels.begin(), result.labels.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(KMeans, LabelsAreWithinRange) {
  const auto blobs = make_blobs(3, 10, 8);
  KMeansOptions options;
  options.k = 5;
  const auto result = kmeans(blobs.points, options);
  for (const int l : result.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 5);
  }
}

TEST(KMeans, ValidatesArguments) {
  KMeansOptions options;
  options.k = 3;
  EXPECT_THROW(kmeans({{1.0}, {2.0}}, options), Error);
  options.k = 0;
  EXPECT_THROW(kmeans({{1.0}, {2.0}}, options), Error);
  options.k = 1;
  EXPECT_THROW(kmeans({{1.0}, {2.0, 3.0}}, options), Error);
}

}  // namespace
}  // namespace cellscope
