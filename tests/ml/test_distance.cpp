#include "ml/distance.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

namespace cellscope {
namespace {

std::vector<std::vector<double>> random_points(std::size_t n, std::size_t dim,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points(n, std::vector<double>(dim));
  for (auto& p : points)
    for (auto& v : p) v = rng.normal();
  return points;
}

TEST(DistanceMatrix, MatchesDirectComputation) {
  const auto points = random_points(20, 5, 1);
  const auto matrix = DistanceMatrix::compute(points);
  for (std::size_t i = 0; i < points.size(); ++i)
    for (std::size_t j = 0; j < points.size(); ++j)
      EXPECT_NEAR(matrix(i, j), euclidean_distance(points[i], points[j]),
                  1e-5);
}

TEST(DistanceMatrix, IsSymmetricWithZeroDiagonal) {
  const auto points = random_points(15, 3, 2);
  const auto matrix = DistanceMatrix::compute(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(matrix(i, i), 0.0);
    for (std::size_t j = 0; j < points.size(); ++j)
      EXPECT_DOUBLE_EQ(matrix(i, j), matrix(j, i));
  }
}

TEST(DistanceMatrix, SetUpdatesBothOrientations) {
  auto matrix = DistanceMatrix::compute(random_points(5, 2, 3));
  matrix.set(1, 3, 42.0);
  EXPECT_FLOAT_EQ(static_cast<float>(matrix(1, 3)), 42.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(matrix(3, 1)), 42.0f);
}

TEST(DistanceMatrix, CondensedConstructorValidatesSize) {
  EXPECT_THROW(DistanceMatrix(4, std::vector<float>(5)), Error);
  EXPECT_NO_THROW(DistanceMatrix(4, std::vector<float>(6)));
  EXPECT_THROW(DistanceMatrix(1, {}), Error);
}

TEST(DistanceMatrix, RequiresConsistentDimensions) {
  std::vector<std::vector<double>> points = {{1.0, 2.0}, {3.0}};
  EXPECT_THROW(DistanceMatrix::compute(points), Error);
}

TEST(DistanceMatrix, RequiresTwoPoints) {
  EXPECT_THROW(DistanceMatrix::compute({{1.0}}), Error);
}

TEST(DistanceMatrix, InvalidIndicesThrowInDebug) {
  // Accessor bounds checks are CS_DCHECK — active in debug builds only,
  // so the NN-chain inner loop stays branch-free in release.
#ifndef NDEBUG
  const auto matrix = DistanceMatrix::compute(random_points(4, 2, 5));
  EXPECT_THROW(matrix(0, 4), Error);
  EXPECT_THROW(matrix(4, 4), Error);
#else
  GTEST_SKIP() << "accessor bounds checks are compiled out under NDEBUG";
#endif
}

}  // namespace
}  // namespace cellscope
