// CentroidIndex: the ANN layer behind OnlineClassifier::nearest_centroid.
//
// The contract under test: below brute_force_below the index IS the
// classic ascending-index strict-< scan (exact by construction, so the
// paper's five-pattern model is untouched); above it the graph search
// must still agree with the exact scan on separated data, keep the
// lowest index on ties, and report exact distances in both modes.
#include "ml/centroid_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

namespace cellscope {
namespace {

std::vector<std::vector<double>> blob_centroids(std::size_t count,
                                                std::size_t dim,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> centroids(count,
                                             std::vector<double>(dim));
  for (std::size_t c = 0; c < count; ++c)
    for (auto& v : centroids[c]) v = static_cast<double>(c) * 10.0 +
                                     rng.normal();
  return centroids;
}

std::size_t exact_nearest(const std::vector<std::vector<double>>& centroids,
                          std::span<const double> query, double* best_out) {
  double best = squared_distance(query, centroids[0]);
  std::size_t best_index = 0;
  for (std::size_t c = 1; c < centroids.size(); ++c) {
    const double d = squared_distance(query, centroids[c]);
    if (d < best) {
      best = d;
      best_index = c;
    }
  }
  if (best_out != nullptr) *best_out = best;
  return best_index;
}

TEST(CentroidIndex, SmallModelsStayExactBruteForce) {
  // Five centroids — the paper's five-pattern model — sit far below the
  // default brute_force_below, so no graph is built and every query is
  // the pre-index scan verbatim.
  const auto centroids = blob_centroids(5, 24, 1);
  const CentroidIndex index(centroids);
  EXPECT_TRUE(index.brute_force());
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> query(24);
    for (auto& v : query)
      v = static_cast<double>(trial % 5) * 10.0 + 3.0 * rng.normal();
    double want_dist = 0.0;
    const std::size_t want = exact_nearest(centroids, query, &want_dist);
    double got_dist = 0.0;
    EXPECT_EQ(index.nearest(query, &got_dist), want);
    EXPECT_EQ(got_dist, want_dist);
  }
}

TEST(CentroidIndex, GraphSearchAgreesWithExactScanOnSeparatedData) {
  const auto centroids = blob_centroids(200, 16, 3);
  CentroidIndex::Options options;
  const CentroidIndex index(centroids, options);
  EXPECT_FALSE(index.brute_force());
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> query(16);
    const double center = static_cast<double>(trial % 200) * 10.0;
    for (auto& v : query) v = center + 2.0 * rng.normal();
    double want_dist = 0.0;
    const std::size_t want = exact_nearest(centroids, query, &want_dist);
    double got_dist = 0.0;
    const std::size_t got = index.nearest(query, &got_dist);
    EXPECT_EQ(got, want) << "trial " << trial;
    EXPECT_EQ(got_dist, want_dist) << "trial " << trial;
  }
}

TEST(CentroidIndex, TiesKeepTheLowestIndexInBothModes) {
  // Duplicate centroids: whichever mode answers, the first index wins —
  // the same tie-break the original classify loop's strict < applied.
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {-4.0, 0.0, 9.0};
  const std::vector<std::vector<double>> duplicated = {b, a, a, b, a};
  const CentroidIndex small(duplicated);
  EXPECT_EQ(small.nearest(a), 1u);
  EXPECT_EQ(small.nearest(b), 0u);

  std::vector<std::vector<double>> many;
  for (int i = 0; i < 100; ++i) many.push_back(i % 2 == 0 ? a : b);
  CentroidIndex::Options options;
  options.brute_force_below = 4;  // force the graph path
  const CentroidIndex graph(many, options);
  EXPECT_FALSE(graph.brute_force());
  EXPECT_EQ(graph.nearest(a), 0u);
  EXPECT_EQ(graph.nearest(b), 1u);
}

TEST(CentroidIndex, BruteForceBelowKnobSelectsTheMode) {
  const auto centroids = blob_centroids(30, 8, 5);
  CentroidIndex::Options scan;
  scan.brute_force_below = 64;
  EXPECT_TRUE(CentroidIndex(centroids, scan).brute_force());
  CentroidIndex::Options graph;
  graph.brute_force_below = 10;
  EXPECT_FALSE(CentroidIndex(centroids, graph).brute_force());
  // And the two modes agree here regardless.
  const CentroidIndex exact(centroids, scan);
  const CentroidIndex ann(centroids, graph);
  Rng rng(6);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<double> query(8);
    for (auto& v : query)
      v = static_cast<double>(trial % 30) * 10.0 + rng.normal();
    EXPECT_EQ(ann.nearest(query), exact.nearest(query));
  }
}

TEST(CentroidIndex, EnvKnobsOverrideDefaultsAndRejectGarbage) {
  setenv("CELLSCOPE_ANN_BILINK", "4", 1);
  setenv("CELLSCOPE_ANN_NLIST", "12", 1);
  setenv("CELLSCOPE_ANN_BRUTE_BELOW", "2", 1);
  auto options = CentroidIndex::Options::from_env();
  EXPECT_EQ(options.bilink, 4u);
  EXPECT_EQ(options.nlist, 12u);
  EXPECT_EQ(options.brute_force_below, 2u);
  // Malformed and overflowing values fall back to the defaults — not a
  // clamp, not a crash.
  setenv("CELLSCOPE_ANN_BILINK", "lots", 1);
  setenv("CELLSCOPE_ANN_NLIST", "99999999999999999999999999", 1);
  unsetenv("CELLSCOPE_ANN_BRUTE_BELOW");
  options = CentroidIndex::Options::from_env();
  const CentroidIndex::Options defaults;
  EXPECT_EQ(options.bilink, defaults.bilink);
  EXPECT_EQ(options.nlist, defaults.nlist);
  EXPECT_EQ(options.brute_force_below, defaults.brute_force_below);
  unsetenv("CELLSCOPE_ANN_BILINK");
  unsetenv("CELLSCOPE_ANN_NLIST");
}

TEST(CentroidIndex, RejectsEmptyAndMismatchedInputs) {
  const std::vector<std::vector<double>> empty;
  EXPECT_THROW(CentroidIndex index(empty), Error);
  const std::vector<std::vector<double>> ragged = {{1.0, 2.0}, {1.0}};
  EXPECT_THROW(CentroidIndex index(ragged), Error);
  const CentroidIndex index(blob_centroids(3, 4, 7));
  const std::vector<double> wrong_dim = {1.0, 2.0};
  EXPECT_THROW(index.nearest(wrong_dim), Error);
}

}  // namespace
}  // namespace cellscope
