#include "pipeline/cleaner.h"

#include <gtest/gtest.h>

namespace cellscope {
namespace {

TrafficLog make_log(std::uint64_t user, std::uint32_t tower,
                    std::uint32_t start, std::uint64_t bytes,
                    std::uint32_t duration = 10) {
  TrafficLog log;
  log.user_id = user;
  log.tower_id = tower;
  log.start_minute = start;
  log.end_minute = start + duration;
  log.bytes = bytes;
  log.address = "District-1/Street-1/No-1";
  return log;
}

TEST(Cleaner, PassesCleanLogsThrough) {
  std::vector<TrafficLog> logs = {make_log(1, 10, 0, 100),
                                  make_log(2, 11, 5, 200)};
  CleanStats stats;
  const auto cleaned = clean_logs(logs, &stats);
  EXPECT_EQ(cleaned.size(), 2u);
  EXPECT_EQ(stats.duplicates_removed, 0u);
  EXPECT_EQ(stats.conflicts_resolved, 0u);
  EXPECT_EQ(stats.malformed_dropped, 0u);
  EXPECT_EQ(stats.input_records, 2u);
  EXPECT_EQ(stats.output_records, 2u);
}

TEST(Cleaner, RemovesExactDuplicates) {
  const auto log = make_log(1, 10, 0, 100);
  std::vector<TrafficLog> logs = {log, log, log};
  CleanStats stats;
  const auto cleaned = clean_logs(logs, &stats);
  EXPECT_EQ(cleaned.size(), 1u);
  EXPECT_EQ(stats.duplicates_removed, 2u);
}

TEST(Cleaner, ResolvesConflictsKeepingLargestBytes) {
  auto big = make_log(1, 10, 0, 500);
  auto small = make_log(1, 10, 0, 100);
  small.end_minute = 1;
  std::vector<TrafficLog> logs = {small, big};
  CleanStats stats;
  const auto cleaned = clean_logs(logs, &stats);
  ASSERT_EQ(cleaned.size(), 1u);
  EXPECT_EQ(cleaned[0].bytes, 500u);
  EXPECT_EQ(stats.conflicts_resolved, 1u);
}

TEST(Cleaner, DifferentUsersAreSeparateConnections) {
  std::vector<TrafficLog> logs = {make_log(1, 10, 0, 100),
                                  make_log(2, 10, 0, 100)};
  EXPECT_EQ(clean_logs(logs).size(), 2u);
}

TEST(Cleaner, DifferentStartTimesAreSeparateConnections) {
  std::vector<TrafficLog> logs = {make_log(1, 10, 0, 100),
                                  make_log(1, 10, 1, 100)};
  EXPECT_EQ(clean_logs(logs).size(), 2u);
}

TEST(Cleaner, DropsMalformedRecords) {
  auto inverted = make_log(1, 10, 100, 50);
  inverted.end_minute = 99;  // ends before it starts
  auto zero_bytes = make_log(2, 10, 0, 0);
  auto instant = make_log(3, 10, 5, 10);
  instant.end_minute = instant.start_minute;  // zero duration
  std::vector<TrafficLog> logs = {inverted, zero_bytes, instant,
                                  make_log(4, 10, 0, 7)};
  CleanStats stats;
  const auto cleaned = clean_logs(logs, &stats);
  EXPECT_EQ(cleaned.size(), 1u);
  EXPECT_EQ(stats.malformed_dropped, 3u);
}

TEST(Cleaner, CustomValidatorCountsAsMalformed) {
  CleanerOptions options;
  options.validator = [](const TrafficLog& log) {
    return log.tower_id != 13;  // reject the unlucky tower
  };
  std::vector<TrafficLog> logs = {make_log(1, 13, 0, 100),
                                  make_log(2, 14, 0, 100)};
  CleanStats stats;
  const auto cleaned = clean_logs(logs, options, &stats);
  ASSERT_EQ(cleaned.size(), 1u);
  EXPECT_EQ(cleaned[0].tower_id, 14u);
  EXPECT_EQ(stats.malformed_dropped, 1u);
}

TEST(Cleaner, OutputIsSortedByUserTowerStart) {
  std::vector<TrafficLog> logs = {make_log(5, 2, 30, 10),
                                  make_log(1, 9, 20, 10),
                                  make_log(1, 2, 10, 10)};
  const auto cleaned = clean_logs(logs);
  ASSERT_EQ(cleaned.size(), 3u);
  EXPECT_EQ(cleaned[0].user_id, 1u);
  EXPECT_EQ(cleaned[0].tower_id, 2u);
  EXPECT_EQ(cleaned[1].tower_id, 9u);
  EXPECT_EQ(cleaned[2].user_id, 5u);
}

TEST(Cleaner, IsIdempotent) {
  const auto log = make_log(1, 10, 0, 100);
  std::vector<TrafficLog> logs = {log, log, make_log(2, 3, 4, 5)};
  const auto once = clean_logs(logs);
  CleanStats stats;
  const auto twice = clean_logs(once, &stats);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(stats.duplicates_removed, 0u);
  EXPECT_EQ(stats.conflicts_resolved, 0u);
}

TEST(Cleaner, PreservesTotalBytesOfCleanConnections) {
  // Dedup must not change the byte total of unique connections.
  const auto a = make_log(1, 10, 0, 100);
  const auto b = make_log(2, 11, 5, 250);
  std::vector<TrafficLog> logs = {a, a, b};
  const auto cleaned = clean_logs(logs);
  std::uint64_t total = 0;
  for (const auto& log : cleaned) total += log.bytes;
  EXPECT_EQ(total, 350u);
}

TEST(Cleaner, EmptyInput) {
  CleanStats stats;
  EXPECT_TRUE(clean_logs({}, &stats).empty());
  EXPECT_EQ(stats.input_records, 0u);
  EXPECT_EQ(stats.output_records, 0u);
}

}  // namespace
}  // namespace cellscope
