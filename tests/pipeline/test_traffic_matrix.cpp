#include "pipeline/traffic_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

namespace cellscope {
namespace {

TrafficMatrix make_matrix(std::size_t n, std::uint64_t seed = 3) {
  Rng rng(seed);
  TrafficMatrix m;
  for (std::size_t i = 0; i < n; ++i) {
    m.tower_ids.push_back(static_cast<std::uint32_t>(i * 10));
    std::vector<double> row(TimeGrid::kSlots);
    for (auto& v : row) v = rng.uniform(0.0, 100.0);
    m.rows.push_back(std::move(row));
  }
  return m;
}

TEST(TrafficMatrix, RowOfFindsTowers) {
  const auto m = make_matrix(5);
  EXPECT_EQ(m.row_of(0), 0u);
  EXPECT_EQ(m.row_of(40), 4u);
  EXPECT_THROW(m.row_of(7), InvalidArgument);
}

TEST(TrafficMatrix, CheckAcceptsValidMatrix) {
  const auto m = make_matrix(3);
  EXPECT_NO_THROW(m.check());
}

TEST(TrafficMatrix, CheckRejectsDuplicateIds) {
  auto m = make_matrix(3);
  m.tower_ids[2] = m.tower_ids[0];
  EXPECT_THROW(m.check(), Error);
}

TEST(TrafficMatrix, CheckRejectsWrongRowLength) {
  auto m = make_matrix(2);
  m.rows[1].pop_back();
  EXPECT_THROW(m.check(), Error);
}

TEST(TrafficMatrix, CheckRejectsMismatchedSizes) {
  auto m = make_matrix(2);
  m.tower_ids.pop_back();
  EXPECT_THROW(m.check(), Error);
}

TEST(ZscoreRows, EveryRowIsNormalized) {
  const auto m = make_matrix(4);
  const auto z = zscore_rows(m);
  ASSERT_EQ(z.size(), 4u);
  for (const auto& row : z) {
    EXPECT_NEAR(mean(row), 0.0, 1e-9);
    EXPECT_NEAR(stddev(row), 1.0, 1e-9);
  }
}

TEST(FoldToWeek, AveragesTheFourWeeks) {
  std::vector<std::vector<double>> rows(1);
  rows[0].assign(TimeGrid::kSlots, 0.0);
  // Slot s of week w carries value w; the fold must average to 1.5.
  for (std::size_t s = 0; s < TimeGrid::kSlots; ++s)
    rows[0][s] = static_cast<double>(s / TimeGrid::kSlotsPerWeek);
  const auto folded = fold_to_week(rows);
  ASSERT_EQ(folded[0].size(), static_cast<std::size_t>(TimeGrid::kSlotsPerWeek));
  for (const double v : folded[0]) EXPECT_DOUBLE_EQ(v, 1.5);
}

TEST(FoldToWeek, PreservesWeeklyPeriodicSignalsExactly) {
  std::vector<std::vector<double>> rows(1);
  rows[0].resize(TimeGrid::kSlots);
  for (std::size_t s = 0; s < TimeGrid::kSlots; ++s)
    rows[0][s] = std::sin(2.0 * M_PI *
                          static_cast<double>(s % TimeGrid::kSlotsPerWeek) /
                          TimeGrid::kSlotsPerWeek);
  const auto folded = fold_to_week(rows);
  for (int s = 0; s < TimeGrid::kSlotsPerWeek; ++s)
    EXPECT_NEAR(folded[0][s], rows[0][s], 1e-12);
}

TEST(FoldToWeek, RejectsWrongLength) {
  std::vector<std::vector<double>> rows = {{1.0, 2.0}};
  EXPECT_THROW(fold_to_week(rows), Error);
}

TEST(AggregateSeries, SumsAllRows) {
  auto m = make_matrix(3);
  const auto total = aggregate_series(m);
  for (std::size_t s = 0; s < 10; ++s)
    EXPECT_NEAR(total[s], m.rows[0][s] + m.rows[1][s] + m.rows[2][s], 1e-9);
}

TEST(AggregateSeries, SubsetSelectsRows) {
  auto m = make_matrix(3);
  const auto partial = aggregate_series(m, {0, 2});
  for (std::size_t s = 0; s < 10; ++s)
    EXPECT_NEAR(partial[s], m.rows[0][s] + m.rows[2][s], 1e-9);
}

TEST(AggregateSeries, EmptySubsetIsZero) {
  auto m = make_matrix(2);
  const auto empty = aggregate_series(m, {});
  for (const double v : empty) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(AggregateSeries, OutOfRangeRowThrows) {
  auto m = make_matrix(2);
  EXPECT_THROW(aggregate_series(m, {5}), Error);
}

}  // namespace
}  // namespace cellscope
