#include "pipeline/density.h"

#include <gtest/gtest.h>

#include "city/deployment.h"
#include "common/error.h"
#include "pipeline/vectorizer.h"
#include "traffic/intensity_model.h"

namespace cellscope {
namespace {

struct Scenario {
  std::vector<Tower> towers;
  TrafficMatrix matrix;
  BoundingBox box;
};

Scenario make_scenario(std::size_t n) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = n;
  auto towers = deploy_towers(city, options);
  const auto intensity = IntensityModel::create(towers, IntensityOptions{});
  auto matrix = vectorize_intensity(towers, intensity, 5);
  return {std::move(towers), std::move(matrix), city.box()};
}

TEST(Density, TotalEqualsTrafficInWindow) {
  const auto scenario = make_scenario(30);
  const std::size_t begin = 0;
  const std::size_t end = 144;
  const auto grid = traffic_density(scenario.towers, scenario.matrix, begin,
                                    end, scenario.box, 20, 20);
  double expected = 0.0;
  for (const auto& row : scenario.matrix.rows)
    for (std::size_t s = begin; s < end; ++s) expected += row[s];
  EXPECT_NEAR(grid.total(), expected, expected * 1e-9);
}

TEST(Density, NightLighterThanDay) {
  // Fig. 2's core observation: 4 AM densities are far below 10 AM.
  const auto scenario = make_scenario(60);
  const auto night = traffic_density_at_hour(scenario.towers, scenario.matrix,
                                             3, 4, scenario.box, 10, 10);
  const auto day = traffic_density_at_hour(scenario.towers, scenario.matrix,
                                           3, 10, scenario.box, 10, 10);
  EXPECT_GT(day.total(), 3.0 * night.total());
}

TEST(Density, HourWindowIsOneHourOfSlots) {
  const auto scenario = make_scenario(10);
  const auto grid = traffic_density_at_hour(scenario.towers, scenario.matrix,
                                            0, 0, scenario.box, 5, 5);
  double expected = 0.0;
  for (const auto& row : scenario.matrix.rows)
    for (std::size_t s = 0; s < TimeGrid::kSlotsPerHour; ++s)
      expected += row[s];
  EXPECT_NEAR(grid.total(), expected, expected * 1e-9);
}

TEST(Density, InvalidSlotRangeThrows) {
  const auto scenario = make_scenario(5);
  EXPECT_THROW(traffic_density(scenario.towers, scenario.matrix, 10, 10,
                               scenario.box, 5, 5),
               Error);
  EXPECT_THROW(traffic_density(scenario.towers, scenario.matrix, 0,
                               TimeGrid::kSlots + 1, scenario.box, 5, 5),
               Error);
}

TEST(Density, MissingTowerMetadataThrows) {
  auto scenario = make_scenario(5);
  scenario.towers.pop_back();  // matrix row without tower
  EXPECT_THROW(traffic_density(scenario.towers, scenario.matrix, 0, 10,
                               scenario.box, 5, 5),
               Error);
}

TEST(Density, CityCenterIsDenserThanFringe) {
  const auto scenario = make_scenario(400);
  const auto grid = traffic_density(scenario.towers, scenario.matrix, 0,
                                    TimeGrid::kSlots, scenario.box, 11, 11);
  // The center cell (office CBD) should out-dense the corner cells.
  const double center = grid.density_at(5, 5);
  const double corner = grid.density_at(0, 0);
  EXPECT_GT(center, corner);
}

}  // namespace
}  // namespace cellscope
