#include "pipeline/vectorizer.h"

#include <gtest/gtest.h>

#include "city/deployment.h"
#include "common/stats.h"
#include "pipeline/cleaner.h"
#include "traffic/trace_generator.h"

namespace cellscope {
namespace {

std::vector<Tower> make_towers(std::size_t n) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = n;
  return deploy_towers(city, options);
}

TEST(Vectorizer, AggregatesLogsIntoCorrectSlots) {
  const auto towers = make_towers(3);
  std::vector<TrafficLog> logs;
  TrafficLog log;
  log.user_id = 1;
  log.tower_id = towers[0].id;
  log.start_minute = 25;  // slot 2
  log.end_minute = 30;
  log.bytes = 1000;
  logs.push_back(log);
  log.bytes = 500;
  logs.push_back(log);  // same slot, summed
  log.tower_id = towers[1].id;
  log.start_minute = 0;  // slot 0
  log.bytes = 77;
  logs.push_back(log);

  ThreadPool pool(2);
  const auto matrix = vectorize_logs(logs, towers, pool);
  EXPECT_EQ(matrix.n(), 3u);
  EXPECT_DOUBLE_EQ(matrix.rows[0][2], 1500.0);
  EXPECT_DOUBLE_EQ(matrix.rows[1][0], 77.0);
  EXPECT_DOUBLE_EQ(matrix.rows[2][0], 0.0);
}

TEST(Vectorizer, IgnoresUnknownTowersAndOutOfGridSlots) {
  const auto towers = make_towers(2);
  TrafficLog unknown;
  unknown.tower_id = 999;
  unknown.start_minute = 0;
  unknown.end_minute = 5;
  unknown.bytes = 100;
  TrafficLog late;
  late.tower_id = towers[0].id;
  late.start_minute = static_cast<std::uint32_t>(TimeGrid::kSlots) * 10 + 5;
  late.end_minute = late.start_minute + 1;
  late.bytes = 100;
  ThreadPool pool(2);
  const auto matrix = vectorize_logs({unknown, late}, towers, pool);
  for (const auto& row : matrix.rows)
    for (const double v : row) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Vectorizer, ResultIndependentOfChunkSize) {
  const auto towers = make_towers(4);
  const auto intensity = IntensityModel::create(towers, IntensityOptions{});
  TraceOptions trace_options;
  trace_options.day_begin = 0;
  trace_options.day_end = 1;
  const auto trace = generate_trace(towers, intensity, trace_options);

  ThreadPool pool(3);
  VectorizerOptions small;
  small.chunk_size = 7;
  VectorizerOptions large;
  large.chunk_size = 1 << 20;
  const auto a = vectorize_logs(trace.logs, towers, pool, small);
  const auto b = vectorize_logs(trace.logs, towers, pool, large);
  ASSERT_EQ(a.n(), b.n());
  for (std::size_t r = 0; r < a.n(); ++r)
    for (std::size_t s = 0; s < TimeGrid::kSlots; ++s)
      EXPECT_DOUBLE_EQ(a.rows[r][s], b.rows[r][s]);
}

TEST(Vectorizer, CleanedTraceRecoversGroundTruthBytes) {
  // The headline pipeline property: generate (with defects) -> clean ->
  // vectorize must reproduce the generator's clean per-(tower, slot)
  // bytes exactly.
  const auto towers = make_towers(5);
  const auto intensity = IntensityModel::create(towers, IntensityOptions{});
  TraceOptions trace_options;
  trace_options.day_begin = 0;
  trace_options.day_end = 2;
  trace_options.duplicate_prob = 0.05;
  trace_options.conflict_prob = 0.03;
  const auto trace = generate_trace(towers, intensity, trace_options);
  ASSERT_GT(trace.duplicates_injected, 0u);
  ASSERT_GT(trace.conflicts_injected, 0u);

  const auto cleaned = clean_logs(trace.logs);
  ThreadPool pool(2);
  const auto matrix = vectorize_logs(cleaned, towers, pool);
  for (std::size_t r = 0; r < matrix.n(); ++r) {
    const auto tower_id = matrix.tower_ids[r];
    for (std::size_t s = 0; s < TimeGrid::kSlots; ++s) {
      ASSERT_NEAR(matrix.rows[r][s], trace.clean_bytes[tower_id][s], 1e-6)
          << "tower " << tower_id << " slot " << s;
    }
  }
}

TEST(Vectorizer, WithoutCleaningDefectsInflateTraffic) {
  const auto towers = make_towers(4);
  const auto intensity = IntensityModel::create(towers, IntensityOptions{});
  TraceOptions trace_options;
  trace_options.day_begin = 0;
  trace_options.day_end = 1;
  trace_options.duplicate_prob = 0.2;
  const auto trace = generate_trace(towers, intensity, trace_options);
  ThreadPool pool(2);
  const auto dirty = vectorize_logs(trace.logs, towers, pool);
  const auto clean = vectorize_logs(clean_logs(trace.logs), towers, pool);
  EXPECT_GT(sum(aggregate_series(dirty)), sum(aggregate_series(clean)));
}

TEST(VectorizeIntensity, MatchesModelScale) {
  const auto towers = make_towers(6);
  const auto intensity = IntensityModel::create(towers, IntensityOptions{});
  const auto matrix = vectorize_intensity(towers, intensity, 7);
  ASSERT_EQ(matrix.n(), towers.size());
  for (std::size_t r = 0; r < matrix.n(); ++r) {
    const auto expected = intensity.expected_series(matrix.tower_ids[r]);
    // Total sampled bytes within noise of the expectation.
    EXPECT_NEAR(sum(matrix.rows[r]) / sum(expected), 1.0, 0.05);
  }
}

TEST(VectorizeIntensity, IsDeterministicInSeed) {
  const auto towers = make_towers(4);
  const auto intensity = IntensityModel::create(towers, IntensityOptions{});
  const auto a = vectorize_intensity(towers, intensity, 11);
  const auto b = vectorize_intensity(towers, intensity, 11);
  const auto c = vectorize_intensity(towers, intensity, 12);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_NE(a.rows, c.rows);
}

}  // namespace
}  // namespace cellscope
