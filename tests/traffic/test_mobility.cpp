#include "traffic/mobility.h"

#include <gtest/gtest.h>

#include "city/deployment.h"
#include "common/error.h"
#include "traffic/mobility_trace.h"

namespace cellscope {
namespace {

std::vector<Tower> make_towers(std::size_t n = 200) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = n;
  return deploy_towers(city, options);
}

TEST(MobilityModel, AssignsSensibleTowerCategories) {
  const auto towers = make_towers();
  MobilityOptions options;
  options.n_users = 200;
  const auto model = MobilityModel::create(towers, options);
  ASSERT_EQ(model.users().size(), 200u);
  for (const auto& user : model.users()) {
    const auto home = towers[user.home_tower].true_region;
    EXPECT_TRUE(home == FunctionalRegion::kResident ||
                home == FunctionalRegion::kComprehensive);
    const auto work = towers[user.work_tower].true_region;
    EXPECT_TRUE(work == FunctionalRegion::kOffice ||
                work == FunctionalRegion::kComprehensive);
    EXPECT_EQ(towers[user.transit_tower].true_region,
              FunctionalRegion::kTransport);
    const auto leisure = towers[user.leisure_tower].true_region;
    EXPECT_TRUE(leisure == FunctionalRegion::kEntertainment ||
                leisure == FunctionalRegion::kComprehensive);
  }
}

TEST(MobilityModel, EmploymentRateIsRespected) {
  const auto towers = make_towers();
  MobilityOptions options;
  options.n_users = 2000;
  options.employment_rate = 0.7;
  const auto model = MobilityModel::create(towers, options);
  std::size_t employed = 0;
  for (const auto& user : model.users())
    if (user.employed) ++employed;
  EXPECT_NEAR(static_cast<double>(employed) / 2000.0, 0.7, 0.04);
}

TEST(MobilityModel, WeekdayScheduleFollowsTheCommute) {
  const auto towers = make_towers();
  MobilityOptions options;
  options.n_users = 50;
  options.employment_rate = 1.0;
  const auto model = MobilityModel::create(towers, options);
  const auto& user = model.users().front();

  // 5:00 Monday: home. Midday: work. 23:00: home again.
  EXPECT_EQ(model.place_at(user, TimeGrid::slot_at(0, 5, 0)),
            UserPlace::kHome);
  EXPECT_EQ(model.place_at(user, TimeGrid::slot_at(0, 12, 0)),
            UserPlace::kWork);
  EXPECT_EQ(model.place_at(user, TimeGrid::slot_at(0, 23, 0)),
            UserPlace::kHome);

  // Sometime in [commute_out, commute_out + transit] the user is in
  // transit.
  const auto transit_slot = TimeGrid::slot_at(
      0, static_cast<int>(user.commute_out_h),
      ((static_cast<int>(user.commute_out_h * 60) / 10) * 10) % 60);
  const auto place = model.place_at(user, transit_slot + 1);
  EXPECT_TRUE(place == UserPlace::kTransit || place == UserPlace::kHome ||
              place == UserPlace::kWork);
  // And tower_at is consistent with place_at.
  for (const std::size_t slot :
       {TimeGrid::slot_at(0, 5, 0), TimeGrid::slot_at(0, 12, 0)}) {
    const auto tower = model.tower_at(user, slot);
    if (model.place_at(user, slot) == UserPlace::kHome)
      EXPECT_EQ(tower, user.home_tower);
    if (model.place_at(user, slot) == UserPlace::kWork)
      EXPECT_EQ(tower, user.work_tower);
  }
}

TEST(MobilityModel, UnemployedUsersStayHomeOnWeekdays) {
  const auto towers = make_towers();
  MobilityOptions options;
  options.n_users = 50;
  options.employment_rate = 0.0;
  const auto model = MobilityModel::create(towers, options);
  for (const auto& user : model.users()) {
    for (int hour = 0; hour < 24; hour += 3)
      EXPECT_EQ(model.place_at(user, TimeGrid::slot_at(0, hour, 0)),
                UserPlace::kHome);
  }
}

TEST(MobilityModel, WeekendsUseTheLeisureWindow) {
  const auto towers = make_towers();
  MobilityOptions options;
  options.n_users = 10;
  const auto model = MobilityModel::create(towers, options);
  const auto& user = model.users().front();
  // Day 5 = Saturday.
  EXPECT_EQ(model.place_at(user, TimeGrid::slot_at(5, 14, 0)),
            UserPlace::kLeisure);
  EXPECT_EQ(model.place_at(user, TimeGrid::slot_at(5, 9, 0)),
            UserPlace::kHome);
  EXPECT_EQ(model.place_at(user, TimeGrid::slot_at(5, 21, 0)),
            UserPlace::kHome);
}

TEST(MobilityModel, ValidatesOptions) {
  const auto towers = make_towers(30);
  MobilityOptions bad;
  bad.n_users = 0;
  EXPECT_THROW(MobilityModel::create(towers, bad), Error);
  MobilityOptions bad2;
  bad2.employment_rate = 1.5;
  EXPECT_THROW(MobilityModel::create(towers, bad2), Error);
  EXPECT_THROW(MobilityModel::create({}, MobilityOptions{}), Error);
}

TEST(ActivityLevel, PeaksDuringTheDayAndBottomsAtNight) {
  EXPECT_GT(activity_level(13.0), activity_level(4.0));
  EXPECT_GT(activity_level(20.5), activity_level(4.0));
  EXPECT_LT(activity_level(4.0), 0.15);
  for (double h = 0.0; h < 24.0; h += 0.5) {
    EXPECT_GT(activity_level(h), 0.0);
    EXPECT_LE(activity_level(h), 1.0);
  }
}

TEST(MobilityTrace, LogsFollowTheSchedule) {
  const auto towers = make_towers();
  MobilityOptions mobility_options;
  mobility_options.n_users = 60;
  mobility_options.employment_rate = 1.0;
  const auto model = MobilityModel::create(towers, mobility_options);
  MobilityTraceOptions trace_options;
  trace_options.day_begin = 0;
  trace_options.day_end = 1;  // one Monday
  const auto logs = generate_mobility_trace(towers, model, trace_options);
  ASSERT_FALSE(logs.empty());

  // Every log's tower must match the user's scheduled tower at that slot.
  for (const auto& log : logs) {
    const auto& user = model.users()[log.user_id];
    const std::size_t slot = log.start_minute / TimeGrid::kSlotMinutes;
    EXPECT_EQ(log.tower_id, model.tower_at(user, slot));
  }
}

TEST(MobilityTrace, IsSortedAndDeterministic) {
  const auto towers = make_towers(60);
  const auto model = MobilityModel::create(towers, MobilityOptions{});
  MobilityTraceOptions options;
  options.day_begin = 0;
  options.day_end = 1;
  const auto a = generate_mobility_trace(towers, model, options);
  const auto b = generate_mobility_trace(towers, model, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_LE(a[i - 1].start_minute, a[i].start_minute);
  EXPECT_EQ(a, b);
}

TEST(MobilityTrace, NightActivityIsSparse) {
  const auto towers = make_towers(60);
  const auto model = MobilityModel::create(towers, MobilityOptions{});
  MobilityTraceOptions options;
  options.day_begin = 0;
  options.day_end = 1;
  const auto logs = generate_mobility_trace(towers, model, options);
  std::size_t night = 0;
  std::size_t midday = 0;
  for (const auto& log : logs) {
    const int hour = static_cast<int>(log.start_minute / 60) % 24;
    if (hour >= 2 && hour < 5) ++night;
    if (hour >= 11 && hour < 14) ++midday;
  }
  EXPECT_GT(midday, 4 * night);
}

}  // namespace
}  // namespace cellscope
