#include "traffic/trace_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/quality.h"

namespace cellscope {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("cs_trace_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

std::vector<TrafficLog> sample_logs() {
  return {
      {1001, 42, 600, 615, 123456, "District-3/Street-7/No-9"},
      {1002, 43, 601, 700, 999, "District-1/Street-1/No-1"},
      {1001, 42, 620, 621, 1, ""},
  };
}

TEST_F(TraceIoTest, RoundTripsLogs) {
  write_trace_csv(path(), sample_logs());
  const auto logs = read_trace_csv(path());
  ASSERT_EQ(logs.size(), 3u);
  EXPECT_EQ(logs[0], sample_logs()[0]);
  EXPECT_EQ(logs[1], sample_logs()[1]);
  EXPECT_EQ(logs[2], sample_logs()[2]);
}

TEST_F(TraceIoTest, WritesHeaderRow) {
  write_trace_csv(path(), {});
  std::ifstream in(path());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "user_id,tower_id,start_minute,end_minute,bytes,address");
}

TEST_F(TraceIoTest, SkipsStructurallyBrokenRows) {
  {
    std::ofstream out(path());
    out << "user_id,tower_id,start_minute,end_minute,bytes,address\n";
    out << "1,2,3,4,5,addr\n";          // good
    out << "not,enough,columns\n";      // wrong arity
    out << "x,2,3,4,5,addr\n";          // non-numeric user id
    out << "9,8,6,7,5,addr2\n";         // good
  }
  const auto logs = read_trace_csv(path());
  ASSERT_EQ(logs.size(), 2u);
  EXPECT_EQ(logs[0].user_id, 1u);
  EXPECT_EQ(logs[1].user_id, 9u);
}

TEST_F(TraceIoTest, SkipsOutOfRangeRowsAndCountsRejects) {
  auto& registry = obs::MetricsRegistry::instance();
  const auto rejected_before =
      registry.counter("cellscope.io.rejected_lines").value();
  {
    std::ofstream out(path());
    out << "user_id,tower_id,start_minute,end_minute,bytes,address\n";
    out << "1,2,3,4,5,addr\n";                    // good
    out << "1,2,9,4,5,addr\n";                    // end < start
    out << "1,4294967296,3,4,5,addr\n";           // tower overflows u32
    out << "1,2,4294967296,4294967297,5,addr\n";  // minutes overflow u32
    out << "2,3,10,10,0,addr\n";                  // good (zero-length)
  }
  const auto logs = read_trace_csv(path());
  ASSERT_EQ(logs.size(), 2u);
  EXPECT_EQ(logs[1].duration_minutes(), 0u);
  EXPECT_EQ(registry.counter("cellscope.io.rejected_lines").value(),
            rejected_before + 3);
}

TEST_F(TraceIoTest, HighRejectRatioRecordsFailingVerdict) {
  auto& board = obs::QualityBoard::instance();
  board.clear();
  {
    std::ofstream out(path());
    out << "user_id,tower_id,start_minute,end_minute,bytes,address\n";
    out << "1,2,3,4,5,addr\n";      // good
    out << "garbage\n";             // rejected: 50% > the 1% bound
  }
  read_trace_csv(path());
  const auto verdicts = board.verdicts();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].check, "trace_reject_ratio");
  EXPECT_EQ(verdicts[0].stage, "io.read_trace");
  EXPECT_FALSE(verdicts[0].passed);
  EXPECT_DOUBLE_EQ(verdicts[0].value, 0.5);
  board.clear();
}

TEST_F(TraceIoTest, CleanFileRecordsPassingVerdict) {
  auto& board = obs::QualityBoard::instance();
  board.clear();
  write_trace_csv(path(), sample_logs());
  read_trace_csv(path());
  const auto verdicts = board.verdicts();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].passed);
  EXPECT_DOUBLE_EQ(verdicts[0].value, 0.0);
  board.clear();
}

TEST(TrafficLogSemantics, DurationFollowsHalfOpenConvention) {
  TrafficLog log;
  log.start_minute = 600;
  log.end_minute = 615;
  EXPECT_EQ(log.duration_minutes(), 15u);

  // Zero-length connections are valid and last zero minutes.
  log.end_minute = 600;
  EXPECT_EQ(log.duration_minutes(), 0u);
}

TEST(TrafficLogSemantics, CrossMidnightConnectionHasPlainDifference) {
  // 23:55 on day 0 to 00:10 on day 1 — minutes are absolute over the
  // grid, so no wrap-around logic applies.
  TrafficLog log;
  log.start_minute = 23 * 60 + 55;
  log.end_minute = 24 * 60 + 10;
  EXPECT_EQ(log.duration_minutes(), 15u);
}

TEST_F(TraceIoTest, EmptyFileYieldsNoLogs) {
  { std::ofstream out(path()); }
  EXPECT_TRUE(read_trace_csv(path()).empty());
}

TEST(TraceIo, TotalBytesSums) {
  EXPECT_EQ(total_bytes(sample_logs()), 123456u + 999u + 1u);
  EXPECT_EQ(total_bytes({}), 0u);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_csv("/no/such/file.csv"), IoError);
}

}  // namespace
}  // namespace cellscope
