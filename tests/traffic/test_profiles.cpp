#include "traffic/profiles.h"

#include <gtest/gtest.h>

#include "analysis/time_features.h"
#include "common/error.h"
#include "common/stats.h"

namespace cellscope {
namespace {

TEST(DayShape, ValueIsBoundedByOne) {
  DayShape shape;
  shape.bumps = {{12.0, 1.0, 2.0}, {13.0, 1.0, 2.0}};  // overlapping
  shape.floor = 0.1;
  for (int h = 0; h < 24; ++h)
    EXPECT_LE(shape.value(static_cast<double>(h)), 1.0 + 1e-12);
}

TEST(DayShape, FloorHoldsAtNight) {
  DayShape shape;
  shape.bumps = {{12.0, 1.0, 1.0}};
  shape.floor = 0.2;
  shape.dip_depth = 0.0;
  EXPECT_NEAR(shape.value(0.0), 0.2, 1e-6);
  EXPECT_NEAR(shape.value(12.0), 1.0, 1e-6);
}

TEST(DayShape, DipCarvesTheValley) {
  DayShape shape;
  shape.bumps = {{12.0, 1.0, 1.0}};
  shape.floor = 0.2;
  shape.dip_depth = 0.3;
  shape.dip_hour = 4.7;
  EXPECT_LT(shape.value(4.7), shape.value(0.0));
}

TEST(DayShape, HourRangeIsValidated) {
  DayShape shape;
  shape.bumps = {{12.0, 1.0, 1.0}};
  EXPECT_THROW(shape.value(24.0), Error);
  EXPECT_THROW(shape.value(-0.1), Error);
}

TEST(TrafficProfile, SeriesHasGridLength) {
  for (const auto r : all_regions()) {
    const auto p = TrafficProfile::canonical(r);
    EXPECT_EQ(p.series().size(), TimeGrid::kSlots);
  }
}

TEST(TrafficProfile, AllRatesArePositive) {
  for (const auto r : all_regions()) {
    const auto p = TrafficProfile::canonical(r);
    for (const double v : p.series()) EXPECT_GT(v, 0.0);
  }
}

TEST(TrafficProfile, PeakMagnitudesMatchTable4) {
  // Table 4 maximum traffic (weekday): resident 7.77e8, transport 2.76e8,
  // office 4.69e8, entertainment 4.55e8.
  EXPECT_NEAR(
      max_value(TrafficProfile::canonical(FunctionalRegion::kResident)
                    .weekday_day()),
      7.77e8, 0.05e8);
  EXPECT_NEAR(
      max_value(TrafficProfile::canonical(FunctionalRegion::kTransport)
                    .weekday_day()),
      2.76e8, 0.05e8);
  EXPECT_NEAR(max_value(TrafficProfile::canonical(FunctionalRegion::kOffice)
                            .weekday_day()),
              4.69e8, 0.05e8);
  EXPECT_NEAR(
      max_value(TrafficProfile::canonical(FunctionalRegion::kEntertainment)
                    .weekday_day()),
      4.55e8, 0.05e8);
}

TEST(TrafficProfile, PeakValleyRatiosFollowTable4Ordering) {
  // Transport >> entertainment > office > resident/comprehensive.
  auto ratio = [](FunctionalRegion r) {
    const auto day = TrafficProfile::canonical(r).weekday_day();
    return max_value(day) / min_value(day);
  };
  const double transport = ratio(FunctionalRegion::kTransport);
  const double office = ratio(FunctionalRegion::kOffice);
  const double entertainment = ratio(FunctionalRegion::kEntertainment);
  const double resident = ratio(FunctionalRegion::kResident);
  EXPECT_GT(transport, 80.0);   // paper: 133
  EXPECT_GT(entertainment, office);
  EXPECT_GT(office, resident);
  EXPECT_NEAR(resident, 8.9, 3.0);  // paper: 8.93
}

TEST(TrafficProfile, WeekdayWeekendRatiosFollowFig10) {
  // Fig 10(a): transport 1.49, office 1.79, others ≈ 1.
  auto wd_we_ratio = [](FunctionalRegion r) {
    const auto f =
        compute_time_features(TrafficProfile::canonical(r).series());
    return f.weekday_weekend_ratio;
  };
  EXPECT_NEAR(wd_we_ratio(FunctionalRegion::kTransport), 1.49, 0.35);
  EXPECT_NEAR(wd_we_ratio(FunctionalRegion::kOffice), 1.79, 0.35);
  EXPECT_NEAR(wd_we_ratio(FunctionalRegion::kResident), 1.0, 0.15);
  EXPECT_NEAR(wd_we_ratio(FunctionalRegion::kEntertainment), 1.0, 0.2);
}

TEST(TrafficProfile, PeakTimesFollowTable5) {
  // Resident peak ≈ 21:30; office late morning / midday; entertainment
  // 18:00 weekday vs ≈12:30 weekend; valleys 4:00-5:00.
  const auto resident = compute_time_features(
      TrafficProfile::canonical(FunctionalRegion::kResident).series());
  EXPECT_NEAR(resident.weekday.peak_hour, 21.5, 0.8);
  EXPECT_NEAR(resident.weekday.valley_hour, 4.7, 1.0);

  const auto entertainment = compute_time_features(
      TrafficProfile::canonical(FunctionalRegion::kEntertainment).series());
  EXPECT_NEAR(entertainment.weekday.peak_hour, 18.0, 1.0);
  EXPECT_NEAR(entertainment.weekend.peak_hour, 12.5, 1.5);

  const auto office = compute_time_features(
      TrafficProfile::canonical(FunctionalRegion::kOffice).series());
  EXPECT_GT(office.weekday.peak_hour, 9.5);
  EXPECT_LT(office.weekday.peak_hour, 14.0);
}

TEST(TrafficProfile, TransportHasTwoWeekdayPeaks) {
  // Table 5: transport peaks at ~8:00 and ~18:00 on weekdays.
  const auto f = compute_time_features(
      TrafficProfile::canonical(FunctionalRegion::kTransport).series());
  ASSERT_GE(f.weekday.peak_hours.size(), 2u);
  std::vector<double> hours = f.weekday.peak_hours;
  std::sort(hours.begin(), hours.end());
  EXPECT_NEAR(hours.front(), 8.0, 1.0);
  EXPECT_NEAR(hours.back(), 18.5, 1.0);
}

TEST(TrafficProfile, RatesRepeatWeekly) {
  const auto p = TrafficProfile::canonical(FunctionalRegion::kOffice);
  for (std::size_t s = 0; s < TimeGrid::kSlotsPerWeek; s += 17)
    EXPECT_DOUBLE_EQ(p.rate(s), p.rate(s + TimeGrid::kSlotsPerWeek));
}

TEST(TrafficProfile, ComprehensiveIsAMixture) {
  // The comprehensive profile must correlate strongly with the Table-1
  // weighted sum of the pure profiles (it is that mixture, re-scaled).
  const auto comprehensive =
      TrafficProfile::canonical(FunctionalRegion::kComprehensive).series();
  const auto mix = table1_region_mix();
  const auto& pure = pure_profiles();
  std::vector<const TrafficProfile*> ptrs;
  std::vector<double> weights;
  for (int i = 0; i < 4; ++i) {
    ptrs.push_back(&pure[i]);
    weights.push_back(mix[i]);
  }
  const auto mixed = TrafficProfile::mix_series(ptrs, weights);
  EXPECT_GT(pearson(comprehensive, mixed), 0.99);
}

TEST(TrafficProfile, MixSeriesIsLinear) {
  const auto& pure = pure_profiles();
  const auto a = TrafficProfile::mix_series({&pure[0]}, {2.0});
  const auto b = pure[0].series();
  for (std::size_t s = 0; s < a.size(); s += 101)
    EXPECT_NEAR(a[s], 2.0 * b[s], 1e-6);
}

TEST(TrafficProfile, ConstructorValidates) {
  DayShape shape;
  shape.bumps = {{12.0, 1.0, 1.0}};
  EXPECT_THROW(TrafficProfile(shape, shape, 0.0, 1e8), Error);
  EXPECT_THROW(TrafficProfile(shape, shape, 1.0, -1.0), Error);
}

TEST(TrafficProfile, PureProfilesAreInRegionOrder) {
  const auto& pure = pure_profiles();
  ASSERT_EQ(pure.size(), 4u);
  // Transport (index 1) has the deepest relative valley.
  auto relative_min = [](const TrafficProfile& p) {
    const auto day = p.weekday_day();
    return min_value(day) / max_value(day);
  };
  for (int i = 0; i < 4; ++i)
    if (i != 1) EXPECT_LT(relative_min(pure[1]), relative_min(pure[i]));
}

}  // namespace
}  // namespace cellscope
