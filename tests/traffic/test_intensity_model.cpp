#include "traffic/intensity_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "city/deployment.h"
#include "common/error.h"
#include "common/stats.h"

namespace cellscope {
namespace {

std::vector<Tower> make_towers(std::size_t n, std::uint64_t seed = 42) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = n;
  options.seed = seed;
  return deploy_towers(city, options);
}

TEST(IntensityModel, MixturesAreOnTheSimplex) {
  const auto towers = make_towers(200);
  const auto model = IntensityModel::create(towers, IntensityOptions{});
  for (const auto& t : towers) {
    const auto& m = model.model(t.id);
    double total = 0.0;
    for (const double w : m.mixture) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(IntensityModel, PureTowersConcentrateOnOwnProfile) {
  const auto towers = make_towers(300);
  IntensityOptions options;
  const auto model = IntensityModel::create(towers, options);
  for (const auto& t : towers) {
    if (t.true_region == FunctionalRegion::kComprehensive) continue;
    const auto& m = model.model(t.id);
    EXPECT_GE(m.mixture[static_cast<int>(t.true_region)],
              1.0 - options.purity_leak - 1e-9);
  }
}

TEST(IntensityModel, ComprehensiveTowersAreGenuinelyMixed) {
  const auto towers = make_towers(400);
  const auto model = IntensityModel::create(towers, IntensityOptions{});
  for (const auto& t : towers) {
    if (t.true_region != FunctionalRegion::kComprehensive) continue;
    const auto& m = model.model(t.id);
    // No single component should fully dominate a comprehensive tower.
    for (const double w : m.mixture) EXPECT_LT(w, 0.9);
  }
}

TEST(IntensityModel, ExpectedSeriesIsDeterministic) {
  const auto towers = make_towers(50);
  const auto model = IntensityModel::create(towers, IntensityOptions{});
  EXPECT_EQ(model.expected_series(3), model.expected_series(3));
}

TEST(IntensityModel, ExpectedSeriesIsPositiveAndGridLength) {
  const auto towers = make_towers(50);
  const auto model = IntensityModel::create(towers, IntensityOptions{});
  for (const auto& t : towers) {
    const auto series = model.expected_series(t.id);
    ASSERT_EQ(series.size(), TimeGrid::kSlots);
    for (const double v : series) EXPECT_GT(v, 0.0);
  }
}

TEST(IntensityModel, SampleSeriesHasMeanNearExpected) {
  const auto towers = make_towers(30);
  const auto model = IntensityModel::create(towers, IntensityOptions{});
  Rng rng(5);
  const auto expected = model.expected_series(0);
  std::vector<double> accumulated(TimeGrid::kSlots, 0.0);
  const int n_samples = 30;
  for (int i = 0; i < n_samples; ++i) {
    const auto sample = model.sample_series(0, rng);
    for (std::size_t s = 0; s < sample.size(); ++s)
      accumulated[s] += sample[s];
  }
  // Mean over samples ≈ expected (multiplicative noise has mean 1).
  const double total_expected = sum(expected);
  const double total_sampled = sum(accumulated) / n_samples;
  EXPECT_NEAR(total_sampled / total_expected, 1.0, 0.02);
}

TEST(IntensityModel, NoiseCvControlsDispersion) {
  const auto towers = make_towers(20);
  IntensityOptions quiet;
  quiet.noise_cv = 0.0;
  IntensityOptions loud;
  loud.noise_cv = 0.5;
  const auto quiet_model = IntensityModel::create(towers, quiet);
  const auto loud_model = IntensityModel::create(towers, loud);
  Rng rng1(1);
  Rng rng2(1);
  const auto quiet_sample = quiet_model.sample_series(0, rng1);
  const auto expected = quiet_model.expected_series(0);
  // cv=0: sample equals expectation exactly.
  for (std::size_t s = 0; s < expected.size(); s += 37)
    EXPECT_DOUBLE_EQ(quiet_sample[s], expected[s]);
  // cv=0.5: relative deviations are large somewhere.
  const auto loud_sample = loud_model.sample_series(0, rng2);
  const auto loud_expected = loud_model.expected_series(0);
  double max_rel = 0.0;
  for (std::size_t s = 0; s < loud_sample.size(); ++s)
    max_rel = std::max(max_rel, std::fabs(loud_sample[s] / loud_expected[s] - 1.0));
  EXPECT_GT(max_rel, 0.3);
}

TEST(IntensityModel, ClusterAggregatePeaksNearTable4) {
  // Per-tower scales are calibrated so cluster aggregates land near the
  // published Table 4 peaks (up to lognormal dispersion).
  const auto towers = make_towers(1000);
  const auto model = IntensityModel::create(towers, IntensityOptions{});
  std::array<std::vector<double>, kNumRegions> aggregate;
  for (auto& a : aggregate) a.assign(TimeGrid::kSlots, 0.0);
  for (const auto& t : towers) {
    const auto series = model.expected_series(t.id);
    auto& agg = aggregate[static_cast<int>(t.true_region)];
    for (std::size_t s = 0; s < series.size(); ++s) agg[s] += series[s];
  }
  EXPECT_NEAR(
      max_value(aggregate[static_cast<int>(FunctionalRegion::kResident)]),
      7.77e8, 2.5e8);
  EXPECT_NEAR(
      max_value(aggregate[static_cast<int>(FunctionalRegion::kOffice)]),
      4.69e8, 2.0e8);
}

TEST(IntensityModel, MixturesAccessorMatchesPerTowerModels) {
  const auto towers = make_towers(60);
  const auto model = IntensityModel::create(towers, IntensityOptions{});
  const auto mixtures = model.mixtures();
  ASSERT_EQ(mixtures.size(), towers.size());
  for (const auto& t : towers)
    EXPECT_EQ(mixtures[t.id], model.model(t.id).mixture);
}

TEST(IntensityModel, InvalidIdThrows) {
  const auto towers = make_towers(10);
  const auto model = IntensityModel::create(towers, IntensityOptions{});
  EXPECT_THROW(model.model(10), Error);
  EXPECT_THROW(model.expected_series(10), Error);
}

TEST(IntensityModel, InvalidOptionsThrow) {
  const auto towers = make_towers(10);
  IntensityOptions bad;
  bad.purity_leak = 1.0;
  EXPECT_THROW(IntensityModel::create(towers, bad), Error);
  EXPECT_THROW(IntensityModel::create({}, IntensityOptions{}), Error);
}

}  // namespace
}  // namespace cellscope
