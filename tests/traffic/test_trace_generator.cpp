#include "traffic/trace_generator.h"

#include <gtest/gtest.h>

#include "city/deployment.h"
#include "common/error.h"
#include "common/stats.h"

namespace cellscope {
namespace {

struct Scenario {
  std::vector<Tower> towers;
  IntensityModel intensity;
};

Scenario make_scenario(std::size_t n_towers) {
  const auto city = CityModel::create_default();
  DeploymentOptions options;
  options.n_towers = n_towers;
  auto towers = deploy_towers(city, options);
  auto intensity = IntensityModel::create(towers, IntensityOptions{});
  return {std::move(towers), std::move(intensity)};
}

TraceOptions small_window() {
  TraceOptions options;
  options.day_begin = 0;
  options.day_end = 2;
  return options;
}

TEST(TraceGenerator, LogsStayInTheRequestedWindow) {
  const auto scenario = make_scenario(10);
  const auto result =
      generate_trace(scenario.towers, scenario.intensity, small_window());
  ASSERT_FALSE(result.logs.empty());
  for (const auto& log : result.logs) {
    EXPECT_LT(log.start_minute, 2u * 24u * 60u);
    EXPECT_GT(log.end_minute, log.start_minute);
  }
}

TEST(TraceGenerator, AllBytesArePositive) {
  const auto scenario = make_scenario(8);
  const auto result =
      generate_trace(scenario.towers, scenario.intensity, small_window());
  for (const auto& log : result.logs) EXPECT_GT(log.bytes, 0u);
}

TEST(TraceGenerator, TowerIdsAndAddressesAreConsistent) {
  const auto scenario = make_scenario(8);
  const auto result =
      generate_trace(scenario.towers, scenario.intensity, small_window());
  for (const auto& log : result.logs) {
    ASSERT_LT(log.tower_id, scenario.towers.size());
    EXPECT_EQ(log.address, scenario.towers[log.tower_id].address);
  }
}

TEST(TraceGenerator, IsDeterministic) {
  const auto scenario = make_scenario(6);
  const auto a =
      generate_trace(scenario.towers, scenario.intensity, small_window());
  const auto b =
      generate_trace(scenario.towers, scenario.intensity, small_window());
  ASSERT_EQ(a.logs.size(), b.logs.size());
  for (std::size_t i = 0; i < a.logs.size(); ++i)
    EXPECT_EQ(a.logs[i], b.logs[i]);
}

TEST(TraceGenerator, InjectsDuplicatesAtTheRequestedRate) {
  const auto scenario = make_scenario(10);
  TraceOptions options = small_window();
  options.duplicate_prob = 0.10;
  options.conflict_prob = 0.0;
  const auto result =
      generate_trace(scenario.towers, scenario.intensity, options);
  const auto base =
      result.logs.size() - result.duplicates_injected;
  const double rate = static_cast<double>(result.duplicates_injected) /
                      static_cast<double>(base);
  EXPECT_NEAR(rate, 0.10, 0.02);
}

TEST(TraceGenerator, NoDefectsWhenProbabilitiesAreZero) {
  const auto scenario = make_scenario(6);
  TraceOptions options = small_window();
  options.duplicate_prob = 0.0;
  options.conflict_prob = 0.0;
  const auto result =
      generate_trace(scenario.towers, scenario.intensity, options);
  EXPECT_EQ(result.duplicates_injected, 0u);
  EXPECT_EQ(result.conflicts_injected, 0u);
}

TEST(TraceGenerator, CleanBytesMatchCleanLogTotals) {
  // clean_bytes must equal the per-(tower, slot) sums of the *first*
  // (non-defect) logs; with defect injection disabled the trace itself
  // must sum to it.
  const auto scenario = make_scenario(6);
  TraceOptions options = small_window();
  options.duplicate_prob = 0.0;
  options.conflict_prob = 0.0;
  const auto result =
      generate_trace(scenario.towers, scenario.intensity, options);
  std::vector<std::vector<double>> sums(
      scenario.towers.size(), std::vector<double>(TimeGrid::kSlots, 0.0));
  for (const auto& log : result.logs) {
    const std::size_t slot = log.start_minute / TimeGrid::kSlotMinutes;
    sums[log.tower_id][slot] += static_cast<double>(log.bytes);
  }
  for (std::size_t t = 0; t < sums.size(); ++t)
    for (std::size_t s = 0; s < TimeGrid::kSlots; ++s)
      EXPECT_NEAR(sums[t][s], result.clean_bytes[t][s], 1e-6);
}

TEST(TraceGenerator, SlotTotalsTrackTheIntensityModel) {
  const auto scenario = make_scenario(6);
  TraceOptions options;
  options.duplicate_prob = 0.0;
  options.conflict_prob = 0.0;
  options.day_begin = 0;
  options.day_end = 7;
  const auto result =
      generate_trace(scenario.towers, scenario.intensity, options);
  // Total clean bytes over the window should be within a few percent of
  // the expected intensity (session quantization + Poisson).
  double clean_total = 0.0;
  double expected_total = 0.0;
  for (const auto& t : scenario.towers) {
    const auto expected = scenario.intensity.expected_series(t.id);
    for (std::size_t s = 0; s < 7u * TimeGrid::kSlotsPerDay; ++s)
      expected_total += expected[s];
    for (const double v : result.clean_bytes[t.id]) clean_total += v;
  }
  EXPECT_NEAR(clean_total / expected_total, 1.0, 0.1);
}

TEST(TraceGenerator, UserIdsAreWithinThePopulation) {
  const auto scenario = make_scenario(6);
  TraceOptions options = small_window();
  options.n_users = 100;
  const auto result =
      generate_trace(scenario.towers, scenario.intensity, options);
  for (const auto& log : result.logs) EXPECT_LT(log.user_id, 100u);
}

TEST(TraceGenerator, HeavyTailedUserActivity) {
  const auto scenario = make_scenario(10);
  TraceOptions options = small_window();
  options.n_users = 1000;
  const auto result =
      generate_trace(scenario.towers, scenario.intensity, options);
  std::vector<double> per_user(1000, 0.0);
  for (const auto& log : result.logs) per_user[log.user_id] += 1.0;
  // Heavy users (low ids, by the square sampling) dominate: the busiest
  // decile should hold several times the activity of the median decile.
  double first_decile = 0.0;
  double mid_decile = 0.0;
  for (int i = 0; i < 100; ++i) first_decile += per_user[i];
  for (int i = 400; i < 500; ++i) mid_decile += per_user[i];
  EXPECT_GT(first_decile, 2.0 * mid_decile);
}

TEST(TraceGenerator, ValidatesOptions) {
  const auto scenario = make_scenario(4);
  TraceOptions bad = small_window();
  bad.day_begin = 5;
  bad.day_end = 3;
  EXPECT_THROW(generate_trace(scenario.towers, scenario.intensity, bad),
               Error);
  TraceOptions bad2 = small_window();
  bad2.duplicate_prob = 1.5;
  EXPECT_THROW(generate_trace(scenario.towers, scenario.intensity, bad2),
               Error);
  TraceOptions bad3 = small_window();
  bad3.n_users = 0;
  EXPECT_THROW(generate_trace(scenario.towers, scenario.intensity, bad3),
               Error);
}

}  // namespace
}  // namespace cellscope
