// Oracle tests for the SIMD kernel layer (DESIGN.md §12).
//
// Two claims are pinned per kernel, for every ISA the CPU supports:
//   1. Correctness against a plainly-written oracle — the loop each
//      kernel replaced, spelled out here independently of src/simd/.
//      These comparisons are EXACT (EXPECT_EQ, no tolerance): the
//      kernels' contract is bit-compatibility with the scalar order,
//      not approximate agreement.
//   2. Cross-ISA bit-identity on hostile inputs (NaN, ±inf, remainder
//      lanes), compared bitwise since NaN != NaN.
// Dispatch plumbing (detect/force/parse/clamp) is covered at the end.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "simd/simd.h"

namespace cellscope {
namespace {

struct ForcedIsa {
  explicit ForcedIsa(simd::Isa isa) { simd::force_isa(isa); }
  ~ForcedIsa() { simd::force_isa(std::nullopt); }
};

std::vector<simd::Isa> sweep_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::detected_isa() != simd::Isa::kScalar)
    isas.push_back(simd::detected_isa());
  return isas;
}

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.normal();
  return out;
}

bool bits_equal(const double* a, const double* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

TEST(SimdKernels, Dot4MatchesSequentialDotOracle) {
  for (const std::size_t dim : {std::size_t{1}, std::size_t{7},
                                std::size_t{32}, std::size_t{1008}}) {
    const auto a = random_doubles(dim, 21);
    const auto cols = random_doubles(4 * dim, 22);  // 4 columns, row-major
    // Pack interleaved the way the distance kernel does.
    std::vector<double> packed(4 * dim);
    for (std::size_t d = 0; d < dim; ++d)
      for (std::size_t l = 0; l < 4; ++l)
        packed[4 * d + l] = cols[l * dim + d];
    double want[4];
    for (std::size_t l = 0; l < 4; ++l) {
      double dot = 0.0;
      for (std::size_t d = 0; d < dim; ++d) dot += a[d] * cols[l * dim + d];
      want[l] = dot;
    }
    for (const simd::Isa isa : sweep_isas()) {
      ForcedIsa forced(isa);
      double got[4];
      simd::dot4(a.data(), packed.data(), dim, got);
      for (std::size_t l = 0; l < 4; ++l)
        EXPECT_EQ(want[l], got[l])
            << "dim=" << dim << " lane=" << l << " isa="
            << simd::isa_name(isa);
    }
  }
}

TEST(SimdKernels, NormalizeMatchesElementwiseOracle) {
  // Every remainder class of the 4-wide (AVX2) and 2-wide (NEON) loops.
  for (std::size_t n = 1; n <= 9; ++n) {
    const auto v = random_doubles(n, 23);
    const double mean = 0.375;
    const double sd = 1.625;
    std::vector<double> want(n);
    for (std::size_t i = 0; i < n; ++i) want[i] = (v[i] - mean) / sd;
    for (const simd::Isa isa : sweep_isas()) {
      ForcedIsa forced(isa);
      std::vector<double> got(n);
      simd::normalize(v.data(), n, mean, sd, got.data());
      EXPECT_EQ(want, got) << "n=" << n << " isa=" << simd::isa_name(isa);
    }
  }
}

TEST(SimdKernels, FoldMeanMatchesModuloAccumulationOracle) {
  // The loop fold_to_week replaced: week[s % period] += row[s], then a
  // single division — ascending s visits fold 0, 1, 2 per slot in order.
  for (const std::size_t period :
       {std::size_t{3}, std::size_t{5}, std::size_t{8}, std::size_t{1008}}) {
    const std::size_t folds = 3;
    const auto row = random_doubles(period * folds, 24);
    std::vector<double> want(period, 0.0);
    for (std::size_t s = 0; s < row.size(); ++s) want[s % period] += row[s];
    for (auto& v : want) v /= static_cast<double>(folds);
    for (const simd::Isa isa : sweep_isas()) {
      ForcedIsa forced(isa);
      std::vector<double> got(period);
      simd::fold_mean(row.data(), period, folds, got.data());
      EXPECT_EQ(want, got)
          << "period=" << period << " isa=" << simd::isa_name(isa);
    }
  }
}

TEST(SimdKernels, FftButterflyMatchesNaiveComplexOracle) {
  using Complex = std::complex<double>;
  for (const std::size_t half :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{64}}) {
    Rng rng(25);
    std::vector<Complex> a0(half), b0(half), w(half);
    for (std::size_t j = 0; j < half; ++j) {
      a0[j] = Complex(rng.normal(), rng.normal());
      b0[j] = Complex(rng.normal(), rng.normal());
      w[j] = Complex(rng.normal(), rng.normal());
    }
    // Oracle: v = b·w by the naive formula, then (u+v, u−v).
    std::vector<Complex> want_a(half), want_b(half);
    for (std::size_t j = 0; j < half; ++j) {
      const double vr = b0[j].real() * w[j].real() -
                        b0[j].imag() * w[j].imag();
      const double vi = b0[j].imag() * w[j].real() +
                        b0[j].real() * w[j].imag();
      want_a[j] = Complex(a0[j].real() + vr, a0[j].imag() + vi);
      want_b[j] = Complex(a0[j].real() - vr, a0[j].imag() - vi);
    }
    for (const simd::Isa isa : sweep_isas()) {
      ForcedIsa forced(isa);
      auto a = a0;
      auto b = b0;
      simd::fft_butterfly(a.data(), b.data(), w.data(), half);
      for (std::size_t j = 0; j < half; ++j) {
        EXPECT_EQ(want_a[j], a[j])
            << "half=" << half << " isa=" << simd::isa_name(isa);
        EXPECT_EQ(want_b[j], b[j])
            << "half=" << half << " isa=" << simd::isa_name(isa);
      }
    }
  }
}

TEST(SimdKernels, ComplexMultiplyMatchesNaiveOracle) {
  using Complex = std::complex<double>;
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{5}, std::size_t{33}}) {
    Rng rng(26);
    std::vector<Complex> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = Complex(rng.normal(), rng.normal());
      y[i] = Complex(rng.normal(), rng.normal());
    }
    // For finite operands libstdc++'s operator* is the same naive
    // formula (the Annex G repair only fires on NaN results), so the
    // std::complex product IS the oracle — exactly.
    std::vector<Complex> want(n);
    for (std::size_t i = 0; i < n; ++i) want[i] = x[i] * y[i];
    for (const simd::Isa isa : sweep_isas()) {
      ForcedIsa forced(isa);
      std::vector<Complex> got(n);
      simd::complex_multiply(x.data(), y.data(), got.data(), n);
      EXPECT_EQ(want, got) << "n=" << n << " isa=" << simd::isa_name(isa);
    }
  }
}

TEST(SimdKernels, ComplexMultiplySupportsInPlaceUse) {
  // Bluestein's pointwise product runs out == x; the kernels must read
  // each element before writing it.
  using Complex = std::complex<double>;
  Rng rng(27);
  std::vector<Complex> x(17), y(17);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = Complex(rng.normal(), rng.normal());
    y[i] = Complex(rng.normal(), rng.normal());
  }
  for (const simd::Isa isa : sweep_isas()) {
    ForcedIsa forced(isa);
    std::vector<Complex> separate(x.size());
    simd::complex_multiply(x.data(), y.data(), separate.data(), x.size());
    auto in_place = x;
    simd::complex_multiply(in_place.data(), y.data(), in_place.data(),
                           in_place.size());
    EXPECT_EQ(separate, in_place) << "isa=" << simd::isa_name(isa);
  }
}

TEST(SimdKernels, NonFiniteInputsBitIdenticalAcrossIsas) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto v = random_doubles(11, 28);
  v[0] = kNan;
  v[5] = kInf;
  v[10] = -kInf;
  auto packed = random_doubles(4 * 11, 29);
  packed[7] = kNan;
  packed[21] = -kInf;

  std::vector<std::vector<double>> norm_runs, fold_runs;
  std::vector<std::array<double, 4>> dot_runs;
  for (const simd::Isa isa : sweep_isas()) {
    ForcedIsa forced(isa);
    std::array<double, 4> dots{};
    simd::dot4(v.data(), packed.data(), v.size(), dots.data());
    dot_runs.push_back(dots);
    std::vector<double> norm(v.size());
    simd::normalize(v.data(), v.size(), 0.5, 2.0, norm.data());
    norm_runs.push_back(std::move(norm));
    std::vector<double> fold(11);
    simd::fold_mean(packed.data(), 11, 4, fold.data());
    fold_runs.push_back(std::move(fold));
  }
  for (std::size_t r = 1; r < dot_runs.size(); ++r) {
    EXPECT_TRUE(bits_equal(dot_runs[0].data(), dot_runs[r].data(), 4));
    EXPECT_TRUE(bits_equal(norm_runs[0].data(), norm_runs[r].data(),
                           norm_runs[0].size()));
    EXPECT_TRUE(bits_equal(fold_runs[0].data(), fold_runs[r].data(),
                           fold_runs[0].size()));
  }
}

TEST(SimdDispatch, NamesRoundTripAndUnknownsRejected) {
  for (const simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kNeon, simd::Isa::kAvx2}) {
    const auto parsed = simd::parse_isa(simd::isa_name(isa));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(simd::parse_isa("auto").has_value());
  EXPECT_FALSE(simd::parse_isa("").has_value());
  EXPECT_FALSE(simd::parse_isa("avx512").has_value());
}

TEST(SimdDispatch, ForceIsaOverridesAndClampsToHardware) {
  const simd::Isa detected = simd::detected_isa();
  {
    ForcedIsa forced(simd::Isa::kScalar);
    EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  }
  // A request for an ISA this CPU lacks must clamp to what it has —
  // never dispatch into unsupported instructions.
  const simd::Isa foreign = detected == simd::Isa::kAvx2 ? simd::Isa::kNeon
                                                         : simd::Isa::kAvx2;
  {
    ForcedIsa forced(foreign);
    EXPECT_EQ(simd::active_isa(), detected);
  }
  simd::force_isa(std::nullopt);
}

}  // namespace
}  // namespace cellscope
