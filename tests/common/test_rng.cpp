#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/stats.h"

namespace cellscope {
namespace {

TEST(Rng, IsDeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(1.0, 0.0), Error);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    saw_lo |= v == 0;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(13);
  const int n = 200000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalScalesMeanAndSigma) {
  Rng rng(17);
  const int n = 100000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(5.0, 2.0);
  EXPECT_NEAR(mean(xs), 5.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, LognormalMeanMatchesFormula) {
  Rng rng(19);
  const double mu = -0.5;
  const double sigma = 1.0;
  const int n = 300000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += rng.lognormal(mu, sigma);
  // E[lognormal] = exp(mu + sigma^2/2) = exp(0) = 1.
  EXPECT_NEAR(s / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  const int n = 100000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += rng.exponential(4.0);
  EXPECT_NEAR(s / n, 0.25, 0.01);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(29);
  const int n = 100000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(s / n, 3.0, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(31);
  const int n = 50000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += static_cast<double>(rng.poisson(500.0));
  EXPECT_NEAR(s / n, 500.0, 2.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(37);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, GammaMeanIsShapeTimesScale) {
  Rng rng(41);
  const int n = 100000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += rng.gamma(3.0, 2.0);
  EXPECT_NEAR(s / n, 6.0, 0.1);
}

TEST(Rng, GammaHandlesShapeBelowOne) {
  Rng rng(43);
  const int n = 100000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gamma(0.5, 1.0);
    EXPECT_GE(v, 0.0);
    s += v;
  }
  EXPECT_NEAR(s / n, 0.5, 0.02);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(47);
  for (int i = 0; i < 100; ++i) {
    const auto w = rng.dirichlet({2.0, 3.0, 4.0});
    const double total = std::accumulate(w.begin(), w.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12);
    for (const double v : w) EXPECT_GE(v, 0.0);
  }
}

TEST(Rng, DirichletMeansAreProportionalToAlpha) {
  Rng rng(53);
  std::vector<double> sums(3, 0.0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto w = rng.dirichlet({1.0, 2.0, 5.0});
    for (int j = 0; j < 3; ++j) sums[j] += w[j];
  }
  EXPECT_NEAR(sums[0] / n, 1.0 / 8.0, 0.01);
  EXPECT_NEAR(sums[1] / n, 2.0 / 8.0, 0.01);
  EXPECT_NEAR(sums[2] / n, 5.0 / 8.0, 0.01);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(59);
  std::vector<std::size_t> hits(3, 0);
  const int n = 90000;
  for (int i = 0; i < n; ++i) ++hits[rng.categorical({1.0, 2.0, 6.0})];
  EXPECT_NEAR(static_cast<double>(hits[0]) / n, 1.0 / 9.0, 0.01);
  EXPECT_NEAR(static_cast<double>(hits[1]) / n, 2.0 / 9.0, 0.01);
  EXPECT_NEAR(static_cast<double>(hits[2]) / n, 6.0 / 9.0, 0.01);
}

TEST(Rng, CategoricalSkipsZeroWeightEntries) {
  Rng rng(61);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.categorical({0.0, 1.0, 0.0}), 1u);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng(61);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), Error);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(67);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(71);
  Rng child = a.fork();
  // The child stream must differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace cellscope
