#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/error.h"

namespace cellscope {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("cs_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST_F(CsvTest, RoundTripsSimpleRows) {
  {
    CsvWriter writer(path());
    writer.write_row({"a", "b", "c"});
    writer.write_row({"1", "2", "3"});
    writer.close();
  }
  const auto rows = CsvReader::read_file(path());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST_F(CsvTest, RoundTripsQuotedFields) {
  {
    CsvWriter writer(path());
    writer.write_row({"has,comma", "has\"quote", "plain"});
    writer.close();
  }
  const auto rows = CsvReader::read_file(path());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "has,comma");
  EXPECT_EQ(rows[0][1], "has\"quote");
  EXPECT_EQ(rows[0][2], "plain");
}

TEST_F(CsvTest, WritesDoublesAtRequestedPrecision) {
  {
    CsvWriter writer(path());
    writer.write_row(std::vector<double>{1.23456789, 2.0}, 3);
    writer.close();
  }
  const auto rows = CsvReader::read_file(path());
  EXPECT_EQ(rows[0][0], "1.235");
  EXPECT_EQ(rows[0][1], "2.000");
}

TEST_F(CsvTest, EmptyFieldsSurvive) {
  {
    CsvWriter writer(path());
    writer.write_row({"", "x", ""});
    writer.close();
  }
  const auto rows = CsvReader::read_file(path());
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "x", ""}));
}

TEST(Csv, ParseLineHandlesEscapedQuotes) {
  const auto cells = CsvReader::parse_line(R"("say ""hi""",2)");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "say \"hi\"");
  EXPECT_EQ(cells[1], "2");
}

TEST(Csv, ParseEmptyLineYieldsOneEmptyCell) {
  const auto cells = CsvReader::parse_line("");
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], "");
}

TEST(Csv, EscapePassesPlainTextThrough) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(CsvReader::read_file("/nonexistent/dir/file.csv"), IoError);
  EXPECT_THROW(CsvWriter("/nonexistent/dir/file.csv"), IoError);
}

TEST_F(CsvTest, ReaderStripsCarriageReturns) {
  {
    std::ofstream out(path());
    out << "a,b\r\n1,2\r\n";
  }
  const auto rows = CsvReader::read_file(path());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][1], "2");
}

}  // namespace
}  // namespace cellscope
