#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace cellscope {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(1.25));
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), Error);
  EXPECT_THROW(variance(empty), Error);
  EXPECT_THROW(min_value(empty), Error);
  EXPECT_THROW(max_value(empty), Error);
  EXPECT_THROW(argmin(empty), Error);
  EXPECT_THROW(argmax(empty), Error);
  EXPECT_THROW(quantile(empty, 0.5), Error);
}

TEST(Stats, MinMaxArg) {
  const std::vector<double> v = {3, -1, 4, -1, 5};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 5.0);
  EXPECT_EQ(argmin(v), 1u);  // first of the ties
  EXPECT_EQ(argmax(v), 4u);
}

TEST(Stats, SumOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(sum(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(sum(std::vector<double>{1.5, 2.5}), 4.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v = {4, 1, 3, 2};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_THROW(quantile(v, 1.5), Error);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonOfConstantThrows) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_THROW(pearson(a, c), Error);
}

TEST(Stats, ZscoreHasZeroMeanUnitVariance) {
  Rng rng(1);
  std::vector<double> v(500);
  for (auto& x : v) x = rng.uniform(10.0, 50.0);
  const auto z = zscore(v);
  EXPECT_NEAR(mean(z), 0.0, 1e-12);
  EXPECT_NEAR(stddev(z), 1.0, 1e-12);
}

TEST(Stats, ZscoreOfConstantIsZeros) {
  const std::vector<double> v = {7, 7, 7};
  for (const double x : zscore(v)) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Stats, ZscorePreservesOrdering) {
  const std::vector<double> v = {3, 1, 2};
  const auto z = zscore(v);
  EXPECT_GT(z[0], z[2]);
  EXPECT_GT(z[2], z[1]);
}

TEST(Stats, MinmaxMapsToUnitInterval) {
  const std::vector<double> v = {10, 20, 15};
  const auto m = minmax(v);
  EXPECT_DOUBLE_EQ(m[0], 0.0);
  EXPECT_DOUBLE_EQ(m[1], 1.0);
  EXPECT_DOUBLE_EQ(m[2], 0.5);
}

TEST(Stats, MinmaxOfConstantIsZeros) {
  for (const double x : minmax(std::vector<double>{4, 4})) {
    EXPECT_DOUBLE_EQ(x, 0.0);
  }
}

TEST(Stats, MaxNormalizeDividesByPeak) {
  const std::vector<double> v = {2, 8, 4};
  const auto m = max_normalize(v);
  EXPECT_DOUBLE_EQ(m[0], 0.25);
  EXPECT_DOUBLE_EQ(m[1], 1.0);
  EXPECT_DOUBLE_EQ(m[2], 0.5);
}

TEST(Stats, MaxNormalizeOfNonPositiveIsZeros) {
  for (const double x : max_normalize(std::vector<double>{-1, 0})) {
    EXPECT_DOUBLE_EQ(x, 0.0);
  }
}

TEST(Stats, EmpiricalCdfIsMonotoneAndReachesOne) {
  Rng rng(2);
  std::vector<double> v(200);
  for (auto& x : v) x = rng.normal();
  const auto cdf = empirical_cdf(v, 50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].second, cdf[i].second);
    EXPECT_LT(cdf[i - 1].first, cdf[i].first);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Stats, CircularMovingAverageOfConstantIsConstant) {
  const std::vector<double> v(24, 3.5);
  for (const double x : circular_moving_average(v, 2))
    EXPECT_DOUBLE_EQ(x, 3.5);
}

TEST(Stats, CircularMovingAverageWrapsAround) {
  std::vector<double> v(10, 0.0);
  v[0] = 10.0;
  const auto smooth = circular_moving_average(v, 1);
  // The spike leaks into both circular neighbors.
  EXPECT_NEAR(smooth[1], 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(smooth[9], 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(smooth[5], 0.0, 1e-12);
}

TEST(Stats, EuclideanDistance) {
  const std::vector<double> a = {0, 0};
  const std::vector<double> b = {3, 4};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

TEST(Stats, DistanceRequiresEqualLengths) {
  const std::vector<double> a = {0, 0};
  const std::vector<double> b = {1};
  EXPECT_THROW(euclidean_distance(a, b), Error);
}

// Property sweep: zscore invariance to affine transforms of the input.
class ZscoreAffineInvariance
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ZscoreAffineInvariance, ShiftAndPositiveScaleLeaveZscoreUnchanged) {
  const auto [shift, scale] = GetParam();
  Rng rng(99);
  std::vector<double> v(300);
  for (auto& x : v) x = rng.normal(5.0, 3.0);
  std::vector<double> transformed(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    transformed[i] = v[i] * scale + shift;
  const auto z1 = zscore(v);
  const auto z2 = zscore(transformed);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(z1[i], z2[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AffineParams, ZscoreAffineInvariance,
    ::testing::Values(std::make_pair(0.0, 2.0), std::make_pair(100.0, 1.0),
                      std::make_pair(-50.0, 0.001),
                      std::make_pair(3.0, 1000.0)));

}  // namespace
}  // namespace cellscope
