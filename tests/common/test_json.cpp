#include "common/json.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cellscope {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e3").as_number(), -2500.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedContainers) {
  const auto v = JsonValue::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  ASSERT_TRUE(v.is_object());
  const auto& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_TRUE(a[2].at("b").as_bool());
  EXPECT_TRUE(v.at("c").at("d").is_null());
  EXPECT_EQ(v.at("e").as_string(), "x");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("zz"));
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\nd\te")").as_string(),
            "a\"b\\c\nd\te");
  // \uXXXX escapes decode to UTF-8: ASCII, 2-byte, and a surrogate pair
  // for U+1F600 (4-byte).
  EXPECT_EQ(JsonValue::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(JsonValue::parse(R"("\u00e9")").as_string(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
  EXPECT_THROW(JsonValue::parse(R"("\ud83d")"), InvalidArgument);  // lone hi
  EXPECT_THROW(JsonValue::parse(R"("\uZZZZ")"), InvalidArgument);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("[1,]"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("nul"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("1 2"), InvalidArgument);  // trailing token
  EXPECT_THROW(JsonValue::parse("\"unterminated"), InvalidArgument);
}

TEST(Json, AccessorMismatchesThrow) {
  const auto v = JsonValue::parse("[1]");
  EXPECT_THROW(v.as_object(), InvalidArgument);
  EXPECT_THROW(v.as_number(), InvalidArgument);
  EXPECT_THROW(v.at("k"), InvalidArgument);
  const auto obj = JsonValue::parse("{\"a\": 1}");
  EXPECT_THROW(obj.at("missing"), InvalidArgument);
  EXPECT_DOUBLE_EQ(obj.number_or("a", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(obj.number_or("missing", -1.0), -1.0);
}

TEST(Json, RoundTripsMetricSnapshotShape) {
  // The shape snapshot_json() emits: nested objects with numeric leaves
  // and bucket arrays.
  const auto v = JsonValue::parse(
      R"({"counters":{"a.b":3},"histograms":{"h":{"count":2,"p50":1.5,)"
      R"("buckets":[{"le":1,"count":0},{"le":10,"count":2}]}}})");
  EXPECT_DOUBLE_EQ(v.at("counters").at("a.b").as_number(), 3.0);
  const auto& h = v.at("histograms").at("h");
  EXPECT_DOUBLE_EQ(h.number_or("p50", 0.0), 1.5);
  EXPECT_EQ(h.at("buckets").as_array().size(), 2u);
}

}  // namespace
}  // namespace cellscope
