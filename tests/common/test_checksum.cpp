#include "common/checksum.h"

#include <gtest/gtest.h>

#include <string>

namespace cellscope {
namespace {

TEST(Crc32, KnownAnswerVectors) {
  // The CRC-32/IEEE check value ("123456789") and friends.
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc"), 0x352441C2u);
}

TEST(Crc32, SeedChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const auto whole = crc32(data);
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    const auto first = crc32(data.data(), cut);
    const auto chained = crc32(data.data() + cut, data.size() - cut, first);
    EXPECT_EQ(chained, whole) << "cut at " << cut;
  }
}

TEST(Crc32, SingleBitFlipAlwaysChangesChecksum) {
  const std::string data(128, '\x5a');
  const auto clean = crc32(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(crc32(flipped), clean) << "byte " << byte << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace cellscope
