#include "common/failpoint.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cellscope {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fp::disarm_all(); }
};

TEST_F(FailpointTest, UnarmedNeverFires) {
  EXPECT_FALSE(fp::fire("fault.test.unarmed"));
  EXPECT_FALSE(CS_FAILPOINT("fault.test.unarmed"));
  EXPECT_EQ(fp::fire_count("fault.test.unarmed"), 0u);
}

TEST_F(FailpointTest, ChargesAreConsumedExactly) {
  fp::arm("fault.test.charges", 2);
  EXPECT_TRUE(fp::fire("fault.test.charges"));
  EXPECT_TRUE(fp::fire("fault.test.charges"));
  EXPECT_FALSE(fp::fire("fault.test.charges"));
  EXPECT_EQ(fp::fire_count("fault.test.charges"), 2u);
}

TEST_F(FailpointTest, NegativeChargesFireForever) {
  fp::arm("fault.test.always", -1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(fp::fire("fault.test.always"));
  EXPECT_EQ(fp::fire_count("fault.test.always"), 100u);
  fp::disarm("fault.test.always");
  EXPECT_FALSE(fp::fire("fault.test.always"));
  // Disarm keeps the history; disarm_all clears it.
  EXPECT_EQ(fp::fire_count("fault.test.always"), 100u);
  fp::disarm_all();
  EXPECT_EQ(fp::fire_count("fault.test.always"), 0u);
}

TEST_F(FailpointTest, SpecGrammarArmsMultipleEntries) {
  fp::arm_from_spec("fault.test.a=1, fault.test.b=-1 ,,fault.test.c=0");
  EXPECT_TRUE(fp::fire("fault.test.a"));
  EXPECT_FALSE(fp::fire("fault.test.a"));
  EXPECT_TRUE(fp::fire("fault.test.b"));
  EXPECT_TRUE(fp::fire("fault.test.b"));
  EXPECT_FALSE(fp::fire("fault.test.c"));  // 0 charges = disarmed
}

TEST_F(FailpointTest, MalformedSpecThrowsInvalidArgument) {
  EXPECT_THROW(fp::arm_from_spec("no-equals-sign"), InvalidArgument);
  EXPECT_THROW(fp::arm_from_spec("=3"), InvalidArgument);
  EXPECT_THROW(fp::arm_from_spec("fault.test.x=notanumber"),
               InvalidArgument);
  EXPECT_THROW(fp::arm_from_spec("fault.test.x="), InvalidArgument);
}

TEST_F(FailpointTest, OverflowingChargeCountIsRejectedNotClamped) {
  // strtol used to saturate this to LONG_MAX and the int cast mangled it
  // further — arming a charge count the operator never wrote. It must be
  // treated as malformed (the env path reports and skips it) and leave
  // the failpoint unarmed.
  EXPECT_THROW(fp::arm_from_spec("fault.test.x=99999999999999999999"),
               InvalidArgument);
  EXPECT_FALSE(fp::fire("fault.test.x"));
  EXPECT_THROW(fp::arm_from_spec("fault.test.x=-99999999999999999999"),
               InvalidArgument);
  EXPECT_FALSE(fp::fire("fault.test.x"));
  // INT_MAX itself still fits.
  fp::arm_from_spec("fault.test.x=2147483647");
  EXPECT_TRUE(fp::fire("fault.test.x"));
}

TEST_F(FailpointTest, DisarmingUnknownNameIsANoOp) {
  EXPECT_NO_THROW(fp::disarm("fault.test.never-armed"));
}

TEST_F(FailpointTest, RearmingReplacesCharges) {
  fp::arm("fault.test.rearm", 1);
  fp::arm("fault.test.rearm", 3);
  EXPECT_TRUE(fp::fire("fault.test.rearm"));
  EXPECT_TRUE(fp::fire("fault.test.rearm"));
  EXPECT_TRUE(fp::fire("fault.test.rearm"));
  EXPECT_FALSE(fp::fire("fault.test.rearm"));
}

}  // namespace
}  // namespace cellscope
