#include "common/string_util.h"

#include <gtest/gtest.h>

namespace cellscope {
namespace {

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("District-5", "District-"));
  EXPECT_FALSE(starts_with("Dis", "District-"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
  EXPECT_EQ(format_double(2.5, 3), "2.500");
}

TEST(StringUtil, FormatBytesScalesUnits) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1.5e3), "1.50 KB");
  EXPECT_EQ(format_bytes(2.4e15), "2.40 PB");
  EXPECT_EQ(format_bytes(-1.5e3), "-1.50 KB");
}

}  // namespace
}  // namespace cellscope
