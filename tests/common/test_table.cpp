#include "common/table.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cellscope {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t("My Table");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  const auto s = t.render();
  EXPECT_NE(s.find("My Table"), std::string::npos);
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha "), std::string::npos);
  EXPECT_NE(s.find("| 22 "), std::string::npos);
}

TEST(TextTable, AlignsColumnWidths) {
  TextTable t;
  t.set_header({"x"});
  t.add_row({"longer-cell"});
  const auto s = t.render();
  // Header cell should be padded to the widest cell's width.
  EXPECT_NE(s.find("| x           |"), std::string::npos);
}

TEST(TextTable, RowWidthMustMatchHeader) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, EmptyHeaderRejected) {
  TextTable t;
  EXPECT_THROW(t.set_header({}), Error);
}

TEST(TextTable, WorksWithoutHeader) {
  TextTable t;
  t.add_row({"a", "b", "c"});
  const auto s = t.render();
  EXPECT_NE(s.find("| a | b | c |"), std::string::npos);
}

TEST(TextTable, RowCount) {
  TextTable t;
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, EmptyTableRendersTitleOnly) {
  TextTable t("just title");
  EXPECT_EQ(t.render(), "just title\n");
}

}  // namespace
}  // namespace cellscope
