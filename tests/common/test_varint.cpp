#include "common/varint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cellscope {
namespace {

std::uint64_t encode_then_decode(std::uint64_t value) {
  std::string buf;
  varint_encode(value, buf);
  const auto* cursor = reinterpret_cast<const unsigned char*>(buf.data());
  const auto* end = cursor + buf.size();
  std::uint64_t decoded = 0;
  EXPECT_TRUE(varint_decode(&cursor, end, decoded));
  EXPECT_EQ(cursor, end) << "decode must consume exactly the encoding";
  return decoded;
}

TEST(Varint, RoundTripsBoundaryValues) {
  const std::vector<std::uint64_t> values = {
      0,       1,        127,        128,        255,
      16383,   16384,    (1ull << 32) - 1, 1ull << 32,
      (1ull << 63), std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) EXPECT_EQ(encode_then_decode(v), v);
}

TEST(Varint, EncodingLengthsMatchLeb128) {
  const auto length_of = [](std::uint64_t v) {
    std::string buf;
    varint_encode(v, buf);
    return buf.size();
  };
  EXPECT_EQ(length_of(0), 1u);
  EXPECT_EQ(length_of(127), 1u);
  EXPECT_EQ(length_of(128), 2u);
  EXPECT_EQ(length_of(16383), 2u);
  EXPECT_EQ(length_of(16384), 3u);
  EXPECT_EQ(length_of(std::numeric_limits<std::uint64_t>::max()), 10u);
}

TEST(Varint, DecodeRejectsTruncatedInput) {
  std::string buf;
  varint_encode(300, buf);  // two bytes
  const auto* begin = reinterpret_cast<const unsigned char*>(buf.data());
  const auto* cursor = begin;
  std::uint64_t decoded = 0;
  EXPECT_FALSE(varint_decode(&cursor, begin + 1, decoded));
  const auto* empty = begin;
  EXPECT_FALSE(varint_decode(&empty, begin, decoded));
}

TEST(Varint, DecodeRejectsOverlongEncoding) {
  // Eleven continuation bytes cannot be a valid u64 varint.
  std::string buf(11, static_cast<char>(0x80));
  const auto* cursor = reinterpret_cast<const unsigned char*>(buf.data());
  std::uint64_t decoded = 0;
  EXPECT_FALSE(varint_decode(
      &cursor, reinterpret_cast<const unsigned char*>(buf.data()) + buf.size(),
      decoded));
}

TEST(Varint, ZigzagRoundTripsSignedValues) {
  const std::vector<std::int64_t> values = {
      0, -1, 1, -2, 2, 1000, -1000,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : values)
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
}

TEST(Varint, ZigzagKeepsSmallMagnitudesSmall) {
  // The whole point: tiny deltas of either sign encode in one byte.
  for (std::int64_t v = -63; v <= 63; ++v) {
    std::string buf;
    varint_encode(zigzag_encode(v), buf);
    EXPECT_EQ(buf.size(), 1u) << "delta " << v;
  }
}

}  // namespace
}  // namespace cellscope
