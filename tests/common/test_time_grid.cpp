#include "common/time_grid.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cellscope {
namespace {

TEST(TimeGrid, ConstantsMatchThePaper) {
  // §3.2: N = 4032 = 28 days of 10-minute slots.
  EXPECT_EQ(TimeGrid::kSlots, 4032u);
  EXPECT_EQ(TimeGrid::kSlotsPerDay, 144);
  EXPECT_EQ(TimeGrid::kDays, 28);
  EXPECT_EQ(TimeGrid::kSlotsPerWeek, 1008);
}

TEST(TimeGrid, DayOfSlot) {
  EXPECT_EQ(TimeGrid::day(0), 0);
  EXPECT_EQ(TimeGrid::day(143), 0);
  EXPECT_EQ(TimeGrid::day(144), 1);
  EXPECT_EQ(TimeGrid::day(TimeGrid::kSlots - 1), 27);
}

TEST(TimeGrid, DayZeroIsMonday) {
  EXPECT_EQ(TimeGrid::day_of_week(0), 0);
  EXPECT_TRUE(TimeGrid::is_weekday(0));
}

TEST(TimeGrid, WeekendDetection) {
  // Day 5 = Saturday, day 6 = Sunday of week 0.
  EXPECT_FALSE(TimeGrid::is_weekday(5 * 144));
  EXPECT_FALSE(TimeGrid::is_weekday(6 * 144 + 100));
  EXPECT_TRUE(TimeGrid::is_weekday(7 * 144));  // next Monday
}

TEST(TimeGrid, SlotOfDayWraps) {
  EXPECT_EQ(TimeGrid::slot_of_day(0), 0);
  EXPECT_EQ(TimeGrid::slot_of_day(145), 1);
}

TEST(TimeGrid, SlotOfWeekWraps) {
  EXPECT_EQ(TimeGrid::slot_of_week(0), 0);
  EXPECT_EQ(TimeGrid::slot_of_week(1008), 0);
  EXPECT_EQ(TimeGrid::slot_of_week(1009), 1);
}

TEST(TimeGrid, HourOfDay) {
  EXPECT_DOUBLE_EQ(TimeGrid::hour_of_day(0), 0.0);
  EXPECT_DOUBLE_EQ(TimeGrid::hour_of_day(6), 1.0);
  EXPECT_DOUBLE_EQ(TimeGrid::hour_of_day(129), 21.5);  // 21:30
}

TEST(TimeGrid, SlotAtRoundTrips) {
  const auto slot = TimeGrid::slot_at(3, 21, 30);
  EXPECT_EQ(TimeGrid::day(slot), 3);
  EXPECT_DOUBLE_EQ(TimeGrid::hour_of_day(slot), 21.5);
}

TEST(TimeGrid, SlotAtRejectsUnalignedMinutes) {
  EXPECT_THROW(TimeGrid::slot_at(0, 0, 5), Error);
  EXPECT_THROW(TimeGrid::slot_at(28, 0, 0), Error);
  EXPECT_THROW(TimeGrid::slot_at(0, 24, 0), Error);
}

TEST(TimeGrid, FormatTimeOfDay) {
  EXPECT_EQ(TimeGrid::format_time_of_day(0), "00:00");
  EXPECT_EQ(TimeGrid::format_time_of_day(129), "21:30");
  EXPECT_EQ(TimeGrid::format_time_of_day(143), "23:50");
}

TEST(TimeGrid, FormatHourRoundsToTenMinutes) {
  EXPECT_EQ(TimeGrid::format_hour(8.0), "08:00");
  EXPECT_EQ(TimeGrid::format_hour(21.5), "21:30");
  EXPECT_EQ(TimeGrid::format_hour(13.333), "13:20");
}

TEST(TimeGrid, WeekdayWeekendSlotsPartitionTheGrid) {
  const auto weekdays = TimeGrid::weekday_slots();
  const auto weekends = TimeGrid::weekend_slots();
  EXPECT_EQ(weekdays.size() + weekends.size(), TimeGrid::kSlots);
  // 20 weekdays and 8 weekend days per 4 weeks.
  EXPECT_EQ(weekdays.size(), 20u * 144u);
  EXPECT_EQ(weekends.size(), 8u * 144u);
}

TEST(TimeGrid, OutOfRangeSlotThrows) {
  EXPECT_THROW(TimeGrid::day(TimeGrid::kSlots), Error);
  EXPECT_THROW(TimeGrid::slot_of_day(TimeGrid::kSlots), Error);
}

}  // namespace
}  // namespace cellscope
