#include "geo/geocoder.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace cellscope {
namespace {

TEST(AddressCodec, EncodeDecodeRoundTripsWithinTolerance) {
  const auto box = shanghai_bbox();
  const AddressCodec codec(box);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const LatLon p{rng.uniform(box.lat_min, box.lat_max),
                   rng.uniform(box.lon_min, box.lon_max)};
    const auto decoded = codec.decode(codec.encode(p));
    ASSERT_TRUE(decoded.has_value());
    // The address scheme quantizes to roughly 10 m.
    EXPECT_LT(haversine_m(p, *decoded), 15.0);
  }
}

TEST(AddressCodec, EncodingIsDeterministic) {
  const AddressCodec codec(shanghai_bbox());
  const LatLon p{31.2, 121.5};
  EXPECT_EQ(codec.encode(p), codec.encode(p));
}

TEST(AddressCodec, AddressHasExpectedShape) {
  const AddressCodec codec(shanghai_bbox());
  const auto address = codec.encode({31.2, 121.5});
  EXPECT_TRUE(address.starts_with("District-"));
  EXPECT_NE(address.find("/Street-"), std::string::npos);
  EXPECT_NE(address.find("/No-"), std::string::npos);
}

TEST(AddressCodec, MalformedAddressesDecodeToNull) {
  const AddressCodec codec(shanghai_bbox());
  EXPECT_FALSE(codec.decode("").has_value());
  EXPECT_FALSE(codec.decode("garbage").has_value());
  EXPECT_FALSE(codec.decode("District-1/Street-2").has_value());
  EXPECT_FALSE(codec.decode("District-x/Street-2/No-3").has_value());
  EXPECT_FALSE(codec.decode("District-1/Street-2/No-99999999").has_value());
  EXPECT_FALSE(codec.decode("Distric-1/Street-2/No-3").has_value());
}

TEST(AddressCodec, OverlongDigitRunsDecodeToNullNotUndefinedBehavior) {
  // std::atoi on a digit run wider than int is undefined behavior; the
  // from_chars decode must reject these instead of wrapping into a
  // (possibly in-range) value that silently geocodes somewhere.
  const AddressCodec codec(shanghai_bbox());
  const std::string thirty_digits(30, '9');
  EXPECT_FALSE(
      codec.decode("District-" + thirty_digits + "/Street-2/No-3")
          .has_value());
  EXPECT_FALSE(
      codec.decode("District-1/Street-" + thirty_digits + "/No-3")
          .has_value());
  EXPECT_FALSE(
      codec.decode("District-1/Street-2/No-" + thirty_digits).has_value());
  // Just past INT_MAX, and a zero-padded in-range value for contrast.
  EXPECT_FALSE(
      codec.decode("District-2147483648/Street-2/No-3").has_value());
  EXPECT_TRUE(codec.decode("District-0001/Street-2/No-3").has_value());
}

TEST(Geocoder, ResolvesAddressesItIssued) {
  Geocoder geocoder(shanghai_bbox());
  const LatLon p{31.15, 121.35};
  const auto address = geocoder.reverse_geocode(p);
  const auto resolved = geocoder.geocode(address);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_LT(haversine_m(p, *resolved), 15.0);
}

TEST(Geocoder, CachesRepeatLookups) {
  Geocoder geocoder(shanghai_bbox());
  const auto address = geocoder.reverse_geocode({31.1, 121.4});
  geocoder.geocode(address);
  geocoder.geocode(address);
  geocoder.geocode(address);
  EXPECT_EQ(geocoder.api_calls(), 1u);
  EXPECT_EQ(geocoder.cache_hits(), 2u);
}

TEST(Geocoder, QuotaLimitsUncachedLookups) {
  Geocoder geocoder(shanghai_bbox(), {.quota = 2});
  const auto a1 = geocoder.reverse_geocode({31.10, 121.30});
  const auto a2 = geocoder.reverse_geocode({31.11, 121.31});
  const auto a3 = geocoder.reverse_geocode({31.12, 121.32});
  geocoder.geocode(a1);
  geocoder.geocode(a2);
  geocoder.geocode(a1);  // cache hit — free
  EXPECT_THROW(geocoder.geocode(a3), Error);
}

TEST(Geocoder, MalformedLookupsAreCachedToo) {
  Geocoder geocoder(shanghai_bbox());
  EXPECT_FALSE(geocoder.geocode("not-an-address").has_value());
  EXPECT_FALSE(geocoder.geocode("not-an-address").has_value());
  EXPECT_EQ(geocoder.api_calls(), 1u);
}

}  // namespace
}  // namespace cellscope
