#include "geo/latlon.h"

#include <gtest/gtest.h>

namespace cellscope {
namespace {

TEST(Haversine, ZeroForIdenticalPoints) {
  const LatLon p{31.2, 121.5};
  EXPECT_DOUBLE_EQ(haversine_m(p, p), 0.0);
}

TEST(Haversine, IsSymmetric) {
  const LatLon a{31.0, 121.0};
  const LatLon b{31.3, 121.6};
  EXPECT_DOUBLE_EQ(haversine_m(a, b), haversine_m(b, a));
}

TEST(Haversine, OneDegreeLatitudeIsAbout111Km) {
  const LatLon a{31.0, 121.0};
  const LatLon b{32.0, 121.0};
  EXPECT_NEAR(haversine_km(a, b), 111.2, 0.5);
}

TEST(Haversine, LongitudeShrinksWithLatitude) {
  const LatLon eq_a{0.0, 0.0};
  const LatLon eq_b{0.0, 1.0};
  const LatLon hi_a{60.0, 0.0};
  const LatLon hi_b{60.0, 1.0};
  // cos(60°) = 0.5: a degree of longitude at 60°N is half as long.
  EXPECT_NEAR(haversine_km(hi_a, hi_b) / haversine_km(eq_a, eq_b), 0.5, 0.01);
}

TEST(Haversine, TriangleInequalityHolds) {
  const LatLon a{31.0, 121.2};
  const LatLon b{31.2, 121.4};
  const LatLon c{31.4, 121.7};
  EXPECT_LE(haversine_m(a, c), haversine_m(a, b) + haversine_m(b, c) + 1e-9);
}

TEST(BoundingBox, ContainsIsInclusive) {
  const BoundingBox box{30.0, 31.0, 120.0, 122.0};
  EXPECT_TRUE(box.contains({30.0, 120.0}));
  EXPECT_TRUE(box.contains({31.0, 122.0}));
  EXPECT_TRUE(box.contains({30.5, 121.0}));
  EXPECT_FALSE(box.contains({29.99, 121.0}));
  EXPECT_FALSE(box.contains({30.5, 122.01}));
}

TEST(BoundingBox, CenterIsMidpoint) {
  const BoundingBox box{30.0, 31.0, 120.0, 122.0};
  EXPECT_DOUBLE_EQ(box.center().lat, 30.5);
  EXPECT_DOUBLE_EQ(box.center().lon, 121.0);
}

TEST(BoundingBox, ClampProjectsOutsidePoints) {
  const BoundingBox box{30.0, 31.0, 120.0, 122.0};
  const auto p = box.clamp({35.0, 119.0});
  EXPECT_DOUBLE_EQ(p.lat, 31.0);
  EXPECT_DOUBLE_EQ(p.lon, 120.0);
  const auto inside = box.clamp({30.5, 121.0});
  EXPECT_DOUBLE_EQ(inside.lat, 30.5);
}

TEST(BoundingBox, AreaMatchesExtentProduct) {
  const BoundingBox box{31.0, 32.0, 121.0, 122.0};
  EXPECT_NEAR(box.area_km2(), box.height_km() * box.width_km(), 1e-9);
  EXPECT_NEAR(box.height_km(), 111.32, 0.01);
}

TEST(ShanghaiBox, CoversTheStudyArea) {
  const auto box = shanghai_bbox();
  EXPECT_TRUE(box.contains({31.23, 121.47}));  // central Shanghai
  EXPECT_GT(box.area_km2(), 1000.0);
  EXPECT_LT(box.area_km2(), 10000.0);
}

}  // namespace
}  // namespace cellscope
