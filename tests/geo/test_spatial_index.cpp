#include "geo/spatial_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"

#include "common/rng.h"

namespace cellscope {
namespace {

BoundingBox test_box() { return {31.0, 31.2, 121.0, 121.2}; }

std::vector<LatLon> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const auto box = test_box();
  std::vector<LatLon> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    points.push_back({rng.uniform(box.lat_min, box.lat_max),
                      rng.uniform(box.lon_min, box.lon_max)});
  return points;
}

/// Oracle: brute-force radius query.
std::vector<std::size_t> brute_force(const std::vector<LatLon>& points,
                                     const LatLon& center, double radius_m) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (haversine_m(points[i], center) <= radius_m) out.push_back(i);
  return out;
}

TEST(SpatialIndex, MatchesBruteForceOracle) {
  const auto points = random_points(500, 42);
  const SpatialIndex index(test_box(), points);
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const LatLon center{rng.uniform(31.0, 31.2), rng.uniform(121.0, 121.2)};
    const double radius = rng.uniform(50.0, 3000.0);
    EXPECT_EQ(index.query_radius(center, radius),
              brute_force(points, center, radius))
        << "trial " << trial;
  }
}

TEST(SpatialIndex, ZeroRadiusFindsOnlyCoincidentPoints) {
  const std::vector<LatLon> points = {{31.1, 121.1}, {31.15, 121.15}};
  const SpatialIndex index(test_box(), points);
  const auto hits = index.query_radius({31.1, 121.1}, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

TEST(SpatialIndex, CountMatchesQuerySize) {
  const auto points = random_points(200, 1);
  const SpatialIndex index(test_box(), points);
  const LatLon center{31.1, 121.1};
  EXPECT_EQ(index.count_radius(center, 1000.0),
            index.query_radius(center, 1000.0).size());
}

TEST(SpatialIndex, NearestMatchesBruteForce) {
  const auto points = random_points(300, 9);
  const SpatialIndex index(test_box(), points);
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const LatLon center{rng.uniform(31.0, 31.2), rng.uniform(121.0, 121.2)};
    const std::size_t got = index.nearest(center);
    double best = 1e18;
    std::size_t want = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const double d = haversine_m(points[i], center);
      if (d < best) {
        best = d;
        want = i;
      }
    }
    EXPECT_NEAR(haversine_m(points[got], center), best, 1e-9);
  }
}

TEST(SpatialIndex, EmptyIndexQueriesReturnNothing) {
  const SpatialIndex index(test_box(), {});
  EXPECT_TRUE(index.query_radius({31.1, 121.1}, 1e6).empty());
  EXPECT_THROW(index.nearest({31.1, 121.1}), Error);
}

TEST(SpatialIndex, PointsOutsideBoxAreClampedButQueryable) {
  const std::vector<LatLon> points = {{35.0, 121.1}};  // way north
  const SpatialIndex index(test_box(), points);
  // Clamped to the north edge.
  EXPECT_EQ(index.count_radius({31.2, 121.1}, 100.0), 1u);
}

TEST(SpatialIndex, ResultsAreSorted) {
  const auto points = random_points(400, 21);
  const SpatialIndex index(test_box(), points);
  const auto hits = index.query_radius({31.1, 121.1}, 5000.0);
  EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
}

TEST(SpatialIndex, RejectsNegativeRadius) {
  const SpatialIndex index(test_box(), random_points(10, 2));
  EXPECT_THROW(index.query_radius({31.1, 121.1}, -1.0), Error);
}

// Parameterized: the oracle property holds across cell sizes.
class SpatialIndexCellSize : public ::testing::TestWithParam<double> {};

TEST_P(SpatialIndexCellSize, OracleHoldsForAnyBucketGranularity) {
  const auto points = random_points(300, 5);
  const SpatialIndex index(test_box(), points, GetParam());
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const LatLon center{rng.uniform(31.0, 31.2), rng.uniform(121.0, 121.2)};
    const double radius = rng.uniform(100.0, 5000.0);
    EXPECT_EQ(index.query_radius(center, radius),
              brute_force(points, center, radius));
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, SpatialIndexCellSize,
                         ::testing::Values(0.1, 0.25, 0.5, 1.0, 5.0, 50.0));

}  // namespace
}  // namespace cellscope
