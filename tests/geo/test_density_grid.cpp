#include "geo/density_grid.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cellscope {
namespace {

BoundingBox test_box() { return {31.0, 31.2, 121.0, 121.2}; }

TEST(DensityGrid, AccumulatesIntoCorrectCell) {
  DensityGrid grid(test_box(), 10, 10);
  grid.add({31.01, 121.01}, 5.0);  // bottom-left region
  grid.add({31.19, 121.19}, 7.0);  // top-right region
  EXPECT_DOUBLE_EQ(grid.value_at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(grid.value_at(9, 9), 7.0);
  EXPECT_DOUBLE_EQ(grid.total(), 12.0);
}

TEST(DensityGrid, IgnoresPointsOutsideTheBox) {
  DensityGrid grid(test_box(), 4, 4);
  grid.add({30.0, 121.1}, 100.0);
  grid.add({31.1, 122.5}, 100.0);
  EXPECT_DOUBLE_EQ(grid.total(), 0.0);
}

TEST(DensityGrid, DensityDividesByCellArea) {
  DensityGrid grid(test_box(), 2, 2);
  grid.add({31.05, 121.05}, 10.0);
  const double area = grid.cell_area_km2();
  EXPECT_GT(area, 0.0);
  EXPECT_NEAR(grid.density_at(0, 0), 10.0 / area, 1e-12);
}

TEST(DensityGrid, CellAreaSumsToBoxArea) {
  DensityGrid grid(test_box(), 5, 7);
  EXPECT_NEAR(grid.cell_area_km2() * 35.0, test_box().area_km2(), 1e-9);
}

TEST(DensityGrid, PeakFindsLargestCell) {
  DensityGrid grid(test_box(), 3, 3);
  grid.add({31.05, 121.05}, 1.0);
  grid.add({31.15, 121.15}, 9.0);
  grid.add({31.15, 121.15}, 1.0);
  const auto peak = grid.peak();
  EXPECT_DOUBLE_EQ(peak.value, 10.0);
  EXPECT_EQ(peak.row, grid.row_of(31.15));
  EXPECT_EQ(peak.col, grid.col_of(121.15));
}

TEST(DensityGrid, CellCenterRoundTrips) {
  DensityGrid grid(test_box(), 8, 8);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      const auto center = grid.cell_center(r, c);
      EXPECT_EQ(grid.row_of(center.lat), r);
      EXPECT_EQ(grid.col_of(center.lon), c);
    }
  }
}

TEST(DensityGrid, BoundaryCoordinatesClampToEdgeCells) {
  DensityGrid grid(test_box(), 4, 4);
  EXPECT_EQ(grid.row_of(31.2), 3u);   // top edge
  EXPECT_EQ(grid.col_of(121.2), 3u);  // right edge
  EXPECT_EQ(grid.row_of(31.0), 0u);
}

TEST(DensityGrid, ClearResets) {
  DensityGrid grid(test_box(), 2, 2);
  grid.add({31.1, 121.1}, 5.0);
  grid.clear();
  EXPECT_DOUBLE_EQ(grid.total(), 0.0);
}

TEST(DensityGrid, RejectsDegenerateConstruction) {
  EXPECT_THROW(DensityGrid(test_box(), 0, 4), Error);
  EXPECT_THROW(DensityGrid({31.0, 31.0, 121.0, 121.2}, 2, 2), Error);
}

TEST(DensityGrid, OutOfRangeCellAccessThrows) {
  DensityGrid grid(test_box(), 2, 2);
  EXPECT_THROW(grid.value_at(2, 0), Error);
  EXPECT_THROW(grid.cell_center(0, 2), Error);
}

}  // namespace
}  // namespace cellscope
