#!/usr/bin/env bash
# Serving-plane race check: configure a ThreadSanitizer build in
# build-tsan/, build the server test suite, and run `ctest -L server`
# under it. The intended targets (DESIGN.md §11) are the RCU model swap
# racing in-flight classify_all passes, TowerWindow reads racing the
# fused bulk ingest path, many client threads against the worker pool's
# admission queue, and the failpoint-driven fault drill; any data race,
# deadlock, or use-after-free fails the run.
#
# Usage:
#   scripts/check_server.sh            # configure (once), build, run
#   CELLSCOPE_TSAN_BUILD_DIR=... scripts/check_server.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${CELLSCOPE_TSAN_BUILD_DIR:-${repo_root}/build-tsan}"

# Configure every run: a no-op on a warm cache, and it picks up new
# targets after CMakeLists changes.
cmake -B "${build_dir}" -S "${repo_root}" -DCELLSCOPE_SANITIZE=thread

cmake --build "${build_dir}" -j --target test_server

echo "check_server: running ctest -L server under ThreadSanitizer"
ctest --test-dir "${build_dir}" -L server --output-on-failure
