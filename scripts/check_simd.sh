#!/usr/bin/env bash
# SIMD bit-identity check: build the kernel-oracle and equivalence
# suites, then run `ctest -L 'simd|par'` twice — once with dispatch
# forced to the scalar reference kernels (CELLSCOPE_SIMD=scalar) and
# once on the widest ISA the CPU reports (CELLSCOPE_SIMD=auto, the
# default). The suites assert bit-for-bit equality between the paths
# (DESIGN.md §12), so any reassociated reduction, fused multiply-add,
# or remainder-lane bug in a vector kernel fails the run.
#
# Usage:
#   scripts/check_simd.sh              # build (incremental), run both passes
#   CELLSCOPE_BUILD_DIR=... scripts/check_simd.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${CELLSCOPE_BUILD_DIR:-${repo_root}/build}"

# Configure every run: a no-op on a warm cache, and it picks up new
# targets after CMakeLists changes.
cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j --target test_simd --target test_parallel

echo "check_simd: pass 1/2 — dispatch forced scalar (reference kernels)"
CELLSCOPE_SIMD=scalar \
  ctest --test-dir "${build_dir}" -L 'simd|par' --output-on-failure

echo "check_simd: pass 2/2 — widest detected ISA (auto dispatch)"
CELLSCOPE_SIMD=auto \
  ctest --test-dir "${build_dir}" -L 'simd|par' --output-on-failure

echo "check_simd: scalar and vector dispatch agree bit-for-bit"
