#!/usr/bin/env bash
# Streaming race check: configure a ThreadSanitizer build in build-tsan/,
# build the stream test suite, and run `ctest -L stream` under it. The
# sharded ingestor's lock striping, the bounded thread-pool queue, and the
# classify-all pass are the intended targets (DESIGN.md §9); any data race
# fails the run.
#
# Usage:
#   scripts/check_stream.sh            # configure (once), build, run
#   CELLSCOPE_TSAN_BUILD_DIR=... scripts/check_stream.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${CELLSCOPE_TSAN_BUILD_DIR:-${repo_root}/build-tsan}"

# Configure every run: a no-op on a warm cache, and it picks up new
# targets after CMakeLists changes.
cmake -B "${build_dir}" -S "${repo_root}" -DCELLSCOPE_SANITIZE=thread

cmake --build "${build_dir}" -j --target test_stream --target test_obs

echo "check_stream: running ctest -L stream under ThreadSanitizer"
ctest --test-dir "${build_dir}" -L stream --output-on-failure
