#!/usr/bin/env bash
# Streaming race + crash-safety check: configure a ThreadSanitizer build
# in build-tsan/, build the stream, fault, and introspection test suites,
# and run `ctest -L 'stream|fault|introspect|io'` under it. The sharded
# ingestor's lock striping, the bounded thread-pool queue, the
# classify-all pass, the snapshot write/restore paths with injected
# faults, the embedded stats server scraping live metric traffic, and
# the columnar trace codecs feeding the bulk ingest path are the
# intended targets (DESIGN.md §7, §9, and §10); any data race or
# crash-safety violation fails the run.
#
# Usage:
#   scripts/check_stream.sh            # configure (once), build, run
#   CELLSCOPE_TSAN_BUILD_DIR=... scripts/check_stream.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${CELLSCOPE_TSAN_BUILD_DIR:-${repo_root}/build-tsan}"

# Configure every run: a no-op on a warm cache, and it picks up new
# targets after CMakeLists changes.
cmake -B "${build_dir}" -S "${repo_root}" -DCELLSCOPE_SANITIZE=thread

cmake --build "${build_dir}" -j --target test_stream --target test_obs \
  --target test_fault --target snapshot_fuzz --target test_introspect \
  --target test_io

echo "check_stream: running ctest -L 'stream|fault|introspect|io' under ThreadSanitizer"
ctest --test-dir "${build_dir}" -L 'stream|fault|introspect|io' --output-on-failure
