#!/usr/bin/env bash
# Perf-regression gate: run the perf_* benches in quick mode, emit
# fresh BENCH_*.json run reports, and diff them against the committed
# baselines in bench/baselines/ with build/bench/bench_compare. The
# summary ends with a per-bench speedup-vs-baseline table.
#
# Usage:
#   scripts/check_perf.sh             # gate: exit 1 on >15% wall-time regression
#   scripts/check_perf.sh --update    # refresh bench/baselines/ from this machine
#   CELLSCOPE_PERF_THRESHOLD=0.25 scripts/check_perf.sh   # loosen the gate
#
# Quick mode keeps the gate cheap (~seconds per bench): a small synthetic
# city (CELLSCOPE_TOWERS=200) and a short google-benchmark min time. The
# committed baselines are produced with the same settings so the ratio —
# not the absolute time — is what the gate measures. Baselines are
# machine-dependent; refresh them with --update when hardware changes.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${CELLSCOPE_BUILD_DIR:-${repo_root}/build}"
baseline_dir="${repo_root}/bench/baselines"
threshold="${CELLSCOPE_PERF_THRESHOLD:-0.15}"
benches=(perf_fft perf_clustering perf_distance perf_mapred perf_qp perf_pipeline perf_stream perf_ingest_fullscale perf_server perf_simd)

update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
elif [[ $# -gt 0 ]]; then
  echo "usage: $0 [--update]" >&2
  exit 2
fi

for bench in "${benches[@]}"; do
  if [[ ! -x "${build_dir}/bench/${bench}" ]]; then
    echo "check_perf: ${build_dir}/bench/${bench} missing — build first" >&2
    echo "check_perf: cmake -B build -S . && cmake --build build -j" >&2
    exit 2
  fi
done

fresh_dir="$(mktemp -d "${TMPDIR:-/tmp}/cellscope-perf.XXXXXX")"
trap 'rm -rf "${fresh_dir}"' EXIT

for bench in "${benches[@]}"; do
  echo "check_perf: running ${bench} (quick mode)"
  CELLSCOPE_TOWERS=200 CELLSCOPE_BENCH_DIR="${fresh_dir}" \
    "${build_dir}/bench/${bench}" --benchmark_min_time=0.05 \
    >/dev/null
done

if [[ "${update}" == 1 ]]; then
  mkdir -p "${baseline_dir}"
  cp "${fresh_dir}"/BENCH_*.json "${baseline_dir}/"
  echo "check_perf: baselines refreshed in ${baseline_dir}"
  exit 0
fi

if [[ ! -d "${baseline_dir}" ]]; then
  echo "check_perf: no baselines at ${baseline_dir}; run $0 --update" >&2
  exit 2
fi

"${build_dir}/bench/bench_compare" "${baseline_dir}" "${fresh_dir}" \
  "${threshold}"
