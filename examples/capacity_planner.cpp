// Capacity planning / load balancing: the paper's ISP use case — "an ISP
// cannot obtain the optimal performance by using the same load balancing
// strategy on different towers" (§3.1).
//
// This example turns the discovered patterns into operational advice:
//   * per-pattern maintenance windows (lowest-traffic hours),
//   * per-pattern provisioning headroom (peak-to-mean ratio — how much
//     capacity sits idle off-peak),
//   * complementarity: which pattern pairs peak at different times and
//     could share pooled backhaul capacity.
//
//   $ ./capacity_planner [n_towers] [seed]
#include <cstdlib>
#include <iostream>

#include "core/cellscope.h"

int main(int argc, char** argv) {
  using namespace cellscope;

  ExperimentConfig config;
  config.n_towers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2015;

  std::cout << "Capacity planner: pattern-aware tower operations ("
            << config.n_towers << " towers)\n\n";
  const auto experiment = Experiment::run(config);

  // 1. Maintenance windows and provisioning per pattern.
  TextTable table("per-pattern operations sheet (weekday)");
  table.set_header({"pattern", "towers", "maintenance window",
                    "peak hour", "peak/mean", "advice"});
  std::vector<std::vector<double>> weekday_profiles;
  std::vector<FunctionalRegion> regions;
  for (std::size_t c = 0; c < experiment.n_clusters(); ++c) {
    const auto region = experiment.labeling().region_of_cluster[c];
    const auto aggregate = experiment.cluster_aggregate(c);
    const auto features = compute_time_features(aggregate);
    const auto& day = features.weekday.mean_day;
    weekday_profiles.push_back(day);
    regions.push_back(region);

    // Maintenance window: the 2-hour block with the least traffic.
    double best_total = 1e300;
    int best_start = 0;
    const int block = 12;  // 12 slots = 2 hours
    for (int start = 0; start < TimeGrid::kSlotsPerDay; ++start) {
      double total = 0.0;
      for (int offset = 0; offset < block; ++offset)
        total += day[static_cast<std::size_t>((start + offset) %
                                              TimeGrid::kSlotsPerDay)];
      if (total < best_total) {
        best_total = total;
        best_start = start;
      }
    }
    const double peak_to_mean = features.weekday.max_traffic /
                                (sum(day) / static_cast<double>(day.size()));
    std::string advice;
    if (peak_to_mean > 4.0) advice = "burst capacity / borrow off-peak";
    else if (peak_to_mean > 2.0) advice = "standard diurnal provisioning";
    else advice = "flat provisioning, cheapest per byte";
    table.add_row(
        {region_name(region),
         std::to_string(experiment.rows_of_cluster(c).size()),
         TimeGrid::format_time_of_day(best_start) + "-" +
             TimeGrid::format_time_of_day((best_start + block) %
                                          TimeGrid::kSlotsPerDay),
         format_peak_time(features.weekday.peak_hour),
         format_double(peak_to_mean, 2), advice});
  }
  std::cout << table.render() << "\n";

  // 2. Complementarity: normalized-profile correlation between patterns.
  // Anti-correlated pairs can pool capacity (one peaks while the other
  // idles).
  std::cout << "pattern complementarity (weekday profile correlation; "
               "lower = better pooling partners):\n\n";
  TextTable pairs("pairwise correlation");
  std::vector<std::string> header = {""};
  for (const auto region : regions)
    header.push_back(region_name(region).substr(0, 6));
  pairs.set_header(header);
  double best_pair_value = 2.0;
  std::pair<std::size_t, std::size_t> best_pair{0, 0};
  for (std::size_t a = 0; a < weekday_profiles.size(); ++a) {
    std::vector<std::string> row = {region_name(regions[a])};
    for (std::size_t b = 0; b < weekday_profiles.size(); ++b) {
      const double rho = pearson(weekday_profiles[a], weekday_profiles[b]);
      row.push_back(format_double(rho, 2));
      if (a < b && rho < best_pair_value) {
        best_pair_value = rho;
        best_pair = {a, b};
      }
    }
    pairs.add_row(row);
  }
  std::cout << pairs.render() << "\n";
  std::cout << "best pooling partners: " << region_name(regions[best_pair.first])
            << " + " << region_name(regions[best_pair.second])
            << " (correlation " << format_double(best_pair_value, 2)
            << ") — their peaks do not coincide, so shared backhaul can be "
               "dimensioned below the sum of individual peaks.\n\n";

  // 3. Quantify the pooling gain for the best pair.
  const auto& profile_a = weekday_profiles[best_pair.first];
  const auto& profile_b = weekday_profiles[best_pair.second];
  double peak_a = max_value(profile_a);
  double peak_b = max_value(profile_b);
  std::vector<double> pooled(profile_a.size());
  for (std::size_t s = 0; s < pooled.size(); ++s)
    pooled[s] = profile_a[s] + profile_b[s];
  const double pooled_peak = max_value(pooled);
  std::cout << "capacity if provisioned separately: " << format_bytes(peak_a)
            << " + " << format_bytes(peak_b) << " = "
            << format_bytes(peak_a + peak_b) << " per 10 min\n";
  std::cout << "capacity if pooled:                 "
            << format_bytes(pooled_peak) << " per 10 min ("
            << format_double(100.0 * (1.0 - pooled_peak / (peak_a + peak_b)),
                             1)
            << "% saving)\n";
  return 0;
}
