// cellscoped — the CellScope query daemon (DESIGN.md §11, README
// "Querying a live city").
//
// Trains a model on a synthetic city (or the city implied by a replayed
// trace), then runs two planes concurrently until SIGINT/SIGTERM:
//
//   * ingest plane: feeds the StreamIngestor round after round (synthetic
//     feed) or one out-of-core pass (--trace), advancing event time;
//   * serving plane: a QueryServer answering /towers/:id/class, /window,
//     /forecast, POST /classify, and /stats over the live windows, plus
//     the introspection endpoints (/metrics, /healthz, /stream).
//
// The model is republished after every ingest round — an epoch bump
// clients observe in every response's model_epoch — so the RCU swap path
// runs continuously under live traffic.
//
//   $ ./cellscoped --port=8080 --towers=200 &
//   $ curl -s localhost:8080/towers/7/class
//   $ curl -s localhost:8080/stats
//
// Flags (all optional):
//   --port=N          listen port on 127.0.0.1 (default 8080, 0 = ephemeral)
//   --workers=N       serving worker threads (default 4)
//   --max-pending=N   admission-queue capacity (default 64)
//   --towers=N        synthetic city size (default 200)
//   --records=N       records per ingest round (default 200000)
//   --rounds=N        ingest rounds; 0 = run until a signal (default 0)
//   --batch=N         offer_batch size (default 8192)
//   --pause-ms=N      sleep between rounds (default 500)
//   --trace=PATH      ingest this trace file once instead of synthesizing
//   --checkpoint=PATH flush a final stream snapshot here on shutdown
//
// SIGINT/SIGTERM stop at the next round boundary, stop the server, drain
// the ingestor, flush the checkpoint, and let the run report write —
// never a torn snapshot.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/time_grid.h"
#include "core/cellscope.h"
#include "mapred/thread_pool.h"
#include "obs/introspect.h"
#include "obs/report.h"
#include "server/query_service.h"
#include "server/server.h"
#include "signal_util.h"
#include "stream/ingestor.h"
#include "stream/online_classifier.h"
#include "stream/replay.h"
#include "stream/snapshot.h"

namespace {

using namespace cellscope;

std::uint64_t flag_u64(std::string_view arg, std::string_view name,
                       bool& matched) {
  if (!arg.starts_with(name) || arg.size() <= name.size() ||
      arg[name.size()] != '=')
    return 0;
  matched = true;
  return std::strtoull(std::string(arg.substr(name.size() + 1)).c_str(),
                       nullptr, 10);
}

std::vector<TrafficLog> synthetic_logs(std::size_t n_records,
                                       std::uint32_t n_towers,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TrafficLog> logs;
  logs.reserve(n_records);
  constexpr std::uint64_t kGridMinutes =
      TimeGrid::kSlots * TimeGrid::kSlotMinutes;
  for (std::size_t i = 0; i < n_records; ++i) {
    TrafficLog log;
    log.user_id = static_cast<std::uint64_t>(rng.uniform_int(0, 99999));
    log.tower_id = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_towers) - 1));
    const auto base = i * kGridMinutes / n_records;
    log.start_minute = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        kGridMinutes - 1,
        base + static_cast<std::uint64_t>(rng.uniform_int(0, 30))));
    log.end_minute =
        log.start_minute + static_cast<std::uint32_t>(rng.uniform_int(0, 15));
    log.bytes = static_cast<std::uint64_t>(rng.uniform_int(100, 200000));
    logs.push_back(log);
  }
  return logs;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t port = 8080;
  std::size_t workers = 4;
  std::size_t max_pending = 64;
  std::size_t n_towers = 200;
  std::size_t n_records = 200'000;
  std::size_t rounds = 0;  // run until a signal
  std::size_t batch = 8192;
  std::size_t pause_ms = 500;
  std::string trace_path;
  std::string checkpoint_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    bool matched = false;
    if (auto v = flag_u64(arg, "--port", matched); matched) port = v;
    else if (auto v = flag_u64(arg, "--workers", matched); matched)
      workers = v;
    else if (auto v = flag_u64(arg, "--max-pending", matched); matched)
      max_pending = v;
    else if (auto v = flag_u64(arg, "--towers", matched); matched)
      n_towers = v;
    else if (auto v = flag_u64(arg, "--records", matched); matched)
      n_records = v;
    else if (auto v = flag_u64(arg, "--rounds", matched); matched) rounds = v;
    else if (auto v = flag_u64(arg, "--batch", matched); matched) batch = v;
    else if (auto v = flag_u64(arg, "--pause-ms", matched); matched)
      pause_ms = v;
    else if (arg.starts_with("--trace="))
      trace_path = arg.substr(8);
    else if (arg.starts_with("--checkpoint="))
      checkpoint_path = arg.substr(13);
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }

  examples::install_stop_handlers();
  obs::arm_run_report("cellscoped");  // no-op unless CELLSCOPE_RUN_REPORT

  std::cout << "training model on " << n_towers << " towers...\n";
  ExperimentConfig config;
  config.n_towers = n_towers;
  const Experiment experiment = Experiment::run(config);
  auto classifier =
      std::make_shared<const OnlineClassifier>(snapshot_model(experiment));

  ThreadPool pool(configured_thread_count());
  StreamIngestor ingestor(StreamConfig::from_env());

  server::QueryService service(ingestor, &pool);
  service.publish_model(classifier);

  server::ServerConfig server_config;
  server_config.port = static_cast<std::uint16_t>(port);
  server_config.workers = workers;
  server_config.max_pending = max_pending;
  server::QueryServer server(service, server_config);
  server.start();
  std::cout << "cellscoped serving on http://127.0.0.1:" << server.port()
            << "  (/towers/:id/class /towers/:id/window /towers/:id/forecast"
            << " POST /classify /stats /metrics /stream)\n";

  ReplayOptions options;
  options.batch_size = batch;

  if (!trace_path.empty()) {
    FileReplayOptions file_options;
    file_options.batch_size = batch;
    const ReplayStats stats = replay_trace_file(trace_path, ingestor, pool,
                                                file_options,
                                                classifier.get());
    service.publish_model(classifier);
    std::cout << trace_path << ": " << stats.records << " records in "
              << stats.wall_ms << " ms; serving until a signal arrives\n";
    while (!examples::stop_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
  } else {
    const auto base_logs = synthetic_logs(
        n_records, static_cast<std::uint32_t>(n_towers), 4321);
    constexpr std::uint64_t kGridMinutes =
        TimeGrid::kSlots * TimeGrid::kSlotMinutes;
    for (std::size_t round = 0;
         (rounds == 0 || round < rounds) && !examples::stop_requested();
         ++round) {
      std::vector<TrafficLog> logs = base_logs;
      const auto shift = static_cast<std::uint32_t>(round * kGridMinutes);
      for (auto& log : logs) {
        log.start_minute += shift;
        log.end_minute += shift;
      }
      options.seed = 99 + round;
      const ReplayStats stats =
          replay_trace(logs, ingestor, pool, options, classifier.get());
      // Same frozen model, new epoch: clients see model_epoch advance
      // while in-flight requests finish on the epoch they loaded.
      service.publish_model(classifier);
      const IngestStats ingest = stats.ingest;
      std::cout << "round " << round + 1 << ": " << stats.records
                << " records ("
                << static_cast<std::uint64_t>(stats.records_per_sec)
                << " rec/s), watermark " << ingest.watermark_minute
                << ", model epoch " << service.model_epoch() << "\n";
      if (pause_ms > 0 && !examples::stop_requested())
        std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
    }
    // Flag-free completion of a bounded run still serves until a signal.
    while (!examples::stop_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  std::cout << "\nstop requested; shutting down...\n";
  server.stop();
  ingestor.drain(pool);
  if (!checkpoint_path.empty()) {
    const SnapshotInfo info = write_snapshot(checkpoint_path, ingestor);
    std::cout << "checkpoint " << checkpoint_path << ": " << info.towers
              << " towers, " << info.bins << " bins, " << info.bytes
              << " bytes\n";
  }
  std::cout << "final ingest view:\n" << ingestor.status_json() << "\n";
  return 0;
}
