// Land-use inference: the paper's management-department use case — infer
// what an area is used for from cellular traffic alone (§1: "government
// may infer the land usage ... by looking at the patterns of cellular
// traffic").
//
// This example trains nothing: it runs the unsupervised pipeline on one
// city, takes the labeled cluster centroids as pattern templates, then
// classifies the towers of a *second, differently seeded* city by
// nearest-template matching and scores against that city's latent ground
// truth — i.e., do patterns learned in one city transfer to another?
//
//   $ ./land_use_inference [n_towers] [seed_a] [seed_b]
#include <cstdlib>
#include <iostream>

#include "core/cellscope.h"

namespace {

using namespace cellscope;

/// Labeled pattern templates from a completed experiment: z-scored
/// mean-week centroid per region.
struct Templates {
  std::vector<std::vector<double>> centroid;  // indexed by region
};

Templates learn_templates(const Experiment& experiment) {
  const auto folded = fold_to_week(experiment.zscored());
  const auto centroids = cluster_centroids(folded, experiment.labels());
  Templates templates;
  templates.centroid.resize(kNumRegions);
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const auto region = experiment.labeling().region_of_cluster[c];
    templates.centroid[static_cast<int>(region)] = centroids[c];
  }
  return templates;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_towers =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;
  const std::uint64_t seed_a =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2015;
  const std::uint64_t seed_b =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 31337;

  std::cout << "Land-use inference: learn patterns in city A (seed " << seed_a
            << "), classify city B (seed " << seed_b << ")\n\n";

  ExperimentConfig config_a;
  config_a.n_towers = n_towers;
  config_a.seed = seed_a;
  const auto city_a = Experiment::run(config_a);
  const auto templates = learn_templates(city_a);
  std::cout << "city A: " << city_a.n_clusters()
            << " patterns discovered, label accuracy "
            << format_double(100.0 * city_a.validation().accuracy, 1)
            << "%\n";

  // City B: an unseen city; we only use its traffic matrix.
  ExperimentConfig config_b;
  config_b.n_towers = n_towers;
  config_b.seed = seed_b;
  const auto city_b = Experiment::run(config_b);
  const auto folded_b = fold_to_week(city_b.zscored());

  std::array<std::array<std::size_t, kNumRegions>, kNumRegions> confusion{};
  std::size_t correct = 0;
  for (std::size_t i = 0; i < folded_b.size(); ++i) {
    double best = 1e300;
    FunctionalRegion predicted = FunctionalRegion::kComprehensive;
    for (const auto region : all_regions()) {
      const auto& centroid = templates.centroid[static_cast<int>(region)];
      if (centroid.empty()) continue;
      const double d = euclidean_distance(folded_b[i], centroid);
      if (d < best) {
        best = d;
        predicted = region;
      }
    }
    const auto truth = city_b.towers()[i].true_region;
    ++confusion[static_cast<int>(truth)][static_cast<int>(predicted)];
    if (truth == predicted) ++correct;
  }

  std::cout << "city B: " << folded_b.size()
            << " towers classified by nearest learned template\n\n";
  TextTable table("confusion matrix (rows = truth, cols = predicted)");
  std::vector<std::string> header = {"truth \\ pred"};
  for (const auto region : all_regions())
    header.push_back(region_name(region).substr(0, 6));
  table.set_header(header);
  for (const auto truth : all_regions()) {
    std::vector<std::string> row = {region_name(truth)};
    for (const auto predicted : all_regions())
      row.push_back(std::to_string(
          confusion[static_cast<int>(truth)][static_cast<int>(predicted)]));
    table.add_row(row);
  }
  std::cout << table.render() << "\n";
  std::cout << "cross-city land-use inference accuracy: "
            << format_double(100.0 * static_cast<double>(correct) /
                                 static_cast<double>(folded_b.size()),
                             2)
            << "%\n";
  std::cout << "\nTakeaway: the five patterns are city-independent "
               "templates — traffic shape alone reveals land use.\n";
  return 0;
}
