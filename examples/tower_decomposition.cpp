// Tower decomposition: the paper's §5.3 component analysis as a tool —
// given any tower, report what mix of urban functions the area around it
// serves, from its traffic alone.
//
//   $ ./tower_decomposition [n_towers] [seed] [tower_id]
#include <cstdlib>
#include <iostream>

#include "core/cellscope.h"

int main(int argc, char** argv) {
  using namespace cellscope;

  ExperimentConfig config;
  config.n_towers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2015;

  const auto experiment = Experiment::run(config);
  const auto& features = experiment.freq_features();
  const auto& reps = experiment.representatives();

  std::array<std::array<double, 3>, 4> primaries;
  for (int r = 0; r < 4; ++r) primaries[r] = features[reps[r]].qp_feature();

  // Which tower? Default: the first comprehensive tower.
  std::size_t row;
  if (argc > 3) {
    row = experiment.matrix().row_of(
        static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10)));
  } else {
    row = experiment
              .rows_of_cluster(*experiment.cluster_of_region(
                  FunctionalRegion::kComprehensive))
              .front();
  }
  const auto& tower = experiment.towers()[row];

  std::cout << "Tower " << experiment.matrix().tower_ids[row] << " at ("
            << format_double(tower.position.lat, 4) << ", "
            << format_double(tower.position.lon, 4) << "), address "
            << tower.address << "\n\n";

  // Frequency features and decomposition.
  const auto& f = features[row];
  std::cout << "frequency features: A_week="
            << format_double(f.amp_week, 3)
            << " A_day=" << format_double(f.amp_day, 3)
            << " P_day=" << format_double(f.phase_day, 3)
            << " A_half=" << format_double(f.amp_half_day, 3) << "\n\n";

  const auto decomposition = decompose_feature(f.qp_feature(), primaries);
  std::vector<std::string> labels;
  std::vector<double> weights;
  for (int r = 0; r < 4; ++r) {
    labels.push_back(region_name(static_cast<FunctionalRegion>(r)));
    weights.push_back(decomposition.coefficients[r]);
  }
  std::cout << bar_chart(labels, weights,
                         "urban-function mix inferred from traffic "
                         "(convex decomposition)",
                         40)
            << "residual " << format_double(decomposition.residual, 3)
            << "\n\n";

  // Cross-check 1: POI composition around the tower.
  const auto counts = experiment.pois().counts_near(tower.position,
                                                    kPoiRadiusM);
  std::vector<double> poi_values;
  for (int t = 0; t < kNumPoiTypes; ++t)
    poi_values.push_back(static_cast<double>(counts[t]));
  std::cout << bar_chart(labels, poi_values, "POI counts within 200 m", 40)
            << "\n";

  // Cross-check 2: the latent generator mixture (ground truth only the
  // synthetic city has).
  const auto& latent =
      experiment.intensity().model(experiment.matrix().tower_ids[row])
          .mixture;
  std::vector<double> latent_values(latent.begin(), latent.end());
  std::cout << bar_chart(labels, latent_values,
                         "latent traffic mixture (synthetic ground truth)",
                         40)
            << "\n";

  // The tower's week, against its convex reconstruction.
  std::array<std::vector<double>, 4> primary_series;
  for (int r = 0; r < 4; ++r)
    primary_series[r] = experiment.zscored()[reps[r]];
  const auto combined =
      combine_series(decomposition.coefficients, primary_series);
  const auto& own = experiment.zscored()[row];
  std::vector<double> own_week(own.begin(),
                               own.begin() + TimeGrid::kSlotsPerWeek);
  std::vector<double> combined_week(
      combined.begin(), combined.begin() + TimeGrid::kSlotsPerWeek);
  LineChartOptions options;
  options.title = "tower traffic vs its convex reconstruction (one week, "
                  "z-scored)";
  options.series_names = {"tower", "reconstruction"};
  options.height = 12;
  std::cout << line_chart({own_week, combined_week}, options);
  std::cout << "time-domain correlation: "
            << format_double(pearson(own, combined), 3) << "\n";
  return 0;
}
