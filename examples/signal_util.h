// Graceful-shutdown plumbing shared by the long-running example
// binaries (stream_replay, cellscoped).
//
// A signal handler may only touch lock-free state, so SIGINT/SIGTERM do
// nothing but set an atomic flag; the main loop polls stop_requested()
// at batch/round granularity and runs the orderly exit path itself —
// final drain, checkpoint flush, run report — instead of dying mid-write
// with a torn snapshot on disk.
#pragma once

#include <atomic>
#include <csignal>

namespace cellscope::examples {

inline std::atomic<bool>& stop_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

inline bool stop_requested() {
  return stop_flag().load(std::memory_order_acquire);
}

/// Routes SIGINT and SIGTERM to the stop flag. Call once, early in main.
inline void install_stop_handlers() {
  auto handler = [](int) {
    stop_flag().store(true, std::memory_order_release);
  };
  std::signal(SIGINT, handler);
  std::signal(SIGTERM, handler);
}

}  // namespace cellscope::examples
