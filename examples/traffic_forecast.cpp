// Traffic forecasting: the paper's user-facing motivation — "mobile users
// ... can choose towers with predicted lower traffic and enjoy better
// services" (§1). Forecast every tower's next week, then answer a user
// query: which nearby tower will be least loaded at a given hour?
//
//   $ ./traffic_forecast [n_towers] [seed]
#include <cstdlib>
#include <iostream>

#include "core/cellscope.h"

int main(int argc, char** argv) {
  using namespace cellscope;

  ExperimentConfig config;
  config.n_towers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2015;

  std::cout << "Traffic forecast: predict week 4 from weeks 1-3, then pick "
               "the least-loaded nearby tower\n\n";
  const auto experiment = Experiment::run(config);

  const std::size_t train = 3 * TimeGrid::kSlotsPerWeek;
  const std::size_t test = TimeGrid::kSlotsPerWeek;

  // Forecast every tower's week 4 spectrally; collect accuracy.
  std::vector<std::vector<double>> forecasts(experiment.matrix().n());
  double smape_total = 0.0;
  for (std::size_t row = 0; row < experiment.matrix().n(); ++row) {
    const auto& series = experiment.matrix().rows[row];
    const std::span<const double> history(series.data(), train);
    forecasts[row] = spectral_forecast(history, test);
    smape_total += smape(
        std::span<const double>(series.data() + train, test), forecasts[row]);
  }
  std::cout << "mean sMAPE of the week-4 forecast over "
            << experiment.matrix().n() << " towers: "
            << format_double(smape_total /
                                 static_cast<double>(experiment.matrix().n()),
                             3)
            << "\n\n";

  // A user at the city center on Thursday at 18:00 of week 4: rank the
  // five nearest towers by *predicted* load and check the pick against
  // the actual week-4 traffic.
  const LatLon user = experiment.city().box().center();
  std::vector<LatLon> positions;
  for (const auto& t : experiment.towers()) positions.push_back(t.position);
  const SpatialIndex index(experiment.city().box(), positions);
  std::vector<std::size_t> nearby;
  for (double radius = 1000.0; nearby.size() < 5; radius *= 2.0)
    nearby = index.query_radius(user, radius);
  if (nearby.size() > 5) nearby.resize(5);

  const std::size_t query_slot =
      static_cast<std::size_t>(TimeGrid::slot_at(3, 18, 0)) %
      static_cast<std::size_t>(TimeGrid::kSlotsPerWeek);

  TextTable table("five nearest towers, Thursday 18:00 (week 4)");
  table.set_header({"tower", "pattern", "predicted load", "actual load"});
  std::size_t best_predicted = nearby.front();
  std::size_t best_actual = nearby.front();
  double best_predicted_value = 1e300;
  double best_actual_value = 1e300;
  for (const auto row : nearby) {
    const double predicted = forecasts[row][query_slot];
    const double actual =
        experiment.matrix().rows[row][train + query_slot];
    if (predicted < best_predicted_value) {
      best_predicted_value = predicted;
      best_predicted = row;
    }
    if (actual < best_actual_value) {
      best_actual_value = actual;
      best_actual = row;
    }
    const auto cluster = static_cast<std::size_t>(experiment.labels()[row]);
    table.add_row(
        {std::to_string(experiment.matrix().tower_ids[row]),
         region_name(experiment.labeling().region_of_cluster[cluster]),
         format_bytes(predicted) + "/10min", format_bytes(actual) + "/10min"});
  }
  std::cout << table.render() << "\n";
  std::cout << "recommended tower (predicted): "
            << experiment.matrix().tower_ids[best_predicted]
            << "; truly least loaded: "
            << experiment.matrix().tower_ids[best_actual]
            << (best_predicted == best_actual ? "  — correct pick"
                                              : "  — near miss")
            << "\n";
  return 0;
}
