// Quickstart: run the full CellScope pipeline on a synthetic city and
// print what the paper's system would report — the discovered traffic
// patterns, their urban-function labels, and how well the labels match the
// (latent) ground truth.
//
//   $ ./quickstart [n_towers] [seed]
#include <cstdlib>
#include <iostream>

#include "core/cellscope.h"

int main(int argc, char** argv) {
  using namespace cellscope;

  ExperimentConfig config;
  config.n_towers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2015;

  std::cout << "CellScope quickstart: " << config.n_towers
            << " towers, seed " << config.seed << "\n\n";

  const Experiment experiment = Experiment::run(config);

  // The metric tuner's verdict.
  std::cout << "Davies-Bouldin sweep (the metric tuner):\n";
  for (const auto& point : experiment.dbi_sweep_result()) {
    std::cout << "  k=" << point.k << "  threshold=" << point.threshold
              << "  DBI=" << point.dbi
              << (point.k == experiment.chosen_cut().k ? "   <- chosen"
                                                       : "")
              << "\n";
  }
  std::cout << "\nIdentified " << experiment.n_clusters()
            << " traffic patterns.\n\n";

  // Cluster shares and labels (the paper's Table 1).
  TextTable table("Clusters and their urban-function labels");
  table.set_header({"cluster", "label", "towers", "share"});
  for (std::size_t c = 0; c < experiment.n_clusters(); ++c) {
    const auto rows = experiment.rows_of_cluster(c);
    table.add_row(
        {std::to_string(c + 1),
         region_name(experiment.labeling().region_of_cluster[c]),
         std::to_string(rows.size()),
         format_double(100.0 * static_cast<double>(rows.size()) /
                           static_cast<double>(config.n_towers),
                       2) +
             "%"});
  }
  std::cout << table.render() << "\n";

  std::cout << "Label accuracy vs latent ground truth: "
            << format_double(100.0 * experiment.validation().accuracy, 2)
            << "%\n\n";

  // One day of each pattern, normalized.
  for (std::size_t c = 0; c < experiment.n_clusters(); ++c) {
    const auto aggregate = experiment.cluster_aggregate(c);
    const auto features = compute_time_features(aggregate);
    std::cout << "Pattern #" << c + 1 << " ("
              << region_name(experiment.labeling().region_of_cluster[c])
              << "): weekday peak at "
              << format_peak_time(features.weekday.peak_hour)
              << ", valley at "
              << format_peak_time(features.weekday.valley_hour)
              << ", weekday/weekend ratio "
              << format_double(features.weekday_weekend_ratio, 2) << "\n";
  }
  return 0;
}
