// Trace conversion / inspection tool for the columnar ingest path
// (README "Full-scale ingest").
//
//   trace_convert synth <out> [--records=N] [--towers=N] [--seed=S]
//       generate a synthetic trace (codec by extension: .csv or .ctb/.bin)
//   trace_convert convert <in> <out> [--chunk=N]
//       re-encode a trace between codecs, streaming (out-of-core)
//   trace_convert merge <out> <in1> <in2> [...]
//       concatenate columnar traces by verbatim chunk copy + index rebuild
//   trace_convert info <file>
//       print a columnar file's chunk index summary
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/time_grid.h"
#include "obs/timer.h"
#include "traffic/trace_codec.h"
#include "traffic/trace_mmap.h"

namespace {

using namespace cellscope;

std::uint64_t flag_u64(std::string_view arg, std::string_view name,
                       bool& matched) {
  if (!arg.starts_with(name) || arg.size() <= name.size() ||
      arg[name.size()] != '=')
    return 0;
  matched = true;
  return std::strtoull(std::string(arg.substr(name.size() + 1)).c_str(),
                       nullptr, 10);
}

int usage() {
  std::cerr << "usage:\n"
               "  trace_convert synth <out> [--records=N] [--towers=N]"
               " [--seed=S]\n"
               "  trace_convert convert <in> <out> [--chunk=N]\n"
               "  trace_convert merge <out> <in1> <in2> [...]\n"
               "  trace_convert info <file>\n";
  return 2;
}

int cmd_synth(const std::string& out, std::size_t n_records,
              std::uint32_t n_towers, std::uint64_t seed) {
  Rng rng(seed);
  constexpr std::uint64_t kGridMinutes =
      TimeGrid::kSlots * TimeGrid::kSlotMinutes;
  auto writer = open_trace_writer(out);
  obs::ScopedTimer timer;
  std::vector<TrafficLog> batch;
  const std::size_t kBatch = 65536;
  batch.reserve(kBatch);
  for (std::size_t i = 0; i < n_records; ++i) {
    TrafficLog log;
    log.user_id = static_cast<std::uint64_t>(rng.uniform_int(0, 999999));
    log.tower_id = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_towers) - 1));
    const auto base = i * kGridMinutes / n_records;
    log.start_minute = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        kGridMinutes - 1,
        base + static_cast<std::uint64_t>(rng.uniform_int(0, 30))));
    log.end_minute =
        log.start_minute + static_cast<std::uint32_t>(rng.uniform_int(0, 15));
    log.bytes = static_cast<std::uint64_t>(rng.uniform_int(100, 200000));
    batch.push_back(std::move(log));
    if (batch.size() == kBatch) {
      writer->append(batch);
      batch.clear();
    }
  }
  writer->append(batch);
  writer->finish();
  std::cout << out << ": " << n_records << " records over " << n_towers
            << " towers in " << timer.elapsed_ms() << " ms\n";
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out,
                std::size_t chunk_records) {
  auto reader = open_trace_reader(in);
  auto writer = open_trace_writer(out, TraceCodec::kAuto, chunk_records);
  obs::ScopedTimer timer;
  std::uint64_t records = 0;
  std::vector<TrafficLog> batch;
  while (reader->next_batch(batch)) {
    writer->append(batch);
    records += batch.size();
  }
  writer->finish();
  const double ms = timer.elapsed_ms();
  std::cout << in << " -> " << out << ": " << records << " records in " << ms
            << " ms ("
            << static_cast<std::uint64_t>(ms > 0.0 ? records / (ms / 1e3) : 0)
            << " rec/s)\n";
  return 0;
}

int cmd_merge(const std::string& out, const std::vector<std::string>& inputs) {
  obs::ScopedTimer timer;
  const std::uint64_t records = merge_trace_bin(inputs, out);
  std::cout << out << ": merged " << inputs.size() << " files, " << records
            << " records in " << timer.elapsed_ms() << " ms\n";
  return 0;
}

int cmd_info(const std::string& path) {
  MmapTraceReader reader(path);
  std::cout << path << ": " << reader.record_count() << " records in "
            << reader.chunk_count() << " chunks, " << reader.bytes_mapped()
            << " bytes\n";
  const std::size_t show = std::min<std::size_t>(reader.chunk_count(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& entry = reader.chunk(i);
    std::cout << "  chunk " << i << ": offset " << entry.offset << ", "
              << entry.n_records << " records, towers [" << entry.min_tower
              << ", " << entry.max_tower << "], minutes [" << entry.min_minute
              << ", " << entry.max_minute << "]\n";
  }
  if (show < reader.chunk_count())
    std::cout << "  ... " << reader.chunk_count() - show << " more chunks\n";

  // Footer-index summary over every chunk (not just the ones shown): the
  // operator's sanity check before pointing the daemon at this file.
  if (reader.chunk_count() > 0) {
    std::uint32_t min_tower = reader.chunk(0).min_tower;
    std::uint32_t max_tower = reader.chunk(0).max_tower;
    std::uint64_t min_minute = reader.chunk(0).min_minute;
    std::uint64_t max_minute = reader.chunk(0).max_minute;
    for (std::size_t i = 1; i < reader.chunk_count(); ++i) {
      const auto& entry = reader.chunk(i);
      min_tower = std::min(min_tower, entry.min_tower);
      max_tower = std::max(max_tower, entry.max_tower);
      min_minute = std::min<std::uint64_t>(min_minute, entry.min_minute);
      max_minute = std::max<std::uint64_t>(max_minute, entry.max_minute);
    }
    std::cout << "index summary: " << reader.chunk_count()
              << " chunks, towers [" << min_tower << ", " << max_tower
              << "], minutes [" << min_minute << ", " << max_minute
              << "]\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view command = argv[1];
  std::vector<std::string> positional;
  std::size_t records = 1'000'000;
  std::uint32_t towers = 9600;
  std::uint64_t seed = 42;
  std::size_t chunk = columnar::kDefaultChunkRecords;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    bool matched = false;
    if (auto v = flag_u64(arg, "--records", matched); matched) records = v;
    else if (auto v = flag_u64(arg, "--towers", matched); matched)
      towers = static_cast<std::uint32_t>(v);
    else if (auto v = flag_u64(arg, "--seed", matched); matched) seed = v;
    else if (auto v = flag_u64(arg, "--chunk", matched); matched) chunk = v;
    else if (arg.starts_with("--")) {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    } else {
      positional.emplace_back(arg);
    }
  }

  try {
    if (command == "synth" && positional.size() == 1)
      return cmd_synth(positional[0], records, towers, seed);
    if (command == "convert" && positional.size() == 2)
      return cmd_convert(positional[0], positional[1], chunk);
    if (command == "merge" && positional.size() >= 3)
      return cmd_merge(positional[0],
                       {positional.begin() + 1, positional.end()});
    if (command == "info" && positional.size() == 1)
      return cmd_info(positional[0]);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
