// Live stream replay — the hands-on harness for the introspection plane.
//
// Trains a model on a synthetic city, then replays a synthetic record
// feed through the streaming ingestor round after round, each round one
// 4-week grid further along in event time so the watermark keeps
// advancing. While it runs, the embedded stats server (set
// CELLSCOPE_INTROSPECT_PORT) serves /metrics, /metrics.json, /healthz,
// and /stream for curl; see README "Watching a live run".
//
//   $ CELLSCOPE_INTROSPECT_PORT=9090 ./stream_replay --rounds=20 --pause-ms=1000
//
// Flags (all optional):
//   --towers=N              city size (default 400)
//   --records=N             records per round (default 1000000)
//   --rounds=N              replay rounds (default 4)
//   --batch=N               offer_batch size (default 8192)
//   --skew=N                arrival-order reorder radius (default 64)
//   --late=F                late-tail fraction in [0,1] (default 0.01)
//   --classify-every=N      classify pass cadence in batches (default 16)
//   --pause-ms=N            sleep between rounds (default 500)
//   --metrics-interval-ms=N periodic metrics scrape cadence (default off)
//   --metrics-jsonl=PATH    scrape destination (JSONL, appended)
//   --trace=PATH            replay this trace file (.csv or .ctb/.bin)
//                           instead of a synthetic feed; one pass,
//                           out-of-core (README "Full-scale ingest")
//   --offer                 with --trace on a columnar file: go through
//                           offer_batch/drain instead of the fused bulk
//                           ingest path
//   --checkpoint=PATH       flush a final stream snapshot here on exit —
//                           including a SIGINT/SIGTERM exit, which stops
//                           at the next round boundary instead of dying
//                           mid-write
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/time_grid.h"
#include "core/cellscope.h"
#include "mapred/thread_pool.h"
#include "obs/introspect.h"
#include "obs/report.h"
#include "signal_util.h"
#include "stream/ingestor.h"
#include "stream/online_classifier.h"
#include "stream/replay.h"
#include "stream/snapshot.h"

namespace {

using namespace cellscope;

std::uint64_t flag_u64(std::string_view arg, std::string_view name,
                       bool& matched) {
  if (!arg.starts_with(name) || arg.size() <= name.size() ||
      arg[name.size()] != '=')
    return 0;
  matched = true;
  return std::strtoull(std::string(arg.substr(name.size() + 1)).c_str(),
                       nullptr, 10);
}

std::vector<TrafficLog> synthetic_logs(std::size_t n_records,
                                       std::uint32_t n_towers,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TrafficLog> logs;
  logs.reserve(n_records);
  constexpr std::uint64_t kGridMinutes =
      TimeGrid::kSlots * TimeGrid::kSlotMinutes;
  for (std::size_t i = 0; i < n_records; ++i) {
    TrafficLog log;
    log.user_id = static_cast<std::uint64_t>(rng.uniform_int(0, 99999));
    log.tower_id = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_towers) - 1));
    const auto base = i * kGridMinutes / n_records;
    log.start_minute = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kGridMinutes - 1,
                                base + static_cast<std::uint64_t>(
                                           rng.uniform_int(0, 30))));
    log.end_minute = log.start_minute +
                     static_cast<std::uint32_t>(rng.uniform_int(0, 15));
    log.bytes = static_cast<std::uint64_t>(rng.uniform_int(100, 200000));
    logs.push_back(log);
  }
  return logs;
}

/// The SIGINT/SIGTERM (and normal-exit) epilogue: drain what's pending,
/// flush the checkpoint if one was requested, and let the armed run
/// report write on exit — never die mid-write.
void finish_run(const std::string& checkpoint_path, StreamIngestor& ingestor,
                ThreadPool& pool, bool interrupted) {
  if (interrupted) std::cout << "\nstop requested; flushing...\n";
  ingestor.drain(pool);
  if (!checkpoint_path.empty()) {
    const SnapshotInfo info = write_snapshot(checkpoint_path, ingestor);
    std::cout << "checkpoint " << checkpoint_path << ": " << info.towers
              << " towers, " << info.bins << " bins, " << info.bytes
              << " bytes\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_towers = 400;
  std::size_t n_records = 1'000'000;
  std::size_t rounds = 4;
  std::size_t pause_ms = 500;
  std::string trace_path;
  std::string checkpoint_path;
  bool bulk = true;
  ReplayOptions options;
  options.skew_window = 64;
  options.late_fraction = 0.01;
  options.classify_every_batches = 16;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    bool matched = false;
    if (auto v = flag_u64(arg, "--towers", matched); matched) n_towers = v;
    else if (auto v = flag_u64(arg, "--records", matched); matched)
      n_records = v;
    else if (auto v = flag_u64(arg, "--rounds", matched); matched) rounds = v;
    else if (auto v = flag_u64(arg, "--batch", matched); matched)
      options.batch_size = v;
    else if (auto v = flag_u64(arg, "--skew", matched); matched)
      options.skew_window = v;
    else if (auto v = flag_u64(arg, "--classify-every", matched); matched)
      options.classify_every_batches = v;
    else if (auto v = flag_u64(arg, "--pause-ms", matched); matched)
      pause_ms = v;
    else if (auto v = flag_u64(arg, "--metrics-interval-ms", matched);
             matched)
      options.metrics_interval_ms = static_cast<std::uint32_t>(v);
    else if (arg.starts_with("--metrics-jsonl="))
      options.metrics_jsonl_path = arg.substr(16);
    else if (arg.starts_with("--trace="))
      trace_path = arg.substr(8);
    else if (arg.starts_with("--checkpoint="))
      checkpoint_path = arg.substr(13);
    else if (arg == "--offer")
      bulk = false;
    else if (arg.starts_with("--late="))
      options.late_fraction = std::strtod(arg.substr(7).data(), nullptr);
    else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }

  examples::install_stop_handlers();
  obs::arm_run_report("stream_replay");  // no-op unless CELLSCOPE_RUN_REPORT

  if (obs::IntrospectionServer::maybe_start_from_env()) {
    std::cout << "introspection server on http://127.0.0.1:"
              << obs::IntrospectionServer::instance().port()
              << "  (/metrics /metrics.json /healthz /stream)\n";
  } else {
    std::cout << "introspection server off "
                 "(set CELLSCOPE_INTROSPECT_PORT to enable)\n";
  }

  std::cout << "training model on " << n_towers << " towers...\n";
  ExperimentConfig config;
  config.n_towers = n_towers;
  const Experiment experiment = Experiment::run(config);
  const OnlineClassifier classifier(snapshot_model(experiment));

  ThreadPool pool(configured_thread_count());
  StreamIngestor ingestor(StreamConfig::from_env());

  if (!trace_path.empty()) {
    // File replay: one out-of-core pass through the codec layer; the
    // whole trace never materializes in memory.
    FileReplayOptions file_options;
    file_options.bulk = bulk;
    file_options.batch_size = options.batch_size;
    file_options.classify_every_batches = options.classify_every_batches;
    const ReplayStats stats = replay_trace_file(trace_path, ingestor, pool,
                                                file_options, &classifier);
    const IngestStats ingest = stats.ingest;
    std::cout << trace_path << ": " << stats.records << " records in "
              << stats.wall_ms << " ms ("
              << static_cast<std::uint64_t>(stats.records_per_sec)
              << " rec/s, " << (bulk ? "bulk" : "offer")
              << " path), watermark " << ingest.watermark_minute << " (low "
              << ingest.low_watermark_minute << "), late " << ingest.late
              << ", dropped " << ingest.dropped << ", classify passes "
              << stats.classify_passes << "\n";
    std::cout << "final shard view:\n" << ingestor.status_json() << "\n";
    finish_run(checkpoint_path, ingestor, pool, examples::stop_requested());
    return 0;
  }

  const auto base_logs =
      synthetic_logs(n_records, static_cast<std::uint32_t>(n_towers), 4321);
  constexpr std::uint64_t kGridMinutes =
      TimeGrid::kSlots * TimeGrid::kSlotMinutes;

  for (std::size_t round = 0;
       round < rounds && !examples::stop_requested(); ++round) {
    // Each round replays the same feed one full grid later, so event time
    // (and the watermark) advances monotonically across rounds.
    std::vector<TrafficLog> logs = base_logs;
    const auto shift =
        static_cast<std::uint32_t>(round * kGridMinutes);
    for (auto& log : logs) {
      log.start_minute += shift;
      log.end_minute += shift;
    }
    options.seed = 99 + round;
    logs = perturb_arrival_order(std::move(logs), options);
    const ReplayStats stats =
        replay_trace(logs, ingestor, pool, options, &classifier);
    const IngestStats ingest = stats.ingest;
    std::cout << "round " << round + 1 << "/" << rounds << ": "
              << stats.records << " records in " << stats.wall_ms << " ms ("
              << static_cast<std::uint64_t>(stats.records_per_sec)
              << " rec/s), watermark " << ingest.watermark_minute
              << " (low " << ingest.low_watermark_minute << "), late "
              << ingest.late << ", dropped " << ingest.dropped
              << ", classify passes " << stats.classify_passes << "\n";
    if (pause_ms > 0 && round + 1 < rounds)
      std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
  }

  std::cout << "done; final shard view:\n" << ingestor.status_json() << "\n";
  finish_run(checkpoint_path, ingestor, pool, examples::stop_requested());
  return 0;
}
