# Empty dependencies file for cs_opt.
# This may be replaced when dependencies are built.
