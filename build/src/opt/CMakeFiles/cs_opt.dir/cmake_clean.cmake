file(REMOVE_RECURSE
  "CMakeFiles/cs_opt.dir/linalg.cpp.o"
  "CMakeFiles/cs_opt.dir/linalg.cpp.o.d"
  "CMakeFiles/cs_opt.dir/simplex_ls.cpp.o"
  "CMakeFiles/cs_opt.dir/simplex_ls.cpp.o.d"
  "libcs_opt.a"
  "libcs_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
