file(REMOVE_RECURSE
  "libcs_opt.a"
)
