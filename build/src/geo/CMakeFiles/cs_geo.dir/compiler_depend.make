# Empty compiler generated dependencies file for cs_geo.
# This may be replaced when dependencies are built.
