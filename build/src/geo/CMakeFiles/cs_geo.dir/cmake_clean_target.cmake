file(REMOVE_RECURSE
  "libcs_geo.a"
)
