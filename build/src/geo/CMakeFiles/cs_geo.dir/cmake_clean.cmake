file(REMOVE_RECURSE
  "CMakeFiles/cs_geo.dir/density_grid.cpp.o"
  "CMakeFiles/cs_geo.dir/density_grid.cpp.o.d"
  "CMakeFiles/cs_geo.dir/geocoder.cpp.o"
  "CMakeFiles/cs_geo.dir/geocoder.cpp.o.d"
  "CMakeFiles/cs_geo.dir/latlon.cpp.o"
  "CMakeFiles/cs_geo.dir/latlon.cpp.o.d"
  "CMakeFiles/cs_geo.dir/spatial_index.cpp.o"
  "CMakeFiles/cs_geo.dir/spatial_index.cpp.o.d"
  "libcs_geo.a"
  "libcs_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
