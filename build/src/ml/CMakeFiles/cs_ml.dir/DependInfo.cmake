
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/distance.cpp" "src/ml/CMakeFiles/cs_ml.dir/distance.cpp.o" "gcc" "src/ml/CMakeFiles/cs_ml.dir/distance.cpp.o.d"
  "/root/repo/src/ml/hierarchical.cpp" "src/ml/CMakeFiles/cs_ml.dir/hierarchical.cpp.o" "gcc" "src/ml/CMakeFiles/cs_ml.dir/hierarchical.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/cs_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/cs_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/validity.cpp" "src/ml/CMakeFiles/cs_ml.dir/validity.cpp.o" "gcc" "src/ml/CMakeFiles/cs_ml.dir/validity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
