file(REMOVE_RECURSE
  "CMakeFiles/cs_ml.dir/distance.cpp.o"
  "CMakeFiles/cs_ml.dir/distance.cpp.o.d"
  "CMakeFiles/cs_ml.dir/hierarchical.cpp.o"
  "CMakeFiles/cs_ml.dir/hierarchical.cpp.o.d"
  "CMakeFiles/cs_ml.dir/kmeans.cpp.o"
  "CMakeFiles/cs_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/cs_ml.dir/validity.cpp.o"
  "CMakeFiles/cs_ml.dir/validity.cpp.o.d"
  "libcs_ml.a"
  "libcs_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
