file(REMOVE_RECURSE
  "libcs_ml.a"
)
