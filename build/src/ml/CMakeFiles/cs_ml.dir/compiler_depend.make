# Empty compiler generated dependencies file for cs_ml.
# This may be replaced when dependencies are built.
