# Empty compiler generated dependencies file for cs_dsp.
# This may be replaced when dependencies are built.
