file(REMOVE_RECURSE
  "libcs_dsp.a"
)
