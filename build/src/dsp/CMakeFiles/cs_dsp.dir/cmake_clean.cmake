file(REMOVE_RECURSE
  "CMakeFiles/cs_dsp.dir/fft.cpp.o"
  "CMakeFiles/cs_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/cs_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/cs_dsp.dir/spectrum.cpp.o.d"
  "libcs_dsp.a"
  "libcs_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
