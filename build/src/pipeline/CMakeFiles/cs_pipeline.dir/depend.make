# Empty dependencies file for cs_pipeline.
# This may be replaced when dependencies are built.
