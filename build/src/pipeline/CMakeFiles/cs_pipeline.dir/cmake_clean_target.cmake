file(REMOVE_RECURSE
  "libcs_pipeline.a"
)
