file(REMOVE_RECURSE
  "CMakeFiles/cs_pipeline.dir/cleaner.cpp.o"
  "CMakeFiles/cs_pipeline.dir/cleaner.cpp.o.d"
  "CMakeFiles/cs_pipeline.dir/density.cpp.o"
  "CMakeFiles/cs_pipeline.dir/density.cpp.o.d"
  "CMakeFiles/cs_pipeline.dir/traffic_matrix.cpp.o"
  "CMakeFiles/cs_pipeline.dir/traffic_matrix.cpp.o.d"
  "CMakeFiles/cs_pipeline.dir/vectorizer.cpp.o"
  "CMakeFiles/cs_pipeline.dir/vectorizer.cpp.o.d"
  "libcs_pipeline.a"
  "libcs_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
