
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/cleaner.cpp" "src/pipeline/CMakeFiles/cs_pipeline.dir/cleaner.cpp.o" "gcc" "src/pipeline/CMakeFiles/cs_pipeline.dir/cleaner.cpp.o.d"
  "/root/repo/src/pipeline/density.cpp" "src/pipeline/CMakeFiles/cs_pipeline.dir/density.cpp.o" "gcc" "src/pipeline/CMakeFiles/cs_pipeline.dir/density.cpp.o.d"
  "/root/repo/src/pipeline/traffic_matrix.cpp" "src/pipeline/CMakeFiles/cs_pipeline.dir/traffic_matrix.cpp.o" "gcc" "src/pipeline/CMakeFiles/cs_pipeline.dir/traffic_matrix.cpp.o.d"
  "/root/repo/src/pipeline/vectorizer.cpp" "src/pipeline/CMakeFiles/cs_pipeline.dir/vectorizer.cpp.o" "gcc" "src/pipeline/CMakeFiles/cs_pipeline.dir/vectorizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traffic/CMakeFiles/cs_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/cs_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/city/CMakeFiles/cs_city.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
