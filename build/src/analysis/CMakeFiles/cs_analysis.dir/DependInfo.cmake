
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/commute_flows.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/commute_flows.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/commute_flows.cpp.o.d"
  "/root/repo/src/analysis/component_analysis.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/component_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/component_analysis.cpp.o.d"
  "/root/repo/src/analysis/freq_features.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/freq_features.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/freq_features.cpp.o.d"
  "/root/repo/src/analysis/labeling.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/labeling.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/labeling.cpp.o.d"
  "/root/repo/src/analysis/poi_features.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/poi_features.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/poi_features.cpp.o.d"
  "/root/repo/src/analysis/time_features.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/time_features.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/time_features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/cs_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/cs_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cs_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/city/CMakeFiles/cs_city.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/cs_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/cs_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cs_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
