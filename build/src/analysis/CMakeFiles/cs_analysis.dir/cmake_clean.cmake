file(REMOVE_RECURSE
  "CMakeFiles/cs_analysis.dir/commute_flows.cpp.o"
  "CMakeFiles/cs_analysis.dir/commute_flows.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/component_analysis.cpp.o"
  "CMakeFiles/cs_analysis.dir/component_analysis.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/freq_features.cpp.o"
  "CMakeFiles/cs_analysis.dir/freq_features.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/labeling.cpp.o"
  "CMakeFiles/cs_analysis.dir/labeling.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/poi_features.cpp.o"
  "CMakeFiles/cs_analysis.dir/poi_features.cpp.o.d"
  "CMakeFiles/cs_analysis.dir/time_features.cpp.o"
  "CMakeFiles/cs_analysis.dir/time_features.cpp.o.d"
  "libcs_analysis.a"
  "libcs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
