file(REMOVE_RECURSE
  "libcs_city.a"
)
