file(REMOVE_RECURSE
  "CMakeFiles/cs_city.dir/city_model.cpp.o"
  "CMakeFiles/cs_city.dir/city_model.cpp.o.d"
  "CMakeFiles/cs_city.dir/deployment.cpp.o"
  "CMakeFiles/cs_city.dir/deployment.cpp.o.d"
  "CMakeFiles/cs_city.dir/functional_region.cpp.o"
  "CMakeFiles/cs_city.dir/functional_region.cpp.o.d"
  "CMakeFiles/cs_city.dir/poi.cpp.o"
  "CMakeFiles/cs_city.dir/poi.cpp.o.d"
  "libcs_city.a"
  "libcs_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
