
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/city/city_model.cpp" "src/city/CMakeFiles/cs_city.dir/city_model.cpp.o" "gcc" "src/city/CMakeFiles/cs_city.dir/city_model.cpp.o.d"
  "/root/repo/src/city/deployment.cpp" "src/city/CMakeFiles/cs_city.dir/deployment.cpp.o" "gcc" "src/city/CMakeFiles/cs_city.dir/deployment.cpp.o.d"
  "/root/repo/src/city/functional_region.cpp" "src/city/CMakeFiles/cs_city.dir/functional_region.cpp.o" "gcc" "src/city/CMakeFiles/cs_city.dir/functional_region.cpp.o.d"
  "/root/repo/src/city/poi.cpp" "src/city/CMakeFiles/cs_city.dir/poi.cpp.o" "gcc" "src/city/CMakeFiles/cs_city.dir/poi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/cs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
