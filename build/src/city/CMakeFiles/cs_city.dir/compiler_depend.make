# Empty compiler generated dependencies file for cs_city.
# This may be replaced when dependencies are built.
