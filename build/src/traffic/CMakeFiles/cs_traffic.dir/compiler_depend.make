# Empty compiler generated dependencies file for cs_traffic.
# This may be replaced when dependencies are built.
