file(REMOVE_RECURSE
  "libcs_traffic.a"
)
