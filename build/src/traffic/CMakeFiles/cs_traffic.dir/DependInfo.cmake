
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/intensity_model.cpp" "src/traffic/CMakeFiles/cs_traffic.dir/intensity_model.cpp.o" "gcc" "src/traffic/CMakeFiles/cs_traffic.dir/intensity_model.cpp.o.d"
  "/root/repo/src/traffic/mobility.cpp" "src/traffic/CMakeFiles/cs_traffic.dir/mobility.cpp.o" "gcc" "src/traffic/CMakeFiles/cs_traffic.dir/mobility.cpp.o.d"
  "/root/repo/src/traffic/mobility_trace.cpp" "src/traffic/CMakeFiles/cs_traffic.dir/mobility_trace.cpp.o" "gcc" "src/traffic/CMakeFiles/cs_traffic.dir/mobility_trace.cpp.o.d"
  "/root/repo/src/traffic/profiles.cpp" "src/traffic/CMakeFiles/cs_traffic.dir/profiles.cpp.o" "gcc" "src/traffic/CMakeFiles/cs_traffic.dir/profiles.cpp.o.d"
  "/root/repo/src/traffic/trace_generator.cpp" "src/traffic/CMakeFiles/cs_traffic.dir/trace_generator.cpp.o" "gcc" "src/traffic/CMakeFiles/cs_traffic.dir/trace_generator.cpp.o.d"
  "/root/repo/src/traffic/trace_io.cpp" "src/traffic/CMakeFiles/cs_traffic.dir/trace_io.cpp.o" "gcc" "src/traffic/CMakeFiles/cs_traffic.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/city/CMakeFiles/cs_city.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
