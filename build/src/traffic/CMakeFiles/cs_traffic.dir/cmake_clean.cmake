file(REMOVE_RECURSE
  "CMakeFiles/cs_traffic.dir/intensity_model.cpp.o"
  "CMakeFiles/cs_traffic.dir/intensity_model.cpp.o.d"
  "CMakeFiles/cs_traffic.dir/mobility.cpp.o"
  "CMakeFiles/cs_traffic.dir/mobility.cpp.o.d"
  "CMakeFiles/cs_traffic.dir/mobility_trace.cpp.o"
  "CMakeFiles/cs_traffic.dir/mobility_trace.cpp.o.d"
  "CMakeFiles/cs_traffic.dir/profiles.cpp.o"
  "CMakeFiles/cs_traffic.dir/profiles.cpp.o.d"
  "CMakeFiles/cs_traffic.dir/trace_generator.cpp.o"
  "CMakeFiles/cs_traffic.dir/trace_generator.cpp.o.d"
  "CMakeFiles/cs_traffic.dir/trace_io.cpp.o"
  "CMakeFiles/cs_traffic.dir/trace_io.cpp.o.d"
  "libcs_traffic.a"
  "libcs_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
