# Empty compiler generated dependencies file for cs_forecast.
# This may be replaced when dependencies are built.
