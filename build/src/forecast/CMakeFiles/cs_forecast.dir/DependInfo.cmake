
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/anomaly.cpp" "src/forecast/CMakeFiles/cs_forecast.dir/anomaly.cpp.o" "gcc" "src/forecast/CMakeFiles/cs_forecast.dir/anomaly.cpp.o.d"
  "/root/repo/src/forecast/metrics.cpp" "src/forecast/CMakeFiles/cs_forecast.dir/metrics.cpp.o" "gcc" "src/forecast/CMakeFiles/cs_forecast.dir/metrics.cpp.o.d"
  "/root/repo/src/forecast/pattern_forecaster.cpp" "src/forecast/CMakeFiles/cs_forecast.dir/pattern_forecaster.cpp.o" "gcc" "src/forecast/CMakeFiles/cs_forecast.dir/pattern_forecaster.cpp.o.d"
  "/root/repo/src/forecast/seasonal_naive.cpp" "src/forecast/CMakeFiles/cs_forecast.dir/seasonal_naive.cpp.o" "gcc" "src/forecast/CMakeFiles/cs_forecast.dir/seasonal_naive.cpp.o.d"
  "/root/repo/src/forecast/spectral_forecaster.cpp" "src/forecast/CMakeFiles/cs_forecast.dir/spectral_forecaster.cpp.o" "gcc" "src/forecast/CMakeFiles/cs_forecast.dir/spectral_forecaster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/cs_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/cs_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/cs_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/city/CMakeFiles/cs_city.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/cs_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cs_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
