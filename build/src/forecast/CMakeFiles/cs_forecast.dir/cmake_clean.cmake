file(REMOVE_RECURSE
  "CMakeFiles/cs_forecast.dir/anomaly.cpp.o"
  "CMakeFiles/cs_forecast.dir/anomaly.cpp.o.d"
  "CMakeFiles/cs_forecast.dir/metrics.cpp.o"
  "CMakeFiles/cs_forecast.dir/metrics.cpp.o.d"
  "CMakeFiles/cs_forecast.dir/pattern_forecaster.cpp.o"
  "CMakeFiles/cs_forecast.dir/pattern_forecaster.cpp.o.d"
  "CMakeFiles/cs_forecast.dir/seasonal_naive.cpp.o"
  "CMakeFiles/cs_forecast.dir/seasonal_naive.cpp.o.d"
  "CMakeFiles/cs_forecast.dir/spectral_forecaster.cpp.o"
  "CMakeFiles/cs_forecast.dir/spectral_forecaster.cpp.o.d"
  "libcs_forecast.a"
  "libcs_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
