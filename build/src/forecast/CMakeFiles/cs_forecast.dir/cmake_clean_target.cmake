file(REMOVE_RECURSE
  "libcs_forecast.a"
)
