file(REMOVE_RECURSE
  "libcs_mapred.a"
)
