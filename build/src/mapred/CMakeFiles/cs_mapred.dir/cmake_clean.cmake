file(REMOVE_RECURSE
  "CMakeFiles/cs_mapred.dir/thread_pool.cpp.o"
  "CMakeFiles/cs_mapred.dir/thread_pool.cpp.o.d"
  "libcs_mapred.a"
  "libcs_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
