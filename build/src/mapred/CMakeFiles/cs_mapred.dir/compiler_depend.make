# Empty compiler generated dependencies file for cs_mapred.
# This may be replaced when dependencies are built.
