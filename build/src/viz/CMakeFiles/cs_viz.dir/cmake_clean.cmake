file(REMOVE_RECURSE
  "CMakeFiles/cs_viz.dir/ascii_plot.cpp.o"
  "CMakeFiles/cs_viz.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/cs_viz.dir/figure_export.cpp.o"
  "CMakeFiles/cs_viz.dir/figure_export.cpp.o.d"
  "libcs_viz.a"
  "libcs_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
