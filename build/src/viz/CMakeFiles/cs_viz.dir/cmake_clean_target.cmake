file(REMOVE_RECURSE
  "libcs_viz.a"
)
