# Empty dependencies file for cs_viz.
# This may be replaced when dependencies are built.
