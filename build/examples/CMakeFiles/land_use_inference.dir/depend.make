# Empty dependencies file for land_use_inference.
# This may be replaced when dependencies are built.
