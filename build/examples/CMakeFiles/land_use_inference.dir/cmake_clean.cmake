file(REMOVE_RECURSE
  "CMakeFiles/land_use_inference.dir/land_use_inference.cpp.o"
  "CMakeFiles/land_use_inference.dir/land_use_inference.cpp.o.d"
  "land_use_inference"
  "land_use_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/land_use_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
