
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/land_use_inference.cpp" "examples/CMakeFiles/land_use_inference.dir/land_use_inference.cpp.o" "gcc" "examples/CMakeFiles/land_use_inference.dir/land_use_inference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/cs_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/cs_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/cs_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/cs_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/city/CMakeFiles/cs_city.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/cs_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/cs_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cs_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/cs_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
