file(REMOVE_RECURSE
  "CMakeFiles/tower_decomposition.dir/tower_decomposition.cpp.o"
  "CMakeFiles/tower_decomposition.dir/tower_decomposition.cpp.o.d"
  "tower_decomposition"
  "tower_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tower_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
