# Empty dependencies file for tower_decomposition.
# This may be replaced when dependencies are built.
