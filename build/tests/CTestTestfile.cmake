# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_city[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_mapred[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_forecast[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
