file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline.dir/pipeline/test_cleaner.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_cleaner.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_density.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_density.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_traffic_matrix.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_traffic_matrix.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_vectorizer.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_vectorizer.cpp.o.d"
  "test_pipeline"
  "test_pipeline.pdb"
  "test_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
