file(REMOVE_RECURSE
  "CMakeFiles/test_traffic.dir/traffic/test_intensity_model.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_intensity_model.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_mobility.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_mobility.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_profiles.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_profiles.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_trace_generator.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_trace_generator.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_trace_io.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_trace_io.cpp.o.d"
  "test_traffic"
  "test_traffic.pdb"
  "test_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
