file(REMOVE_RECURSE
  "CMakeFiles/test_city.dir/city/test_city_model.cpp.o"
  "CMakeFiles/test_city.dir/city/test_city_model.cpp.o.d"
  "CMakeFiles/test_city.dir/city/test_deployment.cpp.o"
  "CMakeFiles/test_city.dir/city/test_deployment.cpp.o.d"
  "CMakeFiles/test_city.dir/city/test_functional_region.cpp.o"
  "CMakeFiles/test_city.dir/city/test_functional_region.cpp.o.d"
  "CMakeFiles/test_city.dir/city/test_poi.cpp.o"
  "CMakeFiles/test_city.dir/city/test_poi.cpp.o.d"
  "test_city"
  "test_city.pdb"
  "test_city[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
