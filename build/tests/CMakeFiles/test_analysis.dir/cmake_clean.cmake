file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_commute_flows.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_commute_flows.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_component_analysis.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_component_analysis.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_freq_features.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_freq_features.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_labeling.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_labeling.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_poi_features.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_poi_features.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_time_features.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_time_features.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
