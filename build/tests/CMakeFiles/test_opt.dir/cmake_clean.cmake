file(REMOVE_RECURSE
  "CMakeFiles/test_opt.dir/opt/test_linalg.cpp.o"
  "CMakeFiles/test_opt.dir/opt/test_linalg.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/test_simplex_ls.cpp.o"
  "CMakeFiles/test_opt.dir/opt/test_simplex_ls.cpp.o.d"
  "test_opt"
  "test_opt.pdb"
  "test_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
