file(REMOVE_RECURSE
  "CMakeFiles/test_geo.dir/geo/test_density_grid.cpp.o"
  "CMakeFiles/test_geo.dir/geo/test_density_grid.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/test_geocoder.cpp.o"
  "CMakeFiles/test_geo.dir/geo/test_geocoder.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/test_latlon.cpp.o"
  "CMakeFiles/test_geo.dir/geo/test_latlon.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/test_spatial_index.cpp.o"
  "CMakeFiles/test_geo.dir/geo/test_spatial_index.cpp.o.d"
  "test_geo"
  "test_geo.pdb"
  "test_geo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
