# Empty compiler generated dependencies file for table1_cluster_shares.
# This may be replaced when dependencies are built.
