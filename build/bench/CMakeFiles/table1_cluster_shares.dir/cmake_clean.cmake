file(REMOVE_RECURSE
  "CMakeFiles/table1_cluster_shares.dir/table1_cluster_shares.cpp.o"
  "CMakeFiles/table1_cluster_shares.dir/table1_cluster_shares.cpp.o.d"
  "table1_cluster_shares"
  "table1_cluster_shares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cluster_shares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
