# Empty compiler generated dependencies file for ext_commute_flows.
# This may be replaced when dependencies are built.
