file(REMOVE_RECURSE
  "CMakeFiles/ext_commute_flows.dir/ext_commute_flows.cpp.o"
  "CMakeFiles/ext_commute_flows.dir/ext_commute_flows.cpp.o.d"
  "ext_commute_flows"
  "ext_commute_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_commute_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
