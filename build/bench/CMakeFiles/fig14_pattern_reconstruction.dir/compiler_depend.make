# Empty compiler generated dependencies file for fig14_pattern_reconstruction.
# This may be replaced when dependencies are built.
