file(REMOVE_RECURSE
  "CMakeFiles/fig14_pattern_reconstruction.dir/fig14_pattern_reconstruction.cpp.o"
  "CMakeFiles/fig14_pattern_reconstruction.dir/fig14_pattern_reconstruction.cpp.o.d"
  "fig14_pattern_reconstruction"
  "fig14_pattern_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_pattern_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
