# Empty dependencies file for fig02_spatial.
# This may be replaced when dependencies are built.
