file(REMOVE_RECURSE
  "CMakeFiles/fig02_spatial.dir/fig02_spatial.cpp.o"
  "CMakeFiles/fig02_spatial.dir/fig02_spatial.cpp.o.d"
  "fig02_spatial"
  "fig02_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
