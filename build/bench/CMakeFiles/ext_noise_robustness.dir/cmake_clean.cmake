file(REMOVE_RECURSE
  "CMakeFiles/ext_noise_robustness.dir/ext_noise_robustness.cpp.o"
  "CMakeFiles/ext_noise_robustness.dir/ext_noise_robustness.cpp.o.d"
  "ext_noise_robustness"
  "ext_noise_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_noise_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
