# Empty compiler generated dependencies file for fig01_temporal.
# This may be replaced when dependencies are built.
