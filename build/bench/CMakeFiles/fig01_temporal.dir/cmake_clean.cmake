file(REMOVE_RECURSE
  "CMakeFiles/fig01_temporal.dir/fig01_temporal.cpp.o"
  "CMakeFiles/fig01_temporal.dir/fig01_temporal.cpp.o.d"
  "fig01_temporal"
  "fig01_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
