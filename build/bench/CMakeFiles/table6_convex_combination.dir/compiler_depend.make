# Empty compiler generated dependencies file for table6_convex_combination.
# This may be replaced when dependencies are built.
