file(REMOVE_RECURSE
  "CMakeFiles/table6_convex_combination.dir/table6_convex_combination.cpp.o"
  "CMakeFiles/table6_convex_combination.dir/table6_convex_combination.cpp.o.d"
  "table6_convex_combination"
  "table6_convex_combination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_convex_combination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
