# Empty dependencies file for fig08_case_study.
# This may be replaced when dependencies are built.
