file(REMOVE_RECURSE
  "CMakeFiles/fig08_case_study.dir/fig08_case_study.cpp.o"
  "CMakeFiles/fig08_case_study.dir/fig08_case_study.cpp.o.d"
  "fig08_case_study"
  "fig08_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
