file(REMOVE_RECURSE
  "CMakeFiles/ext_anomaly_events.dir/ext_anomaly_events.cpp.o"
  "CMakeFiles/ext_anomaly_events.dir/ext_anomaly_events.cpp.o.d"
  "ext_anomaly_events"
  "ext_anomaly_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_anomaly_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
