# Empty dependencies file for ext_anomaly_events.
# This may be replaced when dependencies are built.
