file(REMOVE_RECURSE
  "CMakeFiles/fig07_geo_distribution.dir/fig07_geo_distribution.cpp.o"
  "CMakeFiles/fig07_geo_distribution.dir/fig07_geo_distribution.cpp.o.d"
  "fig07_geo_distribution"
  "fig07_geo_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_geo_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
