file(REMOVE_RECURSE
  "CMakeFiles/fig04_latlon_disorder.dir/fig04_latlon_disorder.cpp.o"
  "CMakeFiles/fig04_latlon_disorder.dir/fig04_latlon_disorder.cpp.o.d"
  "fig04_latlon_disorder"
  "fig04_latlon_disorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_latlon_disorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
