# Empty dependencies file for fig04_latlon_disorder.
# This may be replaced when dependencies are built.
