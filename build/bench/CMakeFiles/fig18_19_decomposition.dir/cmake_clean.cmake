file(REMOVE_RECURSE
  "CMakeFiles/fig18_19_decomposition.dir/fig18_19_decomposition.cpp.o"
  "CMakeFiles/fig18_19_decomposition.dir/fig18_19_decomposition.cpp.o.d"
  "fig18_19_decomposition"
  "fig18_19_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_19_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
