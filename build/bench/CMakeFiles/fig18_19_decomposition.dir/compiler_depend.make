# Empty compiler generated dependencies file for fig18_19_decomposition.
# This may be replaced when dependencies are built.
