# Empty dependencies file for fig05_single_region.
# This may be replaced when dependencies are built.
