file(REMOVE_RECURSE
  "CMakeFiles/fig05_single_region.dir/fig05_single_region.cpp.o"
  "CMakeFiles/fig05_single_region.dir/fig05_single_region.cpp.o.d"
  "fig05_single_region"
  "fig05_single_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_single_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
