# Empty compiler generated dependencies file for fig17_polygon.
# This may be replaced when dependencies are built.
