file(REMOVE_RECURSE
  "CMakeFiles/fig17_polygon.dir/fig17_polygon.cpp.o"
  "CMakeFiles/fig17_polygon.dir/fig17_polygon.cpp.o.d"
  "fig17_polygon"
  "fig17_polygon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_polygon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
