# Empty dependencies file for perf_mapred.
# This may be replaced when dependencies are built.
