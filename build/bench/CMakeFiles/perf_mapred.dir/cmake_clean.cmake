file(REMOVE_RECURSE
  "CMakeFiles/perf_mapred.dir/perf_mapred.cpp.o"
  "CMakeFiles/perf_mapred.dir/perf_mapred.cpp.o.d"
  "perf_mapred"
  "perf_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
