# Empty dependencies file for ext_forecast_accuracy.
# This may be replaced when dependencies are built.
