file(REMOVE_RECURSE
  "CMakeFiles/ext_forecast_accuracy.dir/ext_forecast_accuracy.cpp.o"
  "CMakeFiles/ext_forecast_accuracy.dir/ext_forecast_accuracy.cpp.o.d"
  "ext_forecast_accuracy"
  "ext_forecast_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_forecast_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
