# Empty compiler generated dependencies file for fig03_resident_vs_office.
# This may be replaced when dependencies are built.
