file(REMOVE_RECURSE
  "CMakeFiles/fig03_resident_vs_office.dir/fig03_resident_vs_office.cpp.o"
  "CMakeFiles/fig03_resident_vs_office.dir/fig03_resident_vs_office.cpp.o.d"
  "fig03_resident_vs_office"
  "fig03_resident_vs_office.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_resident_vs_office.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
