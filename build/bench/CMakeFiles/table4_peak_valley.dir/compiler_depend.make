# Empty compiler generated dependencies file for table4_peak_valley.
# This may be replaced when dependencies are built.
