file(REMOVE_RECURSE
  "CMakeFiles/table4_peak_valley.dir/table4_peak_valley.cpp.o"
  "CMakeFiles/table4_peak_valley.dir/table4_peak_valley.cpp.o.d"
  "table4_peak_valley"
  "table4_peak_valley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_peak_valley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
