# Empty compiler generated dependencies file for fig11_interrelations.
# This may be replaced when dependencies are built.
