file(REMOVE_RECURSE
  "CMakeFiles/fig11_interrelations.dir/fig11_interrelations.cpp.o"
  "CMakeFiles/fig11_interrelations.dir/fig11_interrelations.cpp.o.d"
  "fig11_interrelations"
  "fig11_interrelations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_interrelations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
