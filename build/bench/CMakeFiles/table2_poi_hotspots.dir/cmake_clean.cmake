file(REMOVE_RECURSE
  "CMakeFiles/table2_poi_hotspots.dir/table2_poi_hotspots.cpp.o"
  "CMakeFiles/table2_poi_hotspots.dir/table2_poi_hotspots.cpp.o.d"
  "table2_poi_hotspots"
  "table2_poi_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_poi_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
