# Empty compiler generated dependencies file for table2_poi_hotspots.
# This may be replaced when dependencies are built.
