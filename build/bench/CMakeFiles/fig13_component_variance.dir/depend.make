# Empty dependencies file for fig13_component_variance.
# This may be replaced when dependencies are built.
