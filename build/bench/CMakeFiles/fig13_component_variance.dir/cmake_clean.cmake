file(REMOVE_RECURSE
  "CMakeFiles/fig13_component_variance.dir/fig13_component_variance.cpp.o"
  "CMakeFiles/fig13_component_variance.dir/fig13_component_variance.cpp.o.d"
  "fig13_component_variance"
  "fig13_component_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_component_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
