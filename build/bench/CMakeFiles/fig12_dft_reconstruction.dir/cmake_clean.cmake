file(REMOVE_RECURSE
  "CMakeFiles/fig12_dft_reconstruction.dir/fig12_dft_reconstruction.cpp.o"
  "CMakeFiles/fig12_dft_reconstruction.dir/fig12_dft_reconstruction.cpp.o.d"
  "fig12_dft_reconstruction"
  "fig12_dft_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dft_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
