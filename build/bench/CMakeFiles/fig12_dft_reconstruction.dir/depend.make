# Empty dependencies file for fig12_dft_reconstruction.
# This may be replaced when dependencies are built.
