file(REMOVE_RECURSE
  "CMakeFiles/table3_fig09_poi_validation.dir/table3_fig09_poi_validation.cpp.o"
  "CMakeFiles/table3_fig09_poi_validation.dir/table3_fig09_poi_validation.cpp.o.d"
  "table3_fig09_poi_validation"
  "table3_fig09_poi_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fig09_poi_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
