# Empty compiler generated dependencies file for table3_fig09_poi_validation.
# This may be replaced when dependencies are built.
