# Empty compiler generated dependencies file for fig06_clustering.
# This may be replaced when dependencies are built.
