file(REMOVE_RECURSE
  "CMakeFiles/fig06_clustering.dir/fig06_clustering.cpp.o"
  "CMakeFiles/fig06_clustering.dir/fig06_clustering.cpp.o.d"
  "fig06_clustering"
  "fig06_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
