# Empty dependencies file for fig10_time_ratios.
# This may be replaced when dependencies are built.
