file(REMOVE_RECURSE
  "CMakeFiles/fig10_time_ratios.dir/fig10_time_ratios.cpp.o"
  "CMakeFiles/fig10_time_ratios.dir/fig10_time_ratios.cpp.o.d"
  "fig10_time_ratios"
  "fig10_time_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_time_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
