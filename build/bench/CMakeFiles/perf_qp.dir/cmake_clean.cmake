file(REMOVE_RECURSE
  "CMakeFiles/perf_qp.dir/perf_qp.cpp.o"
  "CMakeFiles/perf_qp.dir/perf_qp.cpp.o.d"
  "perf_qp"
  "perf_qp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_qp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
