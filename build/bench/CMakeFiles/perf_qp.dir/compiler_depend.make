# Empty compiler generated dependencies file for perf_qp.
# This may be replaced when dependencies are built.
