file(REMOVE_RECURSE
  "CMakeFiles/table5_peak_times.dir/table5_peak_times.cpp.o"
  "CMakeFiles/table5_peak_times.dir/table5_peak_times.cpp.o.d"
  "table5_peak_times"
  "table5_peak_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_peak_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
