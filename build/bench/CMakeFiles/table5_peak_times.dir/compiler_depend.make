# Empty compiler generated dependencies file for table5_peak_times.
# This may be replaced when dependencies are built.
