file(REMOVE_RECURSE
  "CMakeFiles/perf_fft.dir/perf_fft.cpp.o"
  "CMakeFiles/perf_fft.dir/perf_fft.cpp.o.d"
  "perf_fft"
  "perf_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
