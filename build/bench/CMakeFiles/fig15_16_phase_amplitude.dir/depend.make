# Empty dependencies file for fig15_16_phase_amplitude.
# This may be replaced when dependencies are built.
