file(REMOVE_RECURSE
  "CMakeFiles/fig15_16_phase_amplitude.dir/fig15_16_phase_amplitude.cpp.o"
  "CMakeFiles/fig15_16_phase_amplitude.dir/fig15_16_phase_amplitude.cpp.o.d"
  "fig15_16_phase_amplitude"
  "fig15_16_phase_amplitude.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_16_phase_amplitude.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
