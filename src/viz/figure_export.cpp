#include "viz/figure_export.h"

#include <cstdlib>
#include <filesystem>

#include "common/csv.h"
#include "common/error.h"

namespace cellscope {

std::string figure_output_dir() {
  const char* env = std::getenv("CELLSCOPE_OUT");
  const std::string dir = env && *env ? env : "out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw IoError("cannot create output directory: " + dir);
  return dir;
}

void export_columns(const std::string& name,
                    const std::vector<std::string>& column_names,
                    const std::vector<std::vector<double>>& columns) {
  CS_CHECK_MSG(!columns.empty() && column_names.size() == columns.size(),
               "column names and data must match");
  const std::size_t rows = columns[0].size();
  for (const auto& c : columns)
    CS_CHECK_MSG(c.size() == rows, "columns must have equal length");

  CsvWriter writer(figure_output_dir() + "/" + name + ".csv");
  writer.write_row(column_names);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> row;
    row.reserve(columns.size());
    for (const auto& c : columns) row.push_back(c[r]);
    writer.write_row(row);
  }
  writer.close();
}

void export_series(const std::string& name, std::span<const double> series,
                   const std::string& value_name) {
  std::vector<double> index(series.size());
  for (std::size_t i = 0; i < index.size(); ++i)
    index[i] = static_cast<double>(i);
  export_columns(name, {"index", value_name},
                 {index, {series.begin(), series.end()}});
}

}  // namespace cellscope
