// Terminal rendering of the paper's figures.
//
// Every figure bench prints its series/maps as ASCII so the reproduction
// is inspectable without a plotting stack; the same data is exported as
// CSV by figure_export for external plotting.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace cellscope {

/// Options for line charts.
struct LineChartOptions {
  std::size_t width = 96;   ///< columns of the plot area
  std::size_t height = 16;  ///< rows of the plot area
  std::string title;
  std::string x_label;
  std::vector<std::string> series_names;  ///< legend (one per series)
};

/// Renders one or more series over a shared x-axis (each downsampled to
/// the chart width; y-axis annotated with min/max).
std::string line_chart(const std::vector<std::vector<double>>& series,
                       const LineChartOptions& options);

/// Convenience single-series overload.
std::string line_chart(std::span<const double> series,
                       const LineChartOptions& options);

/// Renders a row-major matrix as a shaded heatmap (" .:-=+*#%@" ramp),
/// normalized to the matrix maximum; `log_scale` compresses heavy-tailed
/// data like traffic densities.
std::string heatmap(const std::vector<double>& values, std::size_t rows,
                    std::size_t cols, const std::string& title,
                    bool log_scale = false);

/// Horizontal bar chart of labeled values.
std::string bar_chart(const std::vector<std::string>& labels,
                      const std::vector<double>& values,
                      const std::string& title, std::size_t width = 60);

/// Scatter plot of (x, y) points with per-point class ids rendered as
/// digits (class 0 -> '0', ...). Used for the Fig. 15 phase/amplitude
/// scatters.
std::string scatter_plot(const std::vector<double>& x,
                         const std::vector<double>& y,
                         const std::vector<int>& cls,
                         const std::string& title, std::size_t width = 80,
                         std::size_t height = 24);

}  // namespace cellscope
