#include "viz/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/string_util.h"

namespace cellscope {

namespace {

constexpr char kSeriesGlyphs[] = "*o+x#%@&";
constexpr char kShadeRamp[] = " .:-=+*#%@";

/// Downsamples a series to `width` points by box averaging.
std::vector<double> downsample(std::span<const double> series,
                               std::size_t width) {
  std::vector<double> out(width, 0.0);
  const double step =
      static_cast<double>(series.size()) / static_cast<double>(width);
  for (std::size_t i = 0; i < width; ++i) {
    const auto begin = static_cast<std::size_t>(i * step);
    const auto end = std::max<std::size_t>(
        begin + 1, static_cast<std::size_t>((i + 1) * step));
    double s = 0.0;
    std::size_t count = 0;
    for (std::size_t j = begin; j < end && j < series.size(); ++j) {
      s += series[j];
      ++count;
    }
    out[i] = count ? s / static_cast<double>(count) : 0.0;
  }
  return out;
}

}  // namespace

std::string line_chart(const std::vector<std::vector<double>>& series,
                       const LineChartOptions& options) {
  CS_CHECK_MSG(!series.empty(), "line chart needs at least one series");
  for (const auto& s : series)
    CS_CHECK_MSG(!s.empty(), "empty series in line chart");
  CS_CHECK_MSG(options.width >= 8 && options.height >= 4,
               "chart too small");

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> sampled;
  sampled.reserve(series.size());
  for (const auto& s : series) {
    sampled.push_back(downsample(s, options.width));
    for (const double v : sampled.back()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi == lo) hi = lo + 1.0;

  std::vector<std::string> canvas(options.height,
                                  std::string(options.width, ' '));
  for (std::size_t k = 0; k < sampled.size(); ++k) {
    const char glyph = kSeriesGlyphs[k % (sizeof(kSeriesGlyphs) - 1)];
    for (std::size_t x = 0; x < options.width; ++x) {
      const double f = (sampled[k][x] - lo) / (hi - lo);
      const auto y = static_cast<std::size_t>(
          std::min<double>(options.height - 1,
                           f * static_cast<double>(options.height - 1)));
      canvas[options.height - 1 - y][x] = glyph;
    }
  }

  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  if (!options.series_names.empty()) {
    out += "  legend:";
    for (std::size_t k = 0; k < options.series_names.size(); ++k) {
      out += "  ";
      out += kSeriesGlyphs[k % (sizeof(kSeriesGlyphs) - 1)];
      out += "=" + options.series_names[k];
    }
    out += "\n";
  }
  out += "  max " + format_double(hi, 3) + "\n";
  for (const auto& row : canvas) out += "  |" + row + "\n";
  out += "  min " + format_double(lo, 3);
  out += "  +" + std::string(options.width, '-') + "\n";
  if (!options.x_label.empty()) out += "   " + options.x_label + "\n";
  return out;
}

std::string line_chart(std::span<const double> series,
                       const LineChartOptions& options) {
  return line_chart(
      std::vector<std::vector<double>>{{series.begin(), series.end()}},
      options);
}

std::string heatmap(const std::vector<double>& values, std::size_t rows,
                    std::size_t cols, const std::string& title,
                    bool log_scale) {
  CS_CHECK_MSG(values.size() == rows * cols, "heatmap shape mismatch");
  double hi = 0.0;
  for (const double v : values) hi = std::max(hi, v);

  auto shade = [&](double v) {
    if (hi <= 0.0) return ' ';
    double f = v / hi;
    if (log_scale) f = v > 0.0 ? std::log1p(v) / std::log1p(hi) : 0.0;
    const int idx = static_cast<int>(f * (sizeof(kShadeRamp) - 2));
    return kShadeRamp[std::clamp(idx, 0,
                                 static_cast<int>(sizeof(kShadeRamp)) - 2)];
  };

  std::string out;
  if (!title.empty()) out += title + "\n";
  // Row 0 is the south edge of a geographic grid; print north-up.
  for (std::size_t r = rows; r-- > 0;) {
    out += "  ";
    for (std::size_t c = 0; c < cols; ++c)
      out += shade(values[r * cols + c]);
    out += "\n";
  }
  return out;
}

std::string bar_chart(const std::vector<std::string>& labels,
                      const std::vector<double>& values,
                      const std::string& title, std::size_t width) {
  CS_CHECK_MSG(labels.size() == values.size() && !labels.empty(),
               "labels and values must match");
  double hi = 0.0;
  std::size_t label_width = 0;
  for (const auto& l : labels) label_width = std::max(label_width, l.size());
  for (const double v : values) hi = std::max(hi, v);
  if (hi <= 0.0) hi = 1.0;

  std::string out;
  if (!title.empty()) out += title + "\n";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::max(0.0, values[i] / hi) * static_cast<double>(width));
    out += "  " + labels[i] +
           std::string(label_width - labels[i].size(), ' ') + " |" +
           std::string(bar, '#') + " " + format_double(values[i], 3) + "\n";
  }
  return out;
}

std::string scatter_plot(const std::vector<double>& x,
                         const std::vector<double>& y,
                         const std::vector<int>& cls,
                         const std::string& title, std::size_t width,
                         std::size_t height) {
  CS_CHECK_MSG(x.size() == y.size() && x.size() == cls.size() && !x.empty(),
               "scatter inputs must match and be non-empty");
  const double x_lo = *std::min_element(x.begin(), x.end());
  const double x_hi = *std::max_element(x.begin(), x.end());
  const double y_lo = *std::min_element(y.begin(), y.end());
  const double y_hi = *std::max_element(y.begin(), y.end());
  const double x_span = x_hi > x_lo ? x_hi - x_lo : 1.0;
  const double y_span = y_hi > y_lo ? y_hi - y_lo : 1.0;

  std::vector<std::string> canvas(height, std::string(width, ' '));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto cx = static_cast<std::size_t>(
        std::min<double>(width - 1, (x[i] - x_lo) / x_span *
                                        static_cast<double>(width - 1)));
    const auto cy = static_cast<std::size_t>(
        std::min<double>(height - 1, (y[i] - y_lo) / y_span *
                                         static_cast<double>(height - 1)));
    canvas[height - 1 - cy][cx] =
        static_cast<char>('0' + std::clamp(cls[i], 0, 9));
  }

  std::string out;
  if (!title.empty()) out += title + "\n";
  out += "  y: [" + format_double(y_lo, 3) + ", " + format_double(y_hi, 3) +
         "]  x: [" + format_double(x_lo, 3) + ", " + format_double(x_hi, 3) +
         "]\n";
  for (const auto& row : canvas) out += "  |" + row + "\n";
  return out;
}

}  // namespace cellscope
