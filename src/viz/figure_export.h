// CSV export of figure data.
//
// Each bench writes the series behind its figure/table into out/ so the
// reproduction can be re-plotted with any external tool.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace cellscope {

/// Creates (if needed) and returns the export directory path; set the
/// CELLSCOPE_OUT environment variable to override the default "out".
std::string figure_output_dir();

/// Writes named columns of equal length to `<dir>/<name>.csv`.
void export_columns(const std::string& name,
                    const std::vector<std::string>& column_names,
                    const std::vector<std::vector<double>>& columns);

/// Writes one series with an index column.
void export_series(const std::string& name, std::span<const double> series,
                   const std::string& value_name = "value");

}  // namespace cellscope
