#include "pipeline/vectorizer.h"

#include <span>
#include <unordered_map>

#include "common/error.h"
#include "mapred/mapreduce.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope {

TrafficMatrix vectorize_logs(const std::vector<TrafficLog>& logs,
                             const std::vector<Tower>& towers,
                             ThreadPool& pool,
                             const VectorizerOptions& options) {
  CS_CHECK_MSG(!towers.empty(), "need at least one tower");

  std::unordered_map<std::uint32_t, std::size_t> row_of;
  row_of.reserve(towers.size());
  TrafficMatrix matrix;
  matrix.tower_ids.reserve(towers.size());
  for (const auto& t : towers) {
    row_of.emplace(t.id, matrix.tower_ids.size());
    matrix.tower_ids.push_back(t.id);
  }
  matrix.rows.assign(towers.size(),
                     std::vector<double>(TimeGrid::kSlots, 0.0));

  // Map: log -> ((tower, slot), bytes); combine: sum. Keys are packed into
  // one 64-bit integer — the shuffle key of the Hadoop job.
  obs::ScopedTimer timer;
  MapReduceOptions mr;
  mr.chunk_size = options.chunk_size;
  const auto aggregated = map_reduce<TrafficLog, std::uint64_t, double>(
      std::span<const TrafficLog>(logs), pool,
      [&row_of](const TrafficLog& log,
                const std::function<void(const std::uint64_t&, double)>&
                    emit) {
        if (!row_of.contains(log.tower_id)) return;  // unknown tower
        const std::uint64_t slot =
            log.start_minute / TimeGrid::kSlotMinutes;
        if (slot >= TimeGrid::kSlots) return;  // outside the 4-week grid
        const std::uint64_t key =
            (static_cast<std::uint64_t>(log.tower_id) << 32) | slot;
        emit(key, static_cast<double>(log.bytes));
      },
      [](double& acc, double value) { acc += value; }, mr);

  double total_bytes = 0.0;
  for (const auto& [key, bytes] : aggregated) {
    const auto tower_id = static_cast<std::uint32_t>(key >> 32);
    const auto slot = static_cast<std::size_t>(key & 0xFFFFFFFFULL);
    matrix.rows[row_of.at(tower_id)][slot] = bytes;
    total_bytes += bytes;
  }
  matrix.check();

  const std::size_t n_chunks =
      logs.empty() ? 0 : (logs.size() + mr.chunk_size - 1) / mr.chunk_size;
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("cellscope.pipeline.vectorizer_chunks").add(n_chunks);
  registry.counter("cellscope.pipeline.vectorizer_logs").add(logs.size());
  registry.counter("cellscope.pipeline.vectorizer_bytes")
      .add(static_cast<std::uint64_t>(total_bytes));
  obs::log_debug("vectorizer.logs_done",
                 {{"logs", logs.size()},
                  {"chunks", n_chunks},
                  {"towers", towers.size()},
                  {"bytes", total_bytes},
                  {"wall_ms", timer.elapsed_ms()}});
  return matrix;
}

TrafficMatrix vectorize_intensity(const std::vector<Tower>& towers,
                                  const IntensityModel& intensity,
                                  std::uint64_t seed) {
  CS_CHECK_MSG(towers.size() == intensity.size(),
               "towers and intensity model must match");
  obs::ScopedTimer timer;
  Rng rng(seed);
  TrafficMatrix matrix;
  matrix.tower_ids.reserve(towers.size());
  matrix.rows.reserve(towers.size());
  for (const auto& t : towers) {
    Rng tower_rng = rng.fork();
    matrix.tower_ids.push_back(t.id);
    matrix.rows.push_back(intensity.sample_series(t.id, tower_rng));
  }
  matrix.check();
  obs::MetricsRegistry::instance()
      .counter("cellscope.pipeline.vectorizer_rows")
      .add(matrix.n());
  obs::log_debug("vectorizer.intensity_done",
                 {{"towers", towers.size()},
                  {"wall_ms", timer.elapsed_ms()}});
  return matrix;
}

}  // namespace cellscope
