#include "pipeline/cleaner.h"

#include <algorithm>
#include <tuple>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope {

std::vector<TrafficLog> clean_logs(std::vector<TrafficLog> logs,
                                   CleanStats* stats) {
  return clean_logs(std::move(logs), CleanerOptions{}, stats);
}

std::vector<TrafficLog> clean_logs(std::vector<TrafficLog> logs,
                                   const CleanerOptions& options,
                                   CleanStats* stats) {
  obs::StageSpan span("pipeline.clean", "pipeline", obs::LogLevel::kDebug);
  CleanStats local;
  local.input_records = logs.size();

  // Drop malformed records.
  auto is_malformed = [&](const TrafficLog& log) {
    if (log.end_minute <= log.start_minute) return true;
    if (log.bytes == 0) return true;
    if (options.validator && !options.validator(log)) return true;
    return false;
  };
  const auto before = logs.size();
  std::erase_if(logs, is_malformed);
  local.malformed_dropped = before - logs.size();

  // Sort so duplicates/conflicts of one connection are adjacent; within a
  // connection key, the largest byte count comes first and is kept.
  std::sort(logs.begin(), logs.end(),
            [](const TrafficLog& a, const TrafficLog& b) {
              return std::tie(a.user_id, a.tower_id, a.start_minute, b.bytes,
                              b.end_minute) <
                     std::tie(b.user_id, b.tower_id, b.start_minute, a.bytes,
                              a.end_minute);
            });

  std::vector<TrafficLog> out;
  out.reserve(logs.size());
  for (auto& log : logs) {
    if (!out.empty()) {
      const auto& kept = out.back();
      const bool same_connection = kept.user_id == log.user_id &&
                                   kept.tower_id == log.tower_id &&
                                   kept.start_minute == log.start_minute;
      if (same_connection) {
        if (kept.bytes == log.bytes && kept.end_minute == log.end_minute &&
            kept.address == log.address) {
          ++local.duplicates_removed;
        } else {
          ++local.conflicts_resolved;
        }
        continue;  // keep the first (largest) record of the connection
      }
    }
    out.push_back(std::move(log));
  }

  local.output_records = out.size();

  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("cellscope.pipeline.cleaner_input")
      .add(local.input_records);
  registry.counter("cellscope.pipeline.cleaner_malformed")
      .add(local.malformed_dropped);
  registry.counter("cellscope.pipeline.cleaner_duplicates")
      .add(local.duplicates_removed);
  registry.counter("cellscope.pipeline.cleaner_conflicts")
      .add(local.conflicts_resolved);
  registry.counter("cellscope.pipeline.cleaner_output")
      .add(local.output_records);
  span.annotate({"input", local.input_records});
  span.annotate({"malformed", local.malformed_dropped});
  span.annotate({"duplicates", local.duplicates_removed});
  span.annotate({"conflicts", local.conflicts_resolved});
  span.annotate({"output", local.output_records});

  if (stats) *stats = local;
  return out;
}

}  // namespace cellscope
