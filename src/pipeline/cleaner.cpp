#include "pipeline/cleaner.h"

#include <algorithm>
#include <tuple>

namespace cellscope {

std::vector<TrafficLog> clean_logs(std::vector<TrafficLog> logs,
                                   CleanStats* stats) {
  return clean_logs(std::move(logs), CleanerOptions{}, stats);
}

std::vector<TrafficLog> clean_logs(std::vector<TrafficLog> logs,
                                   const CleanerOptions& options,
                                   CleanStats* stats) {
  CleanStats local;
  local.input_records = logs.size();

  // Drop malformed records.
  auto is_malformed = [&](const TrafficLog& log) {
    if (log.end_minute <= log.start_minute) return true;
    if (log.bytes == 0) return true;
    if (options.validator && !options.validator(log)) return true;
    return false;
  };
  const auto before = logs.size();
  std::erase_if(logs, is_malformed);
  local.malformed_dropped = before - logs.size();

  // Sort so duplicates/conflicts of one connection are adjacent; within a
  // connection key, the largest byte count comes first and is kept.
  std::sort(logs.begin(), logs.end(),
            [](const TrafficLog& a, const TrafficLog& b) {
              return std::tie(a.user_id, a.tower_id, a.start_minute, b.bytes,
                              b.end_minute) <
                     std::tie(b.user_id, b.tower_id, b.start_minute, a.bytes,
                              a.end_minute);
            });

  std::vector<TrafficLog> out;
  out.reserve(logs.size());
  for (auto& log : logs) {
    if (!out.empty()) {
      const auto& kept = out.back();
      const bool same_connection = kept.user_id == log.user_id &&
                                   kept.tower_id == log.tower_id &&
                                   kept.start_minute == log.start_minute;
      if (same_connection) {
        if (kept.bytes == log.bytes && kept.end_minute == log.end_minute &&
            kept.address == log.address) {
          ++local.duplicates_removed;
        } else {
          ++local.conflicts_resolved;
        }
        continue;  // keep the first (largest) record of the connection
      }
    }
    out.push_back(std::move(log));
  }

  local.output_records = out.size();
  if (stats) *stats = local;
  return out;
}

}  // namespace cellscope
