#include "pipeline/traffic_matrix.h"

#include <functional>
#include <unordered_set>

#include "common/error.h"
#include "common/stats.h"
#include "mapred/thread_pool.h"
#include "simd/simd.h"

namespace cellscope {

namespace {

/// fn(i) for every row — pooled when available, serial otherwise. Rows
/// are independent, so both paths produce identical output.
void for_each_row(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && pool->thread_count() > 1 && n > 1) {
    pool->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

std::size_t TrafficMatrix::row_of(std::uint32_t tower_id) const {
  for (std::size_t i = 0; i < tower_ids.size(); ++i)
    if (tower_ids[i] == tower_id) return i;
  throw InvalidArgument("tower id not present in matrix: " +
                        std::to_string(tower_id));
}

void TrafficMatrix::check() const {
  CS_CHECK_MSG(tower_ids.size() == rows.size(),
               "tower_ids and rows must have equal length");
  std::unordered_set<std::uint32_t> seen;
  for (const auto id : tower_ids)
    CS_CHECK_MSG(seen.insert(id).second, "duplicate tower id in matrix");
  for (const auto& row : rows)
    CS_CHECK_MSG(row.size() == TimeGrid::kSlots,
                 "every row must have 4032 slots");
}

std::vector<std::vector<double>> zscore_rows(const TrafficMatrix& matrix,
                                             ThreadPool* pool) {
  std::vector<std::vector<double>> out(matrix.n());
  for_each_row(pool, matrix.n(),
               [&](std::size_t i) { out[i] = zscore(matrix.rows[i]); });
  return out;
}

std::vector<std::vector<double>> fold_to_week(
    const std::vector<std::vector<double>>& rows, ThreadPool* pool) {
  std::vector<std::vector<double>> out(rows.size());
  for_each_row(pool, rows.size(), [&](std::size_t i) {
    const auto& row = rows[i];
    CS_CHECK_MSG(row.size() == TimeGrid::kSlots,
                 "fold_to_week expects 4032-slot rows");
    std::vector<double> week(TimeGrid::kSlotsPerWeek);
    // Per output slot this accumulates week 0, 1, 2 in the same order the
    // old `week[s % P] += row[s]` sweep did, so the fold is bit-identical.
    simd::fold_mean(row.data(), TimeGrid::kSlotsPerWeek, TimeGrid::kWeeks,
                    week.data());
    out[i] = std::move(week);
  });
  return out;
}

std::vector<double> aggregate_series(const TrafficMatrix& matrix) {
  std::vector<std::size_t> all(matrix.n());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return aggregate_series(matrix, all);
}

std::vector<double> aggregate_series(const TrafficMatrix& matrix,
                                     const std::vector<std::size_t>& rows) {
  std::vector<double> out(TimeGrid::kSlots, 0.0);
  for (const std::size_t r : rows) {
    CS_CHECK_MSG(r < matrix.n(), "row index out of range");
    const auto& row = matrix.rows[r];
    for (std::size_t s = 0; s < out.size(); ++s) out[s] += row[s];
  }
  return out;
}

}  // namespace cellscope
