// The traffic vectorizer — the paper's §3.2 system component.
//
// Converts cleaned connection logs into per-tower traffic vectors: the logs
// are chunked and aggregated with the MapReduce engine (bytes attributed to
// the 10-minute slot containing the connection start), yielding one
// 4032-entry vector per tower; z-scoring is applied downstream by
// zscore_rows (the paper's "normalization phase").
//
// A second entry point builds the matrix directly from the intensity model
// — the fast path for the clustering/frequency experiments, which need
// thousands of towers but not session granularity (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "city/tower.h"
#include "mapred/thread_pool.h"
#include "pipeline/traffic_matrix.h"
#include "traffic/intensity_model.h"
#include "traffic/trace_record.h"

namespace cellscope {

/// Vectorizer configuration.
struct VectorizerOptions {
  /// Logs per MapReduce chunk.
  std::size_t chunk_size = 16384;
};

/// Aggregates cleaned logs into a TrafficMatrix. Rows appear for every
/// tower in `towers` (towers with no traffic get all-zero rows); logs whose
/// tower id is unknown are ignored (the cleaner should have dropped them).
TrafficMatrix vectorize_logs(const std::vector<TrafficLog>& logs,
                             const std::vector<Tower>& towers,
                             ThreadPool& pool,
                             const VectorizerOptions& options = {});

/// Builds the matrix straight from the intensity model with per-slot
/// sampling noise — statistically what vectorize_logs(clean(generate()))
/// produces, minus session quantization. Deterministic in the seed.
TrafficMatrix vectorize_intensity(const std::vector<Tower>& towers,
                                  const IntensityModel& intensity,
                                  std::uint64_t seed);

}  // namespace cellscope
