// The per-tower traffic matrix — output of the vectorizer, input to
// clustering and all analyses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time_grid.h"

namespace cellscope {

class ThreadPool;

/// Rows are towers, columns are 10-minute slots (raw bytes). The paper's
/// Xj vectors (§3.2) are the z-scored rows.
struct TrafficMatrix {
  std::vector<std::uint32_t> tower_ids;        ///< row -> tower id
  std::vector<std::vector<double>> rows;       ///< raw bytes, [n][4032]

  std::size_t n() const { return rows.size(); }

  /// Row index of a tower id; throws if absent.
  std::size_t row_of(std::uint32_t tower_id) const;

  /// Validates the invariants (ids unique, rows rectangular of kSlots).
  void check() const;
};

/// Z-scores every row (the vectorizer's normalization phase). Rows are
/// independent, so a pool parallelizes them with bit-identical output.
std::vector<std::vector<double>> zscore_rows(const TrafficMatrix& matrix,
                                             ThreadPool* pool = nullptr);

/// Folds each 4032-slot row to its mean week (1008 slots) — the optional
/// dimensionality reduction for clustering (DESIGN.md §5.2). Rows are
/// independent, so a pool parallelizes them with bit-identical output.
std::vector<std::vector<double>> fold_to_week(
    const std::vector<std::vector<double>>& rows, ThreadPool* pool = nullptr);

/// Column-wise sum across rows (the city-aggregate series of Fig. 1/12).
std::vector<double> aggregate_series(const TrafficMatrix& matrix);

/// Column-wise sum over a subset of row indices (a cluster's aggregate).
std::vector<double> aggregate_series(const TrafficMatrix& matrix,
                                     const std::vector<std::size_t>& rows);

}  // namespace cellscope
