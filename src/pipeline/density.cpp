#include "pipeline/density.h"

#include <unordered_map>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope {

DensityGrid traffic_density(const std::vector<Tower>& towers,
                            const TrafficMatrix& matrix,
                            std::size_t slot_begin, std::size_t slot_end,
                            const BoundingBox& box, std::size_t rows,
                            std::size_t cols) {
  CS_CHECK_MSG(slot_begin < slot_end && slot_end <= TimeGrid::kSlots,
               "invalid slot range");
  obs::StageSpan span("pipeline.density", "pipeline", obs::LogLevel::kDebug);
  std::unordered_map<std::uint32_t, const Tower*> tower_of;
  for (const auto& t : towers) tower_of.emplace(t.id, &t);

  DensityGrid grid(box, rows, cols);
  double total_bytes = 0.0;
  for (std::size_t r = 0; r < matrix.n(); ++r) {
    const auto it = tower_of.find(matrix.tower_ids[r]);
    CS_CHECK_MSG(it != tower_of.end(), "matrix row without tower metadata");
    double bytes = 0.0;
    for (std::size_t s = slot_begin; s < slot_end; ++s)
      bytes += matrix.rows[r][s];
    grid.add(it->second->position, bytes);
    total_bytes += bytes;
  }
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("cellscope.pipeline.density_rows").add(matrix.n());
  registry.counter("cellscope.pipeline.density_grids").add(1);
  span.annotate({"rows", matrix.n()});
  span.annotate({"slots", slot_end - slot_begin});
  span.annotate({"bytes", total_bytes});
  return grid;
}

DensityGrid traffic_density_at_hour(const std::vector<Tower>& towers,
                                    const TrafficMatrix& matrix, int day,
                                    int hour, const BoundingBox& box,
                                    std::size_t rows, std::size_t cols) {
  const std::size_t begin = TimeGrid::slot_at(day, hour, 0);
  return traffic_density(towers, matrix, begin, begin + TimeGrid::kSlotsPerHour,
                         box, rows, cols);
}

}  // namespace cellscope
