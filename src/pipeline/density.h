// Traffic density over the city — the paper's preprocessing step 3 (§2.2)
// and the raw material of the Fig. 2 spatial heatmaps.
#pragma once

#include <cstddef>
#include <vector>

#include "city/tower.h"
#include "geo/density_grid.h"
#include "pipeline/traffic_matrix.h"

namespace cellscope {

/// Rasterizes per-tower traffic summed over a slot range [slot_begin,
/// slot_end) onto a rows × cols grid over `box` (bytes per cell; read
/// densities via DensityGrid::density_at).
DensityGrid traffic_density(const std::vector<Tower>& towers,
                            const TrafficMatrix& matrix,
                            std::size_t slot_begin, std::size_t slot_end,
                            const BoundingBox& box, std::size_t rows,
                            std::size_t cols);

/// Rasterizes the traffic of one hour of one day (the paper's "at 4AM"
/// snapshots of Fig. 2).
DensityGrid traffic_density_at_hour(const std::vector<Tower>& towers,
                                    const TrafficMatrix& matrix, int day,
                                    int hour, const BoundingBox& box,
                                    std::size_t rows, std::size_t cols);

}  // namespace cellscope
