// Log cleaning — the paper's preprocessing step 1 (§2.2).
//
// Removes the redundant and conflicting records the collection process
// introduces: exact duplicates are dropped; conflicting records (same
// user/tower/start logged with different byte counts) are resolved by
// keeping the record with the largest byte count (the complete log of the
// connection); structurally malformed records are discarded.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "traffic/trace_record.h"

namespace cellscope {

/// Accounting of what cleaning removed.
struct CleanStats {
  std::size_t input_records = 0;
  std::size_t malformed_dropped = 0;
  std::size_t duplicates_removed = 0;
  std::size_t conflicts_resolved = 0;
  std::size_t output_records = 0;
};

/// Cleaning configuration.
struct CleanerOptions {
  /// Optional extra validity predicate (e.g. "address must geocode");
  /// records failing it count as malformed.
  std::function<bool(const TrafficLog&)> validator;
};

/// Cleans a log batch. Output is sorted by (user, tower, start) — a
/// deterministic order downstream stages may rely on.
std::vector<TrafficLog> clean_logs(std::vector<TrafficLog> logs,
                                   CleanStats* stats = nullptr);

std::vector<TrafficLog> clean_logs(std::vector<TrafficLog> logs,
                                   const CleanerOptions& options,
                                   CleanStats* stats = nullptr);

}  // namespace cellscope
