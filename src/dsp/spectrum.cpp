#include "dsp/spectrum.h"

#include <cmath>

#include "common/error.h"

namespace cellscope {

Spectrum::Spectrum(std::span<const double> series)
    : coefficients_(fft_real(series)) {}

const Complex& Spectrum::coefficient(std::size_t k) const {
  CS_CHECK_MSG(k < coefficients_.size(), "frequency index out of range");
  return coefficients_[k];
}

double Spectrum::amplitude(std::size_t k) const {
  return std::abs(coefficient(k));
}

double Spectrum::normalized_amplitude(std::size_t k) const {
  return 2.0 * amplitude(k) / static_cast<double>(size());
}

double Spectrum::phase(std::size_t k) const {
  return std::arg(coefficient(k));
}

std::vector<double> Spectrum::amplitudes() const {
  std::vector<double> out(size());
  for (std::size_t k = 0; k < size(); ++k) out[k] = std::abs(coefficients_[k]);
  return out;
}

std::vector<double> Spectrum::reconstruct(
    std::span<const std::size_t> keep) const {
  const std::size_t n = size();
  std::vector<Complex> masked(n, Complex(0.0, 0.0));
  masked[0] = coefficients_[0];  // DC
  for (const std::size_t k : keep) {
    CS_CHECK_MSG(k < n, "frequency index out of range");
    masked[k] = coefficients_[k];
    if (k != 0) masked[n - k] = coefficients_[n - k];  // conjugate mirror
  }
  return inverse_fft_real(masked);
}

std::vector<double> Spectrum::reconstruct_principal() const {
  const std::size_t keep[] = {kWeeklyComponent, kDailyComponent,
                              kHalfDailyComponent};
  return reconstruct(keep);
}

double signal_energy(std::span<const double> series) {
  double e = 0.0;
  for (const double x : series) e += x * x;
  return e;
}

double energy_loss(std::span<const double> original,
                   std::span<const double> reconstructed) {
  CS_CHECK_MSG(original.size() == reconstructed.size(),
               "series must have equal length");
  const double e = signal_energy(original);
  CS_CHECK_MSG(e > 0.0, "original series has zero energy");
  return std::fabs(e - signal_energy(reconstructed)) / e;
}

}  // namespace cellscope
