// Traffic frequency spectra and principal-component reconstruction.
//
// The paper (§5.1) observes that the aggregate traffic DFT has three
// dominant components — k = 4 (one week), k = 28 (one day), k = 56 (half a
// day) over the 4-week / 4032-sample grid — and that reconstructing from
// just these (plus DC and conjugates) loses under 6 % of signal energy.
// This module wraps the FFT with those operations: amplitude/phase
// extraction, band-limited reconstruction, and energy-loss accounting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fft.h"

namespace cellscope {

/// The paper's three principal frequency indices on the 4032-slot grid.
inline constexpr std::size_t kWeeklyComponent = 4;     ///< period = 1 week
inline constexpr std::size_t kDailyComponent = 28;     ///< period = 1 day
inline constexpr std::size_t kHalfDailyComponent = 56; ///< period = 1/2 day

/// The DFT of one traffic series with amplitude/phase accessors.
class Spectrum {
 public:
  /// Forward-transforms the series (any length >= 1).
  explicit Spectrum(std::span<const double> series);

  /// Raw DFT coefficient (k < size).
  const Complex& coefficient(std::size_t k) const;

  /// |X[k]| — raw amplitude.
  double amplitude(std::size_t k) const;

  /// 2|X[k]|/N — amplitude in the units of the time series (a pure
  /// sinusoid a·cos(...) yields `a` at its frequency). Used for the
  /// Fig. 15/16 features.
  double normalized_amplitude(std::size_t k) const;

  /// arg X[k] in (-π, π].
  double phase(std::size_t k) const;

  /// Series length N.
  std::size_t size() const { return coefficients_.size(); }

  /// Full raw amplitude spectrum (|X[k]| for all k).
  std::vector<double> amplitudes() const;

  /// Reconstructs the time series keeping only the given frequency
  /// indices, their conjugate mirrors, and DC — the paper's Xr (§5.1).
  std::vector<double> reconstruct(std::span<const std::size_t> keep) const;

  /// Reconstruction from the paper's three principal components.
  std::vector<double> reconstruct_principal() const;

 private:
  std::vector<Complex> coefficients_;
};

/// Total signal energy sum x[n]².
double signal_energy(std::span<const double> series);

/// Relative energy loss |E(x) - E(xr)| / E(x) of a reconstruction
/// (the paper reports < 6 % for the principal reconstruction).
double energy_loss(std::span<const double> original,
                   std::span<const double> reconstructed);

}  // namespace cellscope
