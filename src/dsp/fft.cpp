#include "dsp/fft.h"

#include <cmath>

#include "common/error.h"
#include "simd/simd.h"

namespace cellscope {

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_radix2_inplace(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  CS_CHECK_MSG(is_power_of_two(n), "radix-2 FFT needs a power-of-two size");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  // Per-stage twiddle table, filled with the same sequential `w *= wlen`
  // recurrence the old per-block loop ran — every block of a stage used
  // an identical twiddle sequence, so hoisting it changes nothing bit-wise
  // and lets the butterfly sweep go through the simd dispatcher.
  std::vector<Complex> twiddles(n / 2);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    const std::size_t half = len / 2;
    Complex w(1.0, 0.0);
    for (std::size_t j = 0; j < half; ++j) {
      twiddles[j] = w;
      w *= wlen;
    }
    for (std::size_t i = 0; i < n; i += len)
      simd::fft_butterfly(a.data() + i, a.data() + i + half, twiddles.data(),
                          half);
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

namespace {

/// Bluestein's algorithm: exact DFT of arbitrary length N as a circular
/// convolution of length M = next power of two >= 2N-1.
std::vector<Complex> bluestein(std::span<const Complex> input, bool inverse) {
  const std::size_t n = input.size();
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp b[k] = e^{sign * iπ k² / n}; compute k² mod 2n to avoid the
  // precision loss of huge k² arguments.
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * M_PI * static_cast<double>(k2) /
                         static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }

  std::size_t m = 1;
  while (m < 2 * n - 1) m <<= 1;

  std::vector<Complex> a(m, Complex(0.0, 0.0));
  std::vector<Complex> b(m, Complex(0.0, 0.0));
  simd::complex_multiply(input.data(), chirp.data(), a.data(), n);
  for (std::size_t k = 0; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    if (k != 0) b[m - k] = std::conj(chirp[k]);
  }

  fft_radix2_inplace(a, false);
  fft_radix2_inplace(b, false);
  simd::complex_multiply(a.data(), b.data(), a.data(), m);
  fft_radix2_inplace(a, true);

  std::vector<Complex> out(n);
  simd::complex_multiply(a.data(), chirp.data(), out.data(), n);
  if (inverse) {
    for (auto& x : out) x /= static_cast<double>(n);
  }
  return out;
}

}  // namespace

std::vector<Complex> fft(std::span<const Complex> input, bool inverse) {
  CS_CHECK_MSG(!input.empty(), "fft of empty input");
  if (is_power_of_two(input.size())) {
    std::vector<Complex> a(input.begin(), input.end());
    fft_radix2_inplace(a, inverse);
    return a;
  }
  return bluestein(input, inverse);
}

std::vector<Complex> fft_real(std::span<const double> input) {
  std::vector<Complex> c(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) c[i] = Complex(input[i], 0.0);
  return fft(c, false);
}

std::vector<double> inverse_fft_real(std::span<const Complex> spectrum) {
  const auto complex_out = fft(spectrum, true);
  std::vector<double> out(complex_out.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = complex_out[i].real();
  return out;
}

std::vector<Complex> naive_dft(std::span<const Complex> input, bool inverse) {
  CS_CHECK_MSG(!input.empty(), "dft of empty input");
  const std::size_t n = input.size();
  const double sign = inverse ? 2.0 : -2.0;
  std::vector<Complex> out(n, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * M_PI * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      out[k] += input[t] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  if (inverse) {
    for (auto& x : out) x /= static_cast<double>(n);
  }
  return out;
}

}  // namespace cellscope
