// Fast Fourier transforms.
//
// The paper's frequency analysis (§5.1) runs a DFT over 4032-sample traffic
// vectors. 4032 is not a power of two, so alongside the iterative radix-2
// FFT we implement Bluestein's chirp-z algorithm, which computes an exact
// DFT of arbitrary length via a power-of-two convolution. A naive O(N²)
// DFT is provided as the test oracle.
//
// Convention: forward transform X[k] = sum_n x[n] e^{-2πikn/N} (no
// scaling); inverse divides by N, so inverse(forward(x)) == x.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace cellscope {

using Complex = std::complex<double>;

/// True if n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// In-place iterative radix-2 FFT; size must be a power of two.
/// `inverse` applies the conjugate transform and divides by N.
void fft_radix2_inplace(std::vector<Complex>& a, bool inverse);

/// DFT of arbitrary length: radix-2 when possible, Bluestein otherwise.
std::vector<Complex> fft(std::span<const Complex> input,
                         bool inverse = false);

/// Forward DFT of a real series.
std::vector<Complex> fft_real(std::span<const double> input);

/// Inverse DFT returning the real parts (valid when the spectrum is
/// conjugate-symmetric, as reconstructions here always are).
std::vector<double> inverse_fft_real(std::span<const Complex> spectrum);

/// O(N²) reference DFT (test oracle; do not use at scale).
std::vector<Complex> naive_dft(std::span<const Complex> input,
                               bool inverse = false);

}  // namespace cellscope
