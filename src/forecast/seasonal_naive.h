// Seasonal-naive forecasting baseline.
//
// Predicts each future slot with the value observed one season earlier —
// one week back when enough history exists, else one day back. The
// yardstick every smarter forecaster must beat.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cellscope {

/// Forecasts `horizon` slots following `history` (10-minute slots).
/// Requires at least one day of history.
std::vector<double> seasonal_naive_forecast(std::span<const double> history,
                                            std::size_t horizon);

}  // namespace cellscope
