// Forecast accuracy metrics.
//
// Shared by the forecasting extension (the paper's motivating ISP use
// case: "mobile users ... can choose towers with predicted lower traffic
// and enjoy better services", §1).
#pragma once

#include <span>

namespace cellscope {

/// Mean absolute error. Inputs must be equal-length and non-empty.
double mean_absolute_error(std::span<const double> actual,
                           std::span<const double> predicted);

/// Root mean squared error.
double root_mean_squared_error(std::span<const double> actual,
                               std::span<const double> predicted);

/// Symmetric mean absolute percentage error in [0, 2]; robust to zeros
/// (slots where both actual and predicted are zero contribute zero).
double smape(std::span<const double> actual,
             std::span<const double> predicted);

/// MAE of `predicted` divided by the MAE of the per-series-mean constant
/// predictor — < 1 means the forecast beats the trivial baseline.
double mae_skill_vs_mean(std::span<const double> actual,
                         std::span<const double> predicted);

}  // namespace cellscope
