#include "forecast/metrics.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace cellscope {

namespace {
void check_inputs(std::span<const double> actual,
                  std::span<const double> predicted) {
  CS_CHECK_MSG(actual.size() == predicted.size() && !actual.empty(),
               "metrics need equal-length non-empty series");
}
}  // namespace

double mean_absolute_error(std::span<const double> actual,
                           std::span<const double> predicted) {
  check_inputs(actual, predicted);
  double total = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i)
    total += std::fabs(actual[i] - predicted[i]);
  return total / static_cast<double>(actual.size());
}

double root_mean_squared_error(std::span<const double> actual,
                               std::span<const double> predicted) {
  check_inputs(actual, predicted);
  double total = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(actual.size()));
}

double smape(std::span<const double> actual,
             std::span<const double> predicted) {
  check_inputs(actual, predicted);
  double total = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double denom = std::fabs(actual[i]) + std::fabs(predicted[i]);
    if (denom > 0.0)
      total += 2.0 * std::fabs(actual[i] - predicted[i]) / denom;
  }
  return total / static_cast<double>(actual.size());
}

double mae_skill_vs_mean(std::span<const double> actual,
                         std::span<const double> predicted) {
  check_inputs(actual, predicted);
  const double m = mean(actual);
  double baseline = 0.0;
  for (const double a : actual) baseline += std::fabs(a - m);
  baseline /= static_cast<double>(actual.size());
  CS_CHECK_MSG(baseline > 0.0, "constant actual series has no skill scale");
  return mean_absolute_error(actual, predicted) / baseline;
}

}  // namespace cellscope
