// Spectral forecasting — the paper's frequency-domain model put to work.
//
// §5.1 shows traffic is captured by a handful of periodic components; a
// forecaster follows directly: average the history into one mean week,
// keep only the dominant weekly harmonics (DC, the daily line and its
// first harmonics, and the weekly fundamental), and tile the smoothed
// week forward. The harmonic truncation removes sampling noise that the
// seasonal-naive baseline replays verbatim — which is exactly where the
// skill comes from.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cellscope {

/// Spectral forecaster options.
struct SpectralForecastOptions {
  /// Number of leading weekly harmonics kept (k = 1..n on the 1008-slot
  /// week; the daily line is k = 7, half-day k = 14). 21 keeps everything
  /// through the 3-per-day harmonic.
  std::size_t keep_harmonics = 21;
};

/// Forecasts `horizon` slots following `history`. Requires at least one
/// full week of history (the mean week needs every weekday represented).
std::vector<double> spectral_forecast(std::span<const double> history,
                                      std::size_t horizon,
                                      const SpectralForecastOptions& options = {});

/// The smoothed mean week the forecaster tiles (exposed for inspection
/// and tests).
std::vector<double> spectral_mean_week(std::span<const double> history,
                                       const SpectralForecastOptions& options = {});

}  // namespace cellscope
