#include "forecast/anomaly.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "common/time_grid.h"

namespace cellscope {

TrafficAnomalyDetector::TrafficAnomalyDetector(
    std::span<const double> history)
    : TrafficAnomalyDetector(history, AnomalyOptions{}) {}

TrafficAnomalyDetector::TrafficAnomalyDetector(
    std::span<const double> history, AnomalyOptions options)
    : options_(options) {
  const auto week = static_cast<std::size_t>(TimeGrid::kSlotsPerWeek);
  CS_CHECK_MSG(history.size() >= 2 * week,
               "anomaly detector needs at least two weeks of history");
  CS_CHECK_MSG(options_.threshold > 0.0, "threshold must be positive");

  means_.assign(week, 0.0);
  sigmas_.assign(week, 0.0);
  std::vector<std::size_t> counts(week, 0);
  for (std::size_t s = 0; s < history.size(); ++s) {
    means_[s % week] += history[s];
    ++counts[s % week];
  }
  for (std::size_t s = 0; s < week; ++s)
    means_[s] /= static_cast<double>(counts[s]);
  for (std::size_t s = 0; s < history.size(); ++s) {
    const double d = history[s] - means_[s % week];
    sigmas_[s % week] += d * d;
  }
  for (std::size_t s = 0; s < week; ++s)
    sigmas_[s] = std::sqrt(sigmas_[s] / static_cast<double>(counts[s]));

  // With only a few weeks of history the per-slot sigma is a 2-4-sample
  // estimate and randomly undershoots, and the slot mean itself carries
  // sigma/sqrt(weeks) of estimation error; pool with an *upper* quantile
  // of the city-typical relative dispersion so no slot gets an
  // implausibly tight band (the 75th percentile compensates both
  // small-sample effects).
  std::vector<double> relative;
  relative.reserve(week);
  for (std::size_t s = 0; s < week; ++s)
    if (means_[s] > 0.0) relative.push_back(sigmas_[s] / means_[s]);
  const double pooled_relative =
      relative.empty() ? 0.0 : quantile(relative, 0.75);
  const double floor_relative =
      std::max(options_.min_relative_sigma, pooled_relative);
  for (std::size_t s = 0; s < week; ++s) {
    sigmas_[s] = std::max(sigmas_[s], floor_relative * std::fabs(means_[s]));
    if (sigmas_[s] <= 0.0) sigmas_[s] = 1e-9;  // all-zero slot history
  }
  phase_ = history.size() % week;
}

std::vector<double> TrafficAnomalyDetector::score(
    std::span<const double> series) const {
  const auto week = static_cast<std::size_t>(TimeGrid::kSlotsPerWeek);
  std::vector<double> out;
  out.reserve(series.size());
  for (std::size_t s = 0; s < series.size(); ++s) {
    const std::size_t slot = (phase_ + s) % week;
    out.push_back((series[s] - means_[slot]) / sigmas_[slot]);
  }
  return out;
}

std::vector<Anomaly> TrafficAnomalyDetector::detect(
    std::span<const double> series) const {
  const auto scores = score(series);
  std::vector<Anomaly> anomalies;
  bool open = false;
  Anomaly current;
  std::size_t quiet = 0;

  auto close = [&](std::size_t end) {
    current.end_slot = end;
    if (current.end_slot - current.begin_slot >= options_.min_duration)
      anomalies.push_back(current);
    open = false;
  };

  for (std::size_t s = 0; s < scores.size(); ++s) {
    const double z = scores[s];
    if (std::fabs(z) >= options_.threshold) {
      if (!open) {
        open = true;
        current = Anomaly{};
        current.begin_slot = s;
        current.peak_score = z;
        current.is_surge = z > 0.0;
      }
      if (std::fabs(z) > std::fabs(current.peak_score)) {
        current.peak_score = z;
        current.is_surge = z > 0.0;
      }
      quiet = 0;
    } else if (open) {
      ++quiet;
      if (quiet > options_.gap_tolerance) close(s - quiet + 1);
    }
  }
  if (open) close(scores.size() - quiet);
  return anomalies;
}

}  // namespace cellscope
