#include "forecast/pattern_forecaster.h"

#include <limits>

#include "common/error.h"
#include "common/stats.h"
#include "common/time_grid.h"

namespace cellscope {

PatternForecaster::PatternForecaster(
    std::vector<std::vector<double>> templates)
    : templates_(std::move(templates)) {
  CS_CHECK_MSG(!templates_.empty(), "need at least one template");
  for (const auto& t : templates_)
    CS_CHECK_MSG(t.size() == static_cast<std::size_t>(TimeGrid::kSlotsPerWeek),
                 "templates must cover one 1008-slot week");
}

std::size_t PatternForecaster::match_or_prior(std::span<const double> history,
                                              std::size_t prior) const {
  CS_CHECK_MSG(prior < templates_.size(), "prior template out of range");
  if (history.size() < kMinMatchSlots) return prior;
  return match(history);
}

std::size_t PatternForecaster::match(std::span<const double> history) const {
  CS_CHECK_MSG(history.size() >= kMinMatchSlots,
               "matching needs at least half a day of history");
  // Compare shapes: z-score the history and the template restricted to
  // the same slots-of-week.
  const auto z_history = zscore(history);
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_template = 0;
  for (std::size_t t = 0; t < templates_.size(); ++t) {
    std::vector<double> segment;
    segment.reserve(history.size());
    for (std::size_t s = 0; s < history.size(); ++s)
      segment.push_back(
          templates_[t][s % static_cast<std::size_t>(TimeGrid::kSlotsPerWeek)]);
    const auto z_segment = zscore(segment);
    const double d = squared_distance(z_history, z_segment);
    if (d < best) {
      best = d;
      best_template = t;
    }
  }
  return best_template;
}

std::vector<double> PatternForecaster::forecast(
    std::span<const double> history, std::size_t horizon) const {
  const std::size_t chosen = match(history);
  const auto& pattern = templates_[chosen];

  // De-normalization: match the history's mean and dispersion to the
  // template's over the same covered slots.
  std::vector<double> covered;
  covered.reserve(history.size());
  for (std::size_t s = 0; s < history.size(); ++s)
    covered.push_back(
        pattern[s % static_cast<std::size_t>(TimeGrid::kSlotsPerWeek)]);
  const double history_mean = mean(history);
  const double history_sd = stddev(history);
  const double template_mean = mean(covered);
  const double template_sd = stddev(covered);
  const double scale =
      template_sd > 0.0 ? history_sd / template_sd : 0.0;

  std::vector<double> out;
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    const double t =
        pattern[(history.size() + h) %
                static_cast<std::size_t>(TimeGrid::kSlotsPerWeek)];
    out.push_back(std::max(0.0, history_mean + scale * (t - template_mean)));
  }
  return out;
}

}  // namespace cellscope
