// Traffic anomaly detection.
//
// A direct application of the pattern model: once a tower's expected
// weekly shape is known, deviations flag events — a flash crowd at an
// entertainment tower, an outage, a misbehaving logger. The detector
// estimates a per-slot-of-week mean and dispersion from history and
// scores each new observation as a robust z-score; runs of high scores
// are merged into anomaly intervals.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cellscope {

/// One detected anomaly interval.
struct Anomaly {
  std::size_t begin_slot = 0;  ///< index into the scored series
  std::size_t end_slot = 0;    ///< exclusive
  double peak_score = 0.0;     ///< largest |z| in the interval
  bool is_surge = true;        ///< traffic above (true) or below model
};

/// Detector options.
struct AnomalyOptions {
  /// |z|-score threshold to open an interval.
  double threshold = 4.0;
  /// Slots the score may dip below threshold without closing the interval
  /// (bridges brief returns to normal inside one event).
  std::size_t gap_tolerance = 2;
  /// Dispersion floor as a fraction of the slot mean, guarding slots
  /// whose history happened to be near-constant.
  double min_relative_sigma = 0.05;
  /// Minimum interval length in slots. Physical events span multiple
  /// 10-minute slots; single-slot exceedances are sampling noise (with
  /// ~1000 slots per scored week, a 4-sigma spike occurs by chance).
  std::size_t min_duration = 2;
};

/// A per-slot-of-week traffic model fitted from history.
class TrafficAnomalyDetector {
 public:
  /// Fits slot-of-week means and standard deviations. The history must
  /// cover at least two full weeks (one dispersion sample per slot).
  explicit TrafficAnomalyDetector(std::span<const double> history);
  TrafficAnomalyDetector(std::span<const double> history,
                         AnomalyOptions options);

  /// Z-score of each observation in a series that *continues* the history
  /// (slot phase continues where history ended).
  std::vector<double> score(std::span<const double> series) const;

  /// Merged anomaly intervals in the series.
  std::vector<Anomaly> detect(std::span<const double> series) const;

  /// Fitted per-slot-of-week means (1008 values).
  const std::vector<double>& slot_means() const { return means_; }

 private:
  AnomalyOptions options_;
  std::vector<double> means_;
  std::vector<double> sigmas_;
  std::size_t phase_ = 0;  ///< slot-of-week where scoring starts
};

}  // namespace cellscope
