#include "forecast/spectral_forecaster.h"

#include "common/error.h"
#include "common/time_grid.h"
#include "dsp/spectrum.h"

namespace cellscope {

std::vector<double> spectral_mean_week(std::span<const double> history,
                                       const SpectralForecastOptions& options) {
  CS_CHECK_MSG(
      history.size() >= static_cast<std::size_t>(TimeGrid::kSlotsPerWeek),
      "spectral forecaster needs at least one week of history");
  CS_CHECK_MSG(options.keep_harmonics >= 1, "keep at least one harmonic");

  // Mean week over all *complete* weeks in the history (partial tails
  // would bias weekday slots).
  const std::size_t weeks = history.size() / TimeGrid::kSlotsPerWeek;
  std::vector<double> week(TimeGrid::kSlotsPerWeek, 0.0);
  for (std::size_t w = 0; w < weeks; ++w)
    for (int s = 0; s < TimeGrid::kSlotsPerWeek; ++s)
      week[static_cast<std::size_t>(s)] +=
          history[w * TimeGrid::kSlotsPerWeek + static_cast<std::size_t>(s)];
  for (auto& v : week) v /= static_cast<double>(weeks);

  // Harmonic truncation: keep DC and the first keep_harmonics lines.
  const Spectrum spectrum(week);
  std::vector<std::size_t> keep;
  const std::size_t max_k =
      std::min<std::size_t>(options.keep_harmonics, week.size() / 2);
  for (std::size_t k = 1; k <= max_k; ++k) keep.push_back(k);
  auto smoothed = spectrum.reconstruct(keep);
  // Traffic is non-negative; the truncation can undershoot near deep
  // valleys.
  for (auto& v : smoothed) v = std::max(0.0, v);
  return smoothed;
}

std::vector<double> spectral_forecast(std::span<const double> history,
                                      std::size_t horizon,
                                      const SpectralForecastOptions& options) {
  const auto week = spectral_mean_week(history, options);
  std::vector<double> out;
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h)
    out.push_back(
        week[(history.size() + h) % static_cast<std::size_t>(
                                        TimeGrid::kSlotsPerWeek)]);
  return out;
}

}  // namespace cellscope
