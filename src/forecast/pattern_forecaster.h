// Pattern-template forecasting — cold-start prediction for towers with
// very little history.
//
// The clustering result gives five reusable weekly templates (z-scored
// cluster centroids). For a tower with only a day or two of observations,
// match it to the best template, estimate its own mean/scale from the
// short history, and predict template * scale + mean. This is the
// operational payoff of the paper's claim that five patterns cover all
// towers: a brand-new tower can be provisioned from its first hours.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cellscope {

/// A library of weekly traffic templates (z-scored, 1008 slots each),
/// typically the labeled cluster centroids of an Experiment.
class PatternForecaster {
 public:
  /// Minimum history for shape matching: half a day (72 slots). Below
  /// this, a z-scored shape comparison is meaningless and callers fall
  /// back to a prior (match_or_prior).
  static constexpr std::size_t kMinMatchSlots = 72;

  /// `templates` must be non-empty, each of 1008 slots.
  explicit PatternForecaster(std::vector<std::vector<double>> templates);

  /// Index of the template best matching a (partial) history. The match
  /// compares z-scored shapes over the slots the history covers, so a
  /// single day is enough to pick a template. Requires at least
  /// kMinMatchSlots of history.
  std::size_t match(std::span<const double> history) const;

  /// Cold-start-safe matching: match(history) when the history reaches
  /// kMinMatchSlots, otherwise the caller-supplied `prior` template
  /// (typically the most populous training cluster). Never produces NaN:
  /// constant or all-zero histories z-score to zero vectors and still
  /// compare finitely. Shared by the stream OnlineClassifier for towers
  /// with under a day of observations (DESIGN.md §9).
  std::size_t match_or_prior(std::span<const double> history,
                             std::size_t prior) const;

  /// Forecasts `horizon` slots following `history`: the matched template
  /// de-normalized with the history's mean and standard deviation.
  /// Requires at least half a day (72 slots) of history.
  std::vector<double> forecast(std::span<const double> history,
                               std::size_t horizon) const;

  std::size_t template_count() const { return templates_.size(); }

 private:
  std::vector<std::vector<double>> templates_;
};

}  // namespace cellscope
