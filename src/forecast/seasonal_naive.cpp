#include "forecast/seasonal_naive.h"

#include "common/error.h"
#include "common/time_grid.h"

namespace cellscope {

std::vector<double> seasonal_naive_forecast(std::span<const double> history,
                                            std::size_t horizon) {
  CS_CHECK_MSG(history.size() >= static_cast<std::size_t>(TimeGrid::kSlotsPerDay),
               "seasonal-naive needs at least one day of history");
  const std::size_t season =
      history.size() >= static_cast<std::size_t>(TimeGrid::kSlotsPerWeek)
          ? TimeGrid::kSlotsPerWeek
          : TimeGrid::kSlotsPerDay;

  std::vector<double> out;
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    // Index of the same slot one (or more) season(s) earlier, entirely
    // within history.
    std::size_t t = history.size() + h;
    while (t >= history.size()) t -= season;
    out.push_back(history[t]);
  }
  return out;
}

}  // namespace cellscope
