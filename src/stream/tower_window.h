// Per-tower incremental traffic accumulator — the streaming counterpart
// of one TrafficMatrix row.
//
// A TowerWindow maintains the paper's 10-minute bin grid as a rolling
// 4-week (4032-bin) ring buffer: add() is O(1) — route the record's start
// minute to its bin, accumulate bytes, and update the running first and
// second moments incrementally, so a live z-score query never rescans the
// grid. Bins store exact integer byte counts; because integer addition is
// commutative and associative, the final grid is bit-identical regardless
// of arrival order or shard assignment — the foundation of the
// stream-vs-batch equivalence contract (DESIGN.md §9).
//
// Ring semantics: bin index = (start_minute / 10) % 4032, with a per-bin
// cycle stamp (absolute slot / 4032). A record from a newer cycle resets
// the bin before accumulating; a record from an older cycle than the one
// the bin holds is stale and rejected. The window therefore always holds
// the most recent four weeks of data the stream has delivered.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time_grid.h"

namespace cellscope {

/// Streaming per-tower 4-week bin grid with O(1) updates and incremental
/// moments.
class TowerWindow {
 public:
  /// Outcome of one add().
  enum class Apply {
    kApplied,  ///< bytes accumulated into the window
    kStale,    ///< record older than the bin's retained cycle — rejected
  };

  /// One observed bin, exported for checkpointing.
  struct ObservedBin {
    std::uint32_t slot = 0;   ///< ring index in [0, kSlots)
    std::uint32_t cycle = 0;  ///< 4-week cycle the bin's data belongs to
    std::uint64_t bytes = 0;  ///< exact accumulated bytes
  };

  /// Serializable full state (snapshot.h). `sumsq` is carried verbatim so
  /// a restored window resumes with bit-identical moments.
  struct State {
    std::vector<ObservedBin> bins;  ///< ascending slot order
    double sumsq = 0.0;
  };

  TowerWindow();

  /// Accumulates `bytes` into the bin containing `start_minute` (absolute
  /// minutes since stream epoch). O(1).
  Apply add(std::uint64_t start_minute, std::uint64_t bytes);

  /// Number of bins that have received at least one record (a zero-byte
  /// record still marks its bin observed).
  std::size_t observed_slots() const { return observed_; }

  /// Exact total bytes across all retained bins.
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Highest cycle any record has touched (0 before the ring ever wraps).
  std::uint32_t latest_cycle() const { return latest_cycle_; }

  /// Event-time high watermark of this window: the largest start_minute
  /// any applied record carried (0 before the first record) — the
  /// per-tower counterpart of the ingestor's shard watermark, kept O(1)
  /// so the introspection plane can report per-tower progress without a
  /// grid scan. Recomputed exactly from bins on checkpoint restore.
  std::uint64_t latest_minute() const { return latest_minute_; }

  /// Mean bytes per bin over the full grid (unobserved bins count as 0),
  /// from the running sum — O(1).
  double mean() const;

  /// Population variance over the full grid from the running second
  /// moment — O(1). Incremental floating-point updates drift from the
  /// batch value by at most ~1e-9 relative; the equivalence-critical
  /// vectors below never use it.
  double variance() const;

  /// The window as a batch-layout row: raw_vector()[i] is ring slot i —
  /// for a stream confined to the measurement month, exactly the
  /// TrafficMatrix row the batch vectorizer builds.
  std::vector<double> raw_vector() const;

  /// zscore(raw_vector()) via the same helper the batch normalization
  /// uses — bit-identical to zscore_rows on the equivalent matrix row.
  std::vector<double> zscored() const;

  /// The mean-week fold of zscored(), computed by pipeline::fold_to_week
  /// itself — bit-identical to the batch clustering representation.
  std::vector<double> folded_week() const;

  /// Raw bin values from the first to the last observed ring slot,
  /// inclusive (unobserved bins inside the span read 0) — the short
  /// history a cold-start classifier matches on. Empty when nothing was
  /// observed.
  std::vector<double> observed_history() const;

  /// Exports the full state for checkpointing (ascending slot order).
  State state() const;

  /// Rebuilds a window from a checkpointed state. Integer accumulators
  /// are recomputed exactly; `sumsq` is restored verbatim.
  static TowerWindow from_state(const State& state);

 private:
  std::vector<std::uint64_t> bins_;   // [kSlots] exact bytes
  std::vector<std::int32_t> cycles_;  // [kSlots]; -1 = never observed
  std::uint32_t latest_cycle_ = 0;
  std::uint64_t latest_minute_ = 0;
  std::size_t observed_ = 0;
  std::uint64_t total_bytes_ = 0;
  double sumsq_ = 0.0;  // running sum of squared bin values
};

}  // namespace cellscope
