// Crash-safe checkpoint/restore for the streaming ingestor.
//
// write_snapshot serializes the full in-flight state — every tower
// window's observed bins (exact integer bytes + ring cycle), its running
// second moment, the watermark, and the lifetime ingest counters — to a
// checksummed little-endian binary frame. read_snapshot restores that
// state into a freshly constructed ingestor, which may use a different
// shard count (windows re-route by tower id); a restarted replay then
// finishes with vectors and labels bit-identical to an uninterrupted run
// (ctest -L stream pins this).
//
// Frame format (all integers little-endian, fixed width):
//   u32 magic "CSSN"   u32 version   u64 payload_len
//   payload (payload_len bytes)      u32 crc32(payload)
// Payload layout:
//   u64 watermark  u64 offered  u64 accepted  u64 dropped  u64 late
//   u64 stale  u64 n_windows
//   per window: u32 tower_id  u64 n_bins  f64 sumsq
//               then per bin (ascending slot): u32 slot  u32 cycle
//               u64 bytes
//
// Durability contract (DESIGN.md §9 "Durability"):
//  - write: serialize to memory, write <path>.tmp, fsync, then atomically
//    rename over <path> (and fsync the directory), so a crash at any
//    instant leaves either the old complete snapshot or the new complete
//    snapshot — never a torn file — at <path>.
//  - read: the frame is validated end to end (magic, version, length
//    against the file size, CRC over the payload) and decoded into a
//    staging structure BEFORE the ingestor is touched. Any truncation,
//    bit flip, or malformed field throws IoError and leaves the target
//    ingestor bit-identical to its pre-call state — restore is
//    all-or-nothing.
// Failures bump cellscope.stream.snapshot_{write,restore}_failures and
// log at warn level. The `ctest -L fault` suite (truncation at every
// field boundary, single-bit flips, failpoint-injected partial writes
// and rename failures) proves the contract stays true.
#pragma once

#include <cstdint>
#include <string>

namespace cellscope {

class StreamIngestor;

/// Snapshot file magic ("CSSN" little-endian) and current version.
/// Version 2 added the length/CRC framing; version-1 files (unframed)
/// are rejected with a typed IoError naming both versions.
inline constexpr std::uint32_t kSnapshotMagic = 0x4E535343u;
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Bookkeeping returned by write_snapshot.
struct SnapshotInfo {
  std::size_t towers = 0;
  std::uint64_t bins = 0;      ///< observed bins serialized
  std::uint64_t bytes = 0;     ///< file size on disk (0 if stat failed)
  std::uint32_t crc32 = 0;     ///< payload checksum written to the frame
};

/// Serializes the ingestor's full state to `path` via the
/// write-tmp/fsync/rename protocol above. Pending (offered but
/// undrained) records are NOT part of a snapshot — drain first; the
/// function throws when records are still pending, because silently
/// dropping them would break the resume-bit-identical contract. Throws
/// IoError on any I/O failure; `path` then still holds whatever complete
/// snapshot it held before the call.
SnapshotInfo write_snapshot(const std::string& path,
                            const StreamIngestor& ingestor);

/// Restores a snapshot into `ingestor` (freshly constructed; any shard
/// count). All-or-nothing: throws IoError on open failures, truncation,
/// checksum mismatches, unsupported versions, and malformed window data,
/// and in every failure case leaves `ingestor` exactly as it was.
void read_snapshot(const std::string& path, StreamIngestor& ingestor);

}  // namespace cellscope
