// Checkpoint/restore for the streaming ingestor.
//
// write_snapshot serializes the full in-flight state — every tower
// window's observed bins (exact integer bytes + ring cycle), its running
// second moment, the watermark, and the lifetime ingest counters — to a
// versioned little-endian binary file. read_snapshot restores that state
// into a freshly constructed ingestor, which may use a different shard
// count (windows re-route by tower id); a restarted replay then finishes
// with vectors and labels bit-identical to an uninterrupted run
// (ctest -L stream pins this).
//
// Format (all integers little-endian, fixed width):
//   u32 magic "CSSN"  u32 version
//   u64 watermark  u64 offered  u64 accepted  u64 dropped  u64 late
//   u64 stale  u64 n_windows
//   per window: u32 tower_id  u64 n_bins  f64 sumsq
//               then per bin: u32 slot  u32 cycle  u64 bytes
// Truncated files, bad magic, and unknown versions throw; a snapshot is
// written to <path>.tmp and atomically renamed so readers never observe
// a half-written file.
#pragma once

#include <cstdint>
#include <string>

namespace cellscope {

class StreamIngestor;

/// Snapshot file magic ("CSSN" little-endian) and current version.
inline constexpr std::uint32_t kSnapshotMagic = 0x4E535343u;
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Bookkeeping returned by write_snapshot.
struct SnapshotInfo {
  std::size_t towers = 0;
  std::uint64_t bins = 0;   ///< observed bins serialized
  std::uint64_t bytes = 0;  ///< file size on disk
};

/// Serializes the ingestor's full state to `path`. Pending (offered but
/// undrained) records are NOT part of a snapshot — drain first; the
/// function throws when records are still pending, because silently
/// dropping them would break the resume-bit-identical contract.
SnapshotInfo write_snapshot(const std::string& path,
                            const StreamIngestor& ingestor);

/// Restores a snapshot into `ingestor` (freshly constructed; any shard
/// count). Throws IoError on open/short-read failures and Error on bad
/// magic/version or malformed window data.
void read_snapshot(const std::string& path, StreamIngestor& ingestor);

}  // namespace cellscope
