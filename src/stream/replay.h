// Replay harness — streams a recorded (or generated) trace through the
// ingestor with controllable arrival-order defects.
//
// Real feeds deliver records roughly by time but never exactly: network
// skew reorders neighbors and a minority of records arrives very late.
// perturb_arrival_order models both deterministically (seeded): records
// are sorted by start time, a bounded Fisher-Yates pass shuffles each
// record within ±skew_window positions, and a late_fraction sample is
// deferred to the very end of the stream. replay_trace then feeds the
// ingestor batch by batch, draining on the shared pool, and registers the
// dropped/late data-quality sentinels evaluated when its stream.replay
// stage span closes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mapred/thread_pool.h"
#include "stream/ingestor.h"
#include "stream/online_classifier.h"
#include "traffic/trace_codec.h"
#include "traffic/trace_mmap.h"
#include "traffic/trace_record.h"

namespace cellscope {

/// Replay knobs. Defaults replay in order, no defects.
struct ReplayOptions {
  std::uint64_t seed = 99;
  /// Records offered per offer_batch()/drain() round.
  std::size_t batch_size = 8192;
  /// Local reorder radius, in records (0 = in-order).
  std::size_t skew_window = 0;
  /// Fraction of records deferred to the end of the stream, in [0, 1].
  double late_fraction = 0.0;
  /// Run classifier.classify_all every this many batches (0 = only the
  /// final pass) — the online re-evaluation cadence.
  std::size_t classify_every_batches = 0;
  /// When > 0 (and metrics_jsonl_path is set), append one full metrics
  /// snapshot line to the JSONL file at roughly this wall-time cadence
  /// during the replay, plus one final line — a file-based scrape that
  /// works with the HTTP introspection server disabled. Each line is
  /// {"wall_ms": <replay wall clock>, "metrics": <snapshot_json()>}.
  std::uint32_t metrics_interval_ms = 0;
  std::string metrics_jsonl_path;
};

/// Replay outcome.
struct ReplayStats {
  std::size_t records = 0;
  std::size_t batches = 0;
  IngestStats ingest;  ///< ingestor lifetime counters after the replay
  double wall_ms = 0.0;
  double records_per_sec = 0.0;
  std::size_t classify_passes = 0;
  /// Metrics snapshot lines appended to metrics_jsonl_path (0 when the
  /// periodic scrape was off).
  std::size_t metrics_snapshots = 0;
  /// Final classification per tower (ascending id); empty when no
  /// classifier was supplied.
  std::vector<std::pair<std::uint32_t, Classification>> labels;
};

/// Deterministically perturbs arrival order per the options (see file
/// comment). Same seed + options + records => same order, bit for bit.
std::vector<TrafficLog> perturb_arrival_order(std::vector<TrafficLog> logs,
                                              const ReplayOptions& options);

/// Streams `logs` (already in desired arrival order — compose with
/// perturb_arrival_order for defects) through the ingestor in batches,
/// draining each batch on `pool`. When `classifier` is non-null the final
/// (and cadenced) classification passes run and the last one is returned
/// in ReplayStats::labels. Registers quality sentinels on the
/// stream.replay stage: record drop ratio (fail > 1%) and late ratio
/// (warn > 25%).
ReplayStats replay_trace(const std::vector<TrafficLog>& logs,
                         StreamIngestor& ingestor, ThreadPool& pool,
                         const ReplayOptions& options = {},
                         const OnlineClassifier* classifier = nullptr);

/// Knobs for replaying straight from a trace file (out-of-core: only one
/// batch / chunk of records is resident at a time).
struct FileReplayOptions {
  /// Backend; kAuto routes by extension. Columnar inputs always replay
  /// through the mapped reader (kBinary is treated as kMmap here).
  TraceCodec codec = TraceCodec::kAuto;
  /// Columnar inputs: apply decoded chunks via ingest_columns (the fused
  /// bulk path — no queue, no drain, user/address columns never decoded).
  /// When false, chunks go through offer_batch + drain like any other
  /// producer. CSV inputs always use the offer path.
  bool bulk = true;
  /// Records per offer_batch round on the CSV/offer path.
  std::size_t batch_size = 8192;
  /// Run classifier.classify_all every this many batches/chunks (0 =
  /// only the final pass).
  std::size_t classify_every_batches = 0;
  /// Columnar inputs: chunks whose footer tower/minute ranges cannot
  /// overlap this filter are skipped wholesale (counted on
  /// cellscope.io.chunks_skipped) — coarse, chunk-granular pruning;
  /// records of any chunk that overlaps all apply. Defaults pass all.
  ChunkFilter filter{};
};

/// Streams a trace file through the ingestor via the codec layer —
/// the full-scale ingest path. Corrupt chunks / malformed CSV lines are
/// skipped and counted per the codec contract. Registers the same
/// stream.replay sentinels as replay_trace. Throws IoError when the file
/// cannot be opened or its structure is invalid.
ReplayStats replay_trace_file(const std::string& path,
                              StreamIngestor& ingestor, ThreadPool& pool,
                              const FileReplayOptions& options = {},
                              const OnlineClassifier* classifier = nullptr);

}  // namespace cellscope
