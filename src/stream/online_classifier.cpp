#include "stream/online_classifier.h"

#include <algorithm>
#include <cmath>

#include "analysis/component_analysis.h"
#include "common/error.h"
#include "common/stats.h"
#include "core/experiment.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "pipeline/traffic_matrix.h"

namespace cellscope {

ModelSnapshot snapshot_model(const Experiment& experiment) {
  ModelSnapshot model;
  const auto& labels = experiment.labels();
  const std::size_t k = experiment.n_clusters();

  // Centroids: per-cluster means of the folded z-scored rows — the same
  // representation the dendrogram clustered when fold_weekly is on.
  const auto folded = fold_to_week(experiment.zscored());
  model.centroids.assign(
      k, std::vector<double>(TimeGrid::kSlotsPerWeek, 0.0));
  model.populations.assign(k, 0);
  for (std::size_t i = 0; i < folded.size(); ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    ++model.populations[c];
    for (std::size_t s = 0; s < folded[i].size(); ++s)
      model.centroids[c][s] += folded[i][s];
  }
  for (std::size_t c = 0; c < k; ++c) {
    CS_CHECK_MSG(model.populations[c] > 0, "empty cluster in experiment");
    for (auto& v : model.centroids[c])
      v /= static_cast<double>(model.populations[c]);
  }
  model.regions = experiment.labeling().region_of_cluster;
  CS_CHECK_MSG(model.regions.size() == k,
               "labeling does not cover every cluster");

  // Primary components need all four pure regions; smaller experiments
  // may label fewer, and the classifier then works without them.
  bool all_pure = true;
  for (int r = 0; r < 4; ++r)
    all_pure = all_pure &&
               experiment.cluster_of_region(static_cast<FunctionalRegion>(r))
                   .has_value();
  if (all_pure) {
    const auto& reps = experiment.representatives();
    const auto& features = experiment.freq_features();
    for (int r = 0; r < 4; ++r)
      model.primary_features[r] = features[reps[r]].qp_feature();
    model.has_primaries = true;
  }
  return model;
}

OnlineClassifier::OnlineClassifier(ModelSnapshot model)
    : model_(std::move(model)),
      forecaster_(model_.centroids),
      index_(model_.centroids) {
  CS_CHECK_MSG(!model_.centroids.empty(), "model needs at least one cluster");
  CS_CHECK_MSG(model_.regions.size() == model_.centroids.size() &&
                   model_.populations.size() == model_.centroids.size(),
               "model arrays must align with the centroids");
  prior_ = static_cast<std::size_t>(
      std::max_element(model_.populations.begin(), model_.populations.end()) -
      model_.populations.begin());
}

Classification OnlineClassifier::classify(const TowerWindow& window) const {
  Classification out;
  if (window.observed_slots() < kColdStartSlots) {
    // Cold start: match the short observed history against the centroid
    // templates (the batch forecaster's shape match), or take the prior
    // outright when even that is too thin.
    out.cold_start = true;
    out.cluster = forecaster_.match_or_prior(window.observed_history(),
                                             prior_);
    out.region = model_.regions[out.cluster];
    out.distance =
        squared_distance(window.folded_week(), model_.centroids[out.cluster]);
    out.confidence = 0.0;
    return out;
  }

  const auto zscored = window.zscored();
  const auto folded = fold_to_week({zscored}).front();
  double best = 0.0;
  const std::size_t best_cluster = index_.nearest(folded, &best);
  out.cluster = best_cluster;
  out.region = model_.regions[best_cluster];
  out.distance = best;
  if (model_.has_primaries) {
    const auto feature = compute_freq_features(zscored).qp_feature();
    const auto decomposition =
        decompose_feature(feature, model_.primary_features);
    out.confidence = 1.0 / (1.0 + decomposition.residual);
  } else {
    out.confidence = 1.0 / (1.0 + std::sqrt(best));
  }
  return out;
}

std::vector<std::pair<std::uint32_t, Classification>>
OnlineClassifier::classify_all(const StreamIngestor& ingestor,
                               ThreadPool* pool) const {
  obs::StageSpan span("stream.classify", "stream", obs::LogLevel::kDebug);
  const auto ids = ingestor.tower_ids();
  std::vector<std::pair<std::uint32_t, Classification>> out(ids.size());
  const auto classify_one = [&](std::size_t i) {
    out[i] = {ids[i], classify(ingestor.window_copy(ids[i]))};
  };
  if (pool != nullptr && pool->thread_count() > 1 && ids.size() > 1) {
    pool->parallel_for(ids.size(), classify_one);
  } else {
    for (std::size_t i = 0; i < ids.size(); ++i) classify_one(i);
  }
  std::size_t cold = 0;
  for (const auto& [id, c] : out)
    if (c.cold_start) ++cold;
  // Every window has now been (re)classified: resolve the ingestor's
  // offer-to-classify latency frontier and flush sampled classify spans.
  ingestor.note_classify_pass();
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("cellscope.stream.classify_passes").add(1);
  registry.counter("cellscope.stream.classifications").add(out.size());
  registry.counter("cellscope.stream.cold_starts").add(cold);
  span.annotate({"towers", out.size()});
  span.annotate({"cold_starts", cold});
  return out;
}

}  // namespace cellscope
