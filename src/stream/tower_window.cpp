#include "stream/tower_window.h"

#include <algorithm>

#include "common/error.h"
#include "common/stats.h"
#include "pipeline/traffic_matrix.h"

namespace cellscope {

TowerWindow::TowerWindow()
    : bins_(TimeGrid::kSlots, 0), cycles_(TimeGrid::kSlots, -1) {}

TowerWindow::Apply TowerWindow::add(std::uint64_t start_minute,
                                    std::uint64_t bytes) {
  const std::uint64_t abs_slot = start_minute / TimeGrid::kSlotMinutes;
  const auto slot = static_cast<std::size_t>(abs_slot % TimeGrid::kSlots);
  const auto cycle = static_cast<std::uint32_t>(abs_slot / TimeGrid::kSlots);

  const std::int32_t held = cycles_[slot];
  if (held >= 0 && cycle < static_cast<std::uint32_t>(held))
    return Apply::kStale;  // older than the data the ring retains here

  std::uint64_t old = bins_[slot];
  if (held < 0) {
    ++observed_;
  } else if (cycle > static_cast<std::uint32_t>(held)) {
    // The ring rolled past this bin: evict the previous cycle's bytes.
    total_bytes_ -= old;
    sumsq_ -= static_cast<double>(old) * static_cast<double>(old);
    bins_[slot] = 0;
    old = 0;
  }
  const std::uint64_t updated = old + bytes;
  bins_[slot] = updated;
  cycles_[slot] = static_cast<std::int32_t>(cycle);
  latest_cycle_ = std::max(latest_cycle_, cycle);
  latest_minute_ = std::max(latest_minute_, start_minute);
  total_bytes_ += bytes;
  sumsq_ += static_cast<double>(updated) * static_cast<double>(updated) -
            static_cast<double>(old) * static_cast<double>(old);
  return Apply::kApplied;
}

double TowerWindow::mean() const {
  return static_cast<double>(total_bytes_) /
         static_cast<double>(TimeGrid::kSlots);
}

double TowerWindow::variance() const {
  const double m = mean();
  const double v =
      sumsq_ / static_cast<double>(TimeGrid::kSlots) - m * m;
  return v > 0.0 ? v : 0.0;  // clamp incremental round-off
}

std::vector<double> TowerWindow::raw_vector() const {
  std::vector<double> out(TimeGrid::kSlots, 0.0);
  for (std::size_t s = 0; s < bins_.size(); ++s)
    out[s] = static_cast<double>(bins_[s]);
  return out;
}

std::vector<double> TowerWindow::zscored() const { return zscore(raw_vector()); }

std::vector<double> TowerWindow::folded_week() const {
  // Route through the batch fold itself so the streaming representation
  // is the batch representation, bit for bit.
  return fold_to_week({zscored()}).front();
}

std::vector<double> TowerWindow::observed_history() const {
  std::size_t first = bins_.size();
  std::size_t last = 0;
  for (std::size_t s = 0; s < cycles_.size(); ++s) {
    if (cycles_[s] < 0) continue;
    first = std::min(first, s);
    last = s;
  }
  if (first == bins_.size()) return {};
  std::vector<double> out;
  out.reserve(last - first + 1);
  for (std::size_t s = first; s <= last; ++s)
    out.push_back(static_cast<double>(bins_[s]));
  return out;
}

TowerWindow::State TowerWindow::state() const {
  State state;
  state.bins.reserve(observed_);
  for (std::size_t s = 0; s < bins_.size(); ++s) {
    if (cycles_[s] < 0) continue;
    state.bins.push_back({static_cast<std::uint32_t>(s),
                          static_cast<std::uint32_t>(cycles_[s]), bins_[s]});
  }
  state.sumsq = sumsq_;
  return state;
}

TowerWindow TowerWindow::from_state(const State& state) {
  TowerWindow window;
  for (const auto& bin : state.bins) {
    CS_CHECK_MSG(bin.slot < TimeGrid::kSlots,
                 "checkpointed bin slot out of range");
    CS_CHECK_MSG(window.cycles_[bin.slot] < 0,
                 "duplicate slot in checkpointed window");
    window.bins_[bin.slot] = bin.bytes;
    window.cycles_[bin.slot] = static_cast<std::int32_t>(bin.cycle);
    window.latest_cycle_ = std::max(window.latest_cycle_, bin.cycle);
    // Bin-granular reconstruction: the exact record start minute is gone,
    // so the restored watermark rounds down to the newest bin's slot start.
    const std::uint64_t abs_slot =
        static_cast<std::uint64_t>(bin.cycle) * TimeGrid::kSlots + bin.slot;
    window.latest_minute_ =
        std::max(window.latest_minute_, abs_slot * TimeGrid::kSlotMinutes);
    window.total_bytes_ += bin.bytes;
    ++window.observed_;
  }
  window.sumsq_ = state.sumsq;
  return window;
}

}  // namespace cellscope
