#include "stream/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/time_grid.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "stream/ingestor.h"

namespace cellscope {

namespace {

// Fixed-width little-endian scalar I/O over in-memory buffers. The
// project targets little-endian hosts (x86-64 / arm64); a byte-swapping
// port would slot in here.

template <typename T>
void put(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// Bounds-checked sequential decoder over a byte span. Every short read
/// is a typed IoError naming the field — by the time the payload cursor
/// runs, length and CRC already validated, so hitting one of these means
/// the writer and reader disagree about the layout.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}

  template <typename T>
  T get(const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ - offset_ < sizeof(T))
      throw IoError(std::string("snapshot truncated while reading ") + what);
    T value{};
    std::memcpy(&value, data_ + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  std::size_t remaining() const { return size_ - offset_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

/// Fully-decoded snapshot contents, staged so the ingestor is only
/// touched once the whole file has validated (all-or-nothing restore).
struct StagedSnapshot {
  IngestStats stats;
  std::vector<std::pair<std::uint32_t, TowerWindow::State>> windows;
  std::uint64_t bins_total = 0;
};

// Frame geometry: u32 magic + u32 version + u64 payload_len, then the
// payload, then the u32 CRC trailer.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kTrailerBytes = 4;

std::string serialize_payload(const IngestStats& stats,
                              const std::vector<std::pair<
                                  std::uint32_t, TowerWindow::State>>& windows,
                              SnapshotInfo& info) {
  std::string payload;
  put<std::uint64_t>(payload, stats.watermark_minute);
  put<std::uint64_t>(payload, stats.offered);
  put<std::uint64_t>(payload, stats.accepted);
  put<std::uint64_t>(payload, stats.dropped);
  put<std::uint64_t>(payload, stats.late);
  put<std::uint64_t>(payload, stats.stale);
  put<std::uint64_t>(payload, windows.size());
  info.towers = windows.size();
  for (const auto& [id, state] : windows) {
    put<std::uint32_t>(payload, id);
    put<std::uint64_t>(payload, state.bins.size());
    put<double>(payload, state.sumsq);
    for (const auto& bin : state.bins) {
      put<std::uint32_t>(payload, bin.slot);
      put<std::uint32_t>(payload, bin.cycle);
      put<std::uint64_t>(payload, bin.bytes);
    }
    info.bins += state.bins.size();
  }
  return payload;
}

StagedSnapshot decode_payload(std::string_view payload) {
  Cursor cursor(payload.data(), payload.size());
  StagedSnapshot staged;
  staged.stats.watermark_minute = cursor.get<std::uint64_t>("watermark");
  staged.stats.offered = cursor.get<std::uint64_t>("offered");
  staged.stats.accepted = cursor.get<std::uint64_t>("accepted");
  staged.stats.dropped = cursor.get<std::uint64_t>("dropped");
  staged.stats.late = cursor.get<std::uint64_t>("late");
  staged.stats.stale = cursor.get<std::uint64_t>("stale");
  const auto n_windows = cursor.get<std::uint64_t>("window count");

  // Each window needs at least its 20-byte header; a count beyond that
  // bound is corruption — reject before reserving memory for it.
  constexpr std::uint64_t kWindowHeaderBytes = 4 + 8 + 8;
  if (n_windows > cursor.remaining() / kWindowHeaderBytes)
    throw IoError("snapshot window count exceeds payload size: " +
                  std::to_string(n_windows));
  staged.windows.reserve(static_cast<std::size_t>(n_windows));

  for (std::uint64_t w = 0; w < n_windows; ++w) {
    const auto id = cursor.get<std::uint32_t>("tower id");
    const auto n_bins = cursor.get<std::uint64_t>("bin count");
    if (n_bins > TimeGrid::kSlots)
      throw IoError("snapshot window holds more bins than the grid: " +
                    std::to_string(n_bins));
    TowerWindow::State state;
    state.sumsq = cursor.get<double>("sumsq");
    state.bins.reserve(static_cast<std::size_t>(n_bins));
    for (std::uint64_t b = 0; b < n_bins; ++b) {
      TowerWindow::ObservedBin bin;
      bin.slot = cursor.get<std::uint32_t>("bin slot");
      bin.cycle = cursor.get<std::uint32_t>("bin cycle");
      bin.bytes = cursor.get<std::uint64_t>("bin bytes");
      // Writers emit bins in strictly ascending slot order; enforcing it
      // here guarantees in-range, duplicate-free slots, so the later
      // apply step (TowerWindow::from_state) can never throw mid-way.
      if (bin.slot >= TimeGrid::kSlots)
        throw IoError("snapshot bin slot out of range: " +
                      std::to_string(bin.slot));
      if (!state.bins.empty() && bin.slot <= state.bins.back().slot)
        throw IoError("snapshot bin slots not strictly ascending");
      state.bins.push_back(bin);
    }
    staged.windows.emplace_back(id, std::move(state));
    staged.bins_total += n_bins;
  }
  if (cursor.remaining() != 0)
    throw IoError("snapshot payload has " +
                  std::to_string(cursor.remaining()) +
                  " trailing bytes past the last window");
  return staged;
}

/// Writes the whole frame to <path>.tmp with an fsync before the atomic
/// rename — the classic ordered-durability dance, so a crash at any
/// point leaves either the old or the new complete file at `path`.
void write_frame_durably(const std::string& path, const std::string& frame) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    throw IoError("cannot open snapshot for writing: " + tmp + " (" +
                  std::strerror(errno) + ")");

  // A crashed/failed attempt leaves the torn .tmp behind (like a real
  // crash would); the next attempt truncates it, and readers only ever
  // see `path`.
  std::size_t limit = frame.size();
  const bool partial = CS_FAILPOINT("snapshot.write.partial");
  if (partial) limit = frame.size() / 2;

  std::size_t written = 0;
  while (written < limit) {
    const ssize_t n = ::write(fd, frame.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail = std::strerror(errno);
      ::close(fd);
      throw IoError("failed writing snapshot: " + tmp + " (" + detail + ")");
    }
    written += static_cast<std::size_t>(n);
  }
  if (partial) {
    ::close(fd);
    throw IoError("failpoint snapshot.write.partial: short write to " + tmp +
                  " (" + std::to_string(limit) + " of " +
                  std::to_string(frame.size()) + " bytes)");
  }

  if (::fsync(fd) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    throw IoError("failed fsyncing snapshot: " + tmp + " (" + detail + ")");
  }
  if (::close(fd) != 0)
    throw IoError("failed closing snapshot: " + tmp + " (" +
                  std::strerror(errno) + ")");

  if (CS_FAILPOINT("snapshot.rename.fail"))
    throw IoError("failpoint snapshot.rename.fail: refusing to rename " +
                  tmp + " into place");
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw IoError("failed renaming snapshot into place: " + path + " (" +
                  ec.message() + ")");

  // Persist the rename itself: fsync the containing directory. Best
  // effort — some filesystems refuse directory fsync; the data fsync
  // above already bounds the damage to "old complete file".
  const auto dir = std::filesystem::path(path).parent_path();
  const std::string dir_str = dir.empty() ? "." : dir.string();
  const int dir_fd = ::open(dir_str.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

obs::Counter& write_failures() {
  return obs::MetricsRegistry::instance().counter(
      "cellscope.stream.snapshot_write_failures");
}

obs::Counter& restore_failures() {
  return obs::MetricsRegistry::instance().counter(
      "cellscope.stream.snapshot_restore_failures");
}

}  // namespace

SnapshotInfo write_snapshot(const std::string& path,
                            const StreamIngestor& ingestor) {
  CS_CHECK_MSG(ingestor.pending() == 0,
               "drain the ingestor before snapshotting — pending records "
               "would be lost");
  const auto windows = ingestor.export_windows();
  const auto stats = ingestor.stats();

  SnapshotInfo info;
  const std::string payload = serialize_payload(stats, windows, info);
  info.crc32 = crc32(payload);

  std::string frame;
  frame.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
  put<std::uint32_t>(frame, kSnapshotMagic);
  put<std::uint32_t>(frame, kSnapshotVersion);
  put<std::uint64_t>(frame, static_cast<std::uint64_t>(payload.size()));
  frame += payload;
  put<std::uint32_t>(frame, info.crc32);

  try {
    write_frame_durably(path, frame);
  } catch (const Error& e) {
    write_failures().add(1);
    obs::log_warn("stream.snapshot_write_failed",
                  {{"path", path}, {"error", e.what()}});
    throw;
  }

  std::error_code ec;
  const auto on_disk = std::filesystem::file_size(path, ec);
  if (ec) {
    // The rename succeeded, so the snapshot is in place — only the size
    // probe failed. Report 0 rather than garbage.
    info.bytes = 0;
    obs::log_warn("stream.snapshot_size_unknown",
                  {{"path", path}, {"error", ec.message()}});
  } else {
    info.bytes = on_disk;
  }

  obs::MetricsRegistry::instance()
      .counter("cellscope.stream.snapshots_written")
      .add(1);
  obs::log_info("stream.snapshot_written", {{"path", path},
                                            {"towers", info.towers},
                                            {"bins", info.bins},
                                            {"bytes", info.bytes},
                                            {"crc32", info.crc32}});
  return info;
}

namespace {

/// Loads and fully validates the frame at `path`, returning the staged
/// contents. Touches no ingestor state; throws IoError on any defect.
StagedSnapshot load_and_validate(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open snapshot: " + path);
  std::string frame((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof())
    throw IoError("failed reading snapshot: " + path);

  if (frame.size() < kHeaderBytes + kTrailerBytes)
    throw IoError("snapshot smaller than its frame header: " + path + " (" +
                  std::to_string(frame.size()) + " bytes)");

  Cursor header(frame.data(), kHeaderBytes);
  const auto magic = header.get<std::uint32_t>("magic");
  if (magic != kSnapshotMagic)
    throw IoError("not a cellscope stream snapshot: " + path);
  const auto version = header.get<std::uint32_t>("version");
  if (version != kSnapshotVersion) {
    obs::log_warn("stream.snapshot_version_mismatch",
                  {{"path", path},
                   {"found", version},
                   {"supported", kSnapshotVersion}});
    throw IoError("unsupported snapshot version " + std::to_string(version) +
                  " (this build reads version " +
                  std::to_string(kSnapshotVersion) + "): " + path);
  }
  const auto payload_len = header.get<std::uint64_t>("payload length");
  if (payload_len != frame.size() - kHeaderBytes - kTrailerBytes)
    throw IoError("snapshot frame length mismatch (torn write?): " + path +
                  " declares " + std::to_string(payload_len) +
                  " payload bytes, file holds " +
                  std::to_string(frame.size() - kHeaderBytes - kTrailerBytes));

  const std::string_view payload(frame.data() + kHeaderBytes,
                                 static_cast<std::size_t>(payload_len));
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, frame.data() + frame.size() - kTrailerBytes,
              sizeof(stored_crc));
  const std::uint32_t computed = crc32(payload.data(), payload.size());
  if (computed != stored_crc)
    throw IoError("snapshot checksum mismatch (corrupt payload): " + path);

  return decode_payload(payload);
}

}  // namespace

void read_snapshot(const std::string& path, StreamIngestor& ingestor) {
  StagedSnapshot staged;
  try {
    staged = load_and_validate(path);
  } catch (const Error& e) {
    restore_failures().add(1);
    obs::log_warn("stream.snapshot_restore_failed",
                  {{"path", path}, {"error", e.what()}});
    throw;
  }

  // Apply phase: everything below is validated (slots strictly ascending
  // and in range), so no step can throw — the ingestor either gets the
  // whole snapshot or, on any failure above, was never touched.
  for (const auto& [id, state] : staged.windows)
    ingestor.import_window(id, state);
  ingestor.restore_stats(staged.stats);

  obs::MetricsRegistry::instance()
      .counter("cellscope.stream.snapshots_restored")
      .add(1);
  obs::log_info("stream.snapshot_restored",
                {{"path", path},
                 {"towers", staged.windows.size()},
                 {"bins", staged.bins_total},
                 {"watermark_minute", staged.stats.watermark_minute}});
}

}  // namespace cellscope
