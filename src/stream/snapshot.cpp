#include "stream/snapshot.h"

#include <filesystem>
#include <fstream>
#include <type_traits>

#include "common/error.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "stream/ingestor.h"

namespace cellscope {

namespace {

// Fixed-width little-endian scalar I/O. The project targets little-endian
// hosts (x86-64 / arm64); a byte-swapping port would slot in here.

template <typename T>
void put(std::ofstream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T get(std::ifstream& in, const std::string& what) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in)
    throw IoError("snapshot truncated while reading " + what);
  return value;
}

}  // namespace

SnapshotInfo write_snapshot(const std::string& path,
                            const StreamIngestor& ingestor) {
  CS_CHECK_MSG(ingestor.pending() == 0,
               "drain the ingestor before snapshotting — pending records "
               "would be lost");
  const auto windows = ingestor.export_windows();
  const auto stats = ingestor.stats();

  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open snapshot for writing: " + tmp);

  put<std::uint32_t>(out, kSnapshotMagic);
  put<std::uint32_t>(out, kSnapshotVersion);
  put<std::uint64_t>(out, stats.watermark_minute);
  put<std::uint64_t>(out, stats.offered);
  put<std::uint64_t>(out, stats.accepted);
  put<std::uint64_t>(out, stats.dropped);
  put<std::uint64_t>(out, stats.late);
  put<std::uint64_t>(out, stats.stale);
  put<std::uint64_t>(out, windows.size());

  SnapshotInfo info;
  info.towers = windows.size();
  for (const auto& [id, state] : windows) {
    put<std::uint32_t>(out, id);
    put<std::uint64_t>(out, state.bins.size());
    put<double>(out, state.sumsq);
    for (const auto& bin : state.bins) {
      put<std::uint32_t>(out, bin.slot);
      put<std::uint32_t>(out, bin.cycle);
      put<std::uint64_t>(out, bin.bytes);
    }
    info.bins += state.bins.size();
  }
  out.close();
  if (!out) throw IoError("failed writing snapshot: " + tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) throw IoError("failed renaming snapshot into place: " + path +
                        " (" + ec.message() + ")");
  info.bytes = std::filesystem::file_size(path, ec);

  obs::MetricsRegistry::instance()
      .counter("cellscope.stream.snapshots_written")
      .add(1);
  obs::log_info("stream.snapshot_written", {{"path", path},
                                            {"towers", info.towers},
                                            {"bins", info.bins},
                                            {"bytes", info.bytes}});
  return info;
}

void read_snapshot(const std::string& path, StreamIngestor& ingestor) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open snapshot: " + path);

  const auto magic = get<std::uint32_t>(in, "magic");
  CS_CHECK_MSG(magic == kSnapshotMagic,
               "not a cellscope stream snapshot: " + path);
  const auto version = get<std::uint32_t>(in, "version");
  CS_CHECK_MSG(version == kSnapshotVersion,
               "unsupported snapshot version " + std::to_string(version));

  IngestStats stats;
  stats.watermark_minute = get<std::uint64_t>(in, "watermark");
  stats.offered = get<std::uint64_t>(in, "offered");
  stats.accepted = get<std::uint64_t>(in, "accepted");
  stats.dropped = get<std::uint64_t>(in, "dropped");
  stats.late = get<std::uint64_t>(in, "late");
  stats.stale = get<std::uint64_t>(in, "stale");
  const auto n_windows = get<std::uint64_t>(in, "window count");

  std::uint64_t bins_total = 0;
  for (std::uint64_t w = 0; w < n_windows; ++w) {
    const auto id = get<std::uint32_t>(in, "tower id");
    const auto n_bins = get<std::uint64_t>(in, "bin count");
    CS_CHECK_MSG(n_bins <= TimeGrid::kSlots,
                 "snapshot window holds more bins than the grid");
    TowerWindow::State state;
    state.sumsq = get<double>(in, "sumsq");
    state.bins.reserve(static_cast<std::size_t>(n_bins));
    for (std::uint64_t b = 0; b < n_bins; ++b) {
      TowerWindow::ObservedBin bin;
      bin.slot = get<std::uint32_t>(in, "bin slot");
      bin.cycle = get<std::uint32_t>(in, "bin cycle");
      bin.bytes = get<std::uint64_t>(in, "bin bytes");
      state.bins.push_back(bin);
    }
    ingestor.import_window(id, state);
    bins_total += n_bins;
  }
  ingestor.restore_stats(stats);

  obs::MetricsRegistry::instance()
      .counter("cellscope.stream.snapshots_restored")
      .add(1);
  obs::log_info("stream.snapshot_restored",
                {{"path", path},
                 {"towers", n_windows},
                 {"bins", bins_total},
                 {"watermark_minute", stats.watermark_minute}});
}

}  // namespace cellscope
