// Online tower classification against a trained batch model.
//
// A ModelSnapshot freezes what one batch Experiment learned: the
// per-cluster folded-week centroids (z-scored, 1008 slots), the clusters'
// functional-region labels and populations, and — when the experiment
// found all four pure regions — the (A28, P28, A56) frequency features of
// the four primary components (§5.3). The OnlineClassifier then assigns
// any live TowerWindow a pattern label by nearest centroid on the folded
// week, with a confidence from the convex decomposition residual: a tower
// whose frequency feature sits well inside the primary-component polygon
// (small residual) is confidently one of the paper's five patterns.
//
// Cold start: a window with under one day of observed bins cannot be
// folded meaningfully, so classification falls back to
// PatternForecaster::match_or_prior over the short observed history — the
// same shape-matching path the batch cold-start forecaster uses — with
// the most populous training cluster as the prior. Never NaN, even on an
// empty window.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include <span>

#include "analysis/labeling.h"
#include "forecast/pattern_forecaster.h"
#include "ml/centroid_index.h"
#include "stream/ingestor.h"
#include "stream/tower_window.h"

namespace cellscope {

class Experiment;

/// Frozen batch model the online classifier scores against.
struct ModelSnapshot {
  /// Per-cluster folded z-scored mean weeks (1008 slots each).
  std::vector<std::vector<double>> centroids;
  /// Functional region of each cluster (§3.3 labeling).
  std::vector<FunctionalRegion> regions;
  /// Training towers per cluster; the argmax is the cold-start prior.
  std::vector<std::size_t> populations;
  /// (A28, P28, A56) of the four primary components in pure-region order,
  /// valid only when has_primaries — small experiments may not produce
  /// all four pure regions, and the classifier then falls back to a
  /// distance-based confidence.
  bool has_primaries = false;
  std::array<std::array<double, 3>, 4> primary_features{};
};

/// Extracts a ModelSnapshot from a completed Experiment: centroids are
/// the per-cluster means of the folded z-scored rows, regions/populations
/// come from the labeling, and the primary features from the §5.3
/// representatives when all four pure regions exist.
ModelSnapshot snapshot_model(const Experiment& experiment);

/// One tower's online classification.
struct Classification {
  std::size_t cluster = 0;
  FunctionalRegion region = FunctionalRegion::kComprehensive;
  /// Squared distance to the chosen centroid in folded-week space.
  double distance = 0.0;
  /// Confidence in [0, 1]: 1 / (1 + convex-decomposition residual) when
  /// the model carries primary features, 1 / (1 + sqrt(distance))
  /// otherwise, and exactly 0 for cold starts.
  double confidence = 0.0;
  /// True when the window had under a day of observations and the label
  /// is the match_or_prior fallback.
  bool cold_start = false;
};

/// Stateless scorer: every classify() call reads the same frozen model,
/// so re-evaluating towers on a cadence is safe from any thread.
class OnlineClassifier {
 public:
  /// Requires at least one centroid; centroids must be 1008 slots and
  /// regions/populations must align with them.
  explicit OnlineClassifier(ModelSnapshot model);

  /// Windows with at least this many observed bins classify by nearest
  /// centroid; below it they are cold starts.
  static constexpr std::size_t kColdStartSlots =
      static_cast<std::size_t>(TimeGrid::kSlotsPerDay);

  Classification classify(const TowerWindow& window) const;

  /// Classifies every window of the ingestor (ascending tower id),
  /// parallelized over towers when a pool is given. One
  /// cellscope.stream.classify_passes counter bump per call;
  /// cellscope.stream.cold_starts counts fallback rows.
  std::vector<std::pair<std::uint32_t, Classification>> classify_all(
      const StreamIngestor& ingestor, ThreadPool* pool = nullptr) const;

  /// Nearest centroid to a folded week (1008 slots) through the ANN
  /// index: sublinear in the cluster count once the model is large
  /// enough to build a graph (CentroidIndex::Options::brute_force_below),
  /// the classic exact scan below that. *distance_out (optional) gets
  /// the exact squared distance. This is the single scoring rule shared
  /// by classify() and the serving plane's /classify endpoint.
  std::size_t nearest_centroid(std::span<const double> folded,
                               double* distance_out = nullptr) const {
    return index_.nearest(folded, distance_out);
  }

  /// The cold-start prior: cluster with the largest training population.
  std::size_t prior_cluster() const { return prior_; }

  const ModelSnapshot& model() const { return model_; }

  /// The centroid-template forecaster backing cold starts — also the
  /// serving plane's /towers/:id/forecast engine (templates align with
  /// model().centroids, so a matched template indexes regions too).
  const PatternForecaster& forecaster() const { return forecaster_; }

 private:
  ModelSnapshot model_;
  PatternForecaster forecaster_;  // templates = the centroids
  CentroidIndex index_;           // ANN over the folded-week centroids
  std::size_t prior_ = 0;
};

}  // namespace cellscope
