// Sharded streaming ingest front-end — the online counterpart of the
// batch vectorizer (§3.2), fed record-by-record instead of file-at-once.
//
// Producers call offer()/offer_batch() from any thread; records route to
// per-shard lock-striped pending queues by tower id (a tower's window
// lives in exactly one shard, so window application never takes a
// cross-shard lock). drain() moves pending records into the per-tower
// TowerWindow accumulators on the shared mapred::ThreadPool, using
// try_submit so a saturated pool degrades to inline draining (caller-runs
// backpressure) instead of growing queues without bound. A full shard
// queue drops the record and says so — explicit drop accounting, never
// silent loss or unbounded memory.
//
// Determinism: within a shard, records apply in arrival order; across
// shards, windows are disjoint and bin updates are exact integer sums, so
// the final per-tower grids are bit-identical for any shard count and any
// arrival-order perturbation of the same record set (the stream-vs-batch
// equivalence contract, DESIGN.md §9; verified by ctest -L stream).
//
// Event-time progress: every shard tracks its own high watermark (largest
// end_minute routed to it); the shard low-watermark trails it by the
// configured lateness bound, and both only ever advance. Each offer also
// feeds an event-time lag histogram (how far behind the global watermark
// a record's start is), each drain a processing-latency histogram
// (offer() to window application, stamped per offer batch), and each
// classify pass an end-to-end latency observation (oldest applied-but-
// unclassified offer to classification) — the live signals the /stream
// introspection endpoint and the watermark sentinels read.
//
// Metrics: cellscope.stream.{records_offered, records_accepted,
// records_dropped, records_late, records_stale, drain_batches} counters,
// cellscope.stream.pending_records gauge, cellscope.stream.drain_ms,
// cellscope.stream.event_lag_minutes, cellscope.stream.record_apply_ms,
// and cellscope.stream.record_e2e_ms histograms.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "city/tower.h"
#include "mapred/thread_pool.h"
#include "stream/tower_window.h"
#include "traffic/columnar.h"
#include "traffic/trace_record.h"

namespace cellscope {

namespace obs {
class Counter;
class Gauge;
class Histogram;
class HistogramBatch;
}  // namespace obs

/// Ingest configuration. from_env() reads the operational knobs.
struct StreamConfig {
  /// Number of lock stripes / window partitions (>= 1).
  std::size_t n_shards = 4;
  /// Per-shard pending-queue capacity; offers beyond it are dropped and
  /// counted. 0 means unbounded (replay/test convenience).
  std::size_t queue_capacity = 65536;
  /// A record whose start_minute trails the watermark (largest end_minute
  /// seen) by more than this is counted late. Late records still apply —
  /// the ring keeps four weeks — the counter feeds the lateness sentinel.
  std::uint32_t max_lateness_minutes = 120;

  /// Reads CELLSCOPE_STREAM_SHARDS and CELLSCOPE_STREAM_QUEUE (positive
  /// integers) over the defaults above.
  static StreamConfig from_env();
};

/// Outcome of offering one record.
enum class OfferResult {
  kAccepted,  ///< queued for the next drain
  kDropped,   ///< shard queue full — dropped and counted
};

/// Lifetime ingest counters (monotone; survive checkpoint/restore).
struct IngestStats {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;  ///< rejected by a full shard queue
  std::uint64_t late = 0;     ///< accepted but behind the lateness bound
  std::uint64_t stale = 0;    ///< applied-but-rejected by the ring (too old)
  std::uint64_t watermark_minute = 0;  ///< largest end_minute seen
  /// Event-time low watermark: the global watermark minus the lateness
  /// bound, clamped at 0 — exactly the lateness frontier account_arrival
  /// measures against, so a record whose start trails it is counted late.
  /// Monotone non-decreasing because the watermark is.
  std::uint64_t low_watermark_minute = 0;
};

/// O(1) summary of one tower's window — the /towers/:id/window endpoint
/// body. Read under the shard lock but without copying the grid.
struct TowerWindowStats {
  std::size_t observed_slots = 0;
  std::uint64_t total_bytes = 0;
  double mean = 0.0;
  double variance = 0.0;
  std::uint64_t latest_minute = 0;
  std::uint32_t latest_cycle = 0;
};

/// One shard's live view, for /stream and tests.
struct ShardStats {
  std::size_t shard = 0;
  std::size_t queue_depth = 0;   ///< records pending drain
  std::size_t towers = 0;        ///< windows resident in this shard
  std::uint64_t dropped = 0;     ///< offers rejected by this shard's queue
  std::uint64_t watermark_minute = 0;      ///< shard event-time high watermark
  std::uint64_t low_watermark_minute = 0;  ///< watermark - lateness, >= 0
  /// Age (ms of processing time) of the oldest record applied to a
  /// window but not yet covered by a classify pass; 0 when none.
  double unclassified_age_ms = 0.0;
};

/// Sharded, lock-striped streaming ingestor over per-tower windows.
class StreamIngestor {
 public:
  explicit StreamIngestor(StreamConfig config = {});
  ~StreamIngestor();

  /// Pre-creates an empty window per tower so silent towers still appear
  /// in folded_vectors()/classify_all() (as cold-start rows).
  void register_towers(const std::vector<Tower>& towers);

  /// Routes one record to its shard queue. Thread-safe.
  OfferResult offer(const TrafficLog& log);

  /// Routes a batch, grouping by shard first so each stripe is locked
  /// once per call instead of once per record. Returns how many records
  /// were accepted. Thread-safe.
  std::size_t offer_batch(std::span<const TrafficLog> logs);

  /// Fused bulk ingest for the columnar replay path: applies one decoded
  /// chunk straight to the tower windows — no Pending copies, no queue,
  /// no separate drain. Equivalent to offering the records in column
  /// order and immediately draining: watermark, lateness, lag, stale,
  /// and apply-latency accounting all match that sequence exactly (the
  /// lag/late of record i is measured against the watermark as records
  /// 0..i-1 left it). Because no queue is involved it never drops, so it
  /// matches the offer path's counters whenever that path did not drop
  /// (queue_capacity 0, or drains keeping up). Per-record trace sampling
  /// is skipped — the bulk path never materializes user ids. Returns the
  /// number of records applied. Thread-safe.
  std::size_t ingest_columns(const DecodedColumns& cols);

  /// Drains every shard's pending queue into its windows, one pool task
  /// per shard via try_submit (rejected shards drain inline on the
  /// caller — backpressure). Blocks until every queued record at entry
  /// has been applied. Thread-safe; concurrent drains serialize per
  /// shard.
  void drain(ThreadPool& pool);

  /// Records queued but not yet applied, summed over shards.
  std::size_t pending() const;

  IngestStats stats() const;

  /// Per-shard live view, ascending by shard index.
  std::vector<ShardStats> shard_stats() const;

  /// The /stream endpoint body: one JSON object with the global totals
  /// (stats() plus pending) and a "shards" array of shard_stats().
  std::string status_json() const;

  /// Marks a classification pass over the current windows: the oldest
  /// applied-but-unclassified offer per shard resolves into one
  /// end-to-end latency observation (cellscope.stream.record_e2e_ms),
  /// and pending sampled records emit their record.classify spans.
  /// Called by OnlineClassifier::classify_all after each pass.
  void note_classify_pass() const;

  const StreamConfig& config() const { return config_; }

  /// Tower ids with a window, ascending.
  std::vector<std::uint32_t> tower_ids() const;

  /// Copy of one tower's window (under its shard lock); throws
  /// InvalidArgument when the tower has none.
  TowerWindow window_copy(std::uint32_t tower_id) const;

  /// O(1) stats of one tower's window, read under its shard lock without
  /// copying the 4032-slot grid — the serving plane's cheap read path.
  /// Throws InvalidArgument when the tower has none.
  TowerWindowStats window_stats(std::uint32_t tower_id) const;

  /// (tower id, folded z-scored mean week) for every window, ascending by
  /// id — the streaming equivalent of the batch
  /// fold_to_week(zscore_rows(vectorize_logs(...))) chain, bit-identical
  /// on the same records. Rows are independent; a pool parallelizes them.
  std::vector<std::pair<std::uint32_t, std::vector<double>>> folded_vectors(
      ThreadPool* pool = nullptr) const;

  /// Checkpointing access (stream/snapshot.h): full window states in
  /// ascending tower-id order, and their wholesale restoration. Restoring
  /// re-routes windows by id, so the restored ingestor may use a
  /// different shard count than the one that wrote the checkpoint.
  std::vector<std::pair<std::uint32_t, TowerWindow::State>> export_windows()
      const;
  void import_window(std::uint32_t tower_id, const TowerWindow::State& state);
  void restore_stats(const IngestStats& stats);

  StreamIngestor(const StreamIngestor&) = delete;
  StreamIngestor& operator=(const StreamIngestor&) = delete;

 private:
  /// A queued record plus its offer() wall stamp (process-relative µs,
  /// obs::now_us) — the start of its apply/e2e latency measurements.
  /// offer_batch stamps once per call, so records of one batch share it.
  struct Pending {
    TrafficLog log;
    double offered_us = 0.0;
  };

  struct Shard {
    mutable std::mutex queue_mutex;      // guards pending
    std::vector<Pending> pending;
    mutable std::mutex window_mutex;     // guards windows + application
    std::vector<std::pair<std::uint32_t, TowerWindow>> windows;  // sorted
    /// Largest end_minute routed to this shard (CAS-max).
    std::atomic<std::uint64_t> watermark_minute{0};
    /// Offers this shard's full queue rejected.
    std::atomic<std::uint64_t> dropped{0};
    /// Offer stamp (integer µs, >= 1) of the oldest record applied to a
    /// window but not yet covered by a classify pass; 0 = none. CAS-min
    /// at drain, exchanged to 0 by note_classify_pass.
    std::atomic<std::uint64_t> oldest_unclassified_us{0};
    /// Sampled records applied but awaiting their classify span:
    /// (tower id, applied_us). Guarded by window_mutex; bounded.
    mutable std::vector<std::pair<std::uint32_t, double>> sampled_awaiting;
    /// Open-address tower-id -> windows-position index for the bulk
    /// ingest path ((tower, pos) slots, pos == UINT32_MAX empty); lazily
    /// rebuilt whenever the window set changed. Guarded by window_mutex.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> window_index;
    /// windows.size() the index was built for (0 = never built).
    std::size_t window_index_size = 0;
  };

  Shard& shard_of(std::uint32_t tower_id) const {
    return *shards_[tower_id % shards_.size()];
  }
  /// The tower's window within `shard`, created on first use. Caller
  /// holds shard.window_mutex.
  TowerWindow& window_in(Shard& shard, std::uint32_t tower_id);
  /// Creates the windows of the (sorted, distinct, all-absent) `towers`
  /// in one append + inplace_merge + single index rebuild — the bulk
  /// path's cold-start move. A per-record window_in would middle-insert
  /// into the sorted windows vector and invalidate the index on every new
  /// tower: quadratic on a fresh ingestor at city scale. Caller holds
  /// shard.window_mutex and guarantees none of `towers` exist yet.
  void create_windows(Shard& shard, const std::vector<std::uint32_t>& towers);
  /// O(1) expected windows-position lookup through the shard's
  /// window_index; UINT32_MAX when the tower has no window yet. Caller
  /// holds shard.window_mutex and the index is fresh.
  std::uint32_t window_position(const Shard& shard,
                                std::uint32_t tower_id) const;
  void rebuild_window_index(Shard& shard);
  void drain_shard(Shard& shard);
  /// Watermark/lateness/lag accounting shared by the offer paths:
  /// advances the global and shard watermarks, counts lateness, and
  /// buckets the record's event-time lag (pre-update watermark minus
  /// start) into `lag`. Returns true when the record is late.
  bool account_arrival(const TrafficLog& log, Shard& shard,
                       obs::HistogramBatch& lag);

  StreamConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> watermark_minute_{0};
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> late_{0};
  std::atomic<std::uint64_t> stale_{0};

  // Process-global metrics (registered once, hot-path cached).
  obs::Counter* metric_offered_;
  obs::Counter* metric_accepted_;
  obs::Counter* metric_dropped_;
  obs::Counter* metric_late_;
  obs::Counter* metric_stale_;
  obs::Counter* metric_drains_;
  obs::Gauge* metric_pending_;
  obs::Histogram* metric_drain_ms_;
  obs::Histogram* metric_event_lag_;  // pow2 minute buckets
  obs::Histogram* metric_apply_ms_;
  obs::Histogram* metric_e2e_ms_;
};

}  // namespace cellscope
