#include "stream/ingestor.h"

#include <algorithm>
#include <cstdlib>

#include "common/error.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1)
      return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

StreamConfig StreamConfig::from_env() {
  StreamConfig config;
  config.n_shards = env_size("CELLSCOPE_STREAM_SHARDS", config.n_shards);
  config.queue_capacity =
      env_size("CELLSCOPE_STREAM_QUEUE", config.queue_capacity);
  return config;
}

StreamIngestor::StreamIngestor(StreamConfig config) : config_(config) {
  CS_CHECK_MSG(config_.n_shards >= 1, "ingestor needs at least one shard");
  shards_.reserve(config_.n_shards);
  for (std::size_t s = 0; s < config_.n_shards; ++s)
    shards_.push_back(std::make_unique<Shard>());
  auto& registry = obs::MetricsRegistry::instance();
  metric_offered_ = &registry.counter("cellscope.stream.records_offered");
  metric_accepted_ = &registry.counter("cellscope.stream.records_accepted");
  metric_dropped_ = &registry.counter("cellscope.stream.records_dropped");
  metric_late_ = &registry.counter("cellscope.stream.records_late");
  metric_stale_ = &registry.counter("cellscope.stream.records_stale");
  metric_drains_ = &registry.counter("cellscope.stream.drain_batches");
  metric_pending_ = &registry.gauge("cellscope.stream.pending_records");
  metric_drain_ms_ = &registry.histogram("cellscope.stream.drain_ms");
}

void StreamIngestor::register_towers(const std::vector<Tower>& towers) {
  for (const auto& tower : towers) {
    Shard& shard = shard_of(tower.id);
    std::lock_guard<std::mutex> lock(shard.window_mutex);
    window_in(shard, tower.id);
  }
}

TowerWindow& StreamIngestor::window_in(Shard& shard, std::uint32_t tower_id) {
  auto it = std::lower_bound(
      shard.windows.begin(), shard.windows.end(), tower_id,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (it == shard.windows.end() || it->first != tower_id)
    it = shard.windows.emplace(it, tower_id, TowerWindow());
  return it->second;
}

bool StreamIngestor::account_arrival(const TrafficLog& log) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  metric_offered_->add(1);
  // Watermark: largest end_minute seen so far. `observed` ends up holding
  // the watermark *excluding* this record's own update, so a long
  // connection never marks itself late.
  const std::uint64_t end = log.end_minute;
  std::uint64_t observed = watermark_minute_.load(std::memory_order_relaxed);
  while (end > observed &&
         !watermark_minute_.compare_exchange_weak(observed, end,
                                                  std::memory_order_relaxed)) {
  }
  const bool late =
      static_cast<std::uint64_t>(log.start_minute) +
          config_.max_lateness_minutes <
      observed;
  if (late) {
    late_.fetch_add(1, std::memory_order_relaxed);
    metric_late_->add(1);
  }
  return late;
}

OfferResult StreamIngestor::offer(const TrafficLog& log) {
  account_arrival(log);
  Shard& shard = shard_of(log.tower_id);
  {
    std::lock_guard<std::mutex> lock(shard.queue_mutex);
    if (config_.queue_capacity > 0 &&
        shard.pending.size() >= config_.queue_capacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      metric_dropped_->add(1);
      return OfferResult::kDropped;
    }
    shard.pending.push_back(log);
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  metric_accepted_->add(1);
  metric_pending_->add(1);
  return OfferResult::kAccepted;
}

std::size_t StreamIngestor::offer_batch(std::span<const TrafficLog> logs) {
  // Group by shard first: one stripe lock per shard per call, not per
  // record — the difference between ~1 M and ~10 M records/sec on the
  // replay path.
  std::vector<std::vector<const TrafficLog*>> buckets(shards_.size());
  for (const auto& log : logs) {
    account_arrival(log);
    buckets[log.tower_id % shards_.size()].push_back(&log);
  }
  std::size_t total_accepted = 0;
  for (std::size_t s = 0; s < buckets.size(); ++s) {
    const auto& bucket = buckets[s];
    if (bucket.empty()) continue;
    Shard& shard = *shards_[s];
    std::size_t taken = bucket.size();
    {
      std::lock_guard<std::mutex> lock(shard.queue_mutex);
      if (config_.queue_capacity > 0) {
        const std::size_t room =
            shard.pending.size() >= config_.queue_capacity
                ? 0
                : config_.queue_capacity - shard.pending.size();
        taken = std::min(taken, room);
      }
      shard.pending.reserve(shard.pending.size() + taken);
      for (std::size_t i = 0; i < taken; ++i)
        shard.pending.push_back(*bucket[i]);
    }
    const std::size_t refused = bucket.size() - taken;
    if (refused > 0) {
      dropped_.fetch_add(refused, std::memory_order_relaxed);
      metric_dropped_->add(refused);
    }
    if (taken > 0) {
      accepted_.fetch_add(taken, std::memory_order_relaxed);
      metric_accepted_->add(taken);
      metric_pending_->add(static_cast<std::int64_t>(taken));
    }
    total_accepted += taken;
  }
  return total_accepted;
}

void StreamIngestor::drain_shard(Shard& shard) {
  std::vector<TrafficLog> batch;
  {
    std::lock_guard<std::mutex> lock(shard.queue_mutex);
    batch.swap(shard.pending);
  }
  if (batch.empty()) return;
  std::uint64_t stale = 0;
  {
    std::lock_guard<std::mutex> lock(shard.window_mutex);
    for (const auto& log : batch) {
      TowerWindow& window = window_in(shard, log.tower_id);
      if (window.add(log.start_minute, log.bytes) == TowerWindow::Apply::kStale)
        ++stale;
    }
  }
  if (stale > 0) {
    stale_.fetch_add(stale, std::memory_order_relaxed);
    metric_stale_->add(stale);
  }
  metric_pending_->add(-static_cast<std::int64_t>(batch.size()));
}

void StreamIngestor::drain(ThreadPool& pool) {
  obs::ScopedTimer timer;
  // One task per shard; a pool rejection (bounded queue full) degrades to
  // draining that shard inline — caller-runs backpressure.
  std::vector<std::future<void>> futures;
  futures.reserve(shards_.size());
  std::size_t inline_drains = 0;
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->queue_mutex);
      if (shard->pending.empty()) continue;
    }
    Shard* target = shard.get();
    auto future = pool.try_submit([this, target] { drain_shard(*target); });
    if (future.has_value()) {
      futures.push_back(std::move(*future));
    } else {
      drain_shard(*target);
      ++inline_drains;
    }
  }
  for (auto& f : futures) f.get();
  metric_drains_->add(1);
  metric_drain_ms_->observe(timer.elapsed_ms());
  if (inline_drains > 0)
    obs::log_debug("stream.drain_backpressure",
                   {{"inline_shards", inline_drains}});
}

std::size_t StreamIngestor::pending() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->queue_mutex);
    total += shard->pending.size();
  }
  return total;
}

IngestStats StreamIngestor::stats() const {
  IngestStats stats;
  stats.offered = offered_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.late = late_.load(std::memory_order_relaxed);
  stats.stale = stale_.load(std::memory_order_relaxed);
  stats.watermark_minute = watermark_minute_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<std::uint32_t> StreamIngestor::tower_ids() const {
  std::vector<std::uint32_t> ids;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->window_mutex);
    for (const auto& [id, window] : shard->windows) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

TowerWindow StreamIngestor::window_copy(std::uint32_t tower_id) const {
  const Shard& shard = shard_of(tower_id);
  std::lock_guard<std::mutex> lock(shard.window_mutex);
  const auto it = std::lower_bound(
      shard.windows.begin(), shard.windows.end(), tower_id,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (it == shard.windows.end() || it->first != tower_id)
    throw InvalidArgument("no window for tower id " +
                          std::to_string(tower_id));
  return it->second;
}

std::vector<std::pair<std::uint32_t, std::vector<double>>>
StreamIngestor::folded_vectors(ThreadPool* pool) const {
  // Snapshot every window under its shard lock, then fold outside all
  // locks (folding is the expensive part and rows are independent).
  std::vector<std::pair<std::uint32_t, TowerWindow>> snapshot;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->window_mutex);
    for (const auto& entry : shard->windows) snapshot.push_back(entry);
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<std::pair<std::uint32_t, std::vector<double>>> out(
      snapshot.size());
  const auto fold_one = [&](std::size_t i) {
    out[i] = {snapshot[i].first, snapshot[i].second.folded_week()};
  };
  if (pool != nullptr && pool->thread_count() > 1 && snapshot.size() > 1) {
    pool->parallel_for(snapshot.size(), fold_one);
  } else {
    for (std::size_t i = 0; i < snapshot.size(); ++i) fold_one(i);
  }
  return out;
}

std::vector<std::pair<std::uint32_t, TowerWindow::State>>
StreamIngestor::export_windows() const {
  std::vector<std::pair<std::uint32_t, TowerWindow::State>> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->window_mutex);
    for (const auto& [id, window] : shard->windows)
      out.emplace_back(id, window.state());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void StreamIngestor::import_window(std::uint32_t tower_id,
                                   const TowerWindow::State& state) {
  Shard& shard = shard_of(tower_id);
  std::lock_guard<std::mutex> lock(shard.window_mutex);
  window_in(shard, tower_id) = TowerWindow::from_state(state);
}

void StreamIngestor::restore_stats(const IngestStats& stats) {
  offered_.store(stats.offered, std::memory_order_relaxed);
  accepted_.store(stats.accepted, std::memory_order_relaxed);
  dropped_.store(stats.dropped, std::memory_order_relaxed);
  late_.store(stats.late, std::memory_order_relaxed);
  stale_.store(stats.stale, std::memory_order_relaxed);
  watermark_minute_.store(stats.watermark_minute, std::memory_order_relaxed);
}

}  // namespace cellscope
