#include "stream/ingestor.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/error.h"
#include "obs/introspect.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace_sample.h"

namespace cellscope {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1)
      return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

/// Sampling identity of a record: a pure function of its content, so the
/// same record makes the same trace decision at every stage with no state
/// carried between them (obs/trace_sample.h).
std::uint64_t record_hash(const TrafficLog& log) {
  return obs::mix64(log.user_id ^
                    (static_cast<std::uint64_t>(log.tower_id) << 32) ^
                    (static_cast<std::uint64_t>(log.start_minute) << 1) ^
                    log.end_minute);
}

std::uint64_t low_watermark_of(std::uint64_t watermark,
                               std::uint32_t max_lateness) {
  return watermark > max_lateness ? watermark - max_lateness : 0;
}

/// Bound on sampled records awaiting their classify span per shard —
/// a classifier that never runs must not grow memory without limit.
constexpr std::size_t kMaxSampledAwaiting = 256;

}  // namespace

StreamConfig StreamConfig::from_env() {
  StreamConfig config;
  config.n_shards = env_size("CELLSCOPE_STREAM_SHARDS", config.n_shards);
  config.queue_capacity =
      env_size("CELLSCOPE_STREAM_QUEUE", config.queue_capacity);
  return config;
}

StreamIngestor::StreamIngestor(StreamConfig config) : config_(config) {
  CS_CHECK_MSG(config_.n_shards >= 1, "ingestor needs at least one shard");
  shards_.reserve(config_.n_shards);
  for (std::size_t s = 0; s < config_.n_shards; ++s)
    shards_.push_back(std::make_unique<Shard>());
  auto& registry = obs::MetricsRegistry::instance();
  metric_offered_ = &registry.counter("cellscope.stream.records_offered");
  metric_accepted_ = &registry.counter("cellscope.stream.records_accepted");
  metric_dropped_ = &registry.counter("cellscope.stream.records_dropped");
  metric_late_ = &registry.counter("cellscope.stream.records_late");
  metric_stale_ = &registry.counter("cellscope.stream.records_stale");
  metric_drains_ = &registry.counter("cellscope.stream.drain_batches");
  metric_pending_ = &registry.gauge("cellscope.stream.pending_records");
  metric_drain_ms_ = &registry.histogram("cellscope.stream.drain_ms");
  metric_event_lag_ = &registry.histogram("cellscope.stream.event_lag_minutes",
                                          obs::pow2_minute_buckets());
  metric_apply_ms_ = &registry.histogram("cellscope.stream.record_apply_ms");
  metric_e2e_ms_ = &registry.histogram("cellscope.stream.record_e2e_ms");
  // Live shard view; the destructor's remove_handler drains any in-flight
  // request before `this` goes away.
  obs::IntrospectionServer::instance().set_handler(
      "/stream",
      [this] {
        obs::HttpResponse response;
        response.content_type = "application/json";
        response.body = status_json();
        return response;
      },
      this);
}

StreamIngestor::~StreamIngestor() {
  obs::IntrospectionServer::instance().remove_handler("/stream", this);
}

void StreamIngestor::register_towers(const std::vector<Tower>& towers) {
  for (const auto& tower : towers) {
    Shard& shard = shard_of(tower.id);
    std::lock_guard<std::mutex> lock(shard.window_mutex);
    window_in(shard, tower.id);
  }
}

TowerWindow& StreamIngestor::window_in(Shard& shard, std::uint32_t tower_id) {
  auto it = std::lower_bound(
      shard.windows.begin(), shard.windows.end(), tower_id,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (it == shard.windows.end() || it->first != tower_id)
    it = shard.windows.emplace(it, tower_id, TowerWindow());
  return it->second;
}

bool StreamIngestor::account_arrival(const TrafficLog& log, Shard& shard,
                                     obs::HistogramBatch& lag) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  metric_offered_->add(1);
  // Watermark: largest end_minute seen so far. `observed` ends up holding
  // the watermark *excluding* this record's own update, so a long
  // connection never marks itself late.
  const std::uint64_t end = log.end_minute;
  std::uint64_t observed = watermark_minute_.load(std::memory_order_relaxed);
  while (end > observed &&
         !watermark_minute_.compare_exchange_weak(observed, end,
                                                  std::memory_order_relaxed)) {
  }
  std::uint64_t shard_seen =
      shard.watermark_minute.load(std::memory_order_relaxed);
  while (end > shard_seen &&
         !shard.watermark_minute.compare_exchange_weak(
             shard_seen, end, std::memory_order_relaxed)) {
  }
  // Event-time lag: how far this record's start trails the watermark as
  // it stood on arrival (the frontier record itself has zero lag).
  const std::uint64_t lag_minutes =
      observed > log.start_minute ? observed - log.start_minute : 0;
  lag.observe_bucket(obs::pow2_minute_bucket(lag_minutes),
                     static_cast<double>(lag_minutes));
  const bool late =
      static_cast<std::uint64_t>(log.start_minute) +
          config_.max_lateness_minutes <
      observed;
  if (late) {
    late_.fetch_add(1, std::memory_order_relaxed);
    metric_late_->add(1);
  }
  return late;
}

OfferResult StreamIngestor::offer(const TrafficLog& log) {
  obs::HistogramBatch lag(*metric_event_lag_);
  Shard& shard = shard_of(log.tower_id);
  account_arrival(log, shard, lag);
  const double offered_us = obs::now_us();
  {
    std::lock_guard<std::mutex> lock(shard.queue_mutex);
    if (config_.queue_capacity > 0 &&
        shard.pending.size() >= config_.queue_capacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      shard.dropped.fetch_add(1, std::memory_order_relaxed);
      metric_dropped_->add(1);
      return OfferResult::kDropped;
    }
    shard.pending.push_back(Pending{log, offered_us});
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  metric_accepted_->add(1);
  metric_pending_->add(1);
  return OfferResult::kAccepted;
}

std::size_t StreamIngestor::offer_batch(std::span<const TrafficLog> logs) {
  // Group by shard first: one stripe lock per shard per call, not per
  // record — the difference between ~1 M and ~10 M records/sec on the
  // replay path. Lag observations aggregate locally and flush once, and
  // the whole batch shares one offer stamp — per-record cost stays at a
  // hash-free bucket increment.
  obs::HistogramBatch lag(*metric_event_lag_);
  const double offered_us = obs::now_us();
  std::vector<std::vector<const TrafficLog*>> buckets(shards_.size());
  for (const auto& log : logs) {
    const std::size_t s = log.tower_id % shards_.size();
    account_arrival(log, *shards_[s], lag);
    buckets[s].push_back(&log);
  }
  std::size_t total_accepted = 0;
  for (std::size_t s = 0; s < buckets.size(); ++s) {
    const auto& bucket = buckets[s];
    if (bucket.empty()) continue;
    Shard& shard = *shards_[s];
    std::size_t taken = bucket.size();
    {
      std::lock_guard<std::mutex> lock(shard.queue_mutex);
      if (config_.queue_capacity > 0) {
        const std::size_t room =
            shard.pending.size() >= config_.queue_capacity
                ? 0
                : config_.queue_capacity - shard.pending.size();
        taken = std::min(taken, room);
      }
      shard.pending.reserve(shard.pending.size() + taken);
      for (std::size_t i = 0; i < taken; ++i)
        shard.pending.push_back(Pending{*bucket[i], offered_us});
    }
    const std::size_t refused = bucket.size() - taken;
    if (refused > 0) {
      dropped_.fetch_add(refused, std::memory_order_relaxed);
      shard.dropped.fetch_add(refused, std::memory_order_relaxed);
      metric_dropped_->add(refused);
    }
    if (taken > 0) {
      accepted_.fetch_add(taken, std::memory_order_relaxed);
      metric_accepted_->add(taken);
      metric_pending_->add(static_cast<std::int64_t>(taken));
    }
    total_accepted += taken;
  }
  return total_accepted;
}

void StreamIngestor::rebuild_window_index(Shard& shard) {
  std::size_t cap = 8;
  while (cap < shard.windows.size() * 2) cap <<= 1;
  shard.window_index.assign(
      cap, {0, std::numeric_limits<std::uint32_t>::max()});
  const std::size_t mask = cap - 1;
  for (std::size_t pos = 0; pos < shard.windows.size(); ++pos) {
    std::size_t slot =
        (shard.windows[pos].first * 2654435761u) & mask;
    while (shard.window_index[slot].second !=
           std::numeric_limits<std::uint32_t>::max())
      slot = (slot + 1) & mask;
    shard.window_index[slot] = {shard.windows[pos].first,
                                static_cast<std::uint32_t>(pos)};
  }
  shard.window_index_size = shard.windows.size();
}

void StreamIngestor::create_windows(
    Shard& shard, const std::vector<std::uint32_t>& towers) {
  const std::size_t old_count = shard.windows.size();
  // Appends stay sorted because `towers` is sorted and distinct.
  for (const std::uint32_t id : towers)
    shard.windows.emplace_back(id, TowerWindow());
  std::inplace_merge(
      shard.windows.begin(), shard.windows.begin() + old_count,
      shard.windows.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  rebuild_window_index(shard);
}

std::uint32_t StreamIngestor::window_position(const Shard& shard,
                                              std::uint32_t tower_id) const {
  const std::size_t mask = shard.window_index.size() - 1;
  std::size_t slot = (tower_id * 2654435761u) & mask;
  for (;;) {
    const auto& entry = shard.window_index[slot];
    if (entry.second == std::numeric_limits<std::uint32_t>::max())
      return std::numeric_limits<std::uint32_t>::max();
    if (entry.first == tower_id) return entry.second;
    slot = (slot + 1) & mask;
  }
}

std::size_t StreamIngestor::ingest_columns(const DecodedColumns& cols) {
  const std::size_t n = cols.size();
  if (n == 0) return 0;
  obs::HistogramBatch lag(*metric_event_lag_);
  const double offered_us = obs::now_us();
  offered_.fetch_add(n, std::memory_order_relaxed);
  metric_offered_->add(n);

  // Watermark/lateness/lag accounting with sequential-arrival semantics,
  // fused into one pass: `observed` carries the global watermark exactly
  // as each record would have seen it had the batch been offered
  // record-by-record (excluding the record's own update).
  std::uint64_t observed = watermark_minute_.load(std::memory_order_relaxed);
  std::uint64_t late = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t start = cols.start[i];
    const std::uint64_t end = cols.end[i];
    const std::uint64_t lag_minutes = observed > start ? observed - start : 0;
    lag.observe_bucket(obs::pow2_minute_bucket(lag_minutes),
                       static_cast<double>(lag_minutes));
    if (start + config_.max_lateness_minutes < observed) ++late;
    if (end > observed) observed = end;
  }
  std::uint64_t seen = watermark_minute_.load(std::memory_order_relaxed);
  while (observed > seen &&
         !watermark_minute_.compare_exchange_weak(seen, observed,
                                                  std::memory_order_relaxed)) {
  }
  if (late > 0) {
    late_.fetch_add(late, std::memory_order_relaxed);
    metric_late_->add(late);
  }

  // Scatter record positions by shard (counting sort keeps this one
  // allocation-light linear pass), then apply each shard's run under its
  // window lock.
  const std::size_t n_shards = shards_.size();
  std::vector<std::uint32_t> order;
  std::vector<std::size_t> begins;  // per-shard [begin, end) into order
  if (n_shards > 1) {
    std::vector<std::size_t> counts(n_shards, 0);
    for (std::size_t i = 0; i < n; ++i) ++counts[cols.tower[i] % n_shards];
    begins.resize(n_shards + 1, 0);
    for (std::size_t s = 0; s < n_shards; ++s)
      begins[s + 1] = begins[s] + counts[s];
    order.resize(n);
    std::vector<std::size_t> cursor(begins.begin(), begins.end() - 1);
    for (std::size_t i = 0; i < n; ++i)
      order[cursor[cols.tower[i] % n_shards]++] =
          static_cast<std::uint32_t>(i);
  }

  const std::uint64_t stamp = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(offered_us));
  std::uint64_t stale_total = 0;
  // Per-shard scratch, reused across shards: per-record window positions
  // and the (usually empty) list of towers still missing a window.
  std::vector<std::uint32_t> pos;
  std::vector<std::uint32_t> missing;
  for (std::size_t s = 0; s < n_shards; ++s) {
    const std::size_t begin = n_shards > 1 ? begins[s] : 0;
    const std::size_t end = n_shards > 1 ? begins[s + 1] : n;
    if (begin == end) continue;
    const std::size_t len = end - begin;
    Shard& shard = *shards_[s];
    std::uint64_t shard_max_end = 0;
    std::uint64_t stale = 0;
    {
      std::lock_guard<std::mutex> lock(shard.window_mutex);
      if (shard.window_index_size != shard.windows.size() ||
          shard.window_index.empty())
        rebuild_window_index(shard);
      // Resolve every record's window position first, collecting towers
      // that still need one. In steady state `missing` stays empty and
      // this is a single O(1) probe per record; on a cold start the
      // misses are created in one batch (append + merge + one index
      // rebuild) instead of a per-tower middle-insert + full rebuild,
      // which made first-chunk ingest quadratic at city scale.
      pos.resize(len);
      missing.clear();
      for (std::size_t k = begin; k < end; ++k) {
        const std::uint32_t p =
            window_position(shard, cols.tower[n_shards > 1 ? order[k] : k]);
        pos[k - begin] = p;
        if (p == std::numeric_limits<std::uint32_t>::max())
          missing.push_back(cols.tower[n_shards > 1 ? order[k] : k]);
      }
      if (!missing.empty()) {
        std::sort(missing.begin(), missing.end());
        missing.erase(std::unique(missing.begin(), missing.end()),
                      missing.end());
        create_windows(shard, missing);
        // The merge shifted existing windows too — re-resolve them all.
        for (std::size_t k = begin; k < end; ++k)
          pos[k - begin] =
              window_position(shard, cols.tower[n_shards > 1 ? order[k] : k]);
      }
      for (std::size_t k = begin; k < end; ++k) {
        const std::size_t i = n_shards > 1 ? order[k] : k;
        TowerWindow& window = shard.windows[pos[k - begin]].second;
        if (window.add(cols.start[i], cols.bytes[i]) ==
            TowerWindow::Apply::kStale)
          ++stale;
        if (cols.end[i] > shard_max_end) shard_max_end = cols.end[i];
      }
    }
    std::uint64_t shard_seen =
        shard.watermark_minute.load(std::memory_order_relaxed);
    while (shard_max_end > shard_seen &&
           !shard.watermark_minute.compare_exchange_weak(
               shard_seen, shard_max_end, std::memory_order_relaxed)) {
    }
    const double applied_us = obs::now_us();
    metric_apply_ms_->observe_n((applied_us - offered_us) / 1000.0,
                                end - begin);
    std::uint64_t oldest =
        shard.oldest_unclassified_us.load(std::memory_order_relaxed);
    while ((oldest == 0 || stamp < oldest) &&
           !shard.oldest_unclassified_us.compare_exchange_weak(
               oldest, stamp, std::memory_order_relaxed)) {
    }
    stale_total += stale;
  }
  accepted_.fetch_add(n, std::memory_order_relaxed);
  metric_accepted_->add(n);
  if (stale_total > 0) {
    stale_.fetch_add(stale_total, std::memory_order_relaxed);
    metric_stale_->add(stale_total);
  }
  return n;
}

void StreamIngestor::drain_shard(Shard& shard) {
  std::vector<Pending> batch;
  {
    std::lock_guard<std::mutex> lock(shard.queue_mutex);
    batch.swap(shard.pending);
  }
  if (batch.empty()) return;
  auto& sampler = obs::TraceSampler::instance();
  auto& trace = obs::StageTrace::instance();
  // Per-record work below only happens for sampled records while tracing
  // is on; with tracing off the loop body is the window update alone.
  const bool tracing = sampler.active() && trace.enabled();
  std::uint64_t stale = 0;
  {
    std::lock_guard<std::mutex> lock(shard.window_mutex);
    for (const auto& entry : batch) {
      const TrafficLog& log = entry.log;
      TowerWindow& window = window_in(shard, log.tower_id);
      if (window.add(log.start_minute, log.bytes) == TowerWindow::Apply::kStale)
        ++stale;
      if (tracing && sampler.sampled(record_hash(log))) {
        const double applied_us = obs::now_us();
        trace.record_complete(
            "record.apply", "stream", entry.offered_us,
            applied_us - entry.offered_us,
            "\"tower\":" + std::to_string(log.tower_id) +
                ",\"user\":" + std::to_string(log.user_id) +
                ",\"start_minute\":" + std::to_string(log.start_minute));
        if (shard.sampled_awaiting.size() < kMaxSampledAwaiting)
          shard.sampled_awaiting.emplace_back(log.tower_id, applied_us);
      }
    }
  }
  // Offer-to-apply latency: records queued by one offer_batch call share
  // an offer stamp, so one observe_n per run of equal stamps covers every
  // record at per-batch cost.
  const double applied_us = obs::now_us();
  for (std::size_t i = 0; i < batch.size();) {
    std::size_t j = i + 1;
    while (j < batch.size() && batch[j].offered_us == batch[i].offered_us) ++j;
    metric_apply_ms_->observe_n((applied_us - batch[i].offered_us) / 1000.0,
                                j - i);
    i = j;
  }
  // The batch is in arrival order, so its first stamp is the oldest;
  // CAS-min it into the shard's unclassified frontier (0 = empty, so
  // clamp real stamps to >= 1).
  const std::uint64_t stamp = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(batch.front().offered_us));
  std::uint64_t seen = shard.oldest_unclassified_us.load(std::memory_order_relaxed);
  while ((seen == 0 || stamp < seen) &&
         !shard.oldest_unclassified_us.compare_exchange_weak(
             seen, stamp, std::memory_order_relaxed)) {
  }
  if (stale > 0) {
    stale_.fetch_add(stale, std::memory_order_relaxed);
    metric_stale_->add(stale);
  }
  metric_pending_->add(-static_cast<std::int64_t>(batch.size()));
}

void StreamIngestor::drain(ThreadPool& pool) {
  obs::ScopedTimer timer;
  // One task per shard; a pool rejection (bounded queue full) degrades to
  // draining that shard inline — caller-runs backpressure.
  std::vector<std::future<void>> futures;
  futures.reserve(shards_.size());
  std::size_t inline_drains = 0;
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->queue_mutex);
      if (shard->pending.empty()) continue;
    }
    Shard* target = shard.get();
    auto future = pool.try_submit([this, target] { drain_shard(*target); });
    if (future.has_value()) {
      futures.push_back(std::move(*future));
    } else {
      drain_shard(*target);
      ++inline_drains;
    }
  }
  for (auto& f : futures) f.get();
  metric_drains_->add(1);
  metric_drain_ms_->observe(timer.elapsed_ms());
  if (inline_drains > 0)
    obs::log_debug("stream.drain_backpressure",
                   {{"inline_shards", inline_drains}});
}

void StreamIngestor::note_classify_pass() const {
  const double now = obs::now_us();
  auto& sampler = obs::TraceSampler::instance();
  auto& trace = obs::StageTrace::instance();
  const bool tracing = sampler.active() && trace.enabled();
  for (const auto& shard : shards_) {
    const std::uint64_t oldest =
        shard->oldest_unclassified_us.exchange(0, std::memory_order_relaxed);
    if (oldest != 0)
      metric_e2e_ms_->observe((now - static_cast<double>(oldest)) / 1000.0);
    std::vector<std::pair<std::uint32_t, double>> sampled;
    {
      std::lock_guard<std::mutex> lock(shard->window_mutex);
      sampled.swap(shard->sampled_awaiting);
    }
    if (!tracing) continue;
    for (const auto& [tower, applied_us] : sampled)
      trace.record_complete("record.classify", "stream", applied_us,
                            now - applied_us,
                            "\"tower\":" + std::to_string(tower));
  }
}

std::size_t StreamIngestor::pending() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->queue_mutex);
    total += shard->pending.size();
  }
  return total;
}

IngestStats StreamIngestor::stats() const {
  IngestStats stats;
  stats.offered = offered_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.late = late_.load(std::memory_order_relaxed);
  stats.stale = stale_.load(std::memory_order_relaxed);
  stats.watermark_minute = watermark_minute_.load(std::memory_order_relaxed);
  stats.low_watermark_minute =
      low_watermark_of(stats.watermark_minute, config_.max_lateness_minutes);
  return stats;
}

std::vector<ShardStats> StreamIngestor::shard_stats() const {
  const double now = obs::now_us();
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    ShardStats stats;
    stats.shard = s;
    {
      std::lock_guard<std::mutex> lock(shard.queue_mutex);
      stats.queue_depth = shard.pending.size();
    }
    {
      std::lock_guard<std::mutex> lock(shard.window_mutex);
      stats.towers = shard.windows.size();
    }
    stats.dropped = shard.dropped.load(std::memory_order_relaxed);
    stats.watermark_minute =
        shard.watermark_minute.load(std::memory_order_relaxed);
    stats.low_watermark_minute =
        low_watermark_of(stats.watermark_minute, config_.max_lateness_minutes);
    const std::uint64_t oldest =
        shard.oldest_unclassified_us.load(std::memory_order_relaxed);
    if (oldest != 0) {
      const double age_ms = (now - static_cast<double>(oldest)) / 1000.0;
      stats.unclassified_age_ms = age_ms > 0.0 ? age_ms : 0.0;
    }
    out.push_back(stats);
  }
  return out;
}

std::string StreamIngestor::status_json() const {
  const IngestStats totals = stats();
  std::string json = "{\"watermark_minute\":";
  json += std::to_string(totals.watermark_minute);
  json += ",\"low_watermark_minute\":";
  json += std::to_string(totals.low_watermark_minute);
  json += ",\"offered\":" + std::to_string(totals.offered);
  json += ",\"accepted\":" + std::to_string(totals.accepted);
  json += ",\"dropped\":" + std::to_string(totals.dropped);
  json += ",\"late\":" + std::to_string(totals.late);
  json += ",\"stale\":" + std::to_string(totals.stale);
  json += ",\"pending\":" + std::to_string(pending());
  // Trace-ingest IO counters (traffic/columnar.h): how the records got
  // here — chunks decoded/skipped/corrupt and bytes mapped so far.
  {
    const auto& io = columnar::io_metrics();
    json += ",\"io\":{\"chunks_read\":" +
            std::to_string(io.chunks_read->value());
    json += ",\"chunks_skipped\":" + std::to_string(io.chunks_skipped->value());
    json += ",\"chunks_corrupt\":" + std::to_string(io.chunks_corrupt->value());
    json += ",\"bytes_mapped\":" + std::to_string(io.bytes_mapped->value());
    json += '}';
  }
  json += ",\"shards\":[";
  bool first = true;
  for (const ShardStats& shard : shard_stats()) {
    if (!first) json += ',';
    first = false;
    json += "{\"shard\":" + std::to_string(shard.shard);
    json += ",\"queue_depth\":" + std::to_string(shard.queue_depth);
    json += ",\"towers\":" + std::to_string(shard.towers);
    json += ",\"dropped\":" + std::to_string(shard.dropped);
    json += ",\"watermark_minute\":" + std::to_string(shard.watermark_minute);
    json += ",\"low_watermark_minute\":" +
            std::to_string(shard.low_watermark_minute);
    json += ",\"unclassified_age_ms\":" +
            std::to_string(shard.unclassified_age_ms);
    json += '}';
  }
  json += "]}";
  return json;
}

std::vector<std::uint32_t> StreamIngestor::tower_ids() const {
  std::vector<std::uint32_t> ids;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->window_mutex);
    for (const auto& [id, window] : shard->windows) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

TowerWindow StreamIngestor::window_copy(std::uint32_t tower_id) const {
  const Shard& shard = shard_of(tower_id);
  std::lock_guard<std::mutex> lock(shard.window_mutex);
  const auto it = std::lower_bound(
      shard.windows.begin(), shard.windows.end(), tower_id,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (it == shard.windows.end() || it->first != tower_id)
    throw InvalidArgument("no window for tower id " +
                          std::to_string(tower_id));
  return it->second;
}

TowerWindowStats StreamIngestor::window_stats(std::uint32_t tower_id) const {
  const Shard& shard = shard_of(tower_id);
  std::lock_guard<std::mutex> lock(shard.window_mutex);
  const auto it = std::lower_bound(
      shard.windows.begin(), shard.windows.end(), tower_id,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (it == shard.windows.end() || it->first != tower_id)
    throw InvalidArgument("no window for tower id " +
                          std::to_string(tower_id));
  const TowerWindow& window = it->second;
  TowerWindowStats stats;
  stats.observed_slots = window.observed_slots();
  stats.total_bytes = window.total_bytes();
  stats.mean = window.mean();
  stats.variance = window.variance();
  stats.latest_minute = window.latest_minute();
  stats.latest_cycle = window.latest_cycle();
  return stats;
}

std::vector<std::pair<std::uint32_t, std::vector<double>>>
StreamIngestor::folded_vectors(ThreadPool* pool) const {
  // Snapshot every window under its shard lock, then fold outside all
  // locks (folding is the expensive part and rows are independent).
  std::vector<std::pair<std::uint32_t, TowerWindow>> snapshot;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->window_mutex);
    for (const auto& entry : shard->windows) snapshot.push_back(entry);
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<std::pair<std::uint32_t, std::vector<double>>> out(
      snapshot.size());
  const auto fold_one = [&](std::size_t i) {
    out[i] = {snapshot[i].first, snapshot[i].second.folded_week()};
  };
  if (pool != nullptr && pool->thread_count() > 1 && snapshot.size() > 1) {
    pool->parallel_for(snapshot.size(), fold_one);
  } else {
    for (std::size_t i = 0; i < snapshot.size(); ++i) fold_one(i);
  }
  return out;
}

std::vector<std::pair<std::uint32_t, TowerWindow::State>>
StreamIngestor::export_windows() const {
  std::vector<std::pair<std::uint32_t, TowerWindow::State>> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->window_mutex);
    for (const auto& [id, window] : shard->windows)
      out.emplace_back(id, window.state());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void StreamIngestor::import_window(std::uint32_t tower_id,
                                   const TowerWindow::State& state) {
  Shard& shard = shard_of(tower_id);
  std::lock_guard<std::mutex> lock(shard.window_mutex);
  TowerWindow& window = (window_in(shard, tower_id) =
                             TowerWindow::from_state(state));
  // Re-seed the shard's event-time progress from the restored window so
  // /stream shows a sane (bin-granular) watermark after a restore.
  const std::uint64_t restored = window.latest_minute();
  std::uint64_t seen = shard.watermark_minute.load(std::memory_order_relaxed);
  while (restored > seen &&
         !shard.watermark_minute.compare_exchange_weak(
             seen, restored, std::memory_order_relaxed)) {
  }
}

void StreamIngestor::restore_stats(const IngestStats& stats) {
  offered_.store(stats.offered, std::memory_order_relaxed);
  accepted_.store(stats.accepted, std::memory_order_relaxed);
  dropped_.store(stats.dropped, std::memory_order_relaxed);
  late_.store(stats.late, std::memory_order_relaxed);
  stale_.store(stats.stale, std::memory_order_relaxed);
  watermark_minute_.store(stats.watermark_minute, std::memory_order_relaxed);
}

}  // namespace cellscope
