#include "stream/replay.h"

#include <algorithm>
#include <fstream>

#include "common/error.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/timer.h"

namespace cellscope {

std::vector<TrafficLog> perturb_arrival_order(std::vector<TrafficLog> logs,
                                              const ReplayOptions& options) {
  CS_CHECK_MSG(options.late_fraction >= 0.0 && options.late_fraction <= 1.0,
               "late_fraction must lie in [0, 1]");
  // Canonical arrival order: by start time, ties broken on the full
  // record so the perturbation is independent of the input permutation.
  std::sort(logs.begin(), logs.end(), [](const TrafficLog& a,
                                         const TrafficLog& b) {
    if (a.start_minute != b.start_minute) return a.start_minute < b.start_minute;
    if (a.tower_id != b.tower_id) return a.tower_id < b.tower_id;
    if (a.user_id != b.user_id) return a.user_id < b.user_id;
    if (a.end_minute != b.end_minute) return a.end_minute < b.end_minute;
    return a.bytes < b.bytes;
  });

  Rng rng(options.seed);
  // Bounded local shuffle: each position swaps with a uniform earlier
  // position at most skew_window back — records drift but never teleport.
  if (options.skew_window > 0) {
    for (std::size_t i = logs.size(); i > 1; --i) {
      const std::size_t hi = i - 1;
      const std::size_t lo =
          hi > options.skew_window ? hi - options.skew_window : 0;
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(lo),
                          static_cast<std::int64_t>(hi)));
      std::swap(logs[hi], logs[j]);
    }
  }

  // Late tail: a seeded sample of records is pulled out (preserving
  // relative order) and appended after everything else.
  if (options.late_fraction > 0.0) {
    std::vector<TrafficLog> on_time;
    std::vector<TrafficLog> late;
    on_time.reserve(logs.size());
    for (auto& log : logs) {
      if (rng.uniform() < options.late_fraction)
        late.push_back(std::move(log));
      else
        on_time.push_back(std::move(log));
    }
    on_time.insert(on_time.end(), std::make_move_iterator(late.begin()),
                   std::make_move_iterator(late.end()));
    logs = std::move(on_time);
  }
  return logs;
}

ReplayStats replay_trace(const std::vector<TrafficLog>& logs,
                         StreamIngestor& ingestor, ThreadPool& pool,
                         const ReplayOptions& options,
                         const OnlineClassifier* classifier) {
  CS_CHECK_MSG(options.batch_size >= 1, "batch_size must be positive");
  ReplayStats stats;
  stats.records = logs.size();

  // Periodic file-based metrics scrape (see ReplayOptions). Opened once;
  // append mode so successive replays accumulate into one timeline.
  const bool scrape = options.metrics_interval_ms > 0 &&
                      !options.metrics_jsonl_path.empty();
  std::ofstream metrics_out;
  if (scrape) {
    metrics_out.open(options.metrics_jsonl_path, std::ios::app);
    if (!metrics_out)
      throw IoError("cannot open metrics JSONL file " +
                    options.metrics_jsonl_path);
  }

  obs::ScopedTimer timer;
  const auto dump_metrics = [&] {
    metrics_out << "{\"wall_ms\":" << timer.elapsed_ms() << ",\"metrics\":"
                << obs::MetricsRegistry::instance().snapshot_json() << "}\n";
    metrics_out.flush();  // a live tail -f must see complete lines
    ++stats.metrics_snapshots;
  };
  double next_dump_ms = static_cast<double>(options.metrics_interval_ms);

  {
    obs::StageSpan span("stream.replay", "stream");
    for (std::size_t begin = 0; begin < logs.size();
         begin += options.batch_size) {
      const std::size_t end =
          std::min(logs.size(), begin + options.batch_size);
      ingestor.offer_batch(
          std::span<const TrafficLog>(logs.data() + begin, end - begin));
      ingestor.drain(pool);
      ++stats.batches;
      if (classifier != nullptr && options.classify_every_batches > 0 &&
          stats.batches % options.classify_every_batches == 0) {
        stats.labels = classifier->classify_all(ingestor, &pool);
        ++stats.classify_passes;
      }
      if (scrape && timer.elapsed_ms() >= next_dump_ms) {
        dump_metrics();
        next_dump_ms =
            timer.elapsed_ms() + static_cast<double>(options.metrics_interval_ms);
      }
    }
    if (classifier != nullptr) {
      stats.labels = classifier->classify_all(ingestor, &pool);
      ++stats.classify_passes;
    }

    // Dropped/late sentinels, evaluated when the stream.replay span
    // closes (one-shot, like the batch pipeline's stage checks).
    auto& board = obs::QualityBoard::instance();
    const auto ingest = ingestor.stats();
    board.add_check(
        "stream.replay", "stream_drop_ratio", obs::Severity::kFail,
        [dropped = ingest.dropped, offered = ingest.offered] {
          return obs::check_reject_ratio(
              static_cast<std::size_t>(dropped),
              static_cast<std::size_t>(offered), 0.01);
        });
    board.add_check(
        "stream.replay", "stream_late_ratio", obs::Severity::kWarn,
        [late = ingest.late, offered = ingest.offered] {
          return obs::check_reject_ratio(static_cast<std::size_t>(late),
                                         static_cast<std::size_t>(offered),
                                         0.25);
        });
    span.annotate({"records", stats.records});
    span.annotate({"batches", stats.batches});
    span.annotate({"dropped", ingest.dropped});
    span.annotate({"late", ingest.late});
  }

  if (scrape) dump_metrics();  // final state, even for sub-interval replays

  stats.ingest = ingestor.stats();
  stats.wall_ms = timer.elapsed_ms();
  stats.records_per_sec =
      stats.wall_ms > 0.0
          ? static_cast<double>(stats.records) / (stats.wall_ms / 1e3)
          : 0.0;
  return stats;
}

ReplayStats replay_trace_file(const std::string& path,
                              StreamIngestor& ingestor, ThreadPool& pool,
                              const FileReplayOptions& options,
                              const OnlineClassifier* classifier) {
  CS_CHECK_MSG(options.batch_size >= 1, "batch_size must be positive");
  TraceCodec codec = options.codec == TraceCodec::kAuto
                         ? trace_codec_for_path(path)
                         : options.codec;
  ReplayStats stats;
  obs::ScopedTimer timer;
  {
    obs::StageSpan span("stream.replay", "stream");
    const auto classify_tick = [&] {
      if (classifier != nullptr && options.classify_every_batches > 0 &&
          stats.batches % options.classify_every_batches == 0) {
        stats.labels = classifier->classify_all(ingestor, &pool);
        ++stats.classify_passes;
      }
    };

    if (codec == TraceCodec::kCsv) {
      auto reader =
          open_trace_reader(path, TraceCodec::kCsv, options.batch_size);
      std::vector<TrafficLog> batch;
      while (reader->next_batch(batch)) {
        ingestor.offer_batch(batch);
        ingestor.drain(pool);
        stats.records += batch.size();
        ++stats.batches;
        classify_tick();
      }
    } else {
      // Columnar: one chunk per round, decoded straight out of the
      // mapping; the footer ranges prune chunks the filter rules out.
      MmapTraceReader reader(path);
      DecodedColumns cols;
      std::vector<TrafficLog> chunk;
      std::size_t skipped = 0;
      for (std::size_t i = 0; i < reader.chunk_count(); ++i) {
        if (!reader.chunk_overlaps(i, options.filter)) {
          columnar::io_metrics().chunks_skipped->add(1);
          ++skipped;
          continue;
        }
        if (options.bulk) {
          if (!reader.read_chunk_columns(i, cols)) continue;  // corrupt
          stats.records += ingestor.ingest_columns(cols);
        } else {
          if (!reader.read_chunk(i, chunk)) continue;  // corrupt
          ingestor.offer_batch(chunk);
          ingestor.drain(pool);
          stats.records += chunk.size();
        }
        ++stats.batches;
        classify_tick();
      }
      span.annotate({"chunks_skipped", skipped});
    }
    if (classifier != nullptr) {
      stats.labels = classifier->classify_all(ingestor, &pool);
      ++stats.classify_passes;
    }

    auto& board = obs::QualityBoard::instance();
    const auto ingest = ingestor.stats();
    board.add_check(
        "stream.replay", "stream_drop_ratio", obs::Severity::kFail,
        [dropped = ingest.dropped, offered = ingest.offered] {
          return obs::check_reject_ratio(
              static_cast<std::size_t>(dropped),
              static_cast<std::size_t>(offered), 0.01);
        });
    board.add_check(
        "stream.replay", "stream_late_ratio", obs::Severity::kWarn,
        [late = ingest.late, offered = ingest.offered] {
          return obs::check_reject_ratio(static_cast<std::size_t>(late),
                                         static_cast<std::size_t>(offered),
                                         0.25);
        });
    span.annotate({"path", path});
    span.annotate({"records", stats.records});
    span.annotate({"batches", stats.batches});
    span.annotate({"dropped", ingest.dropped});
    span.annotate({"late", ingest.late});
  }

  stats.ingest = ingestor.stats();
  stats.wall_ms = timer.elapsed_ms();
  stats.records_per_sec =
      stats.wall_ms > 0.0
          ? static_cast<double>(stats.records) / (stats.wall_ms / 1e3)
          : 0.0;
  return stats;
}

}  // namespace cellscope
