#include "core/experiment.h"

#include "analysis/poi_features.h"
#include "common/error.h"
#include "dsp/spectrum.h"
#include "mapred/thread_pool.h"
#include "ml/distance.h"
#include "obs/log.h"
#include "obs/quality.h"
#include "obs/report.h"
#include "obs/timer.h"
#include "pipeline/vectorizer.h"

namespace {

/// Fraction of signal energy the paper's three principal components
/// retain on the mean z-scored series (the aggregate weekly pattern) —
/// the quantity behind the §5.1 "<6 % loss" claim.
double principal_energy_fraction(
    const std::vector<std::vector<double>>& zscored) {
  if (zscored.empty() || zscored.front().empty()) return 0.0;
  std::vector<double> mean(zscored.front().size(), 0.0);
  for (const auto& row : zscored)
    for (std::size_t s = 0; s < row.size(); ++s) mean[s] += row[s];
  for (auto& v : mean) v /= static_cast<double>(zscored.size());
  const cellscope::Spectrum spectrum(mean);
  return 1.0 - cellscope::energy_loss(mean, spectrum.reconstruct_principal());
}

}  // namespace

namespace cellscope {

Experiment Experiment::run(const ExperimentConfig& config) {
  CS_CHECK_MSG(config.n_towers >= 20,
               "experiments need at least 20 towers to cluster meaningfully");
  CS_CHECK_MSG(config.k_min >= 2 && config.k_min <= config.k_max,
               "invalid DBI sweep bounds");

  // Every post-vectorizer analytics stage shares one pool, sized by the
  // CELLSCOPE_THREADS environment variable (DESIGN.md §8). Results are
  // bit-identical for any worker count.
  ThreadPool pool(configured_thread_count());

  obs::log_info("experiment.start",
                {{"towers", config.n_towers},
                 {"seed", config.seed},
                 {"fold_weekly", config.fold_weekly},
                 {"threads", pool.thread_count()}});
  // With CELLSCOPE_RUN_REPORT set, a provenance report (config, stage
  // spans, metrics, quality verdicts) is written at process exit; arming
  // before the first stage turns span recording on for the whole run.
  obs::arm_run_report(
      "experiment",
      {{"towers", std::to_string(config.n_towers)},
       {"seed", std::to_string(config.seed)},
       {"fold_weekly", config.fold_weekly ? "true" : "false"},
       {"k_min", std::to_string(config.k_min)},
       {"k_max", std::to_string(config.k_max)},
       {"min_cluster_fraction", std::to_string(config.min_cluster_fraction)},
       {"poi_scale", std::to_string(config.poi_scale)}});
  obs::ScopedTimer total_timer;

  Experiment e;
  e.config_ = config;

  // 1. City and towers.
  {
    obs::StageSpan span("pipeline.city_deploy");
    e.city_ = std::make_unique<CityModel>(
        CityModel::create_default(config.seed));
    DeploymentOptions deployment;
    deployment.n_towers = config.n_towers;
    deployment.seed = config.seed ^ 0xD1B54A32D192ED03ULL;
    e.towers_ = deploy_towers(*e.city_, deployment);
    span.annotate({"towers", e.towers_.size()});
  }

  // 2. Latent intensity models, then POIs conditioned on traffic mixtures.
  {
    obs::StageSpan span("pipeline.intensity_poi");
    IntensityOptions intensity = config.intensity;
    intensity.seed = config.seed ^ 0x9E3779B97F4A7C15ULL;
    e.intensity_ = std::make_unique<IntensityModel>(
        IntensityModel::create(e.towers_, intensity));
    PoiGenerationOptions poi_options;
    poi_options.scale = config.poi_scale;
    poi_options.seed = config.seed ^ 0xBF58476D1CE4E5B9ULL;
    e.pois_ = std::make_unique<PoiDatabase>(PoiDatabase::generate(
        *e.city_, e.towers_, e.intensity_->mixtures(), poi_options));
    span.annotate({"towers", e.towers_.size()});
    span.annotate({"pois", e.pois_->pois().size()});
  }

  // 3. Traffic matrix (the §3.2 vectorizer).
  {
    obs::StageSpan span("pipeline.vectorize");
    e.matrix_ = vectorize_intensity(e.towers_, *e.intensity_,
                                    config.seed ^ 0x94D049BB133111EBULL);
    obs::QualityBoard::instance().add_check(
        "pipeline.vectorize", "matrix_finite", obs::Severity::kFail,
        [&rows = e.matrix_.rows] { return obs::check_finite_rows(rows); });
    span.annotate({"towers", e.towers_.size()});
    span.annotate({"rows", e.matrix_.n()});
  }

  // 4. Normalization.
  {
    obs::StageSpan span("pipeline.zscore");
    e.zscored_ = zscore_rows(e.matrix_, &pool);
    obs::QualityBoard::instance().add_check(
        "pipeline.zscore", "zscore_normalized", obs::Severity::kFail,
        [&rows = e.zscored_] { return obs::check_zscore_rows(rows); });
    span.annotate({"rows", e.zscored_.size()});
  }

  // 5. Clustering + metric tuner. Distances are computed on the mean-week
  // fold when configured (DESIGN.md §5.2); the DBI sweep uses the same
  // representation the dendrogram was built on.
  {
    obs::StageSpan span("pipeline.cluster_tune");
    std::vector<std::vector<double>> folded_storage;
    const std::vector<std::vector<double>>* cluster_input = &e.zscored_;
    if (config.fold_weekly) {
      folded_storage = fold_to_week(e.zscored_, &pool);
      cluster_input = &folded_storage;
    }
    e.dendrogram_ = std::make_unique<Dendrogram>(Dendrogram::run(
        DistanceMatrix::compute(*cluster_input, &pool), Linkage::kAverage));
    const auto min_cluster_size = static_cast<std::size_t>(
        std::max(2.0, config.min_cluster_fraction *
                          static_cast<double>(config.n_towers)));
    e.sweep_ = dbi_sweep(*e.dendrogram_, *cluster_input, config.k_min,
                         std::min(config.k_max, config.n_towers - 1),
                         min_cluster_size, &pool);
    e.chosen_ = best_cut(e.sweep_);
    e.labels_ = e.dendrogram_->cut_k(e.chosen_.k);
    auto& board = obs::QualityBoard::instance();
    board.add_check("pipeline.cluster_tune", "cluster_min_population",
                    obs::Severity::kWarn,
                    [&labels = e.labels_, min_cluster_size] {
                      return obs::check_min_population(labels,
                                                       min_cluster_size);
                    });
    board.add_check("pipeline.cluster_tune", "dbi_sane",
                    obs::Severity::kFail,
                    [dbi = e.chosen_.dbi] { return obs::check_dbi(dbi); });
    board.add_check("pipeline.cluster_tune", "dft_energy_principal",
                    obs::Severity::kWarn, [&zscored = e.zscored_] {
                      return obs::check_energy_fraction(
                          principal_energy_fraction(zscored));
                    });
    span.annotate({"towers", e.towers_.size()});
    span.annotate({"k", e.chosen_.k});
  }

  // The metric tuner's choice, explainable from the run log alone: one
  // line per candidate cut plus the chosen minimum.
  for (const auto& point : e.sweep_) {
    obs::log_info("dbi_sweep.point", {{"k", point.k},
                                      {"dbi", point.dbi},
                                      {"threshold", point.threshold},
                                      {"valid", point.valid},
                                      {"chosen", point.k == e.chosen_.k}});
  }
  obs::log_info("dbi_sweep.chosen", {{"k", e.chosen_.k},
                                     {"dbi", e.chosen_.dbi},
                                     {"threshold", e.chosen_.threshold}});

  // 6. POI labeling + validation.
  {
    obs::StageSpan span("pipeline.label_validate");
    e.poi_counts_ = poi_counts_for_towers(*e.pois_, e.towers_);
    const auto normalized =
        normalized_poi_by_cluster(e.poi_counts_, e.labels_);
    e.labeling_ = label_clusters_by_poi(normalized);
    std::vector<std::size_t> row_tower(e.matrix_.n());
    for (std::size_t i = 0; i < row_tower.size(); ++i) row_tower[i] = i;
    e.validation_ = validate_labels(e.labels_, e.labeling_, row_tower,
                                    e.towers_);
    span.annotate({"towers", e.towers_.size()});
    span.annotate({"clusters", e.n_clusters()});
  }

  obs::log_info("experiment.done", {{"towers", config.n_towers},
                                    {"k", e.chosen_.k},
                                    {"wall_ms", total_timer.elapsed_ms()}});
  return e;
}

std::optional<std::size_t> Experiment::cluster_of_region(
    FunctionalRegion region) const {
  for (std::size_t c = 0; c < labeling_.region_of_cluster.size(); ++c)
    if (labeling_.region_of_cluster[c] == region) return c;
  return std::nullopt;
}

std::vector<std::size_t> Experiment::rows_of_cluster(
    std::size_t cluster) const {
  CS_CHECK_MSG(cluster < n_clusters(), "cluster index out of range");
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < labels_.size(); ++i)
    if (static_cast<std::size_t>(labels_[i]) == cluster) rows.push_back(i);
  return rows;
}

std::vector<double> Experiment::cluster_aggregate(std::size_t cluster) const {
  return aggregate_series(matrix_, rows_of_cluster(cluster));
}

std::vector<double> Experiment::region_aggregate(
    FunctionalRegion region) const {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    const auto c = static_cast<std::size_t>(labels_[i]);
    if (labeling_.region_of_cluster[c] == region) rows.push_back(i);
  }
  CS_CHECK_MSG(!rows.empty(), "no towers labeled with region " +
                                  region_name(region));
  return aggregate_series(matrix_, rows);
}

std::vector<double> Experiment::total_aggregate() const {
  return aggregate_series(matrix_);
}

const std::vector<FreqFeatures>& Experiment::freq_features() const {
  if (!freq_features_) {
    ThreadPool pool(configured_thread_count());
    freq_features_ = compute_freq_features(zscored_, &pool);
  }
  return *freq_features_;
}

const std::array<std::size_t, 4>& Experiment::representatives() const {
  if (!representatives_) {
    const auto& features = freq_features();
    std::vector<std::array<double, 3>> qp_features;
    qp_features.reserve(features.size());
    for (const auto& f : features) qp_features.push_back(f.qp_feature());

    std::array<std::size_t, 4> reps{};
    for (int r = 0; r < 4; ++r) {
      const auto cluster =
          cluster_of_region(static_cast<FunctionalRegion>(r));
      CS_CHECK_MSG(cluster.has_value(),
                   "pure region has no cluster: " +
                       region_name(static_cast<FunctionalRegion>(r)));
      reps[r] = find_representative(qp_features, labels_,
                                    static_cast<int>(*cluster));
    }
    representatives_ = reps;
  }
  return *representatives_;
}

}  // namespace cellscope
