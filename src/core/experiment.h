// The end-to-end CellScope experiment — the paper's full pipeline.
//
// One Experiment run performs, in order:
//   1. synthetic city construction and tower deployment (data substitute),
//   2. latent per-tower intensity models and POI generation,
//   3. traffic matrix construction (10-minute vectors, §3.2 vectorizer),
//   4. z-score normalization,
//   5. average-linkage hierarchical clustering with a Davies-Bouldin sweep
//      (§3.2 pattern identifier + metric tuner),
//   6. POI-based cluster labeling and ground-truth validation (§3.3),
// and exposes every intermediate product to the analysis/bench layers.
// Deterministic in ExperimentConfig::seed.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/component_analysis.h"
#include "analysis/freq_features.h"
#include "analysis/labeling.h"
#include "city/city_model.h"
#include "city/deployment.h"
#include "city/poi.h"
#include "ml/hierarchical.h"
#include "ml/validity.h"
#include "pipeline/traffic_matrix.h"
#include "traffic/intensity_model.h"

namespace cellscope {

/// Configuration of one full experiment.
struct ExperimentConfig {
  std::uint64_t seed = 2015;
  /// Number of towers (the paper: 9,600; default sized for single-core
  /// runs — see DESIGN.md §5.2).
  std::size_t n_towers = 1200;
  /// Cluster on mean-week (1008-dim) folds of the z-scored vectors
  /// instead of the full 4032 dims (4× cheaper, information-preserving
  /// for weekly-periodic traffic).
  bool fold_weekly = true;
  /// Davies-Bouldin sweep bounds for the metric tuner.
  std::size_t k_min = 2;
  std::size_t k_max = 10;
  /// Noise floor for the tuner: cuts containing a cluster smaller than
  /// this fraction of all towers are rejected (singleton clusters have
  /// zero scatter and game the DBI).
  double min_cluster_fraction = 0.005;
  /// POI density multiplier.
  double poi_scale = 1.0;
  /// Latent intensity-model knobs.
  IntensityOptions intensity;
};

/// A completed experiment with all intermediate products.
class Experiment {
 public:
  /// Runs the full pipeline.
  static Experiment run(const ExperimentConfig& config);

  const ExperimentConfig& config() const { return config_; }
  const CityModel& city() const { return *city_; }
  const std::vector<Tower>& towers() const { return towers_; }
  const IntensityModel& intensity() const { return *intensity_; }
  const PoiDatabase& pois() const { return *pois_; }

  /// Raw traffic matrix (row i corresponds to towers()[i]).
  const TrafficMatrix& matrix() const { return matrix_; }

  /// Z-scored rows (the paper's Xj vectors).
  const std::vector<std::vector<double>>& zscored() const { return zscored_; }

  /// The clustering dendrogram (over the configured representation).
  const Dendrogram& dendrogram() const { return *dendrogram_; }

  /// The metric tuner's DBI sweep (Fig. 6a data).
  const std::vector<DbiSweepPoint>& dbi_sweep_result() const { return sweep_; }

  /// The chosen cut (minimum DBI).
  const DbiSweepPoint& chosen_cut() const { return chosen_; }

  /// Cluster labels per matrix row at the chosen cut.
  const std::vector<int>& labels() const { return labels_; }

  /// Number of clusters at the chosen cut.
  std::size_t n_clusters() const { return num_clusters(labels_); }

  /// Per-tower POI counts within 200 m (row-aligned).
  const std::vector<std::array<std::size_t, kNumPoiTypes>>& poi_counts()
      const {
    return poi_counts_;
  }

  /// POI-based region of each cluster (§3.3 labeling).
  const ClusterLabeling& labeling() const { return labeling_; }

  /// Validation of the labels against the latent ground truth.
  const LabelValidation& validation() const { return validation_; }

  /// First cluster labeled with `region`, or nullopt (clusters and
  /// regions correspond 1-1 when the tuner lands at k=5).
  std::optional<std::size_t> cluster_of_region(FunctionalRegion region) const;

  /// Row indices of one cluster.
  std::vector<std::size_t> rows_of_cluster(std::size_t cluster) const;

  /// Aggregate raw traffic of a cluster (bytes per slot).
  std::vector<double> cluster_aggregate(std::size_t cluster) const;

  /// Aggregate raw traffic of all towers labeled `region`.
  std::vector<double> region_aggregate(FunctionalRegion region) const;

  /// City-wide aggregate traffic.
  std::vector<double> total_aggregate() const;

  /// Frequency features of every row (computed on first use).
  const std::vector<FreqFeatures>& freq_features() const;

  /// Row index of the most representative tower per pure region, in pure-
  /// region order (resident, transport, office, entertainment). Computed
  /// on first use in the (A28, P28, A56) space. Throws if some pure region
  /// has no cluster.
  const std::array<std::size_t, 4>& representatives() const;

  Experiment(Experiment&&) = default;
  Experiment& operator=(Experiment&&) = default;

 private:
  Experiment() = default;

  ExperimentConfig config_;
  std::unique_ptr<CityModel> city_;
  std::vector<Tower> towers_;
  std::unique_ptr<IntensityModel> intensity_;
  std::unique_ptr<PoiDatabase> pois_;
  TrafficMatrix matrix_;
  std::vector<std::vector<double>> zscored_;
  std::unique_ptr<Dendrogram> dendrogram_;
  std::vector<DbiSweepPoint> sweep_;
  DbiSweepPoint chosen_;
  std::vector<int> labels_;
  std::vector<std::array<std::size_t, kNumPoiTypes>> poi_counts_;
  ClusterLabeling labeling_;
  LabelValidation validation_;

  // Lazy caches.
  mutable std::optional<std::vector<FreqFeatures>> freq_features_;
  mutable std::optional<std::array<std::size_t, 4>> representatives_;
};

}  // namespace cellscope
