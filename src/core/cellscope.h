// CellScope — umbrella public header.
//
// Reproduction of "Understanding Mobile Traffic Patterns of Large Scale
// Cellular Towers in Urban Environment" (Wang et al., IMC 2015).
// Include this to get the full public API; see README.md for a quickstart
// and DESIGN.md for the module map.
#pragma once

#include "analysis/commute_flows.h"        // IWYU pragma: export
#include "analysis/component_analysis.h"   // IWYU pragma: export
#include "analysis/freq_features.h"        // IWYU pragma: export
#include "analysis/labeling.h"             // IWYU pragma: export
#include "analysis/poi_features.h"         // IWYU pragma: export
#include "analysis/time_features.h"        // IWYU pragma: export
#include "city/city_model.h"               // IWYU pragma: export
#include "city/deployment.h"               // IWYU pragma: export
#include "city/functional_region.h"        // IWYU pragma: export
#include "city/poi.h"                      // IWYU pragma: export
#include "city/tower.h"                    // IWYU pragma: export
#include "common/error.h"                  // IWYU pragma: export
#include "common/rng.h"                    // IWYU pragma: export
#include "common/stats.h"                  // IWYU pragma: export
#include "common/string_util.h"            // IWYU pragma: export
#include "common/table.h"                  // IWYU pragma: export
#include "common/time_grid.h"              // IWYU pragma: export
#include "core/experiment.h"               // IWYU pragma: export
#include "dsp/fft.h"                       // IWYU pragma: export
#include "dsp/spectrum.h"                  // IWYU pragma: export
#include "forecast/anomaly.h"              // IWYU pragma: export
#include "forecast/metrics.h"              // IWYU pragma: export
#include "forecast/pattern_forecaster.h"   // IWYU pragma: export
#include "forecast/seasonal_naive.h"       // IWYU pragma: export
#include "forecast/spectral_forecaster.h"  // IWYU pragma: export
#include "geo/density_grid.h"              // IWYU pragma: export
#include "geo/geocoder.h"                  // IWYU pragma: export
#include "geo/latlon.h"                    // IWYU pragma: export
#include "geo/spatial_index.h"             // IWYU pragma: export
#include "mapred/mapreduce.h"              // IWYU pragma: export
#include "mapred/thread_pool.h"            // IWYU pragma: export
#include "ml/hierarchical.h"               // IWYU pragma: export
#include "ml/kmeans.h"                     // IWYU pragma: export
#include "ml/validity.h"                   // IWYU pragma: export
#include "opt/simplex_ls.h"                // IWYU pragma: export
#include "pipeline/cleaner.h"              // IWYU pragma: export
#include "pipeline/density.h"              // IWYU pragma: export
#include "pipeline/vectorizer.h"           // IWYU pragma: export
#include "traffic/intensity_model.h"       // IWYU pragma: export
#include "traffic/mobility.h"              // IWYU pragma: export
#include "traffic/mobility_trace.h"        // IWYU pragma: export
#include "traffic/profiles.h"              // IWYU pragma: export
#include "traffic/trace_generator.h"       // IWYU pragma: export
#include "traffic/trace_io.h"              // IWYU pragma: export
#include "viz/ascii_plot.h"                // IWYU pragma: export
#include "viz/figure_export.h"             // IWYU pragma: export
