// Urban functional regions and POI types.
//
// The paper identifies exactly five tower clusters and maps them to urban
// functional regions (Table 1): resident, transport, office, entertainment
// and comprehensive. POIs come in the four "pure" types the paper counts
// within 200 m of each tower (§3.3.1).
#pragma once

#include <array>
#include <string>

namespace cellscope {

/// The five urban functional regions, in the paper's cluster order
/// (Table 1: cluster #1 = resident ... #5 = comprehensive).
enum class FunctionalRegion : int {
  kResident = 0,
  kTransport = 1,
  kOffice = 2,
  kEntertainment = 3,
  kComprehensive = 4,
};

inline constexpr int kNumRegions = 5;

/// The four POI types (comprehensive areas have no POI type of their own).
enum class PoiType : int {
  kResident = 0,
  kTransport = 1,
  kOffice = 2,
  kEntertain = 3,
};

inline constexpr int kNumPoiTypes = 4;

/// Human-readable region name ("Resident", ...).
std::string region_name(FunctionalRegion r);

/// Human-readable POI type name ("Resident", "Transport", ...).
std::string poi_type_name(PoiType t);

/// All regions in cluster order.
std::array<FunctionalRegion, kNumRegions> all_regions();

/// All POI types in order.
std::array<PoiType, kNumPoiTypes> all_poi_types();

/// The paper's Table 1 cluster shares, indexed by FunctionalRegion:
/// resident 17.55 %, transport 2.58 %, office 45.72 %, entertainment
/// 9.35 %, comprehensive 24.81 %. Sums to 1 (after renormalization of the
/// published rounded values).
std::array<double, kNumRegions> table1_region_mix();

/// The POI type matching a pure region; throws for kComprehensive.
PoiType poi_type_of_region(FunctionalRegion r);

/// The region matching a POI type.
FunctionalRegion region_of_poi_type(PoiType t);

}  // namespace cellscope
