// Synthetic city: spatial layout of urban functions.
//
// Substitute for the real Shanghai geography (DESIGN.md §2). Each pure
// function (resident/transport/office/entertainment) is a sum of Gaussian
// hotspots over the study bounding box — a compact model of districts,
// subway stations, CBDs and malls. The comprehensive function is the
// city-wide mixed-use background. The model supports:
//   * sampling a location for a tower of a given region (deployment),
//   * evaluating per-function intensity at a point (ground-truth maps for
//     the Fig. 8 case studies),
//   * classifying a point into the locally dominant region.
#pragma once

#include <vector>

#include "city/functional_region.h"
#include "common/rng.h"
#include "geo/latlon.h"

namespace cellscope {

/// One Gaussian district/hotspot of a single urban function.
struct Hotspot {
  LatLon center;
  double sigma_km = 1.0;  ///< spatial spread
  double weight = 1.0;    ///< relative importance
};

/// The synthetic city model.
class CityModel {
 public:
  /// Builds the default city: an office CBD cluster at the center, a
  /// residential ring around it, transport stations along two axes, and a
  /// few entertainment hubs — the structure the paper's Fig. 7 shows for
  /// Shanghai. Deterministic given the seed.
  static CityModel create_default(std::uint64_t seed = 7);

  /// Creates a model from explicit hotspot sets (tests use this).
  CityModel(BoundingBox box,
            std::vector<std::vector<Hotspot>> hotspots_by_function);

  /// Intensity of one pure function at a point (sum of Gaussian kernels;
  /// comprehensive returns the mixed-use background level).
  double intensity(FunctionalRegion r, const LatLon& p) const;

  /// Samples a plausible location for a tower of the given region:
  /// hotspot chosen by weight, Gaussian jitter, clamped to the box.
  /// Comprehensive towers sample from a wide urban disk.
  LatLon sample_location(FunctionalRegion r, Rng& rng) const;

  /// The locally dominant region at a point: the pure function with the
  /// largest intensity, or kComprehensive when no pure function dominates
  /// clearly (mixing ratio below `dominance`, default 1.6).
  FunctionalRegion region_at(const LatLon& p, double dominance = 1.6) const;

  const BoundingBox& box() const { return box_; }

  /// The hotspots of one pure function.
  const std::vector<Hotspot>& hotspots(FunctionalRegion r) const;

 private:
  BoundingBox box_;
  // Indexed by FunctionalRegion value; kComprehensive's entry holds the
  // wide background hotspots.
  std::vector<std::vector<Hotspot>> hotspots_;
};

}  // namespace cellscope
