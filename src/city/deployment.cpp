#include "city/deployment.h"

#include <algorithm>

#include "common/error.h"
#include "geo/geocoder.h"

namespace cellscope {

std::vector<Tower> deploy_towers(const CityModel& city,
                                 const DeploymentOptions& options) {
  CS_CHECK_MSG(options.n_towers > 0, "need at least one tower");
  double mix_sum = 0.0;
  for (const double v : options.region_mix) {
    CS_CHECK_MSG(v >= 0.0, "region mix must be non-negative");
    mix_sum += v;
  }
  CS_CHECK_MSG(mix_sum > 0.0, "region mix must not be all zero");

  Rng rng(options.seed);
  const AddressCodec codec(city.box());
  std::vector<double> weights(options.region_mix.begin(),
                              options.region_mix.end());

  // Deterministic quota allocation (largest remainder) so that cluster
  // shares match the requested mixture exactly even at small n — the
  // Table 1 reproduction depends on it.
  std::array<std::size_t, kNumRegions> quota{};
  std::size_t assigned = 0;
  std::vector<std::pair<double, int>> remainders;
  for (int r = 0; r < kNumRegions; ++r) {
    const double exact =
        static_cast<double>(options.n_towers) * weights[r] / mix_sum;
    quota[r] = static_cast<std::size_t>(exact);
    assigned += quota[r];
    remainders.emplace_back(exact - static_cast<double>(quota[r]), r);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t i = 0; assigned < options.n_towers; ++i, ++assigned)
    ++quota[remainders[i % remainders.size()].second];

  std::vector<Tower> towers;
  towers.reserve(options.n_towers);
  for (int r = 0; r < kNumRegions; ++r) {
    const auto region = static_cast<FunctionalRegion>(r);
    for (std::size_t i = 0; i < quota[r]; ++i) {
      Tower t;
      t.id = static_cast<std::uint32_t>(towers.size());
      t.position = city.sample_location(region, rng);
      t.address = codec.encode(t.position);
      t.true_region = region;
      towers.push_back(std::move(t));
    }
  }
  // Interleave regions so tower id carries no region information.
  rng.shuffle(towers);
  for (std::size_t i = 0; i < towers.size(); ++i)
    towers[i].id = static_cast<std::uint32_t>(i);
  return towers;
}

std::array<std::size_t, kNumRegions> region_histogram(
    const std::vector<Tower>& towers) {
  std::array<std::size_t, kNumRegions> h{};
  for (const auto& t : towers) ++h[static_cast<int>(t.true_region)];
  return h;
}

}  // namespace cellscope
