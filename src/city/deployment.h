// Tower deployment over the synthetic city.
#pragma once

#include <cstdint>
#include <vector>

#include "city/city_model.h"
#include "city/tower.h"

namespace cellscope {

/// Options for tower deployment.
struct DeploymentOptions {
  std::size_t n_towers = 2000;
  /// Region mixture, indexed by FunctionalRegion; defaults to the paper's
  /// Table 1 shares.
  std::array<double, kNumRegions> region_mix = table1_region_mix();
  std::uint64_t seed = 42;
};

/// Places towers over the city: each tower draws its region from the
/// mixture and its location from that region's spatial field; the address
/// is the synthetic street address at that location. IDs are dense 0..n-1.
std::vector<Tower> deploy_towers(const CityModel& city,
                                 const DeploymentOptions& options);

/// Count of towers per region.
std::array<std::size_t, kNumRegions> region_histogram(
    const std::vector<Tower>& towers);

}  // namespace cellscope
