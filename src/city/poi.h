// Points of interest (POI) — the synthetic stand-in for the Baidu POI
// database the paper queries (§3.3).
//
// POIs of the four pure types are sampled around every tower, with mean
// counts conditioned on the tower's latent region (so residential
// neighborhoods are full of residential POIs, CBD towers see hundreds of
// office POIs, etc. — the dominance structure behind the paper's Tables 2
// and 3). A spatial index per type answers the paper's core POI query:
// counts of each type within a radius (200 m) of a point.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "city/city_model.h"
#include "city/tower.h"
#include "geo/spatial_index.h"

namespace cellscope {

/// One point of interest.
struct Poi {
  PoiType type = PoiType::kResident;
  LatLon position;
};

/// POI generation knobs.
struct PoiGenerationOptions {
  /// Global multiplier on POI counts (1.0 reproduces Table-2-scale counts;
  /// smaller values save memory at large tower counts).
  double scale = 1.0;
  /// Spatial spread of POIs around their anchor tower, meters.
  double spread_m = 90.0;
  std::uint64_t seed = 4242;
};

/// The city's POI database with per-type radius queries.
class PoiDatabase {
 public:
  /// Samples POIs around every tower conditioned on its latent region.
  static PoiDatabase generate(const CityModel& city,
                              const std::vector<Tower>& towers,
                              const PoiGenerationOptions& options);

  /// Mixture-aware variant: each tower's expected POI mix is the convex
  /// combination (by its latent traffic mixture over the four pure
  /// regions) of the pure regions' POI profiles. Keeps POI neighborhoods
  /// consistent with traffic composition — the coupling §5.3 validates
  /// (Table 6: convex coefficients vs NTF-IDF).
  static PoiDatabase generate(
      const CityModel& city, const std::vector<Tower>& towers,
      const std::vector<std::array<double, 4>>& mixtures,
      const PoiGenerationOptions& options);

  /// Builds a database from explicit POIs (tests use this).
  PoiDatabase(const BoundingBox& box, std::vector<Poi> pois);

  /// Counts of each POI type within `radius_m` of a point — the paper's
  /// fundamental POI measurement (200 m around each tower).
  std::array<std::size_t, kNumPoiTypes> counts_near(const LatLon& p,
                                                    double radius_m) const;

  /// Total POIs of one type in the city.
  std::size_t total(PoiType t) const;

  /// All POIs.
  const std::vector<Poi>& pois() const { return pois_; }

  /// Mean POI count within 200 m for a *typical* tower of the given region
  /// and type, conditional on the type being present at all — the
  /// generation model's expectation, exposed so tests can verify the
  /// sampler against its specification.
  static double expected_count(FunctionalRegion tower_region, PoiType type);

  /// Probability that any POI of the type exists near a tower of the
  /// region. Real neighborhoods are sparse (not every block has a mall or
  /// a subway station); this zero-inflation is what gives the TF-IDF its
  /// discriminating IDF term (§5.3 / Table 6).
  static double presence_probability(FunctionalRegion tower_region,
                                     PoiType type);

 private:
  std::vector<Poi> pois_;
  std::array<std::unique_ptr<SpatialIndex>, kNumPoiTypes> index_;
};

}  // namespace cellscope
