#include "city/poi.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace cellscope {

namespace {

// Mean POI counts within the 200 m neighborhood of a typical tower, by
// (tower region, POI type). Magnitudes follow the structure of the paper's
// Table 2: residential POIs are plentiful everywhere, transport POIs are
// rare in absolute terms, office/entertainment counts explode at their own
// hotspots.
constexpr double kMeanCounts[kNumRegions][kNumPoiTypes] = {
    // Resident, Transport, Office, Entertain
    {130.0, 0.3, 16.0, 34.0},    // resident tower
    {52.0, 2.6, 42.0, 27.0},     // transport tower
    {70.0, 0.8, 320.0, 45.0},    // office tower
    {16.0, 0.4, 70.0, 420.0},    // entertainment tower
    {55.0, 0.5, 65.0, 26.0},     // comprehensive tower
};

// Probability that a tower's neighborhood contains the POI type at all
// (zero-inflation): residential buildings are near-ubiquitous, subway
// stations rare outside transport corridors, malls clustered at hubs.
constexpr double kPresenceProb[kNumRegions][kNumPoiTypes] = {
    // Resident, Transport, Office, Entertain
    {0.97, 0.05, 0.30, 0.30},  // resident tower
    {0.35, 0.92, 0.50, 0.45},  // transport tower
    {0.35, 0.15, 0.98, 0.45},  // office tower
    {0.28, 0.12, 0.50, 0.97},  // entertainment tower
    {0.55, 0.15, 0.60, 0.45},  // comprehensive tower
};

}  // namespace

double PoiDatabase::expected_count(FunctionalRegion tower_region,
                                   PoiType type) {
  return kMeanCounts[static_cast<int>(tower_region)][static_cast<int>(type)];
}

double PoiDatabase::presence_probability(FunctionalRegion tower_region,
                                         PoiType type) {
  return kPresenceProb[static_cast<int>(tower_region)][static_cast<int>(type)];
}

PoiDatabase PoiDatabase::generate(const CityModel& city,
                                  const std::vector<Tower>& towers,
                                  const PoiGenerationOptions& options) {
  // Degenerate mixtures: each tower's POI profile is exactly its latent
  // region's profile.
  std::vector<std::array<double, 4>> degenerate;
  degenerate.reserve(towers.size());
  for (const auto& t : towers) {
    std::array<double, 4> w{};
    if (t.true_region == FunctionalRegion::kComprehensive) {
      // Comprehensive towers fall back to the kComprehensive POI row,
      // signalled by an all-zero mixture (handled below).
    } else {
      w[static_cast<int>(t.true_region)] = 1.0;
    }
    degenerate.push_back(w);
  }
  return generate(city, towers, degenerate, options);
}

PoiDatabase PoiDatabase::generate(
    const CityModel& city, const std::vector<Tower>& towers,
    const std::vector<std::array<double, 4>>& mixtures,
    const PoiGenerationOptions& options) {
  CS_CHECK_MSG(options.scale > 0.0, "poi scale must be positive");
  CS_CHECK_MSG(options.spread_m > 0.0, "poi spread must be positive");
  CS_CHECK_MSG(mixtures.size() == towers.size(),
               "need one mixture per tower");
  Rng rng(options.seed);
  std::vector<Poi> pois;
  pois.reserve(towers.size() * 64);

  for (std::size_t ti = 0; ti < towers.size(); ++ti) {
    const auto& t = towers[ti];
    const auto& w = mixtures[ti];
    double w_sum = 0.0;
    double w_max = 0.0;
    int dominant = -1;
    for (int r = 0; r < 4; ++r) {
      w_sum += w[r];
      if (w[r] > w_max) {
        w_max = w[r];
        dominant = r;
      }
    }
    // Purity coupling: the purer a tower's traffic mixture, the more
    // single-function its neighborhood — the mechanism that puts the
    // paper's most representative towers into single-POI-type areas
    // (their Table 6 F-rows have NTF-IDF ≈ 1 on one type).
    const double foreign_scale =
        w_sum > 0.0 ? std::clamp(3.0 * (1.0 - w_max / w_sum), 0.15, 1.0)
                    : 1.0;

    for (const PoiType type : all_poi_types()) {
      double mean_count;
      double presence;
      if (w_sum > 0.0) {
        mean_count = 0.0;
        presence = 0.0;
        for (int r = 0; r < 4; ++r) {
          const auto region = static_cast<FunctionalRegion>(r);
          mean_count += w[r] / w_sum * expected_count(region, type);
          presence += w[r] / w_sum * presence_probability(region, type);
        }
        if (static_cast<int>(type) != dominant) presence *= foreign_scale;
        // Weight coupling: a function that contributes little traffic to
        // the tower is proportionally less likely to exist around it at
        // all — the traffic-composition <-> land-use link §5.3 validates.
        presence *=
            std::clamp(0.25 + 2.5 * w[static_cast<int>(type)] / w_sum, 0.0,
                       1.0);
      } else {
        mean_count = expected_count(FunctionalRegion::kComprehensive, type);
        presence =
            presence_probability(FunctionalRegion::kComprehensive, type);
      }
      // Zero-inflation: the neighborhood may simply lack the type.
      if (rng.uniform() >= presence) continue;
      const double base = mean_count * options.scale;
      // Gamma-distributed neighborhood richness (towns differ), then a
      // Poisson draw of the actual count.
      const double mean = base * rng.gamma(4.0, 0.25);
      const auto count = rng.poisson(mean);
      for (std::int64_t i = 0; i < count; ++i) {
        const double north_m = rng.normal(0.0, options.spread_m);
        const double east_m = rng.normal(0.0, options.spread_m);
        LatLon p = t.position;
        p.lat += north_m / 1000.0 / km_per_degree_lat();
        p.lon += east_m / 1000.0 / km_per_degree_lon(t.position.lat);
        pois.push_back({type, city.box().clamp(p)});
      }
    }
  }
  return PoiDatabase(city.box(), std::move(pois));
}

PoiDatabase::PoiDatabase(const BoundingBox& box, std::vector<Poi> pois)
    : pois_(std::move(pois)) {
  std::array<std::vector<LatLon>, kNumPoiTypes> by_type;
  for (const auto& p : pois_)
    by_type[static_cast<int>(p.type)].push_back(p.position);
  for (int t = 0; t < kNumPoiTypes; ++t) {
    // The index requires at least a valid box even for empty point sets.
    index_[t] = std::make_unique<SpatialIndex>(box, std::move(by_type[t]),
                                               /*cell_km=*/0.4);
  }
}

std::array<std::size_t, kNumPoiTypes> PoiDatabase::counts_near(
    const LatLon& p, double radius_m) const {
  std::array<std::size_t, kNumPoiTypes> out{};
  for (int t = 0; t < kNumPoiTypes; ++t)
    out[t] = index_[t]->count_radius(p, radius_m);
  return out;
}

std::size_t PoiDatabase::total(PoiType t) const {
  return index_[static_cast<int>(t)]->size();
}

}  // namespace cellscope
