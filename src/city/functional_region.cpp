#include "city/functional_region.h"

#include "common/error.h"

namespace cellscope {

std::string region_name(FunctionalRegion r) {
  switch (r) {
    case FunctionalRegion::kResident: return "Resident";
    case FunctionalRegion::kTransport: return "Transport";
    case FunctionalRegion::kOffice: return "Office";
    case FunctionalRegion::kEntertainment: return "Entertainment";
    case FunctionalRegion::kComprehensive: return "Comprehensive";
  }
  throw InvalidArgument("unknown FunctionalRegion");
}

std::string poi_type_name(PoiType t) {
  switch (t) {
    case PoiType::kResident: return "Resident";
    case PoiType::kTransport: return "Transport";
    case PoiType::kOffice: return "Office";
    case PoiType::kEntertain: return "Entertain";
  }
  throw InvalidArgument("unknown PoiType");
}

std::array<FunctionalRegion, kNumRegions> all_regions() {
  return {FunctionalRegion::kResident, FunctionalRegion::kTransport,
          FunctionalRegion::kOffice, FunctionalRegion::kEntertainment,
          FunctionalRegion::kComprehensive};
}

std::array<PoiType, kNumPoiTypes> all_poi_types() {
  return {PoiType::kResident, PoiType::kTransport, PoiType::kOffice,
          PoiType::kEntertain};
}

std::array<double, kNumRegions> table1_region_mix() {
  // Published percentages (Table 1); they sum to 100.01 due to rounding,
  // so renormalize.
  std::array<double, kNumRegions> mix = {0.1755, 0.0258, 0.4572, 0.0935,
                                         0.2481};
  double s = 0.0;
  for (const double v : mix) s += v;
  for (auto& v : mix) v /= s;
  return mix;
}

PoiType poi_type_of_region(FunctionalRegion r) {
  switch (r) {
    case FunctionalRegion::kResident: return PoiType::kResident;
    case FunctionalRegion::kTransport: return PoiType::kTransport;
    case FunctionalRegion::kOffice: return PoiType::kOffice;
    case FunctionalRegion::kEntertainment: return PoiType::kEntertain;
    case FunctionalRegion::kComprehensive:
      throw InvalidArgument("comprehensive region has no single POI type");
  }
  throw InvalidArgument("unknown FunctionalRegion");
}

FunctionalRegion region_of_poi_type(PoiType t) {
  switch (t) {
    case PoiType::kResident: return FunctionalRegion::kResident;
    case PoiType::kTransport: return FunctionalRegion::kTransport;
    case PoiType::kOffice: return FunctionalRegion::kOffice;
    case PoiType::kEntertain: return FunctionalRegion::kEntertainment;
  }
  throw InvalidArgument("unknown PoiType");
}

}  // namespace cellscope
