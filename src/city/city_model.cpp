#include "city/city_model.h"

#include <cmath>

#include "common/error.h"

namespace cellscope {

namespace {

// Planar km offsets between two nearby points (adequate at city scale).
double dx_km(const LatLon& a, const LatLon& b) {
  return (b.lon - a.lon) * km_per_degree_lon((a.lat + b.lat) / 2.0);
}

double dy_km(const LatLon& a, const LatLon& b) {
  return (b.lat - a.lat) * km_per_degree_lat();
}

double gaussian_kernel(const LatLon& center, double sigma_km,
                       const LatLon& p) {
  const double dx = dx_km(center, p);
  const double dy = dy_km(center, p);
  return std::exp(-(dx * dx + dy * dy) / (2.0 * sigma_km * sigma_km));
}

LatLon offset_km(const LatLon& p, double north_km, double east_km) {
  return {p.lat + north_km / km_per_degree_lat(),
          p.lon + east_km / km_per_degree_lon(p.lat)};
}

}  // namespace

CityModel CityModel::create_default(std::uint64_t seed) {
  Rng rng(seed);
  const BoundingBox box = shanghai_bbox();
  const LatLon c = box.center();

  std::vector<std::vector<Hotspot>> spots(kNumRegions);

  // Office: a dense CBD at the center plus two secondary business districts.
  spots[static_cast<int>(FunctionalRegion::kOffice)] = {
      {c, 2.2, 3.0},
      {offset_km(c, 4.0, 6.0), 1.5, 1.2},
      {offset_km(c, -5.0, -4.0), 1.5, 1.0},
  };

  // Resident: a ring of neighborhoods around the center (the paper: towers
  // of this cluster sit on the surrounding areas of the city).
  auto& res = spots[static_cast<int>(FunctionalRegion::kResident)];
  const int kNeighborhoods = 10;
  for (int i = 0; i < kNeighborhoods; ++i) {
    const double ang = 2.0 * M_PI * i / kNeighborhoods + rng.uniform(-0.15, 0.15);
    const double radius = rng.uniform(9.0, 14.0);
    res.push_back({offset_km(c, radius * std::sin(ang), radius * std::cos(ang)),
                   rng.uniform(1.8, 2.6), rng.uniform(0.8, 1.4)});
  }

  // Transport: stations strung along a N-S and an E-W corridor.
  auto& tra = spots[static_cast<int>(FunctionalRegion::kTransport)];
  for (int i = -3; i <= 3; ++i) {
    tra.push_back({offset_km(c, 4.5 * i, rng.uniform(-1.0, 1.0)), 0.5, 1.0});
    tra.push_back({offset_km(c, rng.uniform(-1.0, 1.0), 5.0 * i), 0.5, 1.0});
  }

  // Entertainment: a handful of malls/parks between center and ring.
  auto& ent = spots[static_cast<int>(FunctionalRegion::kEntertainment)];
  const int kHubs = 6;
  for (int i = 0; i < kHubs; ++i) {
    const double ang = 2.0 * M_PI * i / kHubs + 0.4;
    const double radius = rng.uniform(4.0, 8.0);
    ent.push_back({offset_km(c, radius * std::sin(ang), radius * std::cos(ang)),
                   rng.uniform(0.7, 1.1), rng.uniform(0.9, 1.3)});
  }

  // Comprehensive: one wide urban background blob (mixed use everywhere,
  // denser toward the center).
  spots[static_cast<int>(FunctionalRegion::kComprehensive)] = {
      {c, 12.0, 1.0},
  };

  return CityModel(box, std::move(spots));
}

CityModel::CityModel(BoundingBox box,
                     std::vector<std::vector<Hotspot>> hotspots_by_function)
    : box_(box), hotspots_(std::move(hotspots_by_function)) {
  CS_CHECK_MSG(hotspots_.size() == static_cast<std::size_t>(kNumRegions),
               "need one hotspot set per region");
  for (const auto& set : hotspots_)
    CS_CHECK_MSG(!set.empty(), "each region needs at least one hotspot");
}

double CityModel::intensity(FunctionalRegion r, const LatLon& p) const {
  double s = 0.0;
  for (const auto& h : hotspots_[static_cast<int>(r)])
    s += h.weight * gaussian_kernel(h.center, h.sigma_km, p);
  return s;
}

LatLon CityModel::sample_location(FunctionalRegion r, Rng& rng) const {
  const auto& set = hotspots_[static_cast<int>(r)];
  std::vector<double> weights;
  weights.reserve(set.size());
  for (const auto& h : set) weights.push_back(h.weight);
  const auto& h = set[rng.categorical(weights)];
  const LatLon p = {h.center.lat + rng.normal(0.0, h.sigma_km) /
                                       km_per_degree_lat(),
                    h.center.lon + rng.normal(0.0, h.sigma_km) /
                                       km_per_degree_lon(h.center.lat)};
  return box_.clamp(p);
}

FunctionalRegion CityModel::region_at(const LatLon& p,
                                      double dominance) const {
  CS_CHECK_MSG(dominance >= 1.0, "dominance ratio must be >= 1");
  double best = 0.0;
  double second = 0.0;
  FunctionalRegion best_r = FunctionalRegion::kComprehensive;
  for (const FunctionalRegion r :
       {FunctionalRegion::kResident, FunctionalRegion::kTransport,
        FunctionalRegion::kOffice, FunctionalRegion::kEntertainment}) {
    const double v = intensity(r, p);
    if (v > best) {
      second = best;
      best = v;
      best_r = r;
    } else if (v > second) {
      second = v;
    }
  }
  if (best <= 0.0) return FunctionalRegion::kComprehensive;
  if (second > 0.0 && best / second < dominance)
    return FunctionalRegion::kComprehensive;
  return best_r;
}

const std::vector<Hotspot>& CityModel::hotspots(FunctionalRegion r) const {
  return hotspots_[static_cast<int>(r)];
}

}  // namespace cellscope
