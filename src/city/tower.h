// A cellular tower (base station).
#pragma once

#include <cstdint>
#include <string>

#include "city/functional_region.h"
#include "geo/latlon.h"

namespace cellscope {

/// One 3G/LTE base station. `true_region` is the latent ground-truth
/// functional region the generator assigned — the synthetic stand-in for
/// the paper's manual labels (DESIGN.md §2); the analysis pipeline never
/// reads it except for validation.
struct Tower {
  std::uint32_t id = 0;
  LatLon position;
  std::string address;  ///< synthetic street address (geocodable)
  FunctionalRegion true_region = FunctionalRegion::kComprehensive;
};

}  // namespace cellscope
