// POI-derived features: the measurements behind Tables 2, 3, 6 and Fig. 9.
//
// Per-tower POI counts within 200 m; min-max-normalized per-cluster
// averages (Table 3 / Fig. 9); and the TF-IDF / normalized TF-IDF measure
// the paper borrows from Yuan et al. for the §5.3 validation (Table 6):
//   IDFᵢ = log(M / Mᵢ),   TF-IDFᵐᵢ = IDFᵢ · log(1 + POIᵐᵢ),
//   NTF-IDFᵐᵢ = TF-IDFᵐᵢ / Σⱼ TF-IDFᵐⱼ.
#pragma once

#include <array>
#include <vector>

#include "city/poi.h"
#include "city/tower.h"

namespace cellscope {

/// The paper's POI neighborhood radius (200 m, §3.3.1).
inline constexpr double kPoiRadiusM = 200.0;

/// Per-type POI counts around every tower.
std::vector<std::array<std::size_t, kNumPoiTypes>> poi_counts_for_towers(
    const PoiDatabase& pois, const std::vector<Tower>& towers,
    double radius_m = kPoiRadiusM);

/// Table 3: min-max normalize each POI type across towers, then average
/// within each cluster. `labels[i]` is the cluster of towers[i].
std::vector<std::array<double, kNumPoiTypes>> normalized_poi_by_cluster(
    const std::vector<std::array<std::size_t, kNumPoiTypes>>& counts,
    const std::vector<int>& labels);

/// Fig. 9: each cluster's normalized POI as shares summing to 1.
std::vector<std::array<double, kNumPoiTypes>> poi_shares_by_cluster(
    const std::vector<std::array<double, kNumPoiTypes>>& normalized);

/// NTF-IDF of every tower (rows sum to 1 when the tower has any POI;
/// all-zero rows stay zero).
std::vector<std::array<double, kNumPoiTypes>> ntf_idf(
    const std::vector<std::array<std::size_t, kNumPoiTypes>>& counts);

}  // namespace cellscope
