#include "analysis/freq_features.h"

#include <cmath>
#include <functional>

#include "common/error.h"
#include "common/stats.h"
#include "common/time_grid.h"
#include "mapred/thread_pool.h"

namespace cellscope {

namespace {

/// fn(i) for every row — pooled when available, serial otherwise. Rows
/// are independent, so both paths produce identical output.
void for_each_row(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && pool->thread_count() > 1 && n > 1) {
    pool->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

FreqFeatures compute_freq_features(std::span<const double> zscored_series) {
  CS_CHECK_MSG(zscored_series.size() == TimeGrid::kSlots,
               "frequency features need a 4032-slot series");
  const Spectrum spectrum(zscored_series);
  FreqFeatures f;
  f.amp_week = spectrum.normalized_amplitude(kWeeklyComponent);
  f.phase_week = spectrum.phase(kWeeklyComponent);
  f.amp_day = spectrum.normalized_amplitude(kDailyComponent);
  f.phase_day = spectrum.phase(kDailyComponent);
  f.amp_half_day = spectrum.normalized_amplitude(kHalfDailyComponent);
  f.phase_half_day = spectrum.phase(kHalfDailyComponent);
  return f;
}

std::vector<FreqFeatures> compute_freq_features(
    const std::vector<std::vector<double>>& zscored_rows, ThreadPool* pool) {
  std::vector<FreqFeatures> out(zscored_rows.size());
  for_each_row(pool, zscored_rows.size(), [&](std::size_t i) {
    out[i] = compute_freq_features(zscored_rows[i]);
  });
  return out;
}

std::vector<double> amplitude_variance_spectrum(
    const std::vector<std::vector<double>>& zscored_rows, std::size_t max_k,
    ThreadPool* pool) {
  CS_CHECK_MSG(!zscored_rows.empty(), "need at least one row");
  CS_CHECK_MSG(max_k < TimeGrid::kSlots, "max_k out of range");
  const std::size_t n = zscored_rows.size();
  std::vector<std::vector<double>> amp_by_k(
      max_k + 1, std::vector<double>(n, 0.0));
  // Each worker owns column i across every frequency row — disjoint slots.
  for_each_row(pool, n, [&](std::size_t i) {
    const Spectrum spectrum(zscored_rows[i]);
    for (std::size_t k = 0; k <= max_k; ++k)
      amp_by_k[k][i] = spectrum.normalized_amplitude(k);
  });
  std::vector<double> var(max_k + 1, 0.0);
  for_each_row(pool, max_k + 1,
               [&](std::size_t k) { var[k] = variance(amp_by_k[k]); });
  return var;
}

double circular_mean(std::span<const double> phases) {
  CS_CHECK_MSG(!phases.empty(), "circular mean of empty set");
  double s = 0.0;
  double c = 0.0;
  for (const double p : phases) {
    s += std::sin(p);
    c += std::cos(p);
  }
  return std::atan2(s, c);
}

double circular_stddev(std::span<const double> phases) {
  CS_CHECK_MSG(!phases.empty(), "circular stddev of empty set");
  double s = 0.0;
  double c = 0.0;
  for (const double p : phases) {
    s += std::sin(p);
    c += std::cos(p);
  }
  const double n = static_cast<double>(phases.size());
  const double r = std::sqrt(s * s + c * c) / n;
  // Mardia's definition: sqrt(-2 ln R); 0 when all phases agree.
  return r > 0.0 ? std::sqrt(std::max(0.0, -2.0 * std::log(r)))
                 : std::sqrt(-2.0 * std::log(1e-12));
}

}  // namespace cellscope
