// Commute-flow analysis — reading human migration out of connection logs.
//
// §5.2 of the paper interprets the daily-phase ordering of the patterns as
// "the human migration flow from home to office via transport during rush
// hours". With per-user logs, the flow is directly measurable: order each
// user's sessions in time, and count transitions between towers of
// different functional regions inside an hour window. Morning windows
// should be dominated by resident→transport and transport→office
// transitions; evening windows by the reverse.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "city/functional_region.h"
#include "traffic/trace_record.h"

namespace cellscope {

/// Region-to-region transition counts.
struct FlowMatrix {
  std::array<std::array<std::size_t, kNumRegions>, kNumRegions> counts{};

  /// Total transitions between *different* regions.
  std::size_t total_cross() const;

  /// counts[from][to] as a fraction of total_cross(); 0 when empty.
  double share(FunctionalRegion from, FunctionalRegion to) const;
};

/// Options for the flow extraction.
struct FlowOptions {
  /// Only count a consecutive session pair as a transition when they are
  /// at most this many minutes apart (a phone silent for half a day is
  /// not a commute edge).
  std::uint32_t max_gap_minutes = 120;
  /// Window of hours-of-day [begin, end) to attribute transitions to (the
  /// transition timestamp is the destination session's start).
  double hour_begin = 0.0;
  double hour_end = 24.0;
  /// Restrict to weekdays (commutes) or weekends.
  bool weekdays_only = true;
};

/// Extracts region-to-region transitions from logs. `region_of_tower[id]`
/// maps tower ids to functional regions (typically the clustering labels,
/// or ground truth). Logs need not be sorted.
FlowMatrix commute_flows(std::span<const TrafficLog> logs,
                         const std::vector<FunctionalRegion>& region_of_tower,
                         const FlowOptions& options);

}  // namespace cellscope
