#include "analysis/poi_features.h"

#include <cmath>

#include "common/error.h"
#include "ml/hierarchical.h"

namespace cellscope {

std::vector<std::array<std::size_t, kNumPoiTypes>> poi_counts_for_towers(
    const PoiDatabase& pois, const std::vector<Tower>& towers,
    double radius_m) {
  std::vector<std::array<std::size_t, kNumPoiTypes>> out;
  out.reserve(towers.size());
  for (const auto& t : towers)
    out.push_back(pois.counts_near(t.position, radius_m));
  return out;
}

std::vector<std::array<double, kNumPoiTypes>> normalized_poi_by_cluster(
    const std::vector<std::array<std::size_t, kNumPoiTypes>>& counts,
    const std::vector<int>& labels) {
  CS_CHECK_MSG(counts.size() == labels.size() && !counts.empty(),
               "counts and labels must match");
  const std::size_t k = num_clusters(labels);

  // Min-max per type across all towers.
  std::array<double, kNumPoiTypes> lo{};
  std::array<double, kNumPoiTypes> hi{};
  for (int t = 0; t < kNumPoiTypes; ++t) {
    lo[t] = static_cast<double>(counts[0][t]);
    hi[t] = lo[t];
  }
  for (const auto& row : counts) {
    for (int t = 0; t < kNumPoiTypes; ++t) {
      lo[t] = std::min(lo[t], static_cast<double>(row[t]));
      hi[t] = std::max(hi[t], static_cast<double>(row[t]));
    }
  }

  std::vector<std::array<double, kNumPoiTypes>> sums(
      k, std::array<double, kNumPoiTypes>{});
  std::vector<std::size_t> sizes(k, 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    ++sizes[c];
    for (int t = 0; t < kNumPoiTypes; ++t) {
      const double range = hi[t] - lo[t];
      const double normalized =
          range > 0.0
              ? (static_cast<double>(counts[i][t]) - lo[t]) / range
              : 0.0;
      sums[c][t] += normalized;
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    CS_CHECK_MSG(sizes[c] > 0, "empty cluster");
    for (int t = 0; t < kNumPoiTypes; ++t)
      sums[c][t] /= static_cast<double>(sizes[c]);
  }
  return sums;
}

std::vector<std::array<double, kNumPoiTypes>> poi_shares_by_cluster(
    const std::vector<std::array<double, kNumPoiTypes>>& normalized) {
  std::vector<std::array<double, kNumPoiTypes>> shares = normalized;
  for (auto& row : shares) {
    double total = 0.0;
    for (const double v : row) total += v;
    if (total <= 0.0) continue;
    for (auto& v : row) v /= total;
  }
  return shares;
}

std::vector<std::array<double, kNumPoiTypes>> ntf_idf(
    const std::vector<std::array<std::size_t, kNumPoiTypes>>& counts) {
  CS_CHECK_MSG(!counts.empty(), "need at least one tower");
  const double m = static_cast<double>(counts.size());

  // Mᵢ: towers where POI type i appears at all.
  std::array<double, kNumPoiTypes> appears{};
  for (const auto& row : counts)
    for (int t = 0; t < kNumPoiTypes; ++t)
      if (row[t] > 0) appears[t] += 1.0;

  std::array<double, kNumPoiTypes> idf{};
  for (int t = 0; t < kNumPoiTypes; ++t)
    // A type appearing nowhere gets IDF of log(M/1) — it will multiply
    // zero TF everywhere anyway.
    idf[t] = std::log(m / std::max(1.0, appears[t]));

  std::vector<std::array<double, kNumPoiTypes>> out(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    double total = 0.0;
    for (int t = 0; t < kNumPoiTypes; ++t) {
      out[i][t] = idf[t] * std::log(1.0 + static_cast<double>(counts[i][t]));
      total += out[i][t];
    }
    if (total > 0.0)
      for (auto& v : out[i]) v /= total;
  }
  return out;
}

}  // namespace cellscope
