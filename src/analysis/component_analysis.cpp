#include "analysis/component_analysis.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/quality.h"

namespace cellscope {

namespace {

double feature_distance(const std::array<double, 3>& a,
                        const std::array<double, 3>& b) {
  double s = 0.0;
  for (int i = 0; i < 3; ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s);
}

}  // namespace

std::size_t find_representative(
    const std::vector<std::array<double, 3>>& features,
    const std::vector<int>& labels, int cluster) {
  return find_representative(features, labels, cluster,
                             RepresentativeOptions{});
}

std::size_t find_representative(
    const std::vector<std::array<double, 3>>& features,
    const std::vector<int>& labels, int cluster,
    const RepresentativeOptions& options) {
  CS_CHECK_MSG(features.size() == labels.size() && !features.empty(),
               "features and labels must match");

  std::vector<std::size_t> members;
  std::vector<std::size_t> others;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == cluster) members.push_back(i);
    else others.push_back(i);
  }
  CS_CHECK_MSG(!members.empty(), "cluster has no members");
  CS_CHECK_MSG(!others.empty(), "no other clusters to separate from");

  auto evaluate = [&](bool enforce_density) -> std::size_t {
    double best_score = -1.0;
    std::size_t best = features.size();  // sentinel
    for (const std::size_t i : members) {
      if (enforce_density) {
        std::size_t neighbors = 0;
        for (std::size_t j = 0; j < features.size(); ++j) {
          if (j == i) continue;
          if (feature_distance(features[i], features[j]) <=
              options.density_radius)
            ++neighbors;
        }
        if (neighbors < options.min_neighbors) continue;  // noise point
      }
      double min_d = std::numeric_limits<double>::infinity();
      for (const std::size_t j : others)
        min_d = std::min(min_d, feature_distance(features[i], features[j]));
      if (min_d > best_score) {
        best_score = min_d;
        best = i;
      }
    }
    return best;
  };

  std::size_t chosen = evaluate(true);
  if (chosen == features.size()) chosen = evaluate(false);  // all "noise"
  CS_CHECK_MSG(chosen < features.size(), "no representative found");
  return chosen;
}

Decomposition decompose_feature(
    const std::array<double, 3>& feature,
    const std::array<std::array<double, 3>, 4>& primary_features) {
  std::vector<std::vector<double>> components;
  components.reserve(4);
  for (const auto& p : primary_features)
    components.emplace_back(p.begin(), p.end());
  const std::vector<double> target(feature.begin(), feature.end());

  const auto solution = solve_simplex_ls(components, target);
  Decomposition d;
  for (int i = 0; i < 4; ++i) d.coefficients[i] = solution.coefficients[i];
  d.residual = std::sqrt(solution.objective);

  // Sentinel: the weights must lie on the probability simplex — the §5.3
  // convex-combination invariant. Feasible solves only bump a counter;
  // an infeasible one (solver bug or poisoned features) records a fail
  // verdict so run reports surface it.
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("cellscope.analysis.decompositions").add(1);
  const auto feasible = obs::check_simplex_weights(solution.coefficients);
  if (!feasible.passed) {
    registry.counter("cellscope.analysis.simplex_violations").add(1);
    obs::QualityBoard::instance().record(
        {.check = "simplex_feasible",
         .stage = "analysis.decompose",
         .severity = obs::Severity::kFail,
         .passed = false,
         .value = feasible.value,
         .detail = feasible.detail});
  }
  return d;
}

std::vector<double> combine_series(
    const std::array<double, 4>& coefficients,
    const std::array<std::vector<double>, 4>& primary_series) {
  const std::size_t n = primary_series[0].size();
  for (const auto& s : primary_series)
    CS_CHECK_MSG(s.size() == n, "primary series must have equal length");
  std::vector<double> out(n, 0.0);
  for (int i = 0; i < 4; ++i) {
    if (coefficients[i] == 0.0) continue;
    for (std::size_t t = 0; t < n; ++t)
      out[t] += coefficients[i] * primary_series[i][t];
  }
  return out;
}

}  // namespace cellscope
