// Frequency-domain tower features — §5.2 of the paper.
//
// For every tower, the amplitude and phase of the three principal DFT
// components (week / day / half-day) of its z-scored traffic vector.
// These six numbers are the coordinates of the Fig. 15 scatter plots; the
// (A28, P28, A56) triple is the feature space of the Fig. 17 polygon and
// of the §5.3 convex component analysis.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "dsp/spectrum.h"

namespace cellscope {

class ThreadPool;

/// Amplitude/phase of the three principal components of one tower.
struct FreqFeatures {
  double amp_week = 0.0;    ///< A4  — normalized amplitude at k=4
  double phase_week = 0.0;  ///< P4  — phase at k=4, in (-π, π]
  double amp_day = 0.0;     ///< A28
  double phase_day = 0.0;   ///< P28
  double amp_half_day = 0.0;   ///< A56
  double phase_half_day = 0.0; ///< P56

  /// The paper's §5.3 component-analysis feature (A28, P28, A56).
  std::array<double, 3> qp_feature() const {
    return {amp_day, phase_day, amp_half_day};
  }
};

/// Extracts the features of one z-scored traffic series.
FreqFeatures compute_freq_features(std::span<const double> zscored_series);

/// Batch extraction for all rows. Rows are independent, so a pool
/// parallelizes the per-tower spectra with bit-identical output.
std::vector<FreqFeatures> compute_freq_features(
    const std::vector<std::vector<double>>& zscored_rows,
    ThreadPool* pool = nullptr);

/// Per-frequency variance of normalized DFT amplitude across towers — the
/// Fig. 13 series. `max_k` limits the frequency range (the paper plots
/// k <= 100). Per-tower spectra are pooled when a pool is given;
/// output is bit-identical either way.
std::vector<double> amplitude_variance_spectrum(
    const std::vector<std::vector<double>>& zscored_rows, std::size_t max_k,
    ThreadPool* pool = nullptr);

/// Circular mean of phases (vector averaging; phases near ±π average
/// correctly, unlike the arithmetic mean).
double circular_mean(std::span<const double> phases);

/// Circular standard deviation of phases.
double circular_stddev(std::span<const double> phases);

}  // namespace cellscope
