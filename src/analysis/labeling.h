// Cluster → urban-functional-region labeling and validation (§3.3).
//
// The paper labels the five traffic clusters by inspecting tower-density
// hotspots and POI distributions, then validates the labels against POI
// data in micro (case studies) and macro (all-tower POI averages) scale.
// Here the labeling is automated: the cluster most distinctively rich in a
// pure POI type receives that type's region (greedy assignment on
// column-normalized POI dominance); unassigned clusters are labeled
// comprehensive. Validation compares against the generator's latent
// regions — the synthetic stand-in for the paper's manual ground truth.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "city/tower.h"

namespace cellscope {

/// Region assigned to each cluster id.
struct ClusterLabeling {
  std::vector<FunctionalRegion> region_of_cluster;
};

/// Labels clusters from their averaged normalized POI rows (Table 3
/// layout: one row per cluster, one column per pure POI type).
ClusterLabeling label_clusters_by_poi(
    const std::vector<std::array<double, kNumPoiTypes>>& normalized_poi);

/// Validation against the latent ground truth.
struct LabelValidation {
  /// Fraction of towers whose labeled region equals the latent region.
  double accuracy = 0.0;
  /// confusion[true_region][labeled_region] tower counts.
  std::array<std::array<std::size_t, kNumRegions>, kNumRegions> confusion{};
};

/// Compares cluster labels with the towers' latent regions. `labels[i]`
/// is the cluster of matrix row i; `row_tower` maps rows to tower indices
/// in `towers`.
LabelValidation validate_labels(const std::vector<int>& labels,
                                const ClusterLabeling& labeling,
                                const std::vector<std::size_t>& row_tower,
                                const std::vector<Tower>& towers);

}  // namespace cellscope
