#include "analysis/commute_flows.h"

#include <algorithm>

#include "common/error.h"
#include "common/time_grid.h"

namespace cellscope {

std::size_t FlowMatrix::total_cross() const {
  std::size_t total = 0;
  for (int a = 0; a < kNumRegions; ++a)
    for (int b = 0; b < kNumRegions; ++b)
      if (a != b) total += counts[a][b];
  return total;
}

double FlowMatrix::share(FunctionalRegion from, FunctionalRegion to) const {
  const auto total = total_cross();
  if (total == 0) return 0.0;
  return static_cast<double>(
             counts[static_cast<int>(from)][static_cast<int>(to)]) /
         static_cast<double>(total);
}

FlowMatrix commute_flows(std::span<const TrafficLog> logs,
                         const std::vector<FunctionalRegion>& region_of_tower,
                         const FlowOptions& options) {
  CS_CHECK_MSG(options.hour_begin >= 0.0 && options.hour_end <= 24.0 &&
                   options.hour_begin < options.hour_end,
               "hour window must satisfy 0 <= begin < end <= 24");

  // Group by user, ordered by time.
  std::vector<const TrafficLog*> ordered;
  ordered.reserve(logs.size());
  for (const auto& log : logs) ordered.push_back(&log);
  std::sort(ordered.begin(), ordered.end(),
            [](const TrafficLog* a, const TrafficLog* b) {
              if (a->user_id != b->user_id) return a->user_id < b->user_id;
              return a->start_minute < b->start_minute;
            });

  FlowMatrix flows;
  for (std::size_t i = 1; i < ordered.size(); ++i) {
    const auto& prev = *ordered[i - 1];
    const auto& cur = *ordered[i];
    if (prev.user_id != cur.user_id) continue;
    if (cur.tower_id == prev.tower_id) continue;
    if (cur.start_minute - prev.start_minute > options.max_gap_minutes)
      continue;

    // Attribute to the destination session's time-of-day.
    const std::uint32_t minute_of_day = cur.start_minute % (24 * 60);
    const double hour = static_cast<double>(minute_of_day) / 60.0;
    if (hour < options.hour_begin || hour >= options.hour_end) continue;
    const std::uint32_t day = cur.start_minute / (24 * 60);
    const bool weekday = day % 7 < 5;  // the grid starts on a Monday
    if (options.weekdays_only != weekday) continue;

    CS_CHECK_MSG(prev.tower_id < region_of_tower.size() &&
                     cur.tower_id < region_of_tower.size(),
                 "tower id outside region map");
    ++flows.counts[static_cast<int>(region_of_tower[prev.tower_id])]
                  [static_cast<int>(region_of_tower[cur.tower_id])];
  }
  return flows;
}

}  // namespace cellscope
