// Time-domain characteristics of a traffic series — §4.1 of the paper.
//
// Quantifies, separately for weekdays and weekends:
//   * total traffic (and the weekday/weekend ratio of Fig. 10a),
//   * maximum / minimum traffic of the mean day and the peak-valley ratio
//     (Table 4, Fig. 10b),
//   * time of the mean day's peak and valley, plus detection of secondary
//     peaks (Table 5: transport shows 8:00 and 18:00).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/time_grid.h"

namespace cellscope {

/// Day-type statistics over the averaged day profile.
struct DayTypeFeatures {
  double total_bytes = 0.0;      ///< sum over all slots of this day type
  double max_traffic = 0.0;      ///< peak of the mean day (bytes/slot)
  double min_traffic = 0.0;      ///< valley of the mean day
  double peak_valley_ratio = 0.0;
  double peak_hour = 0.0;        ///< hour-of-day of the main peak
  double valley_hour = 0.0;      ///< hour-of-day of the valley
  /// Hours of all local peaks at least `secondary_fraction` of the main
  /// one, in descending height order (detects double humps).
  std::vector<double> peak_hours;
  /// Mean day profile (144 slots).
  std::vector<double> mean_day;
};

/// Full time-domain feature set of one traffic series.
struct TimeFeatures {
  DayTypeFeatures weekday;
  DayTypeFeatures weekend;
  /// Mean daily traffic ratio weekday/weekend (Fig. 10a — per-day totals,
  /// so a flat series gives 1.0).
  double weekday_weekend_ratio = 0.0;
};

/// Options for the peak detector.
struct TimeFeatureOptions {
  /// Smoothing half-window (slots) applied to the mean day before peak
  /// detection; 10-minute noise would otherwise fragment peaks.
  std::size_t smooth_half_window = 3;
  /// A local maximum counts as a peak if >= this fraction of the global one.
  double secondary_fraction = 0.55;
  /// Minimum separation between reported peaks, hours.
  double min_peak_separation_h = 3.0;
};

/// Computes the features of a 4032-slot series.
TimeFeatures compute_time_features(std::span<const double> series,
                                   const TimeFeatureOptions& options = {});

/// Pretty "HH:MM" for a peak/valley hour.
std::string format_peak_time(double hour);

}  // namespace cellscope
