#include "analysis/labeling.h"

#include <algorithm>

#include "common/error.h"

namespace cellscope {

ClusterLabeling label_clusters_by_poi(
    const std::vector<std::array<double, kNumPoiTypes>>& normalized_poi) {
  const std::size_t k = normalized_poi.size();
  CS_CHECK_MSG(k >= 1, "need at least one cluster");

  // Column-normalize so each POI type's mass distributes over clusters;
  // a cluster "owns" a type when it holds the type's largest share.
  std::array<double, kNumPoiTypes> column_total{};
  for (const auto& row : normalized_poi)
    for (int t = 0; t < kNumPoiTypes; ++t) column_total[t] += row[t];

  // Score = (cluster's share of the type) x (absolute normalized value):
  // relative dominance alone would let a minuscule monopoly of one type
  // outrank a strong signal of another.
  std::vector<std::array<double, kNumPoiTypes>> share(
      k, std::array<double, kNumPoiTypes>{});
  for (std::size_t c = 0; c < k; ++c)
    for (int t = 0; t < kNumPoiTypes; ++t)
      share[c][t] = column_total[t] > 0.0
                        ? normalized_poi[c][t] / column_total[t] *
                              normalized_poi[c][t]
                        : 0.0;

  ClusterLabeling labeling;
  labeling.region_of_cluster.assign(k, FunctionalRegion::kComprehensive);
  std::vector<bool> cluster_used(k, false);
  std::array<bool, kNumPoiTypes> type_used{};

  // Greedy: repeatedly take the strongest remaining (cluster, type) pair.
  const std::size_t assignments = std::min<std::size_t>(k, kNumPoiTypes);
  for (std::size_t step = 0; step < assignments; ++step) {
    double best = -1.0;
    std::size_t best_c = 0;
    int best_t = 0;
    for (std::size_t c = 0; c < k; ++c) {
      if (cluster_used[c]) continue;
      for (int t = 0; t < kNumPoiTypes; ++t) {
        if (type_used[t]) continue;
        if (share[c][t] > best) {
          best = share[c][t];
          best_c = c;
          best_t = t;
        }
      }
    }
    if (best <= 0.0) break;  // no signal left
    cluster_used[best_c] = true;
    type_used[best_t] = true;
    labeling.region_of_cluster[best_c] =
        region_of_poi_type(static_cast<PoiType>(best_t));
  }
  return labeling;
}

LabelValidation validate_labels(const std::vector<int>& labels,
                                const ClusterLabeling& labeling,
                                const std::vector<std::size_t>& row_tower,
                                const std::vector<Tower>& towers) {
  CS_CHECK_MSG(labels.size() == row_tower.size() && !labels.empty(),
               "labels and row mapping must match");
  LabelValidation v;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto cluster = static_cast<std::size_t>(labels[i]);
    CS_CHECK_MSG(cluster < labeling.region_of_cluster.size(),
                 "label exceeds cluster count");
    CS_CHECK_MSG(row_tower[i] < towers.size(), "row mapping out of range");
    const FunctionalRegion truth = towers[row_tower[i]].true_region;
    const FunctionalRegion labeled = labeling.region_of_cluster[cluster];
    ++v.confusion[static_cast<int>(truth)][static_cast<int>(labeled)];
    if (truth == labeled) ++correct;
  }
  v.accuracy = static_cast<double>(correct) / static_cast<double>(labels.size());
  return v;
}

}  // namespace cellscope
