#include "analysis/time_features.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/stats.h"

namespace cellscope {

namespace {

/// Mean day (144 slots) over the slots of one day type.
std::vector<double> mean_day_profile(std::span<const double> series,
                                     bool weekday) {
  std::vector<double> day(TimeGrid::kSlotsPerDay, 0.0);
  std::vector<std::size_t> counts(TimeGrid::kSlotsPerDay, 0);
  for (std::size_t s = 0; s < series.size(); ++s) {
    if (TimeGrid::is_weekday(s) != weekday) continue;
    const int sod = TimeGrid::slot_of_day(s);
    day[sod] += series[s];
    ++counts[sod];
  }
  for (int sod = 0; sod < TimeGrid::kSlotsPerDay; ++sod) {
    CS_CHECK_MSG(counts[sod] > 0, "day type has no samples");
    day[sod] /= static_cast<double>(counts[sod]);
  }
  return day;
}

/// Local maxima of a circular day profile, filtered and sorted by height.
std::vector<double> find_peaks(const std::vector<double>& day,
                               const TimeFeatureOptions& options) {
  const std::size_t n = day.size();
  std::vector<std::pair<double, double>> candidates;  // (height, hour)
  for (std::size_t i = 0; i < n; ++i) {
    const double prev = day[(i + n - 1) % n];
    const double next = day[(i + 1) % n];
    if (day[i] >= prev && day[i] > next)
      candidates.emplace_back(day[i],
                              static_cast<double>(i) * TimeGrid::kSlotMinutes /
                                  60.0);
  }
  if (candidates.empty()) return {};
  std::sort(candidates.rbegin(), candidates.rend());
  const double top = candidates.front().first;

  std::vector<double> peaks;
  for (const auto& [height, hour] : candidates) {
    if (height < options.secondary_fraction * top) break;
    bool distinct = true;
    for (const double kept : peaks) {
      const double d = std::fabs(kept - hour);
      if (std::min(d, 24.0 - d) < options.min_peak_separation_h) {
        distinct = false;
        break;
      }
    }
    if (distinct) peaks.push_back(hour);
  }
  return peaks;
}

DayTypeFeatures day_type_features(std::span<const double> series,
                                  bool weekday,
                                  const TimeFeatureOptions& options) {
  DayTypeFeatures f;
  f.mean_day = mean_day_profile(series, weekday);

  for (std::size_t s = 0; s < series.size(); ++s)
    if (TimeGrid::is_weekday(s) == weekday) f.total_bytes += series[s];

  const auto smooth =
      circular_moving_average(f.mean_day, options.smooth_half_window);
  const std::size_t peak_slot = argmax(smooth);
  const std::size_t valley_slot = argmin(smooth);
  f.max_traffic = f.mean_day[peak_slot];
  f.min_traffic = f.mean_day[valley_slot];
  f.peak_hour =
      static_cast<double>(peak_slot) * TimeGrid::kSlotMinutes / 60.0;
  f.valley_hour =
      static_cast<double>(valley_slot) * TimeGrid::kSlotMinutes / 60.0;
  f.peak_valley_ratio =
      f.min_traffic > 0.0 ? f.max_traffic / f.min_traffic
                          : std::numeric_limits<double>::infinity();
  f.peak_hours = find_peaks(smooth, options);
  return f;
}

}  // namespace

TimeFeatures compute_time_features(std::span<const double> series,
                                   const TimeFeatureOptions& options) {
  CS_CHECK_MSG(series.size() == TimeGrid::kSlots,
               "time features need a 4032-slot series");
  TimeFeatures f;
  f.weekday = day_type_features(series, true, options);
  f.weekend = day_type_features(series, false, options);
  // Per-day means: 20 weekdays vs 8 weekend days in the 4-week grid.
  const double weekday_days = 20.0;
  const double weekend_days = 8.0;
  const double wd = f.weekday.total_bytes / weekday_days;
  const double we = f.weekend.total_bytes / weekend_days;
  f.weekday_weekend_ratio =
      we > 0.0 ? wd / we : std::numeric_limits<double>::infinity();
  return f;
}

std::string format_peak_time(double hour) {
  return TimeGrid::format_hour(hour);
}

}  // namespace cellscope
