// Primary components and convex decomposition — §5.2/§5.3 of the paper.
//
// The paper's two statements: (1) the most representative tower of a
// cluster is not its centroid but the farthest non-noise point from the
// separating hyperplanes — operationalized as the tower maximizing the
// minimum feature-space distance to towers of other clusters, subject to a
// local-density floor that rejects noise points; (2) every tower's
// frequency features lie (approximately) inside the polygon spanned by the
// four primary components, so each tower decomposes as a convex
// combination of them, solved as a simplex-constrained least squares.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "analysis/freq_features.h"
#include "opt/simplex_ls.h"

namespace cellscope {

/// Representative-selection knobs.
struct RepresentativeOptions {
  /// Feature-space radius of the density (noise) test.
  double density_radius = 0.15;
  /// Minimum neighbors within the radius for a tower to count as
  /// non-noise.
  std::size_t min_neighbors = 3;
};

/// Index of the most representative tower of one cluster: the non-noise
/// member farthest (in min-distance terms) from all towers of other
/// clusters, in the (A28, P28, A56) feature space. Falls back to ignoring
/// the density test when no member passes it.
std::size_t find_representative(
    const std::vector<std::array<double, 3>>& features,
    const std::vector<int>& labels, int cluster);

std::size_t find_representative(
    const std::vector<std::array<double, 3>>& features,
    const std::vector<int>& labels, int cluster,
    const RepresentativeOptions& options);

/// One tower's convex decomposition over the four primary components.
struct Decomposition {
  std::array<double, 4> coefficients{};  ///< convex weights
  double residual = 0.0;                 ///< || F - F^r ||
};

/// Decomposes a tower's feature against the four primary components'
/// features (in pure-region order: resident, transport, office,
/// entertainment).
Decomposition decompose_feature(
    const std::array<double, 3>& feature,
    const std::array<std::array<double, 3>, 4>& primary_features);

/// Reconstructs a time-domain series from a decomposition: the convex
/// combination of the four primary towers' z-scored series — the Fig. 19
/// view.
std::vector<double> combine_series(
    const std::array<double, 4>& coefficients,
    const std::array<std::vector<double>, 4>& primary_series);

}  // namespace cellscope
