#include "ml/distance.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "mapred/thread_pool.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "simd/simd.h"

namespace cellscope {

namespace {

/// Rows per parallel tile. A tile is the unit of work handed to the pool;
/// its rows share the streamed column blocks below.
constexpr std::size_t kTileRows = 16;

/// Columns per cache block. One block of 32 rows × 1008 doubles (~256 KiB)
/// stays L2-resident while every row of the tile is swept across it.
constexpr std::size_t kBlockCols = 32;

}  // namespace

DistanceMatrix DistanceMatrix::compute(
    const std::vector<std::vector<double>>& points, ThreadPool* pool) {
  const std::size_t n = points.size();
  CS_CHECK_MSG(n >= 2, "distance matrix needs at least two points");
  const std::size_t dim = points[0].size();
  for (const auto& p : points)
    CS_CHECK_MSG(p.size() == dim, "all points must have equal dimension");

  auto& registry = obs::MetricsRegistry::instance();
  obs::ScopedTimer timer(registry.histogram("cellscope.ml.distance_ms"));

  // Flatten into one contiguous row-major buffer and precompute squared
  // norms, so the kernel below is pure streaming arithmetic.
  std::vector<double> flat(n * dim);
  std::vector<double> norms(n);
  for (std::size_t i = 0; i < n; ++i) {
    double* dst = flat.data() + i * dim;
    const double* src = points[i].data();
    double norm = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      dst[d] = src[d];
      norm += src[d] * src[d];
    }
    norms[i] = norm;
  }

  std::vector<float> condensed(n * (n - 1) / 2);
  float* out = condensed.data();
  const double* base = flat.data();

  // Whether to run the packed simd::dot4 path. Each output's dot product
  // is still one accumulation chain in ascending d (the vector kernels
  // run four independent chains side by side), so scalar and vector
  // paths produce bit-identical entries — the split exists only to skip
  // the packing overhead when dispatch resolves to scalar anyway.
  const bool vectorized = simd::active_isa() != simd::Isa::kScalar;

  // One tile = kTileRows consecutive rows of the condensed triangle. Every
  // (i, j) entry is computed by exactly one tile with a fixed dot-product
  // order, so the output does not depend on how tiles map to workers.
  auto process_tile = [&](std::size_t t) {
    const std::size_t i0 = t * kTileRows;
    const std::size_t i1 = std::min(n, i0 + kTileRows);
    // Scratch for the packed column groups of the current block,
    // interleaved GEMM-style: packed[g][4*d + l] = column (jb + 4g + l)
    // at dimension d. Packing is amortized across the tile's rows.
    std::vector<double> packed;
    for (std::size_t jb = i0 + 1; jb < n; jb += kBlockCols) {
      const std::size_t je = std::min(n, jb + kBlockCols);
      const std::size_t ngroups = vectorized ? (je - jb) / 4 : 0;
      if (ngroups > 0) {
        packed.resize(ngroups * 4 * dim);
        for (std::size_t g = 0; g < ngroups; ++g) {
          double* pk = packed.data() + g * 4 * dim;
          const double* c0 = base + (jb + 4 * g) * dim;
          for (std::size_t d = 0; d < dim; ++d) {
            pk[4 * d + 0] = c0[d];
            pk[4 * d + 1] = c0[dim + d];
            pk[4 * d + 2] = c0[2 * dim + d];
            pk[4 * d + 3] = c0[3 * dim + d];
          }
        }
      }
      for (std::size_t i = i0; i < i1; ++i) {
        const std::size_t js = std::max(i + 1, jb);
        if (js >= je) continue;
        const double* pi = base + i * dim;
        const double norm_i = norms[i];
        float* row = out + i * n - i * (i + 1) / 2;  // row[j - i - 1]
        const auto emit = [&](std::size_t j, double dot) {
          // Clamp: the norm identity can go fractionally negative for
          // near-coincident points.
          const double d2 = norm_i + norms[j] - 2.0 * dot;
          row[j - i - 1] = static_cast<float>(std::sqrt(d2 > 0.0 ? d2 : 0.0));
        };
        const auto scalar_dot = [&](std::size_t j) {
          const double* pj = base + j * dim;
          double dot = 0.0;
          for (std::size_t d = 0; d < dim; ++d) dot += pi[d] * pj[d];
          return dot;
        };
        std::size_t j = js;
        if (ngroups > 0) {
          // Scalar head until j lands on a packed group boundary, then
          // four columns at a time, scalar tail for the ragged end.
          const std::size_t aligned = jb + ((js - jb + 3) / 4) * 4;
          const std::size_t groups_end = jb + ngroups * 4;
          for (const std::size_t head = std::min(je, aligned); j < head; ++j)
            emit(j, scalar_dot(j));
          for (; j + 4 <= groups_end; j += 4) {
            double dots[4];
            simd::dot4(pi, packed.data() + (j - jb) * dim, dim, dots);
            for (std::size_t l = 0; l < 4; ++l) emit(j + l, dots[l]);
          }
        }
        for (; j < je; ++j) emit(j, scalar_dot(j));
      }
    }
  };

  const std::size_t n_tiles = (n + kTileRows - 1) / kTileRows;
  if (pool != nullptr && pool->thread_count() > 1 && n_tiles > 1) {
    pool->parallel_for(n_tiles, process_tile);
  } else {
    for (std::size_t t = 0; t < n_tiles; ++t) process_tile(t);
  }

  registry.counter("cellscope.ml.distance_pairs").add(condensed.size());
  return DistanceMatrix(n, std::move(condensed));
}

DistanceMatrix::DistanceMatrix(std::size_t n, std::vector<float> condensed)
    : n_(n), condensed_(std::move(condensed)) {
  CS_CHECK_MSG(n >= 2, "distance matrix needs n >= 2");
  CS_CHECK_MSG(condensed_.size() == n * (n - 1) / 2,
               "condensed storage must have n(n-1)/2 entries");
}

}  // namespace cellscope
