#include "ml/distance.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace cellscope {

DistanceMatrix DistanceMatrix::compute(
    const std::vector<std::vector<double>>& points) {
  const std::size_t n = points.size();
  CS_CHECK_MSG(n >= 2, "distance matrix needs at least two points");
  const std::size_t dim = points[0].size();
  for (const auto& p : points)
    CS_CHECK_MSG(p.size() == dim, "all points must have equal dimension");

  std::vector<float> condensed;
  condensed.resize(n * (n - 1) / 2);
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      condensed[idx++] =
          static_cast<float>(euclidean_distance(points[i], points[j]));
    }
  }
  return DistanceMatrix(n, std::move(condensed));
}

DistanceMatrix::DistanceMatrix(std::size_t n, std::vector<float> condensed)
    : n_(n), condensed_(std::move(condensed)) {
  CS_CHECK_MSG(n >= 2, "distance matrix needs n >= 2");
  CS_CHECK_MSG(condensed_.size() == n * (n - 1) / 2,
               "condensed storage must have n(n-1)/2 entries");
}

std::size_t DistanceMatrix::index_of(std::size_t i, std::size_t j) const {
  CS_CHECK_MSG(i < n_ && j < n_ && i != j, "invalid index pair");
  if (i > j) std::swap(i, j);
  // Offset of row i in the condensed upper triangle.
  return i * n_ - i * (i + 1) / 2 + (j - i - 1);
}

double DistanceMatrix::operator()(std::size_t i, std::size_t j) const {
  if (i == j) {
    CS_CHECK_MSG(i < n_, "index out of range");
    return 0.0;
  }
  return condensed_[index_of(i, j)];
}

void DistanceMatrix::set(std::size_t i, std::size_t j, double d) {
  condensed_[index_of(i, j)] = static_cast<float>(d);
}

}  // namespace cellscope
