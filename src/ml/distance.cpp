#include "ml/distance.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "mapred/thread_pool.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope {

namespace {

/// Rows per parallel tile. A tile is the unit of work handed to the pool;
/// its rows share the streamed column blocks below.
constexpr std::size_t kTileRows = 16;

/// Columns per cache block. One block of 32 rows × 1008 doubles (~256 KiB)
/// stays L2-resident while every row of the tile is swept across it.
constexpr std::size_t kBlockCols = 32;

}  // namespace

DistanceMatrix DistanceMatrix::compute(
    const std::vector<std::vector<double>>& points, ThreadPool* pool) {
  const std::size_t n = points.size();
  CS_CHECK_MSG(n >= 2, "distance matrix needs at least two points");
  const std::size_t dim = points[0].size();
  for (const auto& p : points)
    CS_CHECK_MSG(p.size() == dim, "all points must have equal dimension");

  auto& registry = obs::MetricsRegistry::instance();
  obs::ScopedTimer timer(registry.histogram("cellscope.ml.distance_ms"));

  // Flatten into one contiguous row-major buffer and precompute squared
  // norms, so the kernel below is pure streaming arithmetic.
  std::vector<double> flat(n * dim);
  std::vector<double> norms(n);
  for (std::size_t i = 0; i < n; ++i) {
    double* dst = flat.data() + i * dim;
    const double* src = points[i].data();
    double norm = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      dst[d] = src[d];
      norm += src[d] * src[d];
    }
    norms[i] = norm;
  }

  std::vector<float> condensed(n * (n - 1) / 2);
  float* out = condensed.data();
  const double* base = flat.data();

  // One tile = kTileRows consecutive rows of the condensed triangle. Every
  // (i, j) entry is computed by exactly one tile with a fixed dot-product
  // order, so the output does not depend on how tiles map to workers.
  auto process_tile = [&](std::size_t t) {
    const std::size_t i0 = t * kTileRows;
    const std::size_t i1 = std::min(n, i0 + kTileRows);
    for (std::size_t jb = i0 + 1; jb < n; jb += kBlockCols) {
      const std::size_t je = std::min(n, jb + kBlockCols);
      for (std::size_t i = i0; i < i1; ++i) {
        const std::size_t js = std::max(i + 1, jb);
        if (js >= je) continue;
        const double* pi = base + i * dim;
        const double norm_i = norms[i];
        float* row = out + i * n - i * (i + 1) / 2;  // row[j - i - 1]
        for (std::size_t j = js; j < je; ++j) {
          const double* pj = base + j * dim;
          double dot = 0.0;
          for (std::size_t d = 0; d < dim; ++d) dot += pi[d] * pj[d];
          // Clamp: the norm identity can go fractionally negative for
          // near-coincident points.
          const double d2 = norm_i + norms[j] - 2.0 * dot;
          row[j - i - 1] = static_cast<float>(std::sqrt(d2 > 0.0 ? d2 : 0.0));
        }
      }
    }
  };

  const std::size_t n_tiles = (n + kTileRows - 1) / kTileRows;
  if (pool != nullptr && pool->thread_count() > 1 && n_tiles > 1) {
    pool->parallel_for(n_tiles, process_tile);
  } else {
    for (std::size_t t = 0; t < n_tiles; ++t) process_tile(t);
  }

  registry.counter("cellscope.ml.distance_pairs").add(condensed.size());
  return DistanceMatrix(n, std::move(condensed));
}

DistanceMatrix::DistanceMatrix(std::size_t n, std::vector<float> condensed)
    : n_(n), condensed_(std::move(condensed)) {
  CS_CHECK_MSG(n >= 2, "distance matrix needs n >= 2");
  CS_CHECK_MSG(condensed_.size() == n * (n - 1) / 2,
               "condensed storage must have n(n-1)/2 entries");
}

}  // namespace cellscope
