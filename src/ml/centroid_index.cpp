#include "ml/centroid_index.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <queue>

#include "common/error.h"
#include "common/stats.h"

namespace cellscope {

namespace {

std::size_t env_count(const char* name, std::size_t fallback) {
  const char* spec = std::getenv(name);
  if (spec == nullptr || *spec == '\0') return fallback;
  std::size_t value = 0;
  const char* end = spec + std::strlen(spec);
  const auto [ptr, ec] = std::from_chars(spec, end, value);
  if (ec != std::errc() || ptr != end) {
    std::fprintf(stderr,
                 "cellscope: ignoring %s='%s' (expected a non-negative "
                 "integer)\n",
                 name, spec);
    return fallback;
  }
  return value;
}

/// (distance, index) ordered so ties resolve to the lower index — every
/// heap decision below is deterministic for a given build.
struct Scored {
  double distance;
  std::uint32_t index;
};
struct FartherFirst {
  bool operator()(const Scored& a, const Scored& b) const {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;
  }
};
struct CloserFirst {
  bool operator()(const Scored& a, const Scored& b) const {
    if (a.distance != b.distance) return a.distance > b.distance;
    return a.index > b.index;
  }
};

}  // namespace

CentroidIndex::Options CentroidIndex::Options::from_env() {
  Options options;
  options.bilink = env_count("CELLSCOPE_ANN_BILINK", options.bilink);
  options.nlist = env_count("CELLSCOPE_ANN_NLIST", options.nlist);
  options.brute_force_below =
      env_count("CELLSCOPE_ANN_BRUTE_BELOW", options.brute_force_below);
  return options;
}

CentroidIndex::CentroidIndex(const std::vector<std::vector<double>>& centroids,
                             Options options)
    : options_(options), n_(centroids.size()) {
  CS_CHECK_MSG(n_ > 0, "centroid index needs at least one centroid");
  dim_ = centroids[0].size();
  flat_.resize(n_ * dim_);
  for (std::size_t i = 0; i < n_; ++i) {
    CS_CHECK_MSG(centroids[i].size() == dim_,
                 "all centroids must have equal dimension");
    std::copy(centroids[i].begin(), centroids[i].end(),
              flat_.begin() + i * dim_);
  }
  if (n_ < options_.brute_force_below || options_.bilink == 0) return;

  // Exact bilink-NN graph, symmetrized. The forward links alone make a
  // directed kNN graph whose in-degree can collapse around hubs; adding
  // reverse edges and pruning back to the closest keeps every node
  // reachable without unbounded degree.
  const std::size_t degree = std::min(options_.bilink, n_ - 1);
  neighbors_.assign(n_, {});
  std::vector<Scored> scored(n_ - 1);
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t w = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      if (j == i) continue;
      scored[w++] = {squared_distance(centroid(i), centroid(j)),
                     static_cast<std::uint32_t>(j)};
    }
    std::partial_sort(scored.begin(), scored.begin() + degree, scored.end(),
                      [](const Scored& a, const Scored& b) {
                        if (a.distance != b.distance)
                          return a.distance < b.distance;
                        return a.index < b.index;
                      });
    neighbors_[i].reserve(2 * degree + 2);
    for (std::size_t r = 0; r < degree; ++r)
      neighbors_[i].push_back(scored[r].index);
  }
  // Chain edges i ↔ i+1 guarantee the graph is connected no matter how
  // the kNN links cluster (duplicate-heavy models otherwise split into
  // cliques the walk can never leave). They are exempt from pruning.
  const auto ensure_link = [this](std::size_t from, std::size_t to) {
    auto& list = neighbors_[from];
    const auto link = static_cast<std::uint32_t>(to);
    if (std::find(list.begin(), list.end(), link) == list.end())
      list.push_back(link);
  };
  for (std::size_t i = 0; i + 1 < n_; ++i) {
    ensure_link(i, i + 1);
    ensure_link(i + 1, i);
  }
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t r = 0; r < degree; ++r) {
      const std::uint32_t j = neighbors_[i][r];
      auto& back = neighbors_[j];
      if (std::find(back.begin(), back.end(),
                    static_cast<std::uint32_t>(i)) == back.end())
        back.push_back(static_cast<std::uint32_t>(i));
    }
  }
  for (std::size_t i = 0; i < n_; ++i) {
    auto& list = neighbors_[i];
    if (list.size() <= 2 * degree) continue;
    std::vector<Scored> ranked(list.size());
    for (std::size_t r = 0; r < list.size(); ++r)
      ranked[r] = {squared_distance(centroid(i), centroid(list[r])), list[r]};
    std::sort(ranked.begin(), ranked.end(),
              [](const Scored& a, const Scored& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.index < b.index;
              });
    list.clear();
    for (std::size_t r = 0; r < 2 * degree; ++r)
      list.push_back(ranked[r].index);
    // Keep the chain links even when pruned out by rank.
    if (i > 0) ensure_link(i, i - 1);
    if (i + 1 < n_) ensure_link(i, i + 1);
  }
}

std::size_t CentroidIndex::scan_all(std::span<const double> query,
                                    double* distance_out) const {
  // The reference rule: ascending index, strict <, so ties keep the
  // first (lowest) index — identical to the pre-index classify loop.
  double best = squared_distance(query, centroid(0));
  std::size_t best_index = 0;
  for (std::size_t c = 1; c < n_; ++c) {
    const double d = squared_distance(query, centroid(c));
    if (d < best) {
      best = d;
      best_index = c;
    }
  }
  if (distance_out != nullptr) *distance_out = best;
  return best_index;
}

std::size_t CentroidIndex::nearest(std::span<const double> query,
                                   double* distance_out) const {
  CS_CHECK_MSG(query.size() == dim_,
               "query dimension must match the centroids");
  if (neighbors_.empty()) return scan_all(query, distance_out);

  const std::size_t beam = std::max<std::size_t>(options_.nlist, 1);
  std::vector<char> visited(n_, 0);
  std::vector<Scored> scored;  // every node we paid an exact distance for
  scored.reserve(4 * beam);
  // `frontier` pops the closest unexpanded node; `bound` keeps the beam's
  // worst retained distance so the walk stops once no frontier node can
  // improve on the beam.
  std::priority_queue<Scored, std::vector<Scored>, CloserFirst> frontier;
  std::priority_queue<Scored, std::vector<Scored>, FartherFirst> bound;

  const auto visit = [&](std::uint32_t node) {
    if (visited[node]) return;
    visited[node] = 1;
    const Scored s{squared_distance(query, centroid(node)), node};
    scored.push_back(s);
    if (bound.size() < beam) {
      frontier.push(s);
      bound.push(s);
    } else if (s.distance < bound.top().distance) {
      frontier.push(s);
      bound.pop();
      bound.push(s);
    }
  };

  visit(0);  // fixed, deterministic entry point
  while (!frontier.empty()) {
    const Scored current = frontier.top();
    frontier.pop();
    if (bound.size() >= beam && current.distance > bound.top().distance)
      break;
    for (const std::uint32_t nb : neighbors_[current.index]) visit(nb);
  }

  // Rescore: exact argmin over everything visited, lowest index on ties —
  // the same tie-break the brute-force scan applies.
  const Scored* best = &scored.front();
  for (const Scored& s : scored) {
    if (s.distance < best->distance ||
        (s.distance == best->distance && s.index < best->index)) {
      best = &s;
    }
  }
  if (distance_out != nullptr) *distance_out = best->distance;
  return best->index;
}

}  // namespace cellscope
