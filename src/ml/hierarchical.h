// Agglomerative hierarchical clustering — the paper's pattern identifier
// (§3.2): bottom-up merging of the nearest clusters under average-linkage
// Euclidean distance, stopped by a distance threshold.
//
// Implementation: the nearest-neighbor-chain algorithm with Lance-Williams
// distance updates — O(n²) time and exact for the reducible linkages
// offered here (single, complete, average), versus the naive O(n³) merge
// loop. One dendrogram supports cutting at any threshold or cluster count,
// so the Davies-Bouldin sweep of Fig. 6(a) clusters once and cuts many
// times.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/distance.h"

namespace cellscope {

/// Cluster-distance definitions (the paper uses average linkage).
enum class Linkage {
  kSingle,
  kComplete,
  kAverage,
};

/// One merge of the dendrogram. `a` and `b` are *representative leaf
/// indices* (the smallest member) of the two clusters joined at the given
/// linkage distance — a representation that lets flat cuts replay merges
/// with a union-find in any distance order.
struct Merge {
  std::size_t a = 0;
  std::size_t b = 0;
  double distance = 0.0;
};

/// The full dendrogram of an agglomerative clustering run.
class Dendrogram {
 public:
  /// Clusters the items of a distance matrix (consumed by copy — the
  /// algorithm updates distances in place).
  static Dendrogram run(DistanceMatrix distances, Linkage linkage);

  /// The n-1 merges, sorted by non-decreasing distance.
  const std::vector<Merge>& merges() const { return merges_; }

  /// Number of leaves (items).
  std::size_t n() const { return n_; }

  /// Flat clustering with exactly k clusters (1 <= k <= n). Labels are
  /// dense 0..k-1, ordered by each cluster's smallest member index.
  std::vector<int> cut_k(std::size_t k) const;

  /// Flat clustering merging every pair closer than `threshold` (the
  /// paper's stop condition). Labels are dense, ordered as in cut_k.
  std::vector<int> cut_threshold(double threshold) const;

  /// Number of clusters a threshold cut would produce.
  std::size_t cluster_count_at(double threshold) const;

 private:
  Dendrogram(std::size_t n, std::vector<Merge> merges);

  /// Labels after applying the first `m` merges (in sorted order).
  std::vector<int> labels_after(std::size_t m) const;

  /// Number of merges with distance <= threshold (binary search over the
  /// sorted merge list).
  std::size_t merges_within(double threshold) const;

  std::size_t n_;
  std::vector<Merge> merges_;
};

/// Number of clusters in a label vector (labels must be dense 0..k-1).
std::size_t num_clusters(const std::vector<int>& labels);

/// Row indices of each cluster.
std::vector<std::vector<std::size_t>> cluster_members(
    const std::vector<int>& labels);

}  // namespace cellscope
