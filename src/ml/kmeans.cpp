#include "ml/kmeans.h"

#include <limits>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

namespace cellscope {

KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KMeansOptions& options) {
  const std::size_t n = points.size();
  const std::size_t k = options.k;
  CS_CHECK_MSG(k >= 1, "k must be >= 1");
  CS_CHECK_MSG(n >= k, "need at least k points");
  const std::size_t dim = points[0].size();
  for (const auto& p : points)
    CS_CHECK_MSG(p.size() == dim, "all points must have equal dimension");

  Rng rng(options.seed);

  // k-means++ seeding.
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(
      points[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))]);
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    for (std::size_t i = 0; i < n; ++i)
      d2[i] = std::min(d2[i], squared_distance(points[i], centroids.back()));
    double total = 0.0;
    for (const double v : d2) total += v;
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids.push_back(centroids.back());
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      r -= d2[i];
      if (r < 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }

  KMeansResult result;
  result.labels.assign(n, 0);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    // Assignment.
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(points[i], centroids[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      if (result.labels[i] != best_c) {
        result.labels[i] = best_c;
        changed = true;
      }
    }
    result.iterations = iter + 1;

    // Update.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(result.labels[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from the point farthest from its centroid.
        double worst = -1.0;
        std::size_t worst_i = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = squared_distance(
              points[i], centroids[static_cast<std::size_t>(result.labels[i])]);
          if (d > worst) {
            worst = d;
            worst_i = i;
          }
        }
        centroids[c] = points[worst_i];
        changed = true;
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d)
        centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
    }

    if (!changed) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    result.inertia += squared_distance(
        points[i], centroids[static_cast<std::size_t>(result.labels[i])]);
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace cellscope
