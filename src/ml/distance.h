// Condensed pairwise Euclidean distance matrix.
//
// Hierarchical clustering over thousands of towers needs all pairwise
// distances; the condensed (upper-triangle) float layout halves memory and
// keeps the paper's 9,600-tower scale within laptop RAM (DESIGN.md §5).
#pragma once

#include <cstddef>
#include <vector>

namespace cellscope {

/// Symmetric zero-diagonal distance matrix stored as the condensed upper
/// triangle in float precision.
class DistanceMatrix {
 public:
  /// Computes all pairwise Euclidean distances between rows of `points`
  /// (equal-length rows, n >= 2).
  static DistanceMatrix compute(
      const std::vector<std::vector<double>>& points);

  /// Builds from explicit entries; `condensed` must have n(n-1)/2 values
  /// laid out row-major (d(0,1), d(0,2), ..., d(1,2), ...).
  DistanceMatrix(std::size_t n, std::vector<float> condensed);

  /// Distance between items i and j (0 when i == j).
  double operator()(std::size_t i, std::size_t j) const;

  /// Overwrites the (i, j) entry (used by linkage updates); i != j.
  void set(std::size_t i, std::size_t j, double d);

  std::size_t n() const { return n_; }

 private:
  std::size_t index_of(std::size_t i, std::size_t j) const;

  std::size_t n_;
  std::vector<float> condensed_;
};

}  // namespace cellscope
