// Condensed pairwise Euclidean distance matrix.
//
// Hierarchical clustering over thousands of towers needs all pairwise
// distances; the condensed (upper-triangle) float layout halves memory and
// keeps the paper's 9,600-tower scale within laptop RAM (DESIGN.md §5).
//
// compute() is the O(n²·dim) hot kernel of the analytics core: the input
// rows are flattened into one contiguous row-major buffer, squared norms
// are precomputed, and the condensed triangle is filled by a cache-blocked
// tile kernel (d² = |a|² + |b|² − 2a·b) whose row tiles are distributed
// over an optional ThreadPool. Tiles partition the output, and every
// entry's dot-product reduction runs in a fixed order, so the result is
// bit-identical for any worker count, including the serial path
// (DESIGN.md §8).
//
// Accessors are inline and, in release builds, unchecked (CS_DCHECK) —
// the NN-chain inner loop reads and writes them millions of times.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace cellscope {

class ThreadPool;

/// Symmetric zero-diagonal distance matrix stored as the condensed upper
/// triangle in float precision.
class DistanceMatrix {
 public:
  /// Computes all pairwise Euclidean distances between rows of `points`
  /// (equal-length rows, n >= 2). With a pool, row tiles are computed in
  /// parallel; the result is bit-identical to the serial (nullptr) path.
  static DistanceMatrix compute(const std::vector<std::vector<double>>& points,
                                ThreadPool* pool = nullptr);

  /// Builds from explicit entries; `condensed` must have n(n-1)/2 values
  /// laid out row-major (d(0,1), d(0,2), ..., d(1,2), ...).
  DistanceMatrix(std::size_t n, std::vector<float> condensed);

  /// Distance between items i and j (0 when i == j). Bounds are checked in
  /// debug builds only.
  double operator()(std::size_t i, std::size_t j) const {
    if (i == j) {
      CS_DCHECK_MSG(i < n_, "index out of range");
      return 0.0;
    }
    return condensed_[index_of(i, j)];
  }

  /// Overwrites the (i, j) entry (used by linkage updates); i != j.
  void set(std::size_t i, std::size_t j, double d) {
    condensed_[index_of(i, j)] = static_cast<float>(d);
  }

  std::size_t n() const { return n_; }

  /// Raw condensed storage (n(n-1)/2 floats); entry (i, j) with i < j
  /// lives at i*n - i*(i+1)/2 + (j - i - 1). The NN-chain inner loop
  /// walks this directly.
  const float* data() const { return condensed_.data(); }

  /// The condensed triangle as a vector (for equivalence tests and I/O).
  const std::vector<float>& condensed() const { return condensed_; }

 private:
  std::size_t index_of(std::size_t i, std::size_t j) const {
    CS_DCHECK_MSG(i < n_ && j < n_ && i != j, "invalid index pair");
    if (i > j) std::swap(i, j);
    // Offset of row i in the condensed upper triangle.
    return i * n_ - i * (i + 1) / 2 + (j - i - 1);
  }

  std::size_t n_;
  std::vector<float> condensed_;
};

}  // namespace cellscope
