#include "ml/validity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/stats.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope {

std::vector<std::vector<double>> cluster_centroids(
    const std::vector<std::vector<double>>& points,
    const std::vector<int>& labels) {
  CS_CHECK_MSG(points.size() == labels.size() && !points.empty(),
               "points and labels must match and be non-empty");
  const std::size_t k = num_clusters(labels);
  const std::size_t dim = points[0].size();
  std::vector<std::vector<double>> centroids(k, std::vector<double>(dim, 0.0));
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    ++counts[c];
    CS_CHECK_MSG(points[i].size() == dim, "inconsistent point dimension");
    for (std::size_t d = 0; d < dim; ++d) centroids[c][d] += points[i][d];
  }
  for (std::size_t c = 0; c < k; ++c) {
    CS_CHECK_MSG(counts[c] > 0, "empty cluster");
    for (auto& v : centroids[c]) v /= static_cast<double>(counts[c]);
  }
  return centroids;
}

double davies_bouldin(const std::vector<std::vector<double>>& points,
                      const std::vector<int>& labels) {
  const auto centroids = cluster_centroids(points, labels);
  const std::size_t k = centroids.size();
  CS_CHECK_MSG(k >= 2, "DBI requires at least two clusters");

  // Si: mean member distance to the centroid.
  std::vector<double> scatter(k, 0.0);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    scatter[c] += euclidean_distance(points[i], centroids[c]);
    ++counts[c];
  }
  for (std::size_t c = 0; c < k; ++c)
    scatter[c] /= static_cast<double>(counts[c]);

  double dbi = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    double worst = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const double m = euclidean_distance(centroids[i], centroids[j]);
      CS_CHECK_MSG(m > 0.0, "coincident centroids");
      worst = std::max(worst, (scatter[i] + scatter[j]) / m);
    }
    dbi += worst;
  }
  return dbi / static_cast<double>(k);
}

double silhouette(const std::vector<std::vector<double>>& points,
                  const std::vector<int>& labels) {
  CS_CHECK_MSG(points.size() == labels.size() && points.size() >= 2,
               "need >= 2 labeled points");
  const std::size_t k = num_clusters(labels);
  CS_CHECK_MSG(k >= 2, "silhouette requires at least two clusters");
  const auto members = cluster_members(labels);

  double total = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto own = static_cast<std::size_t>(labels[i]);
    // a(i): mean distance to own cluster (0 for singleton, per convention
    // s(i) = 0 for singletons).
    if (members[own].size() == 1) continue;
    double a = 0.0;
    for (const std::size_t j : members[own]) {
      if (j == i) continue;
      a += euclidean_distance(points[i], points[j]);
    }
    a /= static_cast<double>(members[own].size() - 1);

    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own) continue;
      double mean_d = 0.0;
      for (const std::size_t j : members[c])
        mean_d += euclidean_distance(points[i], points[j]);
      mean_d /= static_cast<double>(members[c].size());
      b = std::min(b, mean_d);
    }
    total += (b - a) / std::max(a, b);
  }
  return total / static_cast<double>(points.size());
}

double calinski_harabasz(const std::vector<std::vector<double>>& points,
                         const std::vector<int>& labels) {
  const auto centroids = cluster_centroids(points, labels);
  const std::size_t k = centroids.size();
  const std::size_t n = points.size();
  CS_CHECK_MSG(k >= 2 && n > k, "CH requires 2 <= k < n");
  const std::size_t dim = points[0].size();

  std::vector<double> global(dim, 0.0);
  for (const auto& p : points)
    for (std::size_t d = 0; d < dim; ++d) global[d] += p[d];
  for (auto& v : global) v /= static_cast<double>(n);

  std::vector<std::size_t> counts(k, 0);
  for (const int l : labels) ++counts[static_cast<std::size_t>(l)];

  double between = 0.0;
  for (std::size_t c = 0; c < k; ++c)
    between += static_cast<double>(counts[c]) *
               squared_distance(centroids[c], global);

  double within = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    within += squared_distance(points[i],
                               centroids[static_cast<std::size_t>(labels[i])]);
  CS_CHECK_MSG(within > 0.0, "zero within-cluster scatter");

  return (between / static_cast<double>(k - 1)) /
         (within / static_cast<double>(n - k));
}

std::vector<DbiSweepPoint> dbi_sweep(
    const Dendrogram& dendrogram,
    const std::vector<std::vector<double>>& points, std::size_t k_min,
    std::size_t k_max, std::size_t min_cluster_size) {
  CS_CHECK_MSG(2 <= k_min && k_min <= k_max && k_max <= dendrogram.n(),
               "sweep bounds must satisfy 2 <= k_min <= k_max <= n");
  CS_CHECK_MSG(points.size() == dendrogram.n(),
               "points must match the dendrogram");
  auto& registry = obs::MetricsRegistry::instance();
  obs::ScopedTimer sweep_timer(
      registry.histogram("cellscope.ml.dbi_sweep_ms"));
  auto& per_k_histogram = registry.histogram("cellscope.ml.dbi_k_ms");
  auto& cuts_evaluated = registry.counter("cellscope.ml.dbi_cuts_evaluated");
  std::vector<DbiSweepPoint> sweep;
  sweep.reserve(k_max - k_min + 1);
  const auto& merges = dendrogram.merges();
  for (std::size_t k = k_min; k <= k_max; ++k) {
    obs::ScopedTimer k_timer(per_k_histogram);
    DbiSweepPoint point;
    point.k = k;
    // After n-k merges there are k clusters; the next merge distance is
    // the largest threshold that still yields k clusters.
    const std::size_t applied = dendrogram.n() - k;
    point.threshold = applied < merges.size() ? merges[applied].distance
                                              : merges.back().distance;
    const auto labels = dendrogram.cut_k(k);
    point.dbi = davies_bouldin(points, labels);
    for (const auto& members : cluster_members(labels)) {
      if (members.size() < min_cluster_size) {
        point.valid = false;
        break;
      }
    }
    cuts_evaluated.add(1);
    obs::log_debug("dbi_sweep.cut", {{"k", k},
                                     {"dbi", point.dbi},
                                     {"valid", point.valid},
                                     {"wall_ms", k_timer.elapsed_ms()}});
    sweep.push_back(point);
  }
  return sweep;
}

DbiSweepPoint best_cut(const std::vector<DbiSweepPoint>& sweep) {
  CS_CHECK_MSG(!sweep.empty(), "empty sweep");
  const DbiSweepPoint* best = nullptr;
  for (const auto& point : sweep) {
    if (!point.valid) continue;
    if (!best || point.dbi < best->dbi) best = &point;
  }
  if (!best) {
    // No valid cut: fall back to the unconstrained minimum.
    for (const auto& point : sweep)
      if (!best || point.dbi < best->dbi) best = &point;
  }
  return *best;
}

}  // namespace cellscope
