#include "ml/validity.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iterator>
#include <limits>

#include "common/error.h"
#include "common/stats.h"
#include "mapred/thread_pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope {

namespace {

/// fn(i) for i in [0, n) — on the pool when one is available, inline
/// otherwise. Callers keep per-index work independent, so both paths
/// produce identical results.
void run_indexed(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && pool->thread_count() > 1 && n > 1) {
    pool->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

std::vector<std::vector<double>> cluster_centroids(
    const std::vector<std::vector<double>>& points,
    const std::vector<int>& labels) {
  CS_CHECK_MSG(points.size() == labels.size() && !points.empty(),
               "points and labels must match and be non-empty");
  const std::size_t k = num_clusters(labels);
  const std::size_t dim = points[0].size();
  std::vector<std::vector<double>> centroids(k, std::vector<double>(dim, 0.0));
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    ++counts[c];
    CS_CHECK_MSG(points[i].size() == dim, "inconsistent point dimension");
    for (std::size_t d = 0; d < dim; ++d) centroids[c][d] += points[i][d];
  }
  for (std::size_t c = 0; c < k; ++c) {
    CS_CHECK_MSG(counts[c] > 0, "empty cluster");
    for (auto& v : centroids[c]) v /= static_cast<double>(counts[c]);
  }
  return centroids;
}

double davies_bouldin(const std::vector<std::vector<double>>& points,
                      const std::vector<int>& labels) {
  const auto centroids = cluster_centroids(points, labels);
  const std::size_t k = centroids.size();
  CS_CHECK_MSG(k >= 2, "DBI requires at least two clusters");

  // Si: mean member distance to the centroid.
  std::vector<double> scatter(k, 0.0);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    scatter[c] += euclidean_distance(points[i], centroids[c]);
    ++counts[c];
  }
  for (std::size_t c = 0; c < k; ++c)
    scatter[c] /= static_cast<double>(counts[c]);

  double dbi = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    double worst = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const double m = euclidean_distance(centroids[i], centroids[j]);
      CS_CHECK_MSG(m > 0.0, "coincident centroids");
      worst = std::max(worst, (scatter[i] + scatter[j]) / m);
    }
    dbi += worst;
  }
  return dbi / static_cast<double>(k);
}

double silhouette(const std::vector<std::vector<double>>& points,
                  const std::vector<int>& labels) {
  CS_CHECK_MSG(points.size() == labels.size() && points.size() >= 2,
               "need >= 2 labeled points");
  const std::size_t k = num_clusters(labels);
  CS_CHECK_MSG(k >= 2, "silhouette requires at least two clusters");
  const auto members = cluster_members(labels);

  double total = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto own = static_cast<std::size_t>(labels[i]);
    // a(i): mean distance to own cluster (0 for singleton, per convention
    // s(i) = 0 for singletons).
    if (members[own].size() == 1) continue;
    double a = 0.0;
    for (const std::size_t j : members[own]) {
      if (j == i) continue;
      a += euclidean_distance(points[i], points[j]);
    }
    a /= static_cast<double>(members[own].size() - 1);

    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own) continue;
      double mean_d = 0.0;
      for (const std::size_t j : members[c])
        mean_d += euclidean_distance(points[i], points[j]);
      mean_d /= static_cast<double>(members[c].size());
      b = std::min(b, mean_d);
    }
    total += (b - a) / std::max(a, b);
  }
  return total / static_cast<double>(points.size());
}

double silhouette(const DistanceMatrix& distances,
                  const std::vector<int>& labels) {
  CS_CHECK_MSG(distances.n() == labels.size() && labels.size() >= 2,
               "distance matrix and labels must match, n >= 2");
  const std::size_t k = num_clusters(labels);
  CS_CHECK_MSG(k >= 2, "silhouette requires at least two clusters");
  const auto members = cluster_members(labels);

  double total = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto own = static_cast<std::size_t>(labels[i]);
    if (members[own].size() == 1) continue;  // s(i) = 0 for singletons
    double a = 0.0;
    for (const std::size_t j : members[own]) {
      if (j == i) continue;
      a += distances(i, j);
    }
    a /= static_cast<double>(members[own].size() - 1);

    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own) continue;
      double mean_d = 0.0;
      for (const std::size_t j : members[c]) mean_d += distances(i, j);
      mean_d /= static_cast<double>(members[c].size());
      b = std::min(b, mean_d);
    }
    total += (b - a) / std::max(a, b);
  }
  return total / static_cast<double>(labels.size());
}

double calinski_harabasz(const std::vector<std::vector<double>>& points,
                         const std::vector<int>& labels) {
  const auto centroids = cluster_centroids(points, labels);
  const std::size_t k = centroids.size();
  const std::size_t n = points.size();
  CS_CHECK_MSG(k >= 2 && n > k, "CH requires 2 <= k < n");
  const std::size_t dim = points[0].size();

  std::vector<double> global(dim, 0.0);
  for (const auto& p : points)
    for (std::size_t d = 0; d < dim; ++d) global[d] += p[d];
  for (auto& v : global) v /= static_cast<double>(n);

  std::vector<std::size_t> counts(k, 0);
  for (const int l : labels) ++counts[static_cast<std::size_t>(l)];

  double between = 0.0;
  for (std::size_t c = 0; c < k; ++c)
    between += static_cast<double>(counts[c]) *
               squared_distance(centroids[c], global);

  double within = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    within += squared_distance(points[i],
                               centroids[static_cast<std::size_t>(labels[i])]);
  CS_CHECK_MSG(within > 0.0, "zero within-cluster scatter");

  return (between / static_cast<double>(k - 1)) /
         (within / static_cast<double>(n - k));
}

std::vector<DbiSweepPoint> dbi_sweep(
    const Dendrogram& dendrogram,
    const std::vector<std::vector<double>>& points, std::size_t k_min,
    std::size_t k_max, std::size_t min_cluster_size, ThreadPool* pool) {
  CS_CHECK_MSG(2 <= k_min && k_min <= k_max && k_max <= dendrogram.n(),
               "sweep bounds must satisfy 2 <= k_min <= k_max <= n");
  CS_CHECK_MSG(points.size() == dendrogram.n(),
               "points must match the dendrogram");
  const std::size_t n = dendrogram.n();
  const std::size_t dim = points[0].size();
  for (const auto& p : points)
    CS_CHECK_MSG(p.size() == dim, "inconsistent point dimension");
  auto& registry = obs::MetricsRegistry::instance();
  obs::ScopedTimer sweep_timer(
      registry.histogram("cellscope.ml.dbi_sweep_ms"));
  auto& per_k_histogram = registry.histogram("cellscope.ml.dbi_k_ms");
  auto& cuts_evaluated = registry.counter("cellscope.ml.dbi_cuts_evaluated");

  // One descending pass k_max -> k_min. Each merge is replayed exactly
  // once; per-cluster member lists, coordinate sums, and scatter are
  // carried across cuts, and only the cluster a merge touched is
  // recomputed. All per-cluster accumulations run over members in
  // ascending index order — the exact reduction order of
  // cluster_centroids/davies_bouldin — so each sweep point matches the
  // per-k recomputation it replaces.
  struct Cluster {
    std::vector<std::size_t> members;  // ascending; empty once absorbed
    std::vector<double> sum;           // per-dimension member sum
    double scatter_sum = 0.0;          // sum of member-centroid distances
    bool dirty = true;
  };
  // Indexed by representative (smallest member) leaf — exactly the merge
  // endpoints recorded by Dendrogram::run, so ascending-representative
  // order is the dense label order of cut_k.
  std::vector<Cluster> cluster(n);
  for (std::size_t i = 0; i < n; ++i) cluster[i].members = {i};

  const auto& merges = dendrogram.merges();
  auto apply_merge = [&cluster](const Merge& m) {
    Cluster& into = cluster[m.a];
    Cluster& from = cluster[m.b];
    std::vector<std::size_t> merged;
    merged.reserve(into.members.size() + from.members.size());
    std::merge(into.members.begin(), into.members.end(), from.members.begin(),
               from.members.end(), std::back_inserter(merged));
    into.members = std::move(merged);
    into.dirty = true;
    from = Cluster{};
    from.members.shrink_to_fit();
  };

  std::size_t applied = 0;
  while (applied < n - k_max) apply_merge(merges[applied++]);

  std::vector<DbiSweepPoint> sweep(k_max - k_min + 1);
  for (std::size_t k = k_max;; --k) {
    obs::ScopedTimer k_timer(per_k_histogram);
    std::vector<std::size_t> reps;
    reps.reserve(k);
    for (std::size_t i = 0; i < n; ++i)
      if (!cluster[i].members.empty()) reps.push_back(i);
    CS_CHECK_MSG(reps.size() == k, "merge replay out of sync");

    // Per-cluster centroid and mean scatter; dirty clusters (touched by a
    // merge since their last evaluation) are recomputed, the rest reuse
    // their cached sums and scatter bit-for-bit.
    std::vector<std::vector<double>> centroids(k);
    std::vector<double> scatter(k, 0.0);
    run_indexed(pool, k, [&](std::size_t c) {
      Cluster& cl = cluster[reps[c]];
      const auto count = static_cast<double>(cl.members.size());
      if (cl.dirty) {
        cl.sum.assign(dim, 0.0);
        for (const std::size_t m : cl.members)
          for (std::size_t d = 0; d < dim; ++d) cl.sum[d] += points[m][d];
      }
      auto& centroid = centroids[c];
      centroid.resize(dim);
      for (std::size_t d = 0; d < dim; ++d) centroid[d] = cl.sum[d] / count;
      if (cl.dirty) {
        cl.scatter_sum = 0.0;
        for (const std::size_t m : cl.members)
          cl.scatter_sum += euclidean_distance(points[m], centroid);
        cl.dirty = false;
      }
      scatter[c] = cl.scatter_sum / count;
    });

    // Pairwise-centroid step: rows in parallel, final sum in fixed order.
    std::vector<double> worst(k, 0.0);
    run_indexed(pool, k, [&](std::size_t i) {
      double w = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        if (i == j) continue;
        const double m = euclidean_distance(centroids[i], centroids[j]);
        CS_CHECK_MSG(m > 0.0, "coincident centroids");
        w = std::max(w, (scatter[i] + scatter[j]) / m);
      }
      worst[i] = w;
    });
    double dbi = 0.0;
    for (std::size_t i = 0; i < k; ++i) dbi += worst[i];
    dbi /= static_cast<double>(k);

    DbiSweepPoint point;
    point.k = k;
    point.dbi = dbi;
    // After n-k merges there are k clusters; the next merge distance is
    // the largest threshold that still yields k clusters.
    const std::size_t applied_for_k = n - k;
    point.threshold = applied_for_k < merges.size()
                          ? merges[applied_for_k].distance
                          : merges.back().distance;
    for (const std::size_t r : reps) {
      if (cluster[r].members.size() < min_cluster_size) {
        point.valid = false;
        break;
      }
    }
    cuts_evaluated.add(1);
    obs::log_debug("dbi_sweep.cut", {{"k", k},
                                     {"dbi", point.dbi},
                                     {"valid", point.valid},
                                     {"wall_ms", k_timer.elapsed_ms()}});
    sweep[k - k_min] = point;
    if (k == k_min) break;
    apply_merge(merges[applied++]);
  }
  return sweep;
}

DbiSweepPoint best_cut(const std::vector<DbiSweepPoint>& sweep) {
  CS_CHECK_MSG(!sweep.empty(), "empty sweep");
  const DbiSweepPoint* best = nullptr;
  for (const auto& point : sweep) {
    if (!point.valid) continue;
    if (!best || point.dbi < best->dbi) best = &point;
  }
  if (!best) {
    // No valid cut: fall back to the unconstrained minimum.
    for (const auto& point : sweep)
      if (!best || point.dbi < best->dbi) best = &point;
  }
  return *best;
}

}  // namespace cellscope
