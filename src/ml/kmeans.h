// Lloyd's k-means with k-means++ seeding — the baseline clustering the
// perf/ablation benches compare the paper's hierarchical identifier to.
#pragma once

#include <cstdint>
#include <vector>

namespace cellscope {

/// K-means configuration.
struct KMeansOptions {
  std::size_t k = 5;
  std::size_t max_iterations = 100;
  std::uint64_t seed = 9;
};

/// K-means output.
struct KMeansResult {
  std::vector<int> labels;                       ///< dense 0..k-1
  std::vector<std::vector<double>> centroids;    ///< [k][dim]
  double inertia = 0.0;                          ///< sum of squared distances
  std::size_t iterations = 0;
};

/// Clusters `points` (equal-length rows, size >= k). Deterministic in the
/// seed. Empty clusters are re-seeded from the farthest point.
KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KMeansOptions& options);

}  // namespace cellscope
