// Cluster validity indices — the paper's metric tuner (§3.2).
//
// The Davies-Bouldin index drives the identifier's stop condition: the
// paper sweeps the clustering threshold and keeps the cut minimizing DBI,
// which lands at five clusters (Fig. 6a). Silhouette and Calinski-Harabasz
// are provided as cross-checks and for the linkage-ablation bench.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/hierarchical.h"

namespace cellscope {

class ThreadPool;

/// Per-cluster centroids of labeled points ([k][dim]).
std::vector<std::vector<double>> cluster_centroids(
    const std::vector<std::vector<double>>& points,
    const std::vector<int>& labels);

/// Davies-Bouldin index (lower is better), exactly the paper's
/// formulation: Si = mean Euclidean distance of cluster members to their
/// centroid, Mij = centroid distance, DBI = mean over i of
/// max_j (Si+Sj)/Mij. Requires >= 2 clusters, each non-empty.
double davies_bouldin(const std::vector<std::vector<double>>& points,
                      const std::vector<int>& labels);

/// Mean silhouette coefficient in [-1, 1] (higher is better); O(n²·dim).
double silhouette(const std::vector<std::vector<double>>& points,
                  const std::vector<int>& labels);

/// Silhouette from a precomputed distance matrix — O(n²) lookups instead
/// of O(n²·dim) Euclidean recomputation. Values differ from the pointwise
/// overload only by the matrix's float rounding.
double silhouette(const DistanceMatrix& distances,
                  const std::vector<int>& labels);

/// Calinski-Harabasz index (higher is better).
double calinski_harabasz(const std::vector<std::vector<double>>& points,
                         const std::vector<int>& labels);

/// One row of the metric tuner's sweep.
struct DbiSweepPoint {
  std::size_t k = 0;          ///< number of clusters at this cut
  double threshold = 0.0;     ///< merge distance where this k first holds
  double dbi = 0.0;
  /// False when the cut contains a cluster below the noise floor —
  /// singleton "clusters" have zero scatter and game the DBI, so the
  /// tuner refuses cuts with clusters smaller than min_cluster_size
  /// (mirroring the paper's §5.2 density-based noise rejection).
  bool valid = true;
};

/// Sweeps cluster counts [k_min, k_max] over a dendrogram, computing DBI
/// at each cut — the data behind Fig. 6(a). `threshold` is the distance of
/// the merge that would collapse k to k-1 clusters, i.e. the upper edge of
/// stop thresholds that still yield k clusters (the paper reports 16.33
/// for its optimal five-cluster cut).
///
/// One descending k_max→k_min pass replays each merge exactly once,
/// carrying per-cluster member lists, coordinate sums, and scatter across
/// cuts; only the cluster touched by a merge is recomputed. Per-cluster
/// accumulations run over members in ascending index order — the same
/// reduction order as davies_bouldin() — so every DbiSweepPoint matches a
/// per-k cut_k + davies_bouldin recomputation. With a pool, the per-k
/// cluster evaluations and the pairwise-centroid step run in parallel
/// (bit-identical to the serial path; DESIGN.md §8).
std::vector<DbiSweepPoint> dbi_sweep(
    const Dendrogram& dendrogram,
    const std::vector<std::vector<double>>& points, std::size_t k_min,
    std::size_t k_max, std::size_t min_cluster_size = 1,
    ThreadPool* pool = nullptr);

/// The sweep entry with minimal DBI among valid cuts (falls back to all
/// cuts when none is valid).
DbiSweepPoint best_cut(const std::vector<DbiSweepPoint>& sweep);

}  // namespace cellscope
