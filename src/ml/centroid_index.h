// Sublinear nearest-centroid matching for online classification.
//
// A CentroidIndex freezes a set of centroids (folded z-scored weeks in
// the serving plane) behind a small navigable neighbor graph, so a
// classify() call touches O(bilink · nlist) centroids instead of all k.
// The construction follows the flat-graph ANN recipe used by
// HNSW-family libraries: every node keeps links to its `bilink`
// nearest peers (made bidirectional, pruned back to the closest), and
// a query runs greedy best-first search with a candidate beam of
// `nlist`, then rescores every visited node with the exact squared
// distance.
//
// Exactness contract: below `brute_force_below` centroids the index
// does not build a graph at all — nearest() is the same ascending-index
// strict-< argmin scan OnlineClassifier::classify always ran, so the
// paper's five-pattern model is bit-for-bit unchanged. Above it the
// graph search is approximate in the usual ANN sense (it can miss the
// true nearest when the graph is disconnected around the query), but
// the final answer is always an exact distance to a real centroid —
// there is no compressed or quantized scoring anywhere.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cellscope {

class CentroidIndex {
 public:
  /// Search/build knobs, overridable per-process via environment:
  /// CELLSCOPE_ANN_BILINK, CELLSCOPE_ANN_NLIST,
  /// CELLSCOPE_ANN_BRUTE_BELOW (malformed values are ignored with a
  /// stderr note, never clamped silently).
  struct Options {
    /// Graph degree: nearest peers linked per centroid.
    std::size_t bilink = 8;
    /// Query beam width: candidates kept live during the graph walk.
    std::size_t nlist = 32;
    /// Centroid counts below this skip the graph entirely and scan —
    /// exact by construction, and faster than a graph walk at small k.
    std::size_t brute_force_below = 64;

    static Options from_env();
  };

  CentroidIndex() = default;

  /// All centroids must share one dimension. Builds the neighbor graph
  /// eagerly (O(k²·dim) once, at model-freeze time) unless k falls
  /// under brute_force_below.
  explicit CentroidIndex(const std::vector<std::vector<double>>& centroids,
                         Options options = Options::from_env());

  /// Index of the matched centroid; *distance_out (optional) receives
  /// the exact squared distance to it. Ties keep the lowest index.
  std::size_t nearest(std::span<const double> query,
                      double* distance_out = nullptr) const;

  std::size_t size() const { return n_; }
  std::size_t dim() const { return dim_; }
  /// True when nearest() is the exact full scan (no graph built).
  bool brute_force() const { return neighbors_.empty(); }
  const Options& options() const { return options_; }

 private:
  std::span<const double> centroid(std::size_t i) const {
    return {flat_.data() + i * dim_, dim_};
  }
  std::size_t scan_all(std::span<const double> query,
                       double* distance_out) const;

  Options options_;
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> flat_;  // row-major n_ × dim_
  /// Adjacency lists; empty when in brute-force mode.
  std::vector<std::vector<std::uint32_t>> neighbors_;
};

}  // namespace cellscope
