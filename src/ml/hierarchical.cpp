#include "ml/hierarchical.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope {

namespace {

/// Union-find over leaf indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

double lance_williams(Linkage linkage, double d_ki, double d_kj,
                      std::size_t size_i, std::size_t size_j) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(d_ki, d_kj);
    case Linkage::kComplete:
      return std::max(d_ki, d_kj);
    case Linkage::kAverage: {
      const double ni = static_cast<double>(size_i);
      const double nj = static_cast<double>(size_j);
      return (ni * d_ki + nj * d_kj) / (ni + nj);
    }
  }
  throw InvalidArgument("unknown linkage");
}

}  // namespace

Dendrogram Dendrogram::run(DistanceMatrix distances, Linkage linkage) {
  obs::ScopedTimer timer(
      obs::MetricsRegistry::instance().histogram("cellscope.ml.cluster_ms"));
  const std::size_t n = distances.n();
  std::vector<bool> active(n, true);
  std::vector<std::size_t> size(n, 1);
  std::vector<std::size_t> rep(n);  // smallest leaf in the cluster
  std::iota(rep.begin(), rep.end(), std::size_t{0});

  std::vector<Merge> merges;
  merges.reserve(n - 1);

  // Nearest-neighbor chain.
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t remaining = n;

  // The hottest loop of the clustering: scan row i of the condensed
  // triangle directly. Entries (j, i) for j < i sit at decreasing strides
  // (n-j-2 apart); entries (i, j) for j > i are contiguous. Scan order is
  // ascending j either way, so ties resolve exactly as a naive 0..n scan.
  auto nearest_active = [&](std::size_t i) -> std::size_t {
    const float* cond = distances.data();
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = n;  // sentinel
    std::size_t idx = i - 1;  // condensed index of (0, i); unused when i == 0
    for (std::size_t j = 0; j < i; ++j) {
      if (active[j]) {
        const double d = cond[idx];
        if (d < best) {
          best = d;
          best_j = j;
        }
      }
      idx += n - j - 2;
    }
    const float* row = cond + i * n - i * (i + 1) / 2;  // row[j - i - 1]
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!active[j]) continue;
      const double d = row[j - i - 1];
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    return best_j;
  };

  while (remaining > 1) {
    if (chain.empty()) {
      // Start from the lowest-index active cluster.
      for (std::size_t i = 0; i < n; ++i) {
        if (active[i]) {
          chain.push_back(i);
          break;
        }
      }
    }
    for (;;) {
      const std::size_t top = chain.back();
      const std::size_t nn = nearest_active(top);
      CS_CHECK_MSG(nn < n, "no active neighbor found");
      if (chain.size() >= 2 && nn == chain[chain.size() - 2]) {
        // Reciprocal nearest neighbors: merge top and nn.
        const std::size_t i = std::min(top, nn);
        const std::size_t j = std::max(top, nn);
        const double d = distances(i, j);
        merges.push_back({std::min(rep[i], rep[j]),
                          std::max(rep[i], rep[j]), d});

        // Lance-Williams update into slot i; deactivate j.
        for (std::size_t k = 0; k < n; ++k) {
          if (!active[k] || k == i || k == j) continue;
          distances.set(
              k, i,
              lance_williams(linkage, distances(k, i), distances(k, j),
                             size[i], size[j]));
        }
        size[i] += size[j];
        rep[i] = std::min(rep[i], rep[j]);
        active[j] = false;
        --remaining;
        chain.pop_back();
        chain.pop_back();
        break;
      }
      chain.push_back(nn);
    }
  }

  // Reducible linkages give a (numerically almost) monotone dendrogram;
  // sort by distance for threshold/count cuts. Stability keeps equal-
  // distance merges in construction (hence dependency-safe) order.
  std::stable_sort(merges.begin(), merges.end(),
                   [](const Merge& x, const Merge& y) {
                     return x.distance < y.distance;
                   });
  obs::MetricsRegistry::instance()
      .counter("cellscope.ml.merge_steps")
      .add(merges.size());
  obs::log_debug("hierarchical.done",
                 {{"leaves", n},
                  {"merges", merges.size()},
                  {"wall_ms", timer.elapsed_ms()}});
  return Dendrogram(n, std::move(merges));
}

Dendrogram::Dendrogram(std::size_t n, std::vector<Merge> merges)
    : n_(n), merges_(std::move(merges)) {
  CS_CHECK_MSG(merges_.size() == n_ - 1, "a dendrogram over n leaves has n-1 merges");
}

std::vector<int> Dendrogram::labels_after(std::size_t m) const {
  CS_CHECK_MSG(m <= merges_.size(), "merge count out of range");
  UnionFind uf(n_);
  for (std::size_t i = 0; i < m; ++i)
    uf.unite(merges_[i].a, merges_[i].b);

  // Dense labels ordered by smallest member index.
  std::vector<int> labels(n_, -1);
  int next = 0;
  std::vector<int> label_of_root(n_, -1);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t root = uf.find(i);
    if (label_of_root[root] == -1) label_of_root[root] = next++;
    labels[i] = label_of_root[root];
  }
  return labels;
}

std::vector<int> Dendrogram::cut_k(std::size_t k) const {
  CS_CHECK_MSG(k >= 1 && k <= n_, "k must be in [1, n]");
  return labels_after(n_ - k);
}

std::size_t Dendrogram::merges_within(double threshold) const {
  // merges_ is sorted by distance, so the number of merges at or below the
  // threshold is a binary search, not a linear scan.
  const auto it = std::upper_bound(
      merges_.begin(), merges_.end(), threshold,
      [](double t, const Merge& m) { return t < m.distance; });
  return static_cast<std::size_t>(it - merges_.begin());
}

std::vector<int> Dendrogram::cut_threshold(double threshold) const {
  return labels_after(merges_within(threshold));
}

std::size_t Dendrogram::cluster_count_at(double threshold) const {
  return n_ - merges_within(threshold);
}

std::size_t num_clusters(const std::vector<int>& labels) {
  CS_CHECK_MSG(!labels.empty(), "empty label vector");
  int max_label = -1;
  for (const int l : labels) {
    CS_CHECK_MSG(l >= 0, "labels must be non-negative");
    max_label = std::max(max_label, l);
  }
  return static_cast<std::size_t>(max_label) + 1;
}

std::vector<std::vector<std::size_t>> cluster_members(
    const std::vector<int>& labels) {
  std::vector<std::vector<std::size_t>> members(num_clusters(labels));
  for (std::size_t i = 0; i < labels.size(); ++i)
    members[static_cast<std::size_t>(labels[i])].push_back(i);
  return members;
}

}  // namespace cellscope
