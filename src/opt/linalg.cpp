#include "opt/linalg.h"

#include <cmath>

#include "common/error.h"

namespace cellscope {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  CS_CHECK_MSG(rows >= 1 && cols >= 1, "matrix must be non-empty");
}

double& Matrix::at(std::size_t r, std::size_t c) {
  CS_CHECK_MSG(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  CS_CHECK_MSG(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::multiply(const std::vector<double>& x) const {
  CS_CHECK_MSG(x.size() == cols_, "dimension mismatch in multiply");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) y[r] += at(r, c) * x[c];
  return y;
}

std::vector<double> Matrix::multiply_transposed(
    const std::vector<double>& y) const {
  CS_CHECK_MSG(y.size() == rows_, "dimension mismatch in multiply_transposed");
  std::vector<double> x(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) x[c] += at(r, c) * y[r];
  return x;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) s += at(r, i) * at(r, j);
      g.at(i, j) = s;
    }
  return g;
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  CS_CHECK_MSG(a.cols() == n && b.size() == n,
               "solve_linear needs a square system");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a.at(r, col)) > std::fabs(a.at(pivot, col))) pivot = r;
    if (std::fabs(a.at(pivot, col)) < 1e-12)
      throw Error("solve_linear: singular system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a.at(pivot, c), a.at(col, c));
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a.at(r, col) / a.at(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
      b[r] -= f * b[col];
    }
  }

  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a.at(i, c) * x[c];
    x[i] = s / a.at(i, i);
  }
  return x;
}

}  // namespace cellscope
