// Small dense linear algebra for the QP solver.
//
// Systems here are tiny (the convex-combination KKT systems are at most
// 5×5), so a partial-pivoting Gaussian elimination is both sufficient and
// easy to verify.
#pragma once

#include <cstddef>
#include <vector>

namespace cellscope {

/// Dense row-major matrix (minimal; only what the QP needs).
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Matrix-vector product (x.size() == cols).
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// Transposed product Aᵀ y (y.size() == rows).
  std::vector<double> multiply_transposed(const std::vector<double>& y) const;

  /// Gram matrix AᵀA.
  Matrix gram() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting; throws
/// cellscope::Error if A is (numerically) singular. A must be square and
/// match b.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

}  // namespace cellscope
