#include "opt/simplex_ls.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/stats.h"
#include "obs/metrics.h"

namespace cellscope {

namespace {

/// Builds the d×m matrix whose columns are the components.
Matrix component_matrix(const std::vector<std::vector<double>>& components,
                        std::size_t dim) {
  Matrix a(dim, components.size());
  for (std::size_t c = 0; c < components.size(); ++c) {
    CS_CHECK_MSG(components[c].size() == dim,
                 "component dimension mismatch");
    for (std::size_t r = 0; r < dim; ++r) a.at(r, c) = components[c][r];
  }
  return a;
}

double objective_value(const Matrix& a, const std::vector<double>& target,
                       const std::vector<double>& x) {
  const auto fitted = a.multiply(x);
  return squared_distance(fitted, target);
}

}  // namespace

SimplexLsResult solve_simplex_ls(
    const std::vector<std::vector<double>>& components,
    const std::vector<double>& target) {
  const std::size_t m = components.size();
  CS_CHECK_MSG(m >= 1, "need at least one component");
  CS_CHECK_MSG(m <= 16, "active-set enumeration supports at most 16 components");
  const std::size_t dim = target.size();
  CS_CHECK_MSG(dim >= 1, "empty target");
  const Matrix a = component_matrix(components, dim);
  const Matrix gram = a.gram();
  const auto atb = a.multiply_transposed(target);

  SimplexLsResult best;
  best.objective = std::numeric_limits<double>::infinity();

  // Enumerate non-empty supports S; solve the equality-constrained LS
  //   [ G_S  1 ] [x_S]   [Aᵀb_S]
  //   [ 1ᵀ   0 ] [ λ ] = [  1  ]
  // and keep the best candidate with x_S ≥ 0.
  for (std::size_t mask = 1; mask < (1u << m); ++mask) {
    std::vector<std::size_t> support;
    for (std::size_t i = 0; i < m; ++i)
      if (mask & (1u << i)) support.push_back(i);
    const std::size_t s = support.size();

    Matrix kkt(s + 1, s + 1);
    std::vector<double> rhs(s + 1, 0.0);
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = 0; j < s; ++j)
        kkt.at(i, j) = gram.at(support[i], support[j]);
      kkt.at(i, s) = 1.0;
      kkt.at(s, i) = 1.0;
      rhs[i] = atb[support[i]];
    }
    rhs[s] = 1.0;

    std::vector<double> solution;
    try {
      solution = solve_linear(kkt, rhs);
    } catch (const Error&) {
      continue;  // degenerate support (e.g. duplicated components)
    }

    bool feasible = true;
    for (std::size_t i = 0; i < s; ++i) {
      if (solution[i] < -1e-9) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    std::vector<double> x(m, 0.0);
    for (std::size_t i = 0; i < s; ++i)
      x[support[i]] = std::max(0.0, solution[i]);
    // Renormalize away the clamp's epsilon drift.
    double total = 0.0;
    for (const double v : x) total += v;
    if (total <= 0.0) continue;
    for (auto& v : x) v /= total;

    const double obj = objective_value(a, target, x);
    if (obj < best.objective) {
      best.objective = obj;
      best.coefficients = std::move(x);
    }
  }

  CS_CHECK_MSG(!best.coefficients.empty(),
               "no feasible support found (should be impossible)");
  best.fitted = a.multiply(best.coefficients);
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("cellscope.opt.qp_solves").add(1);
  registry.counter("cellscope.opt.qp_supports_evaluated")
      .add((1u << m) - 1);
  return best;
}

std::vector<double> project_to_simplex(std::vector<double> v) {
  CS_CHECK_MSG(!v.empty(), "projection of empty vector");
  // Held-Wolfe-Crowder / Duchi et al.: sort, find the threshold rho.
  std::vector<double> u = v;
  std::sort(u.rbegin(), u.rend());
  double cumulative = 0.0;
  double theta = 0.0;
  std::size_t rho = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    cumulative += u[i];
    const double candidate =
        (cumulative - 1.0) / static_cast<double>(i + 1);
    if (u[i] - candidate > 0.0) {
      rho = i + 1;
      theta = candidate;
    }
  }
  CS_CHECK_MSG(rho > 0, "projection failed");
  for (auto& x : v) x = std::max(0.0, x - theta);
  return v;
}

SimplexLsResult solve_simplex_ls_pg(
    const std::vector<std::vector<double>>& components,
    const std::vector<double>& target, std::size_t max_iterations,
    double tolerance) {
  const std::size_t m = components.size();
  CS_CHECK_MSG(m >= 1, "need at least one component");
  const std::size_t dim = target.size();
  const Matrix a = component_matrix(components, dim);
  const Matrix gram = a.gram();
  const auto atb = a.multiply_transposed(target);

  // Step size 1/L with L = trace(G) (an upper bound on the largest
  // eigenvalue of the Hessian 2G up to the factor handled below).
  double trace = 0.0;
  for (std::size_t i = 0; i < m; ++i) trace += gram.at(i, i);
  const double step = trace > 0.0 ? 1.0 / (2.0 * trace) : 1.0;

  std::vector<double> x(m, 1.0 / static_cast<double>(m));
  std::size_t iterations_used = 0;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++iterations_used;
    // grad = 2 (G x - Aᵀb)
    std::vector<double> grad(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      double gx = 0.0;
      for (std::size_t j = 0; j < m; ++j) gx += gram.at(i, j) * x[j];
      grad[i] = 2.0 * (gx - atb[i]);
    }
    std::vector<double> next(m);
    for (std::size_t i = 0; i < m; ++i) next[i] = x[i] - step * grad[i];
    next = project_to_simplex(std::move(next));

    double delta = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      delta += (next[i] - x[i]) * (next[i] - x[i]);
    x = std::move(next);
    if (delta < tolerance * tolerance) break;
  }

  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("cellscope.opt.qp_solves").add(1);
  registry.counter("cellscope.opt.qp_iterations").add(iterations_used);

  SimplexLsResult result;
  result.coefficients = x;
  result.fitted = a.multiply(x);
  result.objective = squared_distance(result.fitted, target);
  return result;
}

bool check_simplex_kkt(const std::vector<std::vector<double>>& components,
                       const std::vector<double>& target,
                       const std::vector<double>& x, double tol) {
  const std::size_t m = components.size();
  CS_CHECK_MSG(x.size() == m, "solution size mismatch");
  const Matrix a = component_matrix(components, target.size());
  const Matrix gram = a.gram();
  const auto atb = a.multiply_transposed(target);

  double total = 0.0;
  for (const double v : x) {
    if (v < -tol) return false;
    total += v;
  }
  if (std::fabs(total - 1.0) > tol) return false;

  // Gradient; on the support all entries must equal the multiplier λ; off
  // the support they must be >= λ.
  std::vector<double> grad(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double gx = 0.0;
    for (std::size_t j = 0; j < m; ++j) gx += gram.at(i, j) * x[j];
    grad[i] = 2.0 * (gx - atb[i]);
  }
  double lambda = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m; ++i)
    if (x[i] > tol) lambda = std::min(lambda, grad[i]);
  for (std::size_t i = 0; i < m; ++i) {
    if (x[i] > tol && std::fabs(grad[i] - lambda) > tol * (1.0 + std::fabs(lambda)))
      return false;
    if (x[i] <= tol && grad[i] < lambda - tol * (1.0 + std::fabs(lambda)))
      return false;
  }
  return true;
}

}  // namespace cellscope
