// Simplex-constrained least squares — the paper's §5.3 quadratic program.
//
//   minimize   || F − Σᵢ F⁰ᵢ xᵢ ||²
//   subject to Σᵢ xᵢ = 1,  xᵢ ≥ 0
//
// where the F⁰ᵢ are the four primary components' feature vectors and F the
// target tower's features. The number of components is tiny, so the exact
// solver enumerates active sets: for each non-empty support it solves the
// equality-constrained KKT system and keeps the best feasible candidate —
// exact, robust, and easily verified against the KKT conditions. A
// projected-gradient solver is included as a cross-check and as the perf
// bench baseline.
#pragma once

#include <cstddef>
#include <vector>

#include "opt/linalg.h"

namespace cellscope {

/// Result of a simplex-constrained least-squares solve.
struct SimplexLsResult {
  std::vector<double> coefficients;  ///< on the simplex
  double objective = 0.0;            ///< ||F - A x||²
  std::vector<double> fitted;        ///< A x
};

/// Exact active-set solver. `components` are the columns F⁰ᵢ (each of the
/// target's dimension); at most ~16 components (2^m enumeration).
SimplexLsResult solve_simplex_ls(
    const std::vector<std::vector<double>>& components,
    const std::vector<double>& target);

/// Projected-gradient solver (baseline / cross-check); converges to the
/// same optimum on this convex problem.
SimplexLsResult solve_simplex_ls_pg(
    const std::vector<std::vector<double>>& components,
    const std::vector<double>& target, std::size_t max_iterations = 5000,
    double tolerance = 1e-12);

/// Euclidean projection onto the probability simplex
/// {x : Σx = 1, x ≥ 0} (sort-based algorithm).
std::vector<double> project_to_simplex(std::vector<double> v);

/// Verifies the KKT conditions of a candidate solution within `tol`:
/// feasibility, and ∇ᵢ ≥ λ with equality on the support (∇ the objective
/// gradient, λ the equality multiplier). Returns true when satisfied.
bool check_simplex_kkt(const std::vector<std::vector<double>>& components,
                       const std::vector<double>& target,
                       const std::vector<double>& x, double tol = 1e-6);

}  // namespace cellscope
