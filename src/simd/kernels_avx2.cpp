// AVX2 kernels (x86-64 only; this TU is compiled with -mavx2 and
// -ffp-contract=off — see src/simd/CMakeLists.txt).
//
// Bit-compatibility with kernels_scalar.cpp is by construction: every
// vector op below is the same IEEE operation the scalar reference runs,
// with the same operand order, and reductions vectorize across
// independent outputs instead of reassociating — dot4 keeps one
// accumulator chain per lane, exactly the scalar per-column order. No
// FMA intrinsics anywhere (mul then add, two roundings, like scalar).
#include "simd/kernels.h"

#ifdef CELLSCOPE_SIMD_ENABLE_AVX2

#include <immintrin.h>

namespace cellscope::simd::detail {

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2"); }

void dot4_avx2(const double* a, const double* packed, std::size_t dim,
               double out[4]) {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t d = 0; d < dim; ++d) {
    const __m256d x = _mm256_broadcast_sd(a + d);
    const __m256d col = _mm256_loadu_pd(packed + 4 * d);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(x, col));
  }
  _mm256_storeu_pd(out, acc);
}

void normalize_avx2(const double* v, std::size_t n, double mean, double sd,
                    double* out) {
  const __m256d vm = _mm256_set1_pd(mean);
  const __m256d vs = _mm256_set1_pd(sd);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    _mm256_storeu_pd(out + i, _mm256_div_pd(_mm256_sub_pd(x, vm), vs));
  }
  for (; i < n; ++i) out[i] = (v[i] - mean) / sd;
}

void fold_mean_avx2(const double* row, std::size_t period, std::size_t folds,
                    double* out) {
  const __m256d denom = _mm256_set1_pd(static_cast<double>(folds));
  std::size_t j = 0;
  for (; j + 4 <= period; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t f = 0; f < folds; ++f)
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(row + f * period + j));
    _mm256_storeu_pd(out + j, _mm256_div_pd(acc, denom));
  }
  for (; j < period; ++j) {
    double acc = 0.0;
    for (std::size_t f = 0; f < folds; ++f) acc += row[f * period + j];
    out[j] = acc / static_cast<double>(folds);
  }
}

namespace {

/// Lane-exact naive complex product of two packed pairs: for each
/// complex lane, (re, im) = (xr·yr − xi·yi, xr·yi + xi·yr) with x's
/// components broadcast from `vx` — operand order matches the scalar
/// reference term for term.
inline __m256d complex_mul_pd(__m256d vx, __m256d vy) {
  const __m256d xr = _mm256_movedup_pd(vx);        // [xr0, xr0, xr1, xr1]
  const __m256d xi = _mm256_permute_pd(vx, 0xF);   // [xi0, xi0, xi1, xi1]
  const __m256d yswap = _mm256_permute_pd(vy, 0x5);  // [yi0, yr0, yi1, yr1]
  // even lanes: xr·yr − xi·yi ; odd lanes: xr·yi + xi·yr
  return _mm256_addsub_pd(_mm256_mul_pd(xr, vy), _mm256_mul_pd(xi, yswap));
}

}  // namespace

void fft_butterfly_avx2(std::complex<double>* a, std::complex<double>* b,
                        const std::complex<double>* w, std::size_t half) {
  double* pa = reinterpret_cast<double*>(a);
  double* pb = reinterpret_cast<double*>(b);
  const double* pw = reinterpret_cast<const double*>(w);
  std::size_t j = 0;
  for (; j + 2 <= half; j += 2) {
    const __m256d vb = _mm256_loadu_pd(pb + 2 * j);
    const __m256d vw = _mm256_loadu_pd(pw + 2 * j);
    // t1 = [br·wr, bi·wr], t2 = [bi·wi, br·wi]; addsub gives
    // even: br·wr − bi·wi, odd: bi·wr + br·wi — the scalar (vr, vi)
    // term for term, same operand order.
    const __m256d t1 = _mm256_mul_pd(vb, _mm256_movedup_pd(vw));
    const __m256d bswap = _mm256_permute_pd(vb, 0x5);  // [bi, br, ...]
    const __m256d t2 = _mm256_mul_pd(bswap, _mm256_permute_pd(vw, 0xF));
    const __m256d v = _mm256_addsub_pd(t1, t2);
    const __m256d u = _mm256_loadu_pd(pa + 2 * j);
    _mm256_storeu_pd(pa + 2 * j, _mm256_add_pd(u, v));
    _mm256_storeu_pd(pb + 2 * j, _mm256_sub_pd(u, v));
  }
  for (; j < half; ++j) {
    const double br = pb[2 * j];
    const double bi = pb[2 * j + 1];
    const double wr = pw[2 * j];
    const double wi = pw[2 * j + 1];
    const double vr = br * wr - bi * wi;
    const double vi = bi * wr + br * wi;
    const double ur = pa[2 * j];
    const double ui = pa[2 * j + 1];
    pa[2 * j] = ur + vr;
    pa[2 * j + 1] = ui + vi;
    pb[2 * j] = ur - vr;
    pb[2 * j + 1] = ui - vi;
  }
}

void complex_multiply_avx2(const std::complex<double>* x,
                           const std::complex<double>* y,
                           std::complex<double>* out, std::size_t n) {
  const double* px = reinterpret_cast<const double*>(x);
  const double* py = reinterpret_cast<const double*>(y);
  double* po = reinterpret_cast<double*>(out);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d vx = _mm256_loadu_pd(px + 2 * i);
    const __m256d vy = _mm256_loadu_pd(py + 2 * i);
    _mm256_storeu_pd(po + 2 * i, complex_mul_pd(vx, vy));
  }
  for (; i < n; ++i) {
    const double xr = px[2 * i];
    const double xi = px[2 * i + 1];
    const double yr = py[2 * i];
    const double yi = py[2 * i + 1];
    const double re = xr * yr - xi * yi;
    const double im = xr * yi + xi * yr;
    po[2 * i] = re;
    po[2 * i + 1] = im;
  }
}

}  // namespace cellscope::simd::detail

#endif  // CELLSCOPE_SIMD_ENABLE_AVX2
