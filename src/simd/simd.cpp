#include "simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "simd/kernels.h"

namespace cellscope::simd {

namespace {

Isa detect() {
#ifdef CELLSCOPE_SIMD_ENABLE_AVX2
  if (detail::cpu_has_avx2()) return Isa::kAvx2;
#endif
#ifdef CELLSCOPE_SIMD_ENABLE_NEON
  return Isa::kNeon;  // NEON is architectural on aarch64
#endif
  return Isa::kScalar;
}

/// Clamp a requested ISA to what the CPU can actually run — the
/// dispatcher must never select instructions the hardware lacks.
Isa clamp_to_detected(Isa requested, const char* origin) {
  const Isa available = detected_isa();
  bool supported = requested == Isa::kScalar || requested == available;
  if (!supported) {
    std::fprintf(stderr,
                 "cellscope: %s requested simd isa '%s' but this cpu "
                 "supports '%s'; using '%s'\n",
                 origin, std::string(isa_name(requested)).c_str(),
                 std::string(isa_name(available)).c_str(),
                 std::string(isa_name(available)).c_str());
    return available;
  }
  return requested;
}

Isa env_isa() {
  static const Isa isa = [] {
    const char* spec = std::getenv("CELLSCOPE_SIMD");
    if (spec == nullptr || *spec == '\0') return detected_isa();
    const auto parsed = parse_isa(spec);
    if (!parsed.has_value()) {
      if (std::string_view(spec) != "auto")
        std::fprintf(stderr,
                     "cellscope: ignoring CELLSCOPE_SIMD='%s' (expected "
                     "scalar|neon|avx2|auto)\n",
                     spec);
      return detected_isa();
    }
    return clamp_to_detected(*parsed, "CELLSCOPE_SIMD");
  }();
  return isa;
}

/// force_isa() override; -1 = none. Relaxed is fine: tests flip it from
/// single-threaded setup before launching kernel work.
std::atomic<int> g_forced{-1};

}  // namespace

Isa detected_isa() {
  static const Isa isa = detect();
  return isa;
}

Isa active_isa() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  return env_isa();
}

void force_isa(std::optional<Isa> isa) {
  if (!isa.has_value()) {
    g_forced.store(-1, std::memory_order_relaxed);
    return;
  }
  g_forced.store(static_cast<int>(clamp_to_detected(*isa, "force_isa")),
                 std::memory_order_relaxed);
}

std::string_view isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kNeon:
      return "neon";
    case Isa::kAvx2:
      return "avx2";
  }
  return "scalar";
}

std::optional<Isa> parse_isa(std::string_view name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "neon") return Isa::kNeon;
  if (name == "avx2") return Isa::kAvx2;
  return std::nullopt;  // "auto", "", or unknown
}

void dot4(const double* a, const double* packed, std::size_t dim,
          double out[4]) {
  switch (active_isa()) {
#ifdef CELLSCOPE_SIMD_ENABLE_AVX2
    case Isa::kAvx2:
      return detail::dot4_avx2(a, packed, dim, out);
#endif
#ifdef CELLSCOPE_SIMD_ENABLE_NEON
    case Isa::kNeon:
      return detail::dot4_neon(a, packed, dim, out);
#endif
    default:
      return detail::dot4_scalar(a, packed, dim, out);
  }
}

void normalize(const double* v, std::size_t n, double mean, double sd,
               double* out) {
  switch (active_isa()) {
#ifdef CELLSCOPE_SIMD_ENABLE_AVX2
    case Isa::kAvx2:
      return detail::normalize_avx2(v, n, mean, sd, out);
#endif
#ifdef CELLSCOPE_SIMD_ENABLE_NEON
    case Isa::kNeon:
      return detail::normalize_neon(v, n, mean, sd, out);
#endif
    default:
      return detail::normalize_scalar(v, n, mean, sd, out);
  }
}

void fold_mean(const double* row, std::size_t period, std::size_t folds,
               double* out) {
  switch (active_isa()) {
#ifdef CELLSCOPE_SIMD_ENABLE_AVX2
    case Isa::kAvx2:
      return detail::fold_mean_avx2(row, period, folds, out);
#endif
#ifdef CELLSCOPE_SIMD_ENABLE_NEON
    case Isa::kNeon:
      return detail::fold_mean_neon(row, period, folds, out);
#endif
    default:
      return detail::fold_mean_scalar(row, period, folds, out);
  }
}

void fft_butterfly(std::complex<double>* a, std::complex<double>* b,
                   const std::complex<double>* w, std::size_t half) {
  switch (active_isa()) {
#ifdef CELLSCOPE_SIMD_ENABLE_AVX2
    case Isa::kAvx2:
      return detail::fft_butterfly_avx2(a, b, w, half);
#endif
#ifdef CELLSCOPE_SIMD_ENABLE_NEON
    case Isa::kNeon:
      return detail::fft_butterfly_neon(a, b, w, half);
#endif
    default:
      return detail::fft_butterfly_scalar(a, b, w, half);
  }
}

void complex_multiply(const std::complex<double>* x,
                      const std::complex<double>* y,
                      std::complex<double>* out, std::size_t n) {
  switch (active_isa()) {
#ifdef CELLSCOPE_SIMD_ENABLE_AVX2
    case Isa::kAvx2:
      return detail::complex_multiply_avx2(x, y, out, n);
#endif
#ifdef CELLSCOPE_SIMD_ENABLE_NEON
    case Isa::kNeon:
      return detail::complex_multiply_neon(x, y, out, n);
#endif
    default:
      return detail::complex_multiply_scalar(x, y, out, n);
  }
}

}  // namespace cellscope::simd
