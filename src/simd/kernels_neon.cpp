// NEON kernels (aarch64; this TU is compiled with -ffp-contract=off).
//
// Same bit-compatibility construction as the AVX2 TU, two doubles per
// vector: reductions vectorize across independent outputs (dot4 keeps
// one accumulator chain per lane), elementwise kernels map op for op,
// and no fused multiply-add intrinsics are used. NEON has no addsub, so
// the complex kernels negate the cross-term lane with an exact ±1.0
// multiply before a plain add — x − y and x + (−y) are the same IEEE
// operation for finite inputs.
#include "simd/kernels.h"

#ifdef CELLSCOPE_SIMD_ENABLE_NEON

#include <arm_neon.h>

namespace cellscope::simd::detail {

void dot4_neon(const double* a, const double* packed, std::size_t dim,
               double out[4]) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  for (std::size_t d = 0; d < dim; ++d) {
    const float64x2_t x = vdupq_n_f64(a[d]);
    acc01 = vaddq_f64(acc01, vmulq_f64(x, vld1q_f64(packed + 4 * d)));
    acc23 = vaddq_f64(acc23, vmulq_f64(x, vld1q_f64(packed + 4 * d + 2)));
  }
  vst1q_f64(out, acc01);
  vst1q_f64(out + 2, acc23);
}

void normalize_neon(const double* v, std::size_t n, double mean, double sd,
                    double* out) {
  const float64x2_t vm = vdupq_n_f64(mean);
  const float64x2_t vs = vdupq_n_f64(sd);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(out + i, vdivq_f64(vsubq_f64(vld1q_f64(v + i), vm), vs));
  for (; i < n; ++i) out[i] = (v[i] - mean) / sd;
}

void fold_mean_neon(const double* row, std::size_t period, std::size_t folds,
                    double* out) {
  const float64x2_t denom = vdupq_n_f64(static_cast<double>(folds));
  std::size_t j = 0;
  for (; j + 2 <= period; j += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    for (std::size_t f = 0; f < folds; ++f)
      acc = vaddq_f64(acc, vld1q_f64(row + f * period + j));
    vst1q_f64(out + j, vdivq_f64(acc, denom));
  }
  for (; j < period; ++j) {
    double acc = 0.0;
    for (std::size_t f = 0; f < folds; ++f) acc += row[f * period + j];
    out[j] = acc / static_cast<double>(folds);
  }
}

namespace {

/// Naive complex product of one packed (re, im) pair per vector, term
/// order matching the scalar reference: (xr·yr − xi·yi, xr·yi + xi·yr).
inline float64x2_t complex_mul_f64(float64x2_t vx, float64x2_t vy) {
  const float64x2_t sign = {-1.0, 1.0};  // exact: flips only the cross lane
  const float64x2_t xr = vdupq_laneq_f64(vx, 0);
  const float64x2_t xi = vdupq_laneq_f64(vx, 1);
  const float64x2_t yswap = vextq_f64(vy, vy, 1);  // [yi, yr]
  const float64x2_t t1 = vmulq_f64(xr, vy);        // [xr·yr, xr·yi]
  const float64x2_t t2 = vmulq_f64(xi, yswap);     // [xi·yi, xi·yr]
  return vaddq_f64(t1, vmulq_f64(t2, sign));
}

}  // namespace

void fft_butterfly_neon(std::complex<double>* a, std::complex<double>* b,
                        const std::complex<double>* w, std::size_t half) {
  double* pa = reinterpret_cast<double*>(a);
  double* pb = reinterpret_cast<double*>(b);
  const double* pw = reinterpret_cast<const double*>(w);
  const float64x2_t sign = {-1.0, 1.0};
  for (std::size_t j = 0; j < half; ++j) {
    const float64x2_t vb = vld1q_f64(pb + 2 * j);
    const float64x2_t vw = vld1q_f64(pw + 2 * j);
    // t1 = [br·wr, bi·wr], t2 = [bi·wi, br·wi] → v = (br·wr − bi·wi,
    // bi·wr + br·wi), the scalar (vr, vi) term for term.
    const float64x2_t t1 = vmulq_f64(vb, vdupq_laneq_f64(vw, 0));
    const float64x2_t bswap = vextq_f64(vb, vb, 1);
    const float64x2_t t2 = vmulq_f64(bswap, vdupq_laneq_f64(vw, 1));
    const float64x2_t v = vaddq_f64(t1, vmulq_f64(t2, sign));
    const float64x2_t u = vld1q_f64(pa + 2 * j);
    vst1q_f64(pa + 2 * j, vaddq_f64(u, v));
    vst1q_f64(pb + 2 * j, vsubq_f64(u, v));
  }
}

void complex_multiply_neon(const std::complex<double>* x,
                           const std::complex<double>* y,
                           std::complex<double>* out, std::size_t n) {
  const double* px = reinterpret_cast<const double*>(x);
  const double* py = reinterpret_cast<const double*>(y);
  double* po = reinterpret_cast<double*>(out);
  for (std::size_t i = 0; i < n; ++i) {
    const float64x2_t vx = vld1q_f64(px + 2 * i);
    const float64x2_t vy = vld1q_f64(py + 2 * i);
    vst1q_f64(po + 2 * i, complex_mul_f64(vx, vy));
  }
}

}  // namespace cellscope::simd::detail

#endif  // CELLSCOPE_SIMD_ENABLE_NEON
