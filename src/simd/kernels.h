// Internal per-ISA kernel entry points behind simd.h's dispatchers.
//
// Every ISA implements the same five kernels with identical IEEE
// semantics (see simd.h's bit-compatibility contract). The scalar TU is
// the canonical reference; vector TUs are compiled with their ISA flags
// plus -ffp-contract=off in their own translation units so no other code
// needs non-baseline codegen.
#pragma once

#include <complex>
#include <cstddef>

// CELLSCOPE_SIMD_ENABLE_AVX2 / _NEON are defined by src/simd/CMakeLists
// for the whole cs_simd target exactly when the matching kernel TU is
// built with its ISA flags — declarations, definitions, and dispatch
// cases all key off the same macro, so a flag/arch mismatch is a compile
// error instead of a silent illegal-instruction time bomb.

namespace cellscope::simd::detail {

void dot4_scalar(const double* a, const double* packed, std::size_t dim,
                 double out[4]);
void normalize_scalar(const double* v, std::size_t n, double mean, double sd,
                      double* out);
void fold_mean_scalar(const double* row, std::size_t period, std::size_t folds,
                      double* out);
void fft_butterfly_scalar(std::complex<double>* a, std::complex<double>* b,
                          const std::complex<double>* w, std::size_t half);
void complex_multiply_scalar(const std::complex<double>* x,
                             const std::complex<double>* y,
                             std::complex<double>* out, std::size_t n);

#ifdef CELLSCOPE_SIMD_ENABLE_AVX2
bool cpu_has_avx2();
void dot4_avx2(const double* a, const double* packed, std::size_t dim,
               double out[4]);
void normalize_avx2(const double* v, std::size_t n, double mean, double sd,
                    double* out);
void fold_mean_avx2(const double* row, std::size_t period, std::size_t folds,
                    double* out);
void fft_butterfly_avx2(std::complex<double>* a, std::complex<double>* b,
                        const std::complex<double>* w, std::size_t half);
void complex_multiply_avx2(const std::complex<double>* x,
                           const std::complex<double>* y,
                           std::complex<double>* out, std::size_t n);
#endif

#ifdef CELLSCOPE_SIMD_ENABLE_NEON
void dot4_neon(const double* a, const double* packed, std::size_t dim,
               double out[4]);
void normalize_neon(const double* v, std::size_t n, double mean, double sd,
                    double* out);
void fold_mean_neon(const double* row, std::size_t period, std::size_t folds,
                    double* out);
void fft_butterfly_neon(std::complex<double>* a, std::complex<double>* b,
                        const std::complex<double>* w, std::size_t half);
void complex_multiply_neon(const std::complex<double>* x,
                           const std::complex<double>* y,
                           std::complex<double>* out, std::size_t n);
#endif

}  // namespace cellscope::simd::detail
