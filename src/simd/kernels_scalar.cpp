// Canonical scalar kernels — the reference every vector ISA must match
// bit for bit. This TU is compiled with -ffp-contract=off so the compiler
// cannot fuse the mul/add pairs into FMAs on any target; the accumulation
// orders written here ARE the contract.
#include "simd/kernels.h"

namespace cellscope::simd::detail {

void dot4_scalar(const double* a, const double* packed, std::size_t dim,
                 double out[4]) {
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  for (std::size_t d = 0; d < dim; ++d) {
    const double x = a[d];
    const double* col = packed + 4 * d;
    s0 += x * col[0];
    s1 += x * col[1];
    s2 += x * col[2];
    s3 += x * col[3];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

void normalize_scalar(const double* v, std::size_t n, double mean, double sd,
                      double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = (v[i] - mean) / sd;
}

void fold_mean_scalar(const double* row, std::size_t period, std::size_t folds,
                      double* out) {
  const double denom = static_cast<double>(folds);
  for (std::size_t j = 0; j < period; ++j) {
    double acc = 0.0;  // start from +0.0 like the classic += fold loop
    for (std::size_t f = 0; f < folds; ++f) acc += row[f * period + j];
    out[j] = acc / denom;
  }
}

void fft_butterfly_scalar(std::complex<double>* a, std::complex<double>* b,
                          const std::complex<double>* w, std::size_t half) {
  // std::complex<double> is layout-compatible with double[2]
  // ([complex.numbers.general]); the raw-double form keeps the product
  // naive (no Annex G repair branch) so it matches the vector lanes on
  // every input, finite or not.
  double* pa = reinterpret_cast<double*>(a);
  double* pb = reinterpret_cast<double*>(b);
  const double* pw = reinterpret_cast<const double*>(w);
  for (std::size_t j = 0; j < half; ++j) {
    const double br = pb[2 * j];
    const double bi = pb[2 * j + 1];
    const double wr = pw[2 * j];
    const double wi = pw[2 * j + 1];
    const double vr = br * wr - bi * wi;
    const double vi = bi * wr + br * wi;
    const double ur = pa[2 * j];
    const double ui = pa[2 * j + 1];
    pa[2 * j] = ur + vr;
    pa[2 * j + 1] = ui + vi;
    pb[2 * j] = ur - vr;
    pb[2 * j + 1] = ui - vi;
  }
}

void complex_multiply_scalar(const std::complex<double>* x,
                             const std::complex<double>* y,
                             std::complex<double>* out, std::size_t n) {
  const double* px = reinterpret_cast<const double*>(x);
  const double* py = reinterpret_cast<const double*>(y);
  double* po = reinterpret_cast<double*>(out);
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = px[2 * i];
    const double xi = px[2 * i + 1];
    const double yr = py[2 * i];
    const double yi = py[2 * i + 1];
    const double re = xr * yr - xi * yi;
    const double im = xr * yi + xi * yr;
    po[2 * i] = re;
    po[2 * i + 1] = im;
  }
}

}  // namespace cellscope::simd::detail
