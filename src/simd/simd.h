// Runtime-dispatched SIMD kernels for the analytics hot loops.
//
// The four scalar cores the profiler keeps pointing at — the blocked
// pairwise-distance tile, per-row z-score normalization, the mean-week
// fold, and the radix-2/Bluestein FFT inner loops — all dispatch through
// this layer (DESIGN.md §12). The widest instruction set the CPU supports
// is picked once at startup via cpuid (AVX2 on x86-64, NEON on aarch64),
// overridable with CELLSCOPE_SIMD=scalar|avx2|neon|auto or force_isa()
// from tests.
//
// The bit-compatibility contract: every kernel is vectorized WITHOUT
// reassociating any floating-point reduction. Reductions keep their
// sequential accumulation order by vectorizing across independent outputs
// (dot4 runs four column dot products side by side, each lane summing in
// ascending-element order), and elementwise kernels map IEEE op for IEEE
// op onto vector lanes. No FMA contraction is permitted in any kernel TU
// (-ffp-contract=off, no FMA intrinsics), so for finite inputs every ISA
// produces bit-identical results, pinned by the `-L par` and `-L simd`
// suites. The single documented divergence: the scalar reference for the
// complex kernels uses the naive (ac−bd, ad+bc) product, matching the
// vector lanes exactly but bypassing libstdc++'s C99 Annex G non-finite
// "repair" — NaN/Inf spectra differ from pre-SIMD releases (they were
// garbage either way); finite spectra are unchanged bit for bit.
#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <string_view>

namespace cellscope::simd {

/// Instruction sets the dispatcher can select. Order is by width:
/// comparisons (a > b) mean "wider than".
enum class Isa {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
};

/// Widest ISA this CPU supports (detected once; cpuid on x86-64).
Isa detected_isa();

/// The ISA kernels actually dispatch on: force_isa() override if set,
/// else CELLSCOPE_SIMD from the environment, else detected_isa(). A
/// requested ISA the CPU cannot run is reported on stderr and clamped to
/// detected_isa() — the dispatcher never emits unsupported instructions.
Isa active_isa();

/// Test/tooling override; nullopt restores env/auto selection. Clamped to
/// detected_isa() like the env knob. Not thread-safe against in-flight
/// kernels — flip it only from single-threaded test setup.
void force_isa(std::optional<Isa> isa);

/// "scalar" | "neon" | "avx2".
std::string_view isa_name(Isa isa);

/// Parses "scalar" / "neon" / "avx2"; "auto" or "" yields nullopt
/// (= use detected); any other spelling also yields nullopt.
std::optional<Isa> parse_isa(std::string_view name);

// ---------------------------------------------------------------------
// Kernels. All dispatch on active_isa() per call (one predictable branch
// against work of O(dim) or more).

/// Four simultaneous dot products against interleaved columns:
/// out[l] = Σ_d a[d] · packed[4d + l], each lane accumulating in
/// ascending-d order — per lane bit-identical to the plain scalar
/// `dot += a[d] * b[d]` loop. `packed` holds four equal-length columns
/// interleaved element-wise (the GEMM-style pack the distance tile
/// kernel builds per column block).
void dot4(const double* a, const double* packed, std::size_t dim,
          double out[4]);

/// out[i] = (v[i] - mean) / sd for i in [0, n). Elementwise (sub then
/// div), bit-identical across ISAs. `out` may alias `v`.
void normalize(const double* v, std::size_t n, double mean, double sd,
               double* out);

/// Folds `folds` consecutive periods of `row` (length folds·period) into
/// their mean: out[j] = (Σ_f row[f·period + j]) / folds, the inner sum
/// accumulated from 0.0 in ascending-f order — bit-identical to the
/// classic `week[s % period] += row[s]` loop. `out` must not alias `row`.
void fold_mean(const double* row, std::size_t period, std::size_t folds,
               double* out);

/// One FFT butterfly sweep: for j in [0, half):
///   v = b[j] · w[j]  (naive complex product: re = br·wr − bi·wi,
///                     im = bi·wr + br·wi)
///   a[j] = u + v;  b[j] = u − v  (u = old a[j])
/// `a` and `b` are the two half-blocks of one radix-2 stage, `w` the
/// per-stage twiddle table.
void fft_butterfly(std::complex<double>* a, std::complex<double>* b,
                   const std::complex<double>* w, std::size_t half);

/// out[i] = x[i] · y[i] (naive complex product: re = xr·yr − xi·yi,
/// im = xr·yi + xi·yr). `out` may alias `x` (the in-place Bluestein
/// pointwise product).
void complex_multiply(const std::complex<double>* x,
                      const std::complex<double>* y,
                      std::complex<double>* out, std::size_t n);

}  // namespace cellscope::simd
