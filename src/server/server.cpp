#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.h"
#include "common/failpoint.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/timer.h"

namespace cellscope::server {

namespace {

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

HttpResponse shed_response(int status, std::string_view reason) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = "{\"error\":\"" + std::string(reason) + "\"}";
  return response;
}

}  // namespace

QueryServer::QueryServer(QueryService& service, ServerConfig config)
    : service_(service), config_(config) {
  CS_CHECK_MSG(config_.workers >= 1, "server needs at least one worker");
  CS_CHECK_MSG(config_.max_pending >= 1,
               "admission queue needs capacity >= 1");
}

QueryServer::~QueryServer() { stop(); }

void QueryServer::start() {
  CS_CHECK_MSG(!running_.load(), "server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("socket(): " + std::string(strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string why = strerror(errno);
    close_quiet(listen_fd_);
    listen_fd_ = -1;
    throw IoError("bind(127.0.0.1:" + std::to_string(config_.port) +
                  "): " + why);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string why = strerror(errno);
    close_quiet(listen_fd_);
    listen_fd_ = -1;
    throw IoError("listen(): " + why);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  const auto& metrics = ServerMetrics::instance();
  base_requests_ = metrics.requests->value();
  base_errors_500_ = metrics.errors_500->value();
  base_shed_503_ = metrics.shed_503->value();
  base_shed_429_ = metrics.shed_429->value();
  base_reply_partial_ = metrics.reply_partial->value();

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });

  obs::log_info("server.start",
                {{"port", static_cast<std::uint64_t>(port_)},
                 {"workers", config_.workers},
                 {"max_pending", config_.max_pending}});
}

void QueryServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // stopping_ is set under queue_mutex_ so the store is serialized with
  // the workers' wait-predicate check: a worker that saw (not stopping,
  // queue empty) cannot miss the notify below — it is either already
  // blocked in wait() or still holds the mutex we need first.
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_.store(true, std::memory_order_release);
  }

  // Unblock the acceptor, the workers waiting on the queue, and the
  // workers blocked in recv() on a live connection.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }

  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  close_quiet(listen_fd_);
  listen_fd_ = -1;

  // Admitted-but-unserved connections get a typed goodbye, not a reset.
  std::deque<int> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    leftover.swap(admission_queue_);
  }
  const auto& metrics = ServerMetrics::instance();
  for (int fd : leftover)
    reply_and_close(fd, shed_response(503, "server shutting down"));
  metrics.queue_depth->set(0);
  metrics.connections->set(0);

  // server.* sentinels over this instance's share of the counters. Sheds
  // are working-as-intended under saturation (warn, generous bound);
  // handler exceptions and truncated replies are not (fail / warn).
  {
    auto& board = obs::QualityBoard::instance();
    const std::uint64_t requests = metrics.requests->value() - base_requests_;
    const std::uint64_t errors = metrics.errors_500->value() - base_errors_500_;
    const std::uint64_t shed = (metrics.shed_503->value() - base_shed_503_) +
                               (metrics.shed_429->value() - base_shed_429_);
    const std::uint64_t partial =
        metrics.reply_partial->value() - base_reply_partial_;
    obs::StageSpan span("server.serve", "server");
    span.annotate({"requests", requests});
    span.annotate({"shed", shed});
    board.add_check("server.serve", "server_error_ratio",
                    obs::Severity::kFail, [errors, requests] {
                      return obs::check_reject_ratio(
                          static_cast<std::size_t>(errors),
                          static_cast<std::size_t>(requests), 0.01);
                    });
    board.add_check("server.serve", "server_shed_ratio", obs::Severity::kWarn,
                    [shed, requests] {
                      return obs::check_reject_ratio(
                          static_cast<std::size_t>(shed),
                          static_cast<std::size_t>(requests + shed), 0.5);
                    });
    board.add_check("server.serve", "server_reply_partial",
                    obs::Severity::kWarn, [partial] {
                      obs::CheckResult result;
                      result.passed = partial == 0;
                      result.value = static_cast<double>(partial);
                      result.detail =
                          std::to_string(partial) + " truncated replies";
                      return result;
                    });
  }
  obs::log_info("server.stop", {{"port", static_cast<std::uint64_t>(port_)}});
}

std::size_t QueryServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return admission_queue_.size();
}

void QueryServer::accept_loop() {
  auto& metrics = ServerMetrics::instance();
  while (!stopping_.load(std::memory_order_acquire)) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      close_quiet(client);
      break;
    }
    if (CS_FAILPOINT("server.accept.fail")) {
      // Simulated accept failure: the kernel handed us a connection the
      // daemon could not take over (fd exhaustion, interrupted accept).
      metrics.accept_errors->add(1);
      close_quiet(client);
      continue;
    }
    if (client < 0) {
      if (errno == EINTR) continue;
      metrics.accept_errors->add(1);
      // Persistent failures (EMFILE, ENFILE, ENOBUFS) would otherwise
      // busy-spin exactly when the process is resource-starved.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }

    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (admission_queue_.size() < config_.max_pending) {
        admission_queue_.push_back(client);
        metrics.queue_depth->set(
            static_cast<std::int64_t>(admission_queue_.size()));
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      // Connection-level shed: no worker will ever see this fd.
      metrics.shed_503->add(1);
      reply_and_close(client, shed_response(503, "admission queue full"));
    }
  }
}

void QueryServer::worker_loop() {
  auto& metrics = ServerMetrics::instance();
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               !admission_queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      fd = admission_queue_.front();
      admission_queue_.pop_front();
      metrics.queue_depth->set(
          static_cast<std::int64_t>(admission_queue_.size()));
    }
    {
      std::lock_guard<std::mutex> lock(active_mutex_);
      active_fds_.push_back(fd);
    }
    metrics.connections->add(1);
    serve_connection(fd);
    metrics.connections->add(-1);
    {
      std::lock_guard<std::mutex> lock(active_mutex_);
      std::erase(active_fds_, fd);
    }
    close_quiet(fd);
  }
}

void QueryServer::serve_connection(int fd) {
  auto& metrics = ServerMetrics::instance();
  timeval timeout{};
  timeout.tv_sec = config_.read_timeout_ms / 1000;
  timeout.tv_usec = (config_.read_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  char chunk[16384];
  while (!stopping_.load(std::memory_order_acquire)) {
    // Answer every complete request already buffered (pipelining) before
    // going back to the socket.
    while (true) {
      HttpRequest request;
      const ParseResult parsed =
          parse_http_request(buffer, request, config_.limits);
      if (parsed.status == ParseStatus::kNeedMore) break;
      if (parsed.status == ParseStatus::kBad) {
        metrics.bad_requests->add(1);
        HttpResponse response;
        response.status = parsed.error_status;
        response.content_type = "application/json";
        response.body = "{\"error\":\"" + parsed.error + "\"}";
        write_frame(fd, serialize_response(response, /*keep_alive=*/false));
        return;  // framing is lost — nothing after this can be trusted
      }
      buffer.erase(0, parsed.consumed);

      if (queue_depth() >= config_.max_pending) {
        // Request-level shed: the admission queue is saturated, so push
        // back on connected clients too — typed reply, then close.
        metrics.shed_429->add(1);
        write_frame(fd, serialize_response(
                            shed_response(429, "server saturated, back off"),
                            /*keep_alive=*/false));
        return;
      }

      Endpoint endpoint = Endpoint::kOther;
      const double start_us = obs::now_us();
      const HttpResponse response = service_.dispatch(request, &endpoint);
      metrics.requests->add(1);
      metrics.latency_ms[static_cast<std::size_t>(endpoint)]->observe(
          (obs::now_us() - start_us) / 1000.0);

      if (!write_frame(fd, serialize_response(response, request.keep_alive)))
        return;
      if (!request.keep_alive) return;
    }

    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;  // EOF, timeout, or shutdown
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

bool QueryServer::write_frame(int fd, const std::string& frame) {
  auto& metrics = ServerMetrics::instance();
  std::size_t limit = frame.size();
  bool truncate = false;
  if (CS_FAILPOINT("server.reply.partial")) {
    // Fault drill: die mid-reply. The client must see a short frame and a
    // close, never a torn frame followed by a healthy next response.
    limit = frame.size() / 2;
    truncate = true;
    metrics.reply_partial->add(1);
  }
  std::size_t sent = 0;
  while (sent < limit) {
    const ssize_t n =
        ::send(fd, frame.data() + sent, limit - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      metrics.reply_partial->add(1);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return !truncate;
}

void QueryServer::reply_and_close(int fd, const HttpResponse& response) {
  write_frame(fd, serialize_response(response, /*keep_alive=*/false));
  close_quiet(fd);
}

}  // namespace cellscope::server
