// Blocking HTTP/1.1 client for the query daemon — the test suite's and
// load bench's view of the server. Deliberately tiny: one keep-alive
// connection, synchronous request/response, no TLS, loopback-oriented.
//
// get()/post() run one exchange; a dropped keep-alive connection (server
// restarted, idle timeout) is retried once on a fresh connection before
// the error surfaces. get_burst() pipelines N copies of one GET in a
// single write and reads all N responses back — the closed-loop load
// bench uses it to amortize syscalls so a single core can drive the
// ≥50k req/s target.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "server/http.h"

namespace cellscope::server {

/// One client-side exchange result.
struct ClientResponse {
  int status = 0;
  std::string body;
  bool keep_alive = true;  ///< server's Connection header
};

/// Blocking loopback HTTP client over one keep-alive connection.
class BlockingHttpClient {
 public:
  /// Connects lazily on the first request.
  explicit BlockingHttpClient(std::uint16_t port, int timeout_ms = 5000);
  ~BlockingHttpClient();

  /// One GET exchange. Throws IoError when the server is unreachable or
  /// the response cannot be read (after one reconnect attempt).
  ClientResponse get(std::string_view target);

  /// One POST exchange with a request body (Content-Type:
  /// application/json).
  ClientResponse post(std::string_view target, std::string_view body);

  /// Pipelines `n` identical GETs in one write and reads the `n`
  /// responses in order. Stops early (returning what it got) when the
  /// server closes mid-burst — a 429 shed ends a burst, by design.
  std::vector<ClientResponse> get_burst(std::string_view target,
                                        std::size_t n);

  /// Drops the connection; the next request reconnects.
  void disconnect();

  BlockingHttpClient(const BlockingHttpClient&) = delete;
  BlockingHttpClient& operator=(const BlockingHttpClient&) = delete;

 private:
  void connect();
  /// Sends `request` and reads one response; false when the connection
  /// died (caller reconnects and retries once).
  bool exchange(const std::string& request, ClientResponse& out);
  /// Reads one response from the front of buffer_, recv()ing as needed.
  bool read_response(ClientResponse& out);

  std::uint16_t port_;
  int timeout_ms_;
  int fd_ = -1;
  std::string buffer_;  ///< unconsumed bytes past the last response
};

}  // namespace cellscope::server
