#include "server/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>

#include "common/error.h"

namespace cellscope::server {

namespace {

/// Parses one response from the front of `buffer`. Returns bytes
/// consumed, 0 when the buffer is still incomplete. Throws IoError on a
/// frame we cannot make sense of.
std::size_t parse_response(std::string_view buffer, ClientResponse& out) {
  const std::size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return 0;
  const std::string_view head = buffer.substr(0, head_end);

  // Status line: HTTP/1.1 NNN Reason
  const std::size_t sp = head.find(' ');
  if (sp == std::string_view::npos || head.size() < sp + 4)
    throw IoError("malformed response status line");
  out.status = (head[sp + 1] - '0') * 100 + (head[sp + 2] - '0') * 10 +
               (head[sp + 3] - '0');
  if (out.status < 100 || out.status > 599)
    throw IoError("malformed response status code");

  std::size_t content_length = 0;
  out.keep_alive = true;
  std::size_t pos = head.find("\r\n");
  while (pos != std::string_view::npos && pos < head.size()) {
    pos += 2;
    std::size_t next = head.find("\r\n", pos);
    if (next == std::string_view::npos) next = head.size();
    const std::string_view line = head.substr(pos, next - pos);
    pos = next;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name(line.substr(0, colon));
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    if (name == "content-length") {
      const auto [ptr, ec] = std::from_chars(
          value.data(), value.data() + value.size(), content_length);
      if (ec != std::errc() || ptr != value.data() + value.size())
        throw IoError("malformed Content-Length");
    } else if (name == "connection") {
      out.keep_alive = value != "close";
    }
  }

  const std::size_t body_start = head_end + 4;
  if (buffer.size() - body_start < content_length) return 0;
  out.body = std::string(buffer.substr(body_start, content_length));
  return body_start + content_length;
}

}  // namespace

BlockingHttpClient::BlockingHttpClient(std::uint16_t port, int timeout_ms)
    : port_(port), timeout_ms_(timeout_ms) {}

BlockingHttpClient::~BlockingHttpClient() { disconnect(); }

void BlockingHttpClient::disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

void BlockingHttpClient::connect() {
  disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw IoError("socket(): " + std::string(strerror(errno)));
  timeval timeout{};
  timeout.tv_sec = timeout_ms_ / 1000;
  timeout.tv_usec = (timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = strerror(errno);
    disconnect();
    throw IoError("connect(127.0.0.1:" + std::to_string(port_) +
                  "): " + why);
  }
}

bool BlockingHttpClient::read_response(ClientResponse& out) {
  char chunk[16384];
  while (true) {
    const std::size_t consumed = parse_response(buffer_, out);
    if (consumed > 0) {
      buffer_.erase(0, consumed);
      return true;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool BlockingHttpClient::exchange(const std::string& request,
                                  ClientResponse& out) {
  if (fd_ < 0) connect();
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd_, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  if (!read_response(out)) return false;
  if (!out.keep_alive) disconnect();
  return true;
}

ClientResponse BlockingHttpClient::get(std::string_view target) {
  const std::string request = "GET " + std::string(target) +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  ClientResponse response;
  if (exchange(request, response)) return response;
  // The keep-alive connection died between requests — retry once fresh.
  connect();
  if (exchange(request, response)) return response;
  throw IoError("GET " + std::string(target) + ": connection lost");
}

ClientResponse BlockingHttpClient::post(std::string_view target,
                                        std::string_view body) {
  std::string request = "POST " + std::string(target) +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                        "Content-Type: application/json\r\n"
                        "Content-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  ClientResponse response;
  if (exchange(request, response)) return response;
  connect();
  if (exchange(request, response)) return response;
  throw IoError("POST " + std::string(target) + ": connection lost");
}

std::vector<ClientResponse> BlockingHttpClient::get_burst(
    std::string_view target, std::size_t n) {
  if (fd_ < 0) connect();
  const std::string one = "GET " + std::string(target) +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::string burst;
  burst.reserve(one.size() * n);
  for (std::size_t i = 0; i < n; ++i) burst += one;

  std::vector<ClientResponse> responses;
  responses.reserve(n);
  std::size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t wrote = ::send(fd_, burst.data() + sent,
                                 burst.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0) {
      if (wrote < 0 && errno == EINTR) continue;
      disconnect();
      return responses;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ClientResponse response;
    if (!read_response(response)) {
      disconnect();
      break;
    }
    const bool keep = response.keep_alive;
    responses.push_back(std::move(response));
    if (!keep) {
      disconnect();
      break;
    }
  }
  return responses;
}

}  // namespace cellscope::server
