// The query daemon's endpoint layer — socket-free request dispatch over
// the live stream (DESIGN.md §11).
//
// A QueryService binds one StreamIngestor (the live state) to an
// epoch-published OnlineClassifier (the frozen model) and answers HTTP
// requests about them:
//
//   GET  /towers/<id>/class        live classification of one tower
//   GET  /towers/<id>/window       rolling-window stats (O(1), no copy)
//   GET  /towers/<id>/forecast     pattern-template forecast
//                                  (?horizon=N slots, default one day)
//   POST /classify                 classify a posted folded week:
//                                  pattern + convex component weights
//   GET  /stats                    serving-plane view: per-endpoint
//                                  request counts and latency quantiles,
//                                  shed counters, model epoch, ingest
//   GET  <anything else>           falls back to the introspection
//                                  handler table (/metrics, /metrics.json,
//                                  /healthz, /stream), then 404
//
// Model publication is RCU-style: publish_model() swaps a
// shared_ptr<const OnlineClassifier> under a lock held for just the
// pointer exchange; an in-flight request keeps the epoch it loaded
// alive until it finishes, so a swap never waits for — and never makes
// anything wait beyond a pointer copy for — readers or ingest. Reads against tower state go
// through the ingestor's lock-disciplined accessors (window_stats under
// the shard lock for the O(1) endpoints, window_copy for the ones that
// need the full grid), so they interleave safely with concurrent
// offer/drain/ingest_columns traffic (the `-L server` TSan suite pins
// this).
//
// dispatch() is the unit-test seam: tests (and the daemon's socket loop)
// hand it a parsed HttpRequest and get the response without a port.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "server/http.h"
#include "stream/ingestor.h"
#include "stream/online_classifier.h"

namespace cellscope {
class ThreadPool;
}

namespace cellscope::server {

/// Endpoint families, for per-endpoint latency attribution. kOther
/// covers the introspection fallback and 404s.
enum class Endpoint {
  kClass = 0,
  kWindow,
  kForecast,
  kClassify,
  kStats,
  kOther,
};
inline constexpr std::size_t kEndpointCount = 6;

/// Canonical short name ("class", "window", ...), used in metric names
/// and the /stats body.
std::string_view endpoint_name(Endpoint endpoint);

/// Process-global serving-plane metrics (registered once, cached — the
/// same pattern as the stream ingestor's counters). Shared by the
/// service (request accounting) and the socket server (admission and
/// fault accounting).
struct ServerMetrics {
  static ServerMetrics& instance();

  obs::Counter* requests;       ///< cellscope.server.requests
  obs::Counter* errors_500;     ///< handler exceptions -> 500s
  obs::Counter* bad_requests;   ///< 400/413/431 parse rejections
  obs::Counter* shed_503;       ///< connections shed at admission
  obs::Counter* shed_429;       ///< requests shed under saturation
  obs::Counter* accept_errors;  ///< cellscope.server.accept_errors
  obs::Counter* reply_partial;  ///< cellscope.server.reply_partial
  obs::Gauge* connections;      ///< live client connections
  obs::Gauge* queue_depth;      ///< admitted connections awaiting a worker
  obs::Histogram* latency_ms[kEndpointCount];  ///< per-endpoint latency

 private:
  ServerMetrics();
};

/// Socket-free endpoint dispatcher over one ingestor + published model.
class QueryService {
 public:
  /// `pool`, when given, parallelizes nothing today but is plumbed for
  /// batch endpoints; both references must outlive the service.
  explicit QueryService(StreamIngestor& ingestor, ThreadPool* pool = nullptr);

  /// Atomically publishes a new model epoch. In-flight requests finish on
  /// the epoch they loaded; new requests see `model`. A null publish is
  /// rejected (the service would rather serve a stale model than none).
  void publish_model(std::shared_ptr<const OnlineClassifier> model);

  /// The current epoch's classifier (may be null before the first
  /// publish — model endpoints then answer 503).
  std::shared_ptr<const OnlineClassifier> model() const;

  /// Number of publish_model() calls so far (0 = never published);
  /// reported by /stats and every classification response so clients can
  /// correlate answers with model rollovers.
  std::uint64_t model_epoch() const;

  /// Routes one request. Never throws: handler exceptions become 500s
  /// (counted on cellscope.server.errors_500). When `endpoint_out` is
  /// non-null it receives the endpoint family for latency attribution.
  HttpResponse dispatch(const HttpRequest& request,
                        Endpoint* endpoint_out = nullptr) const;

  StreamIngestor& ingestor() const { return ingestor_; }

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

 private:
  HttpResponse dispatch_towers(const HttpRequest& request,
                               Endpoint* endpoint_out) const;
  HttpResponse handle_class(std::uint32_t tower_id) const;
  HttpResponse handle_window(std::uint32_t tower_id) const;
  HttpResponse handle_forecast(std::uint32_t tower_id,
                               const HttpRequest& request) const;
  HttpResponse handle_classify(const HttpRequest& request) const;
  HttpResponse handle_stats() const;

  StreamIngestor& ingestor_;
  ThreadPool* pool_;
  /// Guards only the pointer exchange; see publish_model() for why this
  /// is a mutex rather than std::atomic<shared_ptr>.
  mutable std::mutex model_mutex_;
  std::shared_ptr<const OnlineClassifier> model_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace cellscope::server
