#include "server/query_service.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "analysis/component_analysis.h"
#include "analysis/freq_features.h"
#include "city/functional_region.h"
#include "common/error.h"
#include "common/json.h"
#include "common/stats.h"
#include "common/time_grid.h"
#include "obs/metrics.h"

namespace cellscope::server {

namespace {

/// Round-trip-exact double for response bodies: 17 significant digits,
/// so a client parsing the JSON recovers the server's double bit for bit
/// (the `-L server` bit-identity tests depend on this).
std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

HttpResponse json_response(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

HttpResponse error_response(int status, std::string_view message) {
  // Messages can carry exception text (paths, quotes) — escape so the
  // body stays valid JSON no matter what e.what() contains.
  return json_response(status,
                       "{\"error\":\"" + obs::json_escape(message) + "\"}");
}

/// Strict decimal parse of a path segment / query value.
std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t value = 0;
  if (s.empty()) return std::nullopt;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string classification_json(const Classification& c,
                                std::uint64_t epoch) {
  std::string json = "{\"cluster\":" + std::to_string(c.cluster);
  json += ",\"region\":\"" + region_name(c.region) + "\"";
  json += ",\"distance\":" + json_double(c.distance);
  json += ",\"confidence\":" + json_double(c.confidence);
  json += std::string(",\"cold_start\":") + (c.cold_start ? "true" : "false");
  json += ",\"model_epoch\":" + std::to_string(epoch) + "}";
  return json;
}

}  // namespace

std::string_view endpoint_name(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kClass:
      return "class";
    case Endpoint::kWindow:
      return "window";
    case Endpoint::kForecast:
      return "forecast";
    case Endpoint::kClassify:
      return "classify";
    case Endpoint::kStats:
      return "stats";
    case Endpoint::kOther:
      return "other";
  }
  return "other";
}

ServerMetrics::ServerMetrics() {
  auto& registry = obs::MetricsRegistry::instance();
  requests = &registry.counter("cellscope.server.requests");
  errors_500 = &registry.counter("cellscope.server.errors_500");
  bad_requests = &registry.counter("cellscope.server.bad_requests");
  shed_503 = &registry.counter("cellscope.server.shed_503");
  shed_429 = &registry.counter("cellscope.server.shed_429");
  accept_errors = &registry.counter("cellscope.server.accept_errors");
  reply_partial = &registry.counter("cellscope.server.reply_partial");
  connections = &registry.gauge("cellscope.server.connections");
  queue_depth = &registry.gauge("cellscope.server.queue_depth");
  for (std::size_t e = 0; e < kEndpointCount; ++e) {
    latency_ms[e] = &registry.histogram(
        "cellscope.server.latency_ms." +
        std::string(endpoint_name(static_cast<Endpoint>(e))));
  }
}

ServerMetrics& ServerMetrics::instance() {
  static ServerMetrics* metrics = new ServerMetrics;  // leaked like obs
  return *metrics;
}

QueryService::QueryService(StreamIngestor& ingestor, ThreadPool* pool)
    : ingestor_(ingestor), pool_(pool) {
  ServerMetrics::instance();  // force registration before serving starts
}

void QueryService::publish_model(
    std::shared_ptr<const OnlineClassifier> model) {
  CS_CHECK_MSG(model != nullptr, "cannot publish a null model");
  // RCU swap: the lock covers only the pointer exchange, so a publish
  // holds up readers for one pointer copy at most; readers holding the
  // old shared_ptr keep that epoch alive past the swap. (A mutex, not
  // std::atomic<shared_ptr>: libstdc++'s _Sp_atomic unlocks its spin
  // bit with relaxed ordering in load(), which ThreadSanitizer cannot
  // prove race-free.) The epoch counter is advanced after the swap, so
  // a reader pairing model() with model_epoch() may see epoch N with
  // model N+1 during a rollover — never the reverse (a stale model
  // with a new epoch number).
  {
    const std::lock_guard<std::mutex> lock(model_mutex_);
    model_ = std::move(model);
  }
  epoch_.fetch_add(1, std::memory_order_release);
}

std::shared_ptr<const OnlineClassifier> QueryService::model() const {
  const std::lock_guard<std::mutex> lock(model_mutex_);
  return model_;
}

std::uint64_t QueryService::model_epoch() const {
  return epoch_.load(std::memory_order_acquire);
}

HttpResponse QueryService::dispatch(const HttpRequest& request,
                                    Endpoint* endpoint_out) const {
  Endpoint endpoint = Endpoint::kOther;
  HttpResponse response;
  try {
    if (request.path.starts_with("/towers/")) {
      response = dispatch_towers(request, &endpoint);
    } else if (request.path == "/classify") {
      endpoint = Endpoint::kClassify;
      response = request.method == "POST"
                     ? handle_classify(request)
                     : error_response(405, "POST a folded week to /classify");
    } else if (request.path == "/stats") {
      endpoint = Endpoint::kStats;
      response = request.method == "GET"
                     ? handle_stats()
                     : error_response(405, "only GET is supported");
    } else if (request.method == "GET") {
      // Everything the introspection plane already serves (/metrics,
      // /metrics.json, /healthz, /stream) plus its 404 for the rest.
      response = obs::IntrospectionServer::instance().handle(request.path);
    } else {
      response = error_response(405, "only GET is supported");
    }
  } catch (const std::exception& e) {
    ServerMetrics::instance().errors_500->add(1);
    response = error_response(500, e.what());
  }
  if (endpoint_out != nullptr) *endpoint_out = endpoint;
  return response;
}

HttpResponse QueryService::dispatch_towers(const HttpRequest& request,
                                           Endpoint* endpoint_out) const {
  // "/towers/<id>/<leaf>"
  const std::string_view path = request.path;
  const std::string_view rest = path.substr(8);  // after "/towers/"
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos)
    return error_response(404, "expected /towers/<id>/<endpoint>");
  const auto id = parse_u64(rest.substr(0, slash));
  if (!id.has_value() || *id > 0xffffffffu)
    return error_response(400, "tower id must be a 32-bit integer");
  const std::string_view leaf = rest.substr(slash + 1);
  if (request.method != "GET")
    return error_response(405, "only GET is supported");
  const auto tower_id = static_cast<std::uint32_t>(*id);
  if (leaf == "class") {
    *endpoint_out = Endpoint::kClass;
    return handle_class(tower_id);
  }
  if (leaf == "window") {
    *endpoint_out = Endpoint::kWindow;
    return handle_window(tower_id);
  }
  if (leaf == "forecast") {
    *endpoint_out = Endpoint::kForecast;
    return handle_forecast(tower_id, request);
  }
  return error_response(404, "unknown tower endpoint");
}

HttpResponse QueryService::handle_class(std::uint32_t tower_id) const {
  const auto classifier = model();
  if (classifier == nullptr)
    return error_response(503, "no model published yet");
  const std::uint64_t epoch = model_epoch();
  TowerWindow window;
  try {
    window = ingestor_.window_copy(tower_id);
  } catch (const InvalidArgument&) {
    return error_response(404, "no window for this tower");
  }
  const Classification c = classifier->classify(window);
  std::string json = "{\"tower\":" + std::to_string(tower_id);
  json += ",\"classification\":" + classification_json(c, epoch) + "}";
  return json_response(200, std::move(json));
}

HttpResponse QueryService::handle_window(std::uint32_t tower_id) const {
  TowerWindowStats stats;
  try {
    stats = ingestor_.window_stats(tower_id);
  } catch (const InvalidArgument&) {
    return error_response(404, "no window for this tower");
  }
  std::string json = "{\"tower\":" + std::to_string(tower_id);
  json += ",\"observed_slots\":" + std::to_string(stats.observed_slots);
  json += ",\"total_bytes\":" + std::to_string(stats.total_bytes);
  json += ",\"mean\":" + json_double(stats.mean);
  json += ",\"variance\":" + json_double(stats.variance);
  json += ",\"latest_minute\":" + std::to_string(stats.latest_minute);
  json += ",\"latest_cycle\":" + std::to_string(stats.latest_cycle) + "}";
  return json_response(200, std::move(json));
}

HttpResponse QueryService::handle_forecast(std::uint32_t tower_id,
                                           const HttpRequest& request) const {
  const auto classifier = model();
  if (classifier == nullptr)
    return error_response(503, "no model published yet");

  std::size_t horizon = TimeGrid::kSlotsPerDay;  // one day of slots
  if (const auto param = query_param(request, "horizon");
      param.has_value()) {
    const auto parsed = parse_u64(*param);
    if (!parsed.has_value() || *parsed == 0 || *parsed > TimeGrid::kSlots)
      return error_response(400, "horizon must be in [1, 4032] slots");
    horizon = static_cast<std::size_t>(*parsed);
  }

  TowerWindow window;
  try {
    window = ingestor_.window_copy(tower_id);
  } catch (const InvalidArgument&) {
    return error_response(404, "no window for this tower");
  }
  const auto history = window.observed_history();
  if (history.size() < PatternForecaster::kMinMatchSlots) {
    return json_response(
        409, "{\"error\":\"insufficient history for a forecast\","
             "\"observed_slots\":" +
                 std::to_string(history.size()) + ",\"required_slots\":" +
                 std::to_string(PatternForecaster::kMinMatchSlots) + "}");
  }

  const auto& forecaster = classifier->forecaster();
  const std::size_t matched = forecaster.match(history);
  const auto values = forecaster.forecast(history, horizon);
  std::string json = "{\"tower\":" + std::to_string(tower_id);
  json += ",\"horizon\":" + std::to_string(horizon);
  json += ",\"template\":" + std::to_string(matched);
  json += ",\"region\":\"" +
          region_name(classifier->model().regions[matched]) + "\"";
  json += ",\"model_epoch\":" + std::to_string(model_epoch());
  json += ",\"values\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) json += ',';
    json += json_double(values[i]);
  }
  json += "]}";
  return json_response(200, std::move(json));
}

HttpResponse QueryService::handle_classify(const HttpRequest& request) const {
  const auto classifier = model();
  if (classifier == nullptr)
    return error_response(503, "no model published yet");

  // Body: a bare JSON array of 1008 numbers, or {"folded_week":[...]}.
  std::vector<double> folded;
  try {
    const JsonValue doc = JsonValue::parse(request.body);
    const JsonValue::Array* array = nullptr;
    if (doc.is_array()) {
      array = &doc.as_array();
    } else if (doc.is_object() && doc.contains("folded_week") &&
               doc.at("folded_week").is_array()) {
      array = &doc.at("folded_week").as_array();
    } else {
      return error_response(
          400, "body must be a folded-week array or {folded_week:[...]}");
    }
    folded.reserve(array->size());
    for (const auto& v : *array) {
      if (!v.is_number())
        return error_response(400, "folded week must be all numbers");
      folded.push_back(v.as_number());
    }
  } catch (const InvalidArgument&) {
    return error_response(400, "malformed JSON body");
  }
  if (folded.size() != static_cast<std::size_t>(TimeGrid::kSlotsPerWeek))
    return error_response(400, "folded week must have 1008 slots");

  // Nearest folded-week centroid — the same ANN-backed scoring rule
  // OnlineClassifier::classify applies to a live window.
  const ModelSnapshot& snapshot = classifier->model();
  double best = 0.0;
  const std::size_t best_cluster = classifier->nearest_centroid(folded, &best);

  std::string json = "{\"cluster\":" + std::to_string(best_cluster);
  json += ",\"region\":\"" +
          region_name(snapshot.regions[best_cluster]) + "\"";
  json += ",\"distance\":" + json_double(best);

  if (snapshot.has_primaries) {
    // Convex weights over the four primary components (§5.3): the posted
    // week is periodic by construction, so tiling it across the 4-week
    // grid reconstructs the month-long signal whose DFT carries the
    // (A28, P28, A56) feature the decomposition is defined on.
    std::vector<double> tiled;
    tiled.reserve(TimeGrid::kSlots);
    for (int rep = 0; rep < TimeGrid::kDays / TimeGrid::kDaysPerWeek; ++rep)
      tiled.insert(tiled.end(), folded.begin(), folded.end());
    const auto feature = compute_freq_features(tiled).qp_feature();
    const auto decomposition =
        decompose_feature(feature, snapshot.primary_features);
    json += ",\"weights\":[";
    for (std::size_t w = 0; w < decomposition.coefficients.size(); ++w) {
      if (w > 0) json += ',';
      json += json_double(decomposition.coefficients[w]);
    }
    json += "],\"residual\":" + json_double(decomposition.residual);
    json += ",\"confidence\":" +
            json_double(1.0 / (1.0 + decomposition.residual));
  } else {
    json += ",\"weights\":null,\"confidence\":" +
            json_double(1.0 / (1.0 + std::sqrt(best)));
  }
  json += ",\"model_epoch\":" + std::to_string(model_epoch()) + "}";
  return json_response(200, std::move(json));
}

HttpResponse QueryService::handle_stats() const {
  const auto& metrics = ServerMetrics::instance();
  std::string json = "{\"model_epoch\":" + std::to_string(model_epoch());
  json += ",\"model_published\":";
  json += model() != nullptr ? "true" : "false";
  json += ",\"requests\":" + std::to_string(metrics.requests->value());
  json += ",\"errors_500\":" + std::to_string(metrics.errors_500->value());
  json += ",\"bad_requests\":" +
          std::to_string(metrics.bad_requests->value());
  json += ",\"shed_503\":" + std::to_string(metrics.shed_503->value());
  json += ",\"shed_429\":" + std::to_string(metrics.shed_429->value());
  json += ",\"accept_errors\":" +
          std::to_string(metrics.accept_errors->value());
  json += ",\"reply_partial\":" +
          std::to_string(metrics.reply_partial->value());
  json += ",\"connections\":" +
          std::to_string(metrics.connections->value());
  json += ",\"queue_depth\":" + std::to_string(metrics.queue_depth->value());
  json += ",\"endpoints\":{";
  for (std::size_t e = 0; e < kEndpointCount; ++e) {
    const auto* histogram = metrics.latency_ms[e];
    if (e > 0) json += ',';
    json += "\"" + std::string(endpoint_name(static_cast<Endpoint>(e))) +
            "\":{\"requests\":" + std::to_string(histogram->count());
    json += ",\"p50_ms\":" + json_double(histogram->quantile(0.5));
    json += ",\"p99_ms\":" + json_double(histogram->quantile(0.99)) + "}";
  }
  json += "},\"ingest\":" + ingestor_.status_json() + "}";
  return json_response(200, std::move(json));
}

}  // namespace cellscope::server
