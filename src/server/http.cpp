#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace cellscope::server {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

std::string lowercase(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

ParseResult bad(int status, std::string error) {
  ParseResult result;
  result.status = ParseStatus::kBad;
  result.error_status = status;
  result.error = std::move(error);
  return result;
}

}  // namespace

ParseResult parse_http_request(std::string_view buffer, HttpRequest& out,
                               const HttpLimits& limits) {
  out = HttpRequest{};

  // Head = everything through the blank line. An unterminated head longer
  // than the bound can never become valid — reject instead of buffering.
  const std::size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (buffer.size() > limits.max_head_bytes)
      return bad(431, "request head exceeds " +
                          std::to_string(limits.max_head_bytes) + " bytes");
    return ParseResult{};  // kNeedMore
  }
  const std::string_view head = buffer.substr(0, head_end);
  if (head.size() > limits.max_head_bytes)
    return bad(431, "request head exceeds " +
                        std::to_string(limits.max_head_bytes) + " bytes");
  const std::size_t body_start = head_end + 4;

  // Request line: METHOD SP TARGET SP HTTP/x.y
  std::size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) line_end = head.size();
  const std::string_view line = head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1)
    return bad(400, "malformed request line");
  const std::string_view version = trim(line.substr(sp2 + 1));
  if (!version.starts_with("HTTP/"))
    return bad(400, "malformed HTTP version");
  out.method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target.front() != '/')
    return bad(400, "request target must be an absolute path");
  const std::size_t qmark = target.find('?');
  if (qmark == std::string_view::npos) {
    out.path = std::string(target);
  } else {
    out.path = std::string(target.substr(0, qmark));
    out.query = std::string(target.substr(qmark + 1));
  }

  // Header lines.
  std::size_t pos = line_end;
  while (pos < head.size()) {
    pos += 2;  // skip the CRLF that ended the previous line
    std::size_t next = head.find("\r\n", pos);
    if (next == std::string_view::npos) next = head.size();
    const std::string_view header_line = head.substr(pos, next - pos);
    pos = next;
    if (header_line.empty()) continue;
    const std::size_t colon = header_line.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return bad(400, "malformed header line");
    out.headers[lowercase(trim(header_line.substr(0, colon)))] =
        std::string(trim(header_line.substr(colon + 1)));
  }

  // Keep-alive: the 1.1 default, unless the client opted out (or is 1.0
  // and did not opt in).
  const bool http10 = version == "HTTP/1.0";
  out.keep_alive = !http10;
  if (const auto it = out.headers.find("connection");
      it != out.headers.end()) {
    const std::string value = lowercase(it->second);
    if (value == "close") out.keep_alive = false;
    if (value == "keep-alive") out.keep_alive = true;
  }

  // Body: Content-Length bytes (we never accept chunked encoding).
  std::size_t content_length = 0;
  if (const auto it = out.headers.find("content-length");
      it != out.headers.end()) {
    const std::string& value = it->second;
    const auto [ptr, ec] = std::from_chars(
        value.data(), value.data() + value.size(), content_length);
    if (ec == std::errc::result_out_of_range)
      return bad(413, "request body exceeds " +
                          std::to_string(limits.max_body_bytes) + " bytes");
    if (ec != std::errc() || ptr != value.data() + value.size())
      return bad(400, "malformed Content-Length");
  } else if (out.headers.contains("transfer-encoding")) {
    return bad(400, "chunked transfer encoding is not supported");
  }
  if (content_length > limits.max_body_bytes)
    return bad(413, "request body exceeds " +
                        std::to_string(limits.max_body_bytes) + " bytes");
  if (buffer.size() - body_start < content_length)
    return ParseResult{};  // kNeedMore
  out.body = std::string(buffer.substr(body_start, content_length));

  ParseResult result;
  result.status = ParseStatus::kOk;
  result.consumed = body_start + content_length;
  return result;
}

std::string_view http_status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

std::string serialize_response(const HttpResponse& response,
                               bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + ' ';
  out += http_status_text(response.status);
  out += "\r\nContent-Type: " + response.content_type;
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::optional<std::string> query_param(const HttpRequest& request,
                                       std::string_view key) {
  std::string_view rest = request.query;
  while (!rest.empty()) {
    std::size_t amp = rest.find('&');
    if (amp == std::string_view::npos) amp = rest.size();
    const std::string_view pair = rest.substr(0, amp);
    rest.remove_prefix(std::min(rest.size(), amp + 1));
    const std::size_t eq = pair.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      return eq == std::string_view::npos
                 ? std::string()
                 : std::string(pair.substr(eq + 1));
    }
  }
  return std::nullopt;
}

}  // namespace cellscope::server
