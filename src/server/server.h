// The query daemon's socket layer (DESIGN.md §11) — a multi-client
// HTTP/1.1 loop that generalizes the introspection server's
// single-threaded poll-accept design to a worker pool.
//
// Threading model: one acceptor thread plus `workers` worker threads.
// The acceptor admits connections into a bounded FIFO (the admission
// queue — the same bounded-queue backpressure idea as
// mapred::ThreadPool); each worker pops one connection and owns it for
// its whole keep-alive lifetime, so a request never migrates threads and
// per-connection state needs no locking. Pipelined requests on one
// connection are answered in order from the same buffer.
//
// Admission control (the shedding policy the fault drill pins):
//   * queue full at accept        -> 503 + close, cellscope.server.shed_503
//     (connection-level shed: the client never got a worker)
//   * queue still full when a worker is about to serve a request
//                                 -> 429 + Connection: close, shed_429
//     (backpressure to already-connected clients: finish what you sent,
//     then back off)
// Both are typed replies, never a silent drop, and neither path blocks
// the acceptor — overload degrades throughput, not liveness.
//
// Failpoints: `server.accept.fail` makes an accept attempt fail
// artificially (counted on cellscope.server.accept_errors, connection
// dropped); `server.reply.partial` truncates one response mid-write
// (counted on cellscope.server.reply_partial, connection closed) — the
// client sees a short read, never a corrupted frame followed by more
// traffic.
//
// stop() closes the listen socket, shuts down every live connection,
// drains the admission queue with 503s, joins all threads, and evaluates
// the server.* quality sentinels (error ratio, shed ratio, partial
// replies) over this instance's delta of the process-global counters.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "server/query_service.h"

namespace cellscope::server {

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 asks the kernel for an ephemeral port
  /// (read it back with port() — how every test binds).
  std::uint16_t port = 0;
  /// Worker threads; each owns one connection at a time, so this is also
  /// the maximum number of concurrently-served connections.
  std::size_t workers = 4;
  /// Admission-queue capacity: connections accepted but not yet claimed
  /// by a worker. Beyond it the acceptor sheds with 503.
  std::size_t max_pending = 64;
  /// recv() timeout per read; an idle keep-alive connection is closed
  /// after this long (also bounds how long stop() can be held up).
  int read_timeout_ms = 5000;
  /// Wire-format bounds (head/body byte limits).
  HttpLimits limits;
};

/// Multi-threaded HTTP front-end over one QueryService.
class QueryServer {
 public:
  /// `service` must outlive the server.
  explicit QueryServer(QueryService& service, ServerConfig config = {});
  ~QueryServer();  ///< calls stop()

  /// Binds 127.0.0.1:<port>, starts the acceptor and workers. Throws
  /// IoError when the socket cannot be bound.
  void start();

  /// Stops accepting, closes every connection, joins all threads, and
  /// evaluates the server.* sentinels. Idempotent.
  void stop();

  /// The bound port (resolved after start() when config.port was 0).
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  const ServerConfig& config() const { return config_; }

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  /// Admission-queue depth right now (the 429 saturation signal).
  std::size_t queue_depth() const;
  /// Best-effort framed reply + close, for sheds and parse rejections on
  /// connections no worker owns.
  void reply_and_close(int fd, const HttpResponse& response);
  /// write()s the whole frame, honoring the reply.partial failpoint.
  /// Returns false when the write was truncated or failed.
  bool write_frame(int fd, const std::string& frame);

  QueryService& service_;
  ServerConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> admission_queue_;  // accepted fds awaiting a worker

  std::mutex active_mutex_;
  std::vector<int> active_fds_;  // connections currently owned by workers

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  /// Counter values at start(), for delta-based sentinels (the metrics
  /// are process-global and several servers may run in one process).
  std::uint64_t base_requests_ = 0;
  std::uint64_t base_errors_500_ = 0;
  std::uint64_t base_shed_503_ = 0;
  std::uint64_t base_shed_429_ = 0;
  std::uint64_t base_reply_partial_ = 0;
};

}  // namespace cellscope::server
