// Minimal HTTP/1.1 message layer for the query daemon (DESIGN.md §11).
//
// The introspection server (obs/introspect.h) parses just enough of a
// request line to route GETs; the query daemon needs more — POST bodies,
// keep-alive, pipelining, and bounded buffering — so the wire format
// lives here as pure functions over byte buffers: parse_http_request
// consumes one request from a growing receive buffer (telling the caller
// whether it needs more bytes), serialize_response frames one response.
// No sockets anywhere in this file; the unit tests drive the parser with
// plain strings and the server loop (server/server.h) owns the I/O.
//
// Supported subset: GET and POST requests, Content-Length bodies (no
// chunked encoding), HTTP/1.0 and 1.1, keep-alive per the 1.1 default
// (Connection: close opts out; 1.0 must opt in with keep-alive). Limits
// are explicit: an over-long head is 431, an over-long body 413, and any
// structural damage 400 — malformed input is a typed rejection, never a
// silent close (the contract the introspect satellite of ISSUE 9 also
// adopts).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "obs/introspect.h"

namespace cellscope::server {

/// Responses reuse the introspection server's shape so query-service
/// handlers and obs handlers compose (the daemon falls back to the
/// introspect handler table for /metrics, /healthz, /stream).
using obs::HttpResponse;

/// One parsed request. Header names are lowercased; values are trimmed.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase as sent)
  std::string path;    ///< request target up to '?', e.g. "/towers/7/class"
  std::string query;   ///< raw query string after '?' ("" when absent)
  std::map<std::string, std::string, std::less<>> headers;
  std::string body;
  /// Whether the connection should stay open after this exchange:
  /// HTTP/1.1 defaults to true, "Connection: close" (any case) forces
  /// false, HTTP/1.0 defaults to false unless "Connection: keep-alive".
  bool keep_alive = true;
};

/// Parser buffer bounds. Oversized input is rejected with a status, not
/// buffered without limit.
struct HttpLimits {
  std::size_t max_head_bytes = 8192;
  std::size_t max_body_bytes = 1 << 20;
};

enum class ParseStatus {
  kNeedMore,  ///< buffer holds an incomplete request — read more bytes
  kOk,        ///< one request parsed; `consumed` bytes are spent
  kBad,       ///< malformed or over-limit — respond `error_status`, close
};

struct ParseResult {
  ParseStatus status = ParseStatus::kNeedMore;
  /// Bytes of the buffer consumed by this request (head + body) when
  /// status == kOk; the caller keeps the remainder for pipelining.
  std::size_t consumed = 0;
  /// HTTP status to answer with when status == kBad (400/413/431).
  int error_status = 400;
  std::string error;  ///< human-readable rejection reason
};

/// Parses one request from the front of `buffer` into `out` (cleared
/// first). Never throws; structural damage reports kBad with a status.
ParseResult parse_http_request(std::string_view buffer, HttpRequest& out,
                               const HttpLimits& limits = {});

/// The standard reason phrase for the status codes this server emits.
std::string_view http_status_text(int status);

/// Frames `response` as an HTTP/1.1 message. `keep_alive` picks the
/// Connection header; the body always carries a Content-Length.
std::string serialize_response(const HttpResponse& response, bool keep_alive);

/// Value of `key` in the request's query string ("a=1&b=2" grammar, no
/// percent-decoding — endpoint parameters here are numeric). nullopt when
/// absent; an empty value ("a=") is a present empty string.
std::optional<std::string> query_param(const HttpRequest& request,
                                       std::string_view key);

}  // namespace cellscope::server
