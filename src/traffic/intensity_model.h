// Per-tower traffic intensity model.
//
// Each tower's expected traffic is a convex combination of the four pure
// canonical profiles plus multiplicative noise — exactly the structure the
// paper discovers in §5 ("the traffic of any tower can be constructed using
// a linear combination of four primary components"). Pure-region towers put
// almost all weight on their own profile; comprehensive towers draw a
// Dirichlet mixture. The model exposes both the latent mixture (ground
// truth for the component-analysis validation, Table 6) and sampled noisy
// series (input to the measurement pipeline).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "city/tower.h"
#include "common/rng.h"
#include "traffic/profiles.h"

namespace cellscope {

/// Latent traffic parameters of one tower.
struct TowerTrafficModel {
  /// Convex weights over the four pure profiles (resident, transport,
  /// office, entertainment); sums to 1.
  std::array<double, 4> mixture{};
  /// Absolute scale: the tower's expected series is
  /// scale * sum_i mixture[i] * pure_profile_i(slot) / pure_peak_i-free.
  double scale = 1.0;
  /// Coefficient of variation of the per-slot multiplicative noise.
  double noise_cv = 0.12;
};

/// Options for building the intensity model.
struct IntensityOptions {
  std::uint64_t seed = 1234;
  /// Contamination mass spread over foreign profiles for pure towers.
  double purity_leak = 0.04;
  /// Dirichlet concentrations used for comprehensive towers' mixtures,
  /// in pure-region order. The total concentration controls how tightly
  /// comprehensive towers bunch around the mean mix — high enough that
  /// they form their own cluster (the paper's pattern #5) yet low enough
  /// that they spread over the Fig. 17 polygon interior.
  std::array<double, 4> comprehensive_alpha = {24.0, 6.0, 24.0, 6.0};
  /// Log-sigma of the per-tower lognormal scale spread.
  double scale_sigma = 0.45;
  /// Per-slot multiplicative noise CV.
  double noise_cv = 0.12;
};

/// Latent per-tower traffic model for a deployment.
class IntensityModel {
 public:
  /// Builds the latent model for every tower (deterministic in the seed).
  static IntensityModel create(const std::vector<Tower>& towers,
                               const IntensityOptions& options);

  /// Latent parameters of one tower.
  const TowerTrafficModel& model(std::uint32_t tower_id) const;

  /// Noise-free expected series (4032 slots, bytes per slot).
  std::vector<double> expected_series(std::uint32_t tower_id) const;

  /// Expected series with multiplicative lognormal noise applied per
  /// slot — what the "measured" trace aggregates to.
  std::vector<double> sample_series(std::uint32_t tower_id, Rng& rng) const;

  std::size_t size() const { return models_.size(); }

  /// Per-tower mixtures for all towers (e.g. to condition POI generation).
  std::vector<std::array<double, 4>> mixtures() const;

 private:
  explicit IntensityModel(std::vector<TowerTrafficModel> models);

  std::vector<TowerTrafficModel> models_;
  // Normalized pure-profile series (peak 1.0) shared across towers.
  std::vector<std::vector<double>> unit_profiles_;
};

}  // namespace cellscope
